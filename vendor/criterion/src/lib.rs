//! Offline micro-bench harness, API-compatible with the subset of
//! [criterion](https://docs.rs/criterion) this workspace's `benches/` use.
//!
//! Instead of criterion's warm-up/outlier statistics it runs each benchmark
//! `sample_size` times (after one untimed warm-up call), prints min / median
//! wall-clock per iteration, and exits. `cargo bench` therefore completes in
//! seconds; `--bench <name> -- <filter>` filters by benchmark id substring,
//! and `--test` (passed by `cargo test --benches`) runs every body once.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value sink, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing context handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, called once per configured iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, untimed
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level harness state; tracks the id filter and run mode.
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--bench" | "--nocapture" => {}
                s if s.starts_with('-') => {}
                s => filter = Some(s.to_string()),
            }
        }
        Criterion { filter, test_mode }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }

    /// Run an input-less `routine` outside any group (default sample size).
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.run(id, |b| routine(b));
    }

    fn matches(&self, full_id: &str) -> bool {
        match &self.filter {
            Some(f) => full_id.contains(f.as_str()),
            None => true,
        }
    }
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    parent: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run `routine` once per sample with a shared `input`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut routine: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full_id = format!("{}/{}", self.name, id);
        self.run(&full_id, |b| routine(b, input));
    }

    /// Run an input-less `routine` once per sample.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F)
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = format!("{}/{}", self.name, id);
        self.run(&full_id, |b| routine(b));
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, full_id: &str, mut routine: F) {
        if !self.parent.matches(full_id) {
            return;
        }
        if self.parent.test_mode {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            routine(&mut b);
            println!("test {full_id} ... ok");
            return;
        }
        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            routine(&mut b);
            per_iter.push(b.elapsed);
        }
        per_iter.sort();
        let min = per_iter[0];
        let median = per_iter[per_iter.len() / 2];
        println!(
            "{full_id:<48} min {min:>12.3?}   median {median:>12.3?}   ({} samples)",
            per_iter.len()
        );
    }

    /// End the group (printing is incremental; this is a no-op for API parity).
    pub fn finish(&mut self) {}
}

/// Bundle benchmark functions under one name, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("noop", |b| b.iter(|| black_box(1)));
        group.finish();
    }

    #[test]
    fn harness_runs_benches() {
        let mut c = Criterion {
            filter: None,
            test_mode: false,
        };
        sample_bench(&mut c);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("no_such_bench".into()),
            test_mode: false,
        };
        // Routine would panic if run; the filter must skip it.
        let mut group = c.benchmark_group("g");
        group.bench_function("other", |_b| panic!("should have been filtered"));
        group.finish();
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("rd", 1024).to_string(), "rd/1024");
        assert_eq!(BenchmarkId::from_parameter(4096).to_string(), "4096");
    }
}
