//! No-op derive macros standing in for `serde_derive` in offline builds.
//!
//! The workspace annotates model types with `#[derive(Serialize,
//! Deserialize)]` so they stay serde-ready, but nothing in-tree actually
//! serializes (there is no serde_json / bincode dependency). These derives
//! therefore expand to nothing: the attribute parses, no impls are emitted,
//! and no code can depend on the absent impls without failing to compile —
//! which is exactly the guard we want until a real serializer is needed.

use proc_macro::TokenStream;

/// Accept and discard a `#[derive(Serialize)]` request.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accept and discard a `#[derive(Deserialize)]` request.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
