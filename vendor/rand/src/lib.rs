//! Offline, API-compatible subset of the `rand` crate (0.8 surface).
//!
//! The workspace builds in environments with no crates.io access, so the
//! pieces of `rand` it actually uses are reimplemented here on a
//! xoshiro256\*\* core seeded by SplitMix64. The subset is deliberately
//! small: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over half-open integer ranges, and
//! [`seq::SliceRandom::shuffle`]/[`seq::SliceRandom::choose`].
//!
//! The stream is deterministic per seed (all the workspace needs — mapping
//! heuristics only require reproducible tie-breaking) but is **not** the
//! same stream as upstream `rand`'s ChaCha-based `StdRng`.

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 expansion, the same
    /// scheme upstream `rand` documents for `seed_from_u64`).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `gen_range` accepts as its sampling domain.
pub trait SampleRange<T> {
    /// Draw one uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end - self.start) as u64;
                // One 64-bit draw per sample; modulo bias is < width / 2^64.
                self.start + (rng.next_u64() % width) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi - lo) as u64 + 1;
                if width == 0 {
                    // Full-domain u64 range.
                    return lo + (rng.next_u64() as $t);
                }
                lo + (rng.next_u64() % width) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value from `range` (half-open or inclusive integer range).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Uniform `bool` with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator standing in for `rand::rngs::StdRng`
    /// (xoshiro256\*\* core, SplitMix64 seeding).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extension methods (`shuffle`, `choose`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
    }

    #[test]
    fn seeds_give_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20usize);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5..=5u32);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice in order (astronomically unlikely)"
        );
    }

    #[test]
    fn choose_from_slice() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = [1, 2, 3];
        assert!(v.choose(&mut rng).is_some());
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
