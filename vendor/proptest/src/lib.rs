//! Offline mini property-testing engine, API-compatible with the subset of
//! [proptest](https://docs.rs/proptest) this workspace uses.
//!
//! Differences from the real crate, by design:
//!
//! * **Deterministic**: case `i` of every test draws from a fixed stream, so
//!   CI failures reproduce locally without persisted regression files.
//! * **No shrinking**: a failing case reports its index and the assertion
//!   message; rerunning is cheap because generation is deterministic.
//! * Strategies are closed over a concrete `TestRng` instead of the
//!   `ValueTree` machinery.
//!
//! Supported surface: the [`proptest!`] macro (with optional
//! `#![proptest_config(...)]`), [`prop_assert!`], [`prop_assert_eq!`],
//! [`prop_assert_ne!`], [`prop_assume!`], integer range strategies,
//! [`any`], [`Just`], [`Strategy::prop_map`], `prop::sample::select` and
//! `prop::collection::vec`.

/// Outcome of one generated test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case did not satisfy a `prop_assume!`; it is skipped.
    Reject,
    /// An assertion failed with the given message.
    Fail(String),
}

/// Runner configuration (`cases` = number of generated cases per test).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to generate and run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

pub mod test_runner {
    /// Deterministic xoshiro256\*\* stream for one test case.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// Stream for case number `case` (fixed global salt).
        pub fn for_case(case: u32) -> Self {
            let mut sm = 0x5EED_0000_0000_0000u64 ^ (u64::from(case).wrapping_mul(0x9E37_79B9));
            TestRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }
}

use test_runner::TestRng;

/// A generator of values for one test argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end - self.start) as u64;
                self.start + rng.below(width) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi - lo) as u64 + 1;
                if width == 0 {
                    return lo + rng.next_u64() as $t;
                }
                lo + rng.below(width) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

/// Always-`value` strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Full-domain generation for primitive types.
pub trait Arbitrary {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy generating any value of `T` (see [`Arbitrary`]).
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

pub mod sample {
    use super::{Strategy, TestRng};

    /// Uniform choice among a fixed set of values.
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    /// Strategy drawing uniformly from `items`.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select() needs at least one item");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len() as u64) as usize].clone()
        }
    }
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// `Vec` of `element`-generated values with length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.gen_value(rng);
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// Assert inside a proptest body; failure reports the case and message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)*)),
            ));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n {}",
                stringify!($left), stringify!($right), l, r, format!($($fmt)*)
            )));
        }
    }};
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Skip cases that do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(case);
                $(let $arg = $crate::Strategy::gen_value(&($strat), &mut rng);)*
                let result: ::core::result::Result<(), $crate::TestCaseError> = (move || {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match result {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Reject) => continue,
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest case #{case} failed: {msg}")
                    }
                }
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

/// Declare property tests: each `fn name(arg in strategy, ...)` body runs
/// once per generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

pub mod prelude {
    /// Crate alias so `prop::sample::select` / `prop::collection::vec` work.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(a in 3usize..17, b in any::<u32>()) {
            prop_assert!((3..17).contains(&a));
            let _ = b;
        }

        #[test]
        fn map_applies(v in (1u32..5).prop_map(|x| x * 10)) {
            prop_assert!((10..50).contains(&v) && v % 10 == 0, "v = {}", v);
        }

        #[test]
        fn select_draws_members(x in prop::sample::select(vec![2u8, 4, 8])) {
            prop_assert!(x == 2 || x == 4 || x == 8);
        }

        #[test]
        fn assume_rejects(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn vecs_have_sampled_len(v in prop::collection::vec(0u8..255, 2usize..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::for_case(3);
        let mut b = crate::test_runner::TestRng::for_case(3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
