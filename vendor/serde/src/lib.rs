//! Offline facade for the `serde` API surface this workspace uses.
//!
//! Model types across the workspace carry `#[derive(Serialize,
//! Deserialize)]` markers; no in-tree code serializes anything (there is no
//! serde_json/bincode dependency to drive the traits). This facade provides
//! the trait *names* so `use serde::{Deserialize, Serialize}` resolves, and
//! re-exports no-op derive macros under the same names so the derive
//! attributes parse. Swapping back to real serde is a one-line change in the
//! workspace manifest.

/// Marker trait mirroring `serde::Serialize` (no methods in the facade).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the facade).
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
