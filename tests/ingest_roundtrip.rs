//! Differential ingestion tests: a synthetic GPC cluster rendered to the
//! real tool formats (hwloc XML + `ibnetdiscover`) and re-ingested must be
//! *bit-identical* to the original — same cluster, same distance oracle
//! outputs, same mappings from every heuristic — and the golden fixtures
//! under `tests/fixtures/` must match the renderers byte-for-byte so
//! neither can drift alone. The irregular path gets the same end-to-end
//! treatment: a miswired fabric flows through classification, `Session`
//! (implicit backend) and netsim contention pricing at 4096 ranks.

use rand::Rng;
use rand::SeedableRng;
use tarr::core::{Scheme, Session, SessionConfig};
use tarr::ingest::{
    classify, ingest_cluster, parse_hwloc, parse_ibnet, render_hwloc_xml, render_ibnetdiscover,
    ClassifiedFabric, ClusterSnapshot, IbPeer,
};
use tarr::mapping::{bbmh, bgmh, bkmh, rdmh, rmh, InitialMapping, OrderFix};
use tarr::topo::{
    Cluster, DistanceConfig, DistanceMatrix, DistanceOracle, Fabric, ImplicitDistance,
    IrregularFabric, NodeTopology,
};

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// The checked-in golden fixtures are exactly what the renderers emit for
/// GPC(64). Regenerate with `cargo run --example ingest_fixtures` after any
/// deliberate renderer change.
#[test]
fn golden_fixtures_match_the_renderer() {
    let gpc = Cluster::gpc(64);
    assert_eq!(
        fixture("gpc_node.xml"),
        render_hwloc_xml(gpc.node_topology())
    );
    assert_eq!(fixture("gpc_ib.txt"), render_ibnetdiscover(&gpc).unwrap());
}

#[test]
fn ingested_fixtures_reproduce_the_synthetic_cluster() {
    let ingested = ingest_cluster(&fixture("gpc_node.xml"), &fixture("gpc_ib.txt")).unwrap();
    assert_eq!(ingested.cluster, Cluster::gpc(64));
    assert!(ingested.warnings.is_empty(), "{:?}", ingested.warnings);
}

/// Acceptance: identical oracle outputs and bit-identical mappings from all
/// five heuristics at P = 512 on the ingested vs the synthetic cluster.
#[test]
fn all_five_heuristics_are_bit_identical_at_p512() {
    let synthetic = Cluster::gpc(64);
    let ingested = ingest_cluster(&fixture("gpc_node.xml"), &fixture("gpc_ib.txt"))
        .unwrap()
        .cluster;
    let p = 512;
    let cfg = DistanceConfig::default();
    let cores_a = InitialMapping::CYCLIC_BUNCH.layout(&synthetic, p);
    let cores_b = InitialMapping::CYCLIC_BUNCH.layout(&ingested, p);
    assert_eq!(cores_a, cores_b);

    let da = DistanceMatrix::build(&synthetic, &cores_a, &cfg);
    let db = DistanceMatrix::build(&ingested, &cores_b, &cfg);
    let ia = ImplicitDistance::build(&synthetic, &cores_a, &cfg);
    let ib = ImplicitDistance::build(&ingested, &cores_b, &cfg);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xd1f);
    for _ in 0..512 {
        let (i, j) = (rng.gen_range(0..p), rng.gen_range(0..p));
        assert_eq!(da.distance(i, j), db.distance(i, j), "dense ({i},{j})");
        assert_eq!(ia.distance(i, j), ib.distance(i, j), "implicit ({i},{j})");
    }

    let seed = 42;
    assert_eq!(rdmh(&da, seed), rdmh(&db, seed), "rdmh diverged");
    assert_eq!(rmh(&da, seed), rmh(&db, seed), "rmh diverged");
    assert_eq!(bbmh(&da, seed), bbmh(&db, seed), "bbmh diverged");
    assert_eq!(bgmh(&da, seed), bgmh(&db, seed), "bgmh diverged");
    assert_eq!(bkmh(&da, seed), bkmh(&db, seed), "bkmh diverged");
}

#[test]
fn session_from_snapshot_matches_synthetic_session() {
    let text = ClusterSnapshot::from_cluster(&Cluster::gpc(64)).to_text();
    let mut a = Session::from_snapshot_text(
        &text,
        InitialMapping::CYCLIC_BUNCH,
        None,
        SessionConfig::default(),
    )
    .unwrap();
    let mut b = Session::from_layout(
        Cluster::gpc(64),
        InitialMapping::CYCLIC_BUNCH,
        512,
        SessionConfig::default(),
    );
    assert_eq!(a.size(), 512);
    for scheme in [Scheme::Default, Scheme::hrstc(OrderFix::InitComm)] {
        assert_eq!(
            a.allgather_time(65536, scheme),
            b.allgather_time(65536, scheme)
        );
    }
}

#[test]
fn degraded_xml_flattens_to_one_socket_with_warnings() {
    let (node, warnings) = parse_hwloc(&fixture("degraded_node.xml")).unwrap();
    assert_eq!(node.sockets, 1);
    assert_eq!(node.cores_per_socket, 4);
    assert_eq!(node.cores_per_l2, 2);
    assert_eq!(node.smt, 1);
    assert!(
        warnings.iter().any(|w| w.contains("Package")),
        "{warnings:?}"
    );
}

#[test]
fn twolevel_dump_is_a_degenerate_fattree() {
    let cls = classify(&parse_ibnet(&fixture("twolevel_ib.txt")).unwrap()).unwrap();
    match cls.fabric {
        ClassifiedFabric::FatTree(cfg) => {
            assert_eq!(cfg.nodes_per_leaf, 2);
            assert_eq!(cfg.core_switches, 1);
            assert_eq!(cfg.lines_per_core, 1);
            assert_eq!(cfg.spines_per_core, 1);
        }
        other => panic!("expected a degenerate fat-tree, got {other:?}"),
    }
}

#[test]
fn miswired_dump_runs_end_to_end_as_irregular() {
    let ingested = ingest_cluster(
        &render_hwloc_xml(&NodeTopology::gpc()),
        &fixture("miswired_ib.txt"),
    )
    .unwrap();
    assert!(
        matches!(ingested.cluster.fabric(), Fabric::Irregular(_)),
        "expected irregular fabric"
    );
    assert!(!ingested.warnings.is_empty());

    // Snapshot roundtrip preserves the irregular cluster exactly.
    let snap = ClusterSnapshot::from_cluster(&ingested.cluster);
    let re = ClusterSnapshot::parse(&snap.to_text()).unwrap();
    assert_eq!(re.to_cluster().unwrap(), ingested.cluster);

    let p = ingested.cluster.total_cores();
    let mut s = Session::from_layout(
        ingested.cluster,
        InitialMapping::CYCLIC_BUNCH,
        p,
        SessionConfig::default(),
    );
    for scheme in [Scheme::Default, Scheme::hrstc(OrderFix::InitComm)] {
        s.verify_allgather(4096, scheme).unwrap();
        let t = s.allgather_time(4096, scheme);
        assert!(t.is_finite() && t > 0.0);
    }
    let traffic = s.allgather_traffic(4096, Scheme::Default);
    assert!(traffic.cross_leaf > 0, "no cross-switch bytes: {traffic:?}");
}

/// Acceptance: `Fabric::Irregular` end-to-end through `Session` (implicit
/// backend) at 4096 ranks, with netsim contention pricing over the interned
/// irregular switch-link hops.
#[test]
fn irregular_fabric_at_4096_ranks_through_implicit_session() {
    // Render the 512-node GPC fabric, then add a symmetric leaf-leaf
    // shortcut so classification falls back to the irregular path.
    let gpc = Cluster::gpc(512);
    let mut graph = parse_ibnet(&render_ibnetdiscover(&gpc).unwrap()).unwrap();
    let leaf = |g: &tarr::ingest::IbGraph, name: &str| {
        g.switches.iter().position(|s| s.name == name).unwrap()
    };
    let (a, b) = (leaf(&graph, "leaf-0000"), leaf(&graph, "leaf-0001"));
    let pa = graph.switches[a]
        .ports
        .iter()
        .map(|&(p, _)| p)
        .max()
        .unwrap()
        + 1;
    let pb = graph.switches[b]
        .ports
        .iter()
        .map(|&(p, _)| p)
        .max()
        .unwrap()
        + 1;
    let (ga, gb) = (
        graph.switches[a].guid.clone(),
        graph.switches[b].guid.clone(),
    );
    graph.switches[a]
        .ports
        .push((pa, IbPeer { guid: gb, port: pb }));
    graph.switches[b]
        .ports
        .push((pb, IbPeer { guid: ga, port: pa }));

    let cls = classify(&graph).unwrap();
    assert!(!cls.warnings.is_empty());
    let cfg = match cls.fabric {
        ClassifiedFabric::Irregular(cfg) => cfg,
        other => panic!("expected irregular, got {other:?}"),
    };
    let cluster = Cluster::from_parts(
        NodeTopology::gpc(),
        Fabric::Irregular(IrregularFabric::new(cfg).unwrap()),
        cls.num_nodes,
    )
    .unwrap();
    assert_eq!(cluster.total_cores(), 4096);

    let mut s = Session::from_layout(
        cluster,
        InitialMapping::CYCLIC_BUNCH,
        4096,
        SessionConfig::implicit(),
    );
    for scheme in [Scheme::Default, Scheme::hrstc(OrderFix::InitComm)] {
        let rd = s.allgather_time(512, scheme); // recursive-doubling region
        let ring = s.allgather_time(65536, scheme); // ring region
        assert!(rd.is_finite() && rd > 0.0);
        assert!(ring.is_finite() && ring > 0.0);
    }
    let traffic = s.allgather_traffic(512, Scheme::Default);
    assert!(traffic.cross_leaf > 0, "no cross-switch bytes: {traffic:?}");
}
