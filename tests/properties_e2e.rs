//! End-to-end property tests: for *arbitrary* core bindings (not just the
//! four standard layouts), every scheme must produce a functionally correct,
//! order-preserving allgather, and the asynchronous fluid executor must agree
//! with the analytic model to within a factor bound.

use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use tarr::core::{Mapper, Scheme, Session, SessionConfig};
use tarr::mapping::{InitialMapping, OrderFix};
use tarr::mpi::{time_schedule, time_schedule_async};
use tarr::netsim::{NetParams, StageModel};
use tarr::topo::{Cluster, CoreId};

fn shuffled_session(nodes: usize, seed: u64) -> Session {
    let cluster = Cluster::gpc(nodes);
    let mut cores: Vec<CoreId> = cluster.cores().collect();
    cores.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
    Session::new(cluster, cores, SessionConfig::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random bindings: all schemes verify, all timings positive/finite.
    #[test]
    fn random_bindings_all_schemes_correct(ln in 0usize..4, seed in any::<u64>(), msg in 1u64..100_000) {
        let mut s = shuffled_session(1 << ln, seed);
        for scheme in [
            Scheme::Default,
            Scheme::hrstc(OrderFix::InitComm),
            Scheme::hrstc(OrderFix::EndShuffle),
            Scheme::Reordered { mapper: Mapper::ScotchTuned, fix: OrderFix::InitComm },
        ] {
            prop_assert!(s.verify_allgather(msg, scheme).is_ok());
            let t = s.allgather_time(msg, scheme);
            prop_assert!(t.is_finite() && t > 0.0);
        }
    }

    /// Reordering never makes the ring slower than the default by more than
    /// rounding, for any random binding (the heuristic either helps or
    /// leaves it alone — ring has no fix overhead).
    #[test]
    fn ring_reordering_never_hurts_random_bindings(ln in 1usize..4, seed in any::<u64>()) {
        let mut s = shuffled_session(1 << ln, seed);
        let before = s.allgather_time(65536, Scheme::Default);
        let after = s.allgather_time(65536, Scheme::hrstc(OrderFix::InitComm));
        prop_assert!(after <= before * 1.0001, "before {} after {}", before, after);
    }

    /// The async fluid executor and the analytic stage model agree within a
    /// factor of 2 on real collective schedules (same contention physics;
    /// async can only be faster by overlap, slower never by more than the
    /// barrier slack).
    #[test]
    fn fluid_and_analytic_agree_on_collectives(ln in 0usize..3, msg in 64u64..65536) {
        let cluster = Cluster::gpc(1 << ln);
        let p = cluster.total_cores() as u32;
        let comm = tarr::mpi::Communicator::new(cluster.cores().collect());
        let params = NetParams::default();
        let model = StageModel::new(&cluster, params.clone());
        for sched in [
            tarr::collectives::allgather::recursive_doubling(p),
            tarr::collectives::allgather::ring(p),
        ] {
            let sync = time_schedule(&sched, &comm, &model, msg);
            let asyn = time_schedule_async(&sched, &comm, &cluster, &params, msg);
            prop_assert!(asyn <= sync * 1.0001, "async {} sync {}", asyn, sync);
            prop_assert!(asyn >= sync * 0.5, "async {} sync {}", asyn, sync);
        }
    }

    /// Standard layouts are bijections onto the allocated cores and the
    /// session accepts them at any node count.
    #[test]
    fn layouts_always_valid(nodes in 1usize..20, which in 0usize..4) {
        let layout = InitialMapping::ALL[which];
        let cluster = Cluster::gpc(nodes);
        let p = cluster.total_cores();
        let cores = layout.layout(&cluster, p);
        let mut ids: Vec<u32> = cores.iter().map(|c| c.0).collect();
        ids.sort_unstable();
        prop_assert!(ids.windows(2).all(|w| w[0] + 1 == w[1]));
    }
}
