//! Cross-crate integration: cluster model → initial layout → distance matrix
//! → mapping heuristic → reordered communicator → collective schedule →
//! functional verification + network timing, through the public facade.

use tarr::collectives::allgather::{HierarchicalConfig, InterAlg, IntraPattern};
use tarr::core::{Mapper, PatternKind, Scheme, Session, SessionConfig};
use tarr::mapping::{InitialMapping, OrderFix};
use tarr::topo::Cluster;

fn session(layout: InitialMapping, nodes: usize) -> Session {
    let cluster = Cluster::gpc(nodes);
    let p = cluster.total_cores();
    Session::from_layout(cluster, layout, p, SessionConfig::default())
}

#[test]
fn every_scheme_times_and_verifies_on_every_layout() {
    for layout in InitialMapping::ALL {
        let mut s = session(layout, 4);
        for msg in [16u64, 512, 4096, 65536] {
            // Timing is positive and finite for all schemes.
            let base = s.allgather_time(msg, Scheme::Default);
            assert!(base.is_finite() && base > 0.0);
            for fix in [OrderFix::InitComm, OrderFix::EndShuffle] {
                for mapper in [Mapper::Hrstc, Mapper::ScotchLike, Mapper::ScotchTuned] {
                    let t = s.allgather_time(msg, Scheme::Reordered { mapper, fix });
                    assert!(t.is_finite() && t > 0.0, "{layout:?} {mapper:?} {fix:?}");
                    // And the data actually arrives in order.
                    s.verify_allgather(msg, Scheme::Reordered { mapper, fix })
                        .unwrap_or_else(|e| panic!("{mapper:?}/{fix:?}/{msg}: {e}"));
                }
            }
        }
    }
}

#[test]
fn hierarchical_supported_only_for_block_layouts() {
    let hcfg = HierarchicalConfig {
        intra: IntraPattern::Binomial,
        inter: InterAlg::Ring,
    };
    for layout in [InitialMapping::BLOCK_BUNCH, InitialMapping::BLOCK_SCATTER] {
        let mut s = session(layout, 4);
        assert!(s
            .hierarchical_allgather_time(4096, hcfg, Scheme::Default)
            .is_some());
    }
    for layout in [InitialMapping::CYCLIC_BUNCH, InitialMapping::CYCLIC_SCATTER] {
        let mut s = session(layout, 4);
        assert!(s
            .hierarchical_allgather_time(4096, hcfg, Scheme::Default)
            .is_none());
    }
}

#[test]
fn hierarchical_all_phase_combinations_verify() {
    for layout in [InitialMapping::BLOCK_BUNCH, InitialMapping::BLOCK_SCATTER] {
        let mut s = session(layout, 4);
        for intra in [IntraPattern::Linear, IntraPattern::Binomial] {
            for inter in [InterAlg::RecursiveDoubling, InterAlg::Ring] {
                let hcfg = HierarchicalConfig { intra, inter };
                for scheme in [
                    Scheme::Default,
                    Scheme::hrstc(OrderFix::InitComm),
                    Scheme::hrstc(OrderFix::EndShuffle),
                    Scheme::scotch(OrderFix::InitComm),
                ] {
                    s.verify_hierarchical_allgather(hcfg, scheme)
                        .expect("supported")
                        .unwrap_or_else(|e| {
                            panic!("{layout:?} {intra:?} {inter:?} {scheme:?}: {e}")
                        });
                }
            }
        }
    }
}

#[test]
fn mappings_cached_once_per_pattern() {
    let mut s = session(InitialMapping::BLOCK_BUNCH, 2);
    let a = s.mapping(Mapper::Hrstc, PatternKind::Rd).mapping.clone();
    // Trigger through the timing API too; must reuse the same mapping.
    let _ = s.allgather_time(64, Scheme::hrstc(OrderFix::InitComm));
    let b = s.mapping(Mapper::Hrstc, PatternKind::Rd).mapping.clone();
    assert_eq!(a, b);
}

#[test]
fn non_power_of_two_jobs_fall_back_to_bruck() {
    // 3 nodes = 24 ranks (not a power of two): the small-message algorithm
    // must be Bruck and remain correct under reordering.
    let mut s = session(InitialMapping::CYCLIC_BUNCH, 3);
    assert_eq!(s.size(), 24);
    s.verify_allgather(64, Scheme::Default).unwrap();
    s.verify_allgather(64, Scheme::hrstc(OrderFix::InitComm))
        .unwrap();
    s.verify_allgather(64, Scheme::hrstc(OrderFix::EndShuffle))
        .unwrap();
    let t = s.allgather_time(64, Scheme::hrstc(OrderFix::InitComm));
    assert!(t > 0.0);
}

#[test]
fn facade_reexports_are_usable() {
    // Touch one item from each re-exported crate through the facade.
    let cluster: tarr::topo::Cluster = Cluster::gpc(1);
    let params = tarr::netsim::NetParams::default();
    let model = tarr::netsim::StageModel::new(&cluster, params);
    let msg = tarr::netsim::Message::new(tarr::topo::CoreId(0), tarr::topo::CoreId(1), 64);
    assert!(model.stage_time(&[msg]) > 0.0);
    let sched = tarr::collectives::allgather::ring(8);
    assert_eq!(sched.stages.len(), 7);
    assert!(tarr::mapping::is_permutation(&[1, 0, 2]));
    let sys = tarr::workloads::NBodySystem::new(4, 1);
    assert_eq!(sys.len(), 4);
}
