//! Regression tests pinning the *shapes* of the paper's results at a reduced
//! scale (512 processes): who wins, roughly by what factor, and where the
//! crossovers fall. These are the claims EXPERIMENTS.md records; if a model
//! change breaks one of them, the reproduction has drifted.

use tarr::collectives::allgather::{HierarchicalConfig, InterAlg, IntraPattern};
use tarr::core::{Scheme, Session, SessionConfig};
use tarr::mapping::{InitialMapping, OrderFix};
use tarr::topo::Cluster;
use tarr::workloads::{percent_improvement, AppConfig};

const PROCS: usize = 512;

fn session(layout: InitialMapping) -> Session {
    Session::from_layout(
        Cluster::gpc(PROCS / 8),
        layout,
        PROCS,
        SessionConfig::default(),
    )
}

/// Fig. 3(a): block-bunch — RDMH gains rise with message size below the
/// 1 KiB switch; the ring region shows no change (the layout is already
/// ideal) and, crucially, **no degradation** (the paper's goal 2).
#[test]
fn fig3a_block_bunch_shape() {
    let mut s = session(InitialMapping::BLOCK_BUNCH);
    let imp = |s: &mut Session, m: u64| {
        let b = s.allgather_time(m, Scheme::Default);
        percent_improvement(b, s.allgather_time(m, Scheme::hrstc(OrderFix::InitComm)))
    };
    let small = imp(&mut s, 16);
    let mid = imp(&mut s, 512);
    assert!(mid > small, "gain must rise with size in the RD region");
    assert!(mid > 50.0, "large RD-region gains, got {mid:.1}%");
    for m in [2048u64, 65536, 262144] {
        let v = imp(&mut s, m);
        assert!(
            v.abs() < 1.0,
            "ring region must be ~0% on block-bunch, got {v:.1}% at {m}"
        );
    }
}

/// Fig. 3(b): block-scatter — the ring region gains a modest amount (the
/// intra-node scatter hurts the ring).
#[test]
fn fig3b_block_scatter_ring_gains() {
    let mut s = session(InitialMapping::BLOCK_SCATTER);
    for m in [4096u64, 65536] {
        let b = s.allgather_time(m, Scheme::Default);
        let v = percent_improvement(b, s.allgather_time(m, Scheme::hrstc(OrderFix::InitComm)));
        assert!(
            (5.0..70.0).contains(&v),
            "expected modest ring gains, got {v:.1}% at {m}"
        );
    }
}

/// Fig. 3(c)/(d): cyclic layouts — big ring-region gains (paper: up to 78%),
/// and *smaller* RD-region gains than block-bunch (cyclic is RD-friendlier,
/// the paper's observation that "a poor initial mapping for one algorithm
/// can be relatively better for another").
#[test]
fn fig3cd_cyclic_shape() {
    let mut cyc = session(InitialMapping::CYCLIC_BUNCH);
    let b = cyc.allgather_time(262144, Scheme::Default);
    let ring_gain = percent_improvement(
        b,
        cyc.allgather_time(262144, Scheme::hrstc(OrderFix::InitComm)),
    );
    assert!(
        ring_gain > 60.0,
        "cyclic ring gains must be large, got {ring_gain:.1}%"
    );

    let rd_gain_cyclic = {
        let b = cyc.allgather_time(512, Scheme::Default);
        percent_improvement(
            b,
            cyc.allgather_time(512, Scheme::hrstc(OrderFix::InitComm)),
        )
    };
    let mut blk = session(InitialMapping::BLOCK_BUNCH);
    let rd_gain_block = {
        let b = blk.allgather_time(512, Scheme::Default);
        percent_improvement(
            b,
            blk.allgather_time(512, Scheme::hrstc(OrderFix::InitComm)),
        )
    };
    assert!(
        rd_gain_cyclic < rd_gain_block,
        "cyclic starts closer to RD-ideal: {rd_gain_cyclic:.1}% vs {rd_gain_block:.1}%"
    );
}

/// initComm outperforms endShfl (the paper's microbenchmark conclusion that
/// led it to use initComm at application level).
#[test]
fn initcomm_beats_endshfl_in_rd_region() {
    let mut s = session(InitialMapping::BLOCK_BUNCH);
    for m in [64u64, 512] {
        let ic = s.allgather_time(m, Scheme::hrstc(OrderFix::InitComm));
        let es = s.allgather_time(m, Scheme::hrstc(OrderFix::EndShuffle));
        assert!(ic <= es, "initComm {ic} must beat endShfl {es} at {m} B");
    }
}

/// The heuristics beat the Scotch baseline everywhere the paper compares
/// them, and Scotch degrades the block-bunch ring (its headline failure).
#[test]
fn heuristics_dominate_scotch() {
    for layout in InitialMapping::ALL {
        let mut s = session(layout);
        for m in [512u64, 65536] {
            let h = s.allgather_time(m, Scheme::hrstc(OrderFix::InitComm));
            let sc = s.allgather_time(m, Scheme::scotch(OrderFix::InitComm));
            assert!(
                h <= sc * 1.0001,
                "{} at {m} B: hrstc {h} vs scotch {sc}",
                layout.name()
            );
        }
    }
    let mut s = session(InitialMapping::BLOCK_BUNCH);
    let b = s.allgather_time(65536, Scheme::Default);
    let sc = s.allgather_time(65536, Scheme::scotch(OrderFix::InitComm));
    assert!(sc > b, "Scotch must degrade the block-bunch ring");
}

/// Fig. 4(b): hierarchical non-linear on block-scatter gains in the ring
/// regime (intra-node phases are repaired); Fig. 4(a): block-bunch shows
/// little movement there.
#[test]
fn fig4_hierarchical_shape() {
    let hcfg = HierarchicalConfig {
        intra: IntraPattern::Binomial,
        inter: InterAlg::Ring,
    };
    let mut scat = session(InitialMapping::BLOCK_SCATTER);
    let b = scat
        .hierarchical_allgather_time(16384, hcfg, Scheme::Default)
        .unwrap();
    let r = scat
        .hierarchical_allgather_time(16384, hcfg, Scheme::hrstc(OrderFix::InitComm))
        .unwrap();
    let gain = percent_improvement(b, r);
    assert!(gain > 15.0, "block-scatter NL gains, got {gain:.1}%");

    let mut bunch = session(InitialMapping::BLOCK_BUNCH);
    let b = bunch
        .hierarchical_allgather_time(16384, hcfg, Scheme::Default)
        .unwrap();
    let r = bunch
        .hierarchical_allgather_time(16384, hcfg, Scheme::hrstc(OrderFix::InitComm))
        .unwrap();
    let drift = percent_improvement(b, r);
    assert!(
        drift.abs() < 10.0,
        "block-bunch NL should barely move, got {drift:.1}%"
    );
}

/// Fig. 4(c)/(d): with linear intra phases there is no intra-node structure
/// to exploit; the ring regime shows no improvement.
#[test]
fn fig4_linear_intra_no_ring_gains() {
    let hcfg = HierarchicalConfig {
        intra: IntraPattern::Linear,
        inter: InterAlg::Ring,
    };
    for layout in [InitialMapping::BLOCK_BUNCH, InitialMapping::BLOCK_SCATTER] {
        let mut s = session(layout);
        let b = s
            .hierarchical_allgather_time(65536, hcfg, Scheme::Default)
            .unwrap();
        let r = s
            .hierarchical_allgather_time(65536, hcfg, Scheme::hrstc(OrderFix::InitComm))
            .unwrap();
        let v = percent_improvement(b, r);
        assert!(
            v < 5.0,
            "{}: linear intra ring gains should vanish, got {v:.1}%",
            layout.name()
        );
    }
}

/// Fig. 5: application — block-bunch unchanged; cyclic layouts improve
/// substantially; Scotch never helps and hurts block-bunch.
#[test]
fn fig5_application_shape() {
    let app = AppConfig::default();
    let norm = |layout: InitialMapping, scheme: Scheme| -> f64 {
        let mut s = session(layout);
        let b = app.simulate(&mut s, Scheme::Default);
        let r = app.simulate(&mut s, scheme);
        r.total / b.total
    };
    let hr = Scheme::hrstc(OrderFix::InitComm);
    let sc = Scheme::scotch(OrderFix::InitComm);

    assert!((norm(InitialMapping::BLOCK_BUNCH, hr) - 1.0).abs() < 0.01);
    assert!(norm(InitialMapping::CYCLIC_BUNCH, hr) < 0.9);
    assert!(norm(InitialMapping::CYCLIC_SCATTER, hr) < 0.9);
    assert!(norm(InitialMapping::BLOCK_BUNCH, sc) > 1.0);
}

/// Fig. 7(b): the heuristics are at least an order of magnitude cheaper to
/// compute than the Scotch-like mapper (which also pays a graph build).
#[test]
fn fig7b_overhead_ordering() {
    use std::time::Instant;
    let mut s = session(InitialMapping::BLOCK_BUNCH);
    let d = s.distance_matrix().clone();
    let t0 = Instant::now();
    let _ = tarr::mapping::rmh(&d, 0);
    let heuristic = t0.elapsed();
    let info = s
        .mapping(
            tarr::core::Mapper::ScotchLike,
            tarr::core::PatternKind::Ring,
        )
        .clone();
    let scotch = info.compute + info.graph_build;
    // Unoptimized builds distort constant factors; only enforce the full
    // order-of-magnitude gap in release.
    let factor = if cfg!(debug_assertions) { 1 } else { 5 };
    assert!(
        scotch > factor * heuristic,
        "scotch {scotch:?} should dwarf heuristic {heuristic:?}"
    );
}
