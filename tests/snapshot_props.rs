//! Property tests for the `ClusterSnapshot` text format: serialization is
//! stable under a parse roundtrip (serialize → deserialize → serialize is
//! byte-identical) for every fabric kind, and a cluster rebuilt from a
//! roundtripped snapshot produces exactly the same distance-oracle outputs
//! as the original on sampled core pairs.

use proptest::prelude::*;
use tarr::ingest::{ClusterSnapshot, FabricSpec};
use tarr::mapping::InitialMapping;
use tarr::topo::{
    Cluster, DistanceConfig, DistanceOracle, Fabric, FatTree, FatTreeConfig, ImplicitDistance,
    IrregularConfig, IrregularFabric, NodeTopology,
};

/// Small deterministic generator for derived choices inside a case.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self, bound: usize) -> usize {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.0 >> 33) as usize) % bound.max(1)
    }
}

fn arb_node(sockets: usize, cps: usize, smt: usize, pick: &mut Lcg) -> NodeTopology {
    let divisors: Vec<usize> = (1..=cps).filter(|d| cps.is_multiple_of(*d)).collect();
    NodeTopology {
        sockets,
        cores_per_socket: cps,
        cores_per_l2: divisors[pick.next(divisors.len())],
        smt,
    }
}

/// A connected random switch graph: a spanning path plus a few extra links,
/// with nodes spread over the switches.
fn arb_irregular(nodes: usize, pick: &mut Lcg) -> IrregularConfig {
    let switches = 2 + pick.next(6);
    let mut links: Vec<(u32, u32, u32)> = (1..switches)
        .map(|s| ((s - 1) as u32, s as u32, 1 + pick.next(3) as u32))
        .collect();
    for _ in 0..pick.next(4) {
        let a = pick.next(switches) as u32;
        let b = pick.next(switches) as u32;
        if a != b {
            links.push((a, b, 1 + pick.next(2) as u32));
        }
    }
    IrregularConfig {
        switches,
        node_switch: (0..nodes).map(|_| pick.next(switches) as u32).collect(),
        links,
    }
}

fn roundtrip_and_compare(snap: &ClusterSnapshot, seed: u64) -> Result<(), TestCaseError> {
    let text = snap.to_text();
    let re = ClusterSnapshot::parse(&text).expect("canonical text must reparse");
    // Stability: serialize → deserialize → serialize is byte-identical.
    prop_assert_eq!(re.to_text(), text);

    let original = snap.to_cluster().expect("generated snapshot is valid");
    let rebuilt = re.to_cluster().expect("roundtripped snapshot is valid");
    prop_assert_eq!(&rebuilt, &original);

    // Equal oracle outputs on sampled pairs of an identical layout (whole
    // nodes, capped around 64 processes to keep cases cheap).
    let cpn = original.cores_per_node();
    let p = cpn * original.num_nodes().min((64 / cpn).max(1));
    let cfg = DistanceConfig::default();
    let cores_a = InitialMapping::CYCLIC_BUNCH.layout(&original, p);
    let cores_b = InitialMapping::CYCLIC_BUNCH.layout(&rebuilt, p);
    let oa = ImplicitDistance::build(&original, &cores_a, &cfg);
    let ob = ImplicitDistance::build(&rebuilt, &cores_b, &cfg);
    let mut pick = Lcg(seed | 1);
    for _ in 0..64 {
        let (i, j) = (pick.next(p), pick.next(p));
        prop_assert_eq!(oa.distance(i, j), ob.distance(i, j), "pair ({}, {})", i, j);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fattree_snapshots_roundtrip(
        sockets in 1usize..4,
        cps in 1usize..9,
        smt in 1usize..3,
        leaves in 1usize..5,
        seed in any::<u64>(),
    ) {
        let mut pick = Lcg(seed);
        let cfg = FatTreeConfig {
            nodes_per_leaf: 1 + pick.next(6),
            core_switches: 1 + pick.next(2),
            uplinks_per_core: 1 + pick.next(3),
            lines_per_core: 3 + pick.next(4),
            spines_per_core: 1 + pick.next(3),
            line_spine_links: 1 + pick.next(2),
        };
        prop_assume!(cfg.validate().is_ok());
        let node = arb_node(sockets, cps, smt, &mut pick);
        let num_nodes = leaves * cfg.nodes_per_leaf;
        // The generated parts must agree with direct construction.
        let direct = Cluster::from_parts(
            node.clone(),
            Fabric::FatTree(FatTree::new(cfg.clone(), num_nodes)),
            num_nodes,
        ).expect("valid parts");
        let snap = ClusterSnapshot {
            version: 1,
            node,
            fabric: FabricSpec::FatTree(cfg),
            num_nodes,
        };
        prop_assert_eq!(&snap.to_cluster().expect("valid snapshot"), &direct);
        roundtrip_and_compare(&snap, seed)?;
    }

    #[test]
    fn torus_snapshots_roundtrip(
        a in 1usize..4,
        b in 1usize..4,
        c in 1usize..4,
        seed in any::<u64>(),
    ) {
        let mut pick = Lcg(seed);
        let node = arb_node(1 + pick.next(3), 1 + pick.next(8), 1 + pick.next(2), &mut pick);
        let snap = ClusterSnapshot {
            version: 1,
            node,
            fabric: FabricSpec::Torus([a, b, c]),
            num_nodes: a * b * c,
        };
        roundtrip_and_compare(&snap, seed)?;
    }

    #[test]
    fn irregular_snapshots_roundtrip(
        nodes in 1usize..24,
        sockets in 1usize..3,
        cps in 1usize..6,
        seed in any::<u64>(),
    ) {
        let mut pick = Lcg(seed);
        let cfg = arb_irregular(nodes, &mut pick);
        prop_assume!(IrregularFabric::new(cfg.clone()).is_ok());
        let node = arb_node(sockets, cps, 1, &mut pick);
        let snap = ClusterSnapshot {
            version: 1,
            node,
            fabric: FabricSpec::Irregular(cfg),
            num_nodes: nodes,
        };
        roundtrip_and_compare(&snap, seed)?;
    }
}
