//! Fragmented allocations: a busy resource manager hands a job scattered
//! nodes across the fabric. The heuristics need nothing special — the
//! distance matrix reflects the actual positions — and this is where
//! reordering matters even for a *block* layout: consecutive nodes of the
//! allocation may be physically far apart.

use tarr::core::{Scheme, Session, SessionConfig};
use tarr::mapping::{InitialMapping, OrderFix};
use tarr::topo::{Cluster, NodeId};

/// A scattered 32-node allocation on a 512-node GPC: every 16th node, so
/// consecutive allocation entries alternate leaf switches.
fn scattered_session(layout: InitialMapping) -> Session {
    let cluster = Cluster::gpc(512);
    let alloc: Vec<NodeId> = (0..32).map(|i| NodeId::from_idx(i * 16)).collect();
    let cores = layout.layout_on_nodes(&cluster, &alloc);
    Session::new(cluster, cores, SessionConfig::default())
}

#[test]
fn reordering_helps_scattered_block_allocation() {
    // With every 16th node, allocation-consecutive nodes sit on different
    // leaves half the time: even the block layout's leader/ring traffic
    // crosses spines. RMH re-chains by *physical* distance.
    let mut s = scattered_session(InitialMapping::BLOCK_BUNCH);
    let before = s.allgather_time(65536, Scheme::Default);
    let after = s.allgather_time(65536, Scheme::hrstc(OrderFix::InitComm));
    assert!(
        after <= before * 1.0001,
        "scattered block ring: {before} -> {after}"
    );

    // The heavier the initial scatter, the bigger the win: cyclic over the
    // scattered allocation is strictly worse and gains a lot.
    let mut c = scattered_session(InitialMapping::CYCLIC_BUNCH);
    let b2 = c.allgather_time(65536, Scheme::Default);
    let a2 = c.allgather_time(65536, Scheme::hrstc(OrderFix::InitComm));
    assert!(a2 < 0.5 * b2, "scattered cyclic ring: {b2} -> {a2}");
}

#[test]
fn correctness_is_allocation_independent() {
    for layout in InitialMapping::ALL {
        let mut s = scattered_session(layout);
        for msg in [64u64, 4096] {
            s.verify_allgather(msg, Scheme::hrstc(OrderFix::InitComm))
                .unwrap_or_else(|e| panic!("{}/{msg}: {e}", layout.name()));
            s.verify_allgather(msg, Scheme::hrstc(OrderFix::EndShuffle))
                .unwrap_or_else(|e| panic!("{}/{msg}: {e}", layout.name()));
        }
    }
}

#[test]
fn hierarchical_works_on_scattered_allocations() {
    use tarr::collectives::allgather::{HierarchicalConfig, InterAlg, IntraPattern};
    let mut s = scattered_session(InitialMapping::BLOCK_SCATTER);
    let hcfg = HierarchicalConfig {
        intra: IntraPattern::Binomial,
        inter: InterAlg::RecursiveDoubling, // 32 leaders
    };
    s.verify_hierarchical_allgather(hcfg, Scheme::hrstc(OrderFix::InitComm))
        .expect("supported")
        .expect("correct");
    let before = s
        .hierarchical_allgather_time(8192, hcfg, Scheme::Default)
        .unwrap();
    let after = s
        .hierarchical_allgather_time(8192, hcfg, Scheme::hrstc(OrderFix::InitComm))
        .unwrap();
    assert!(after < before, "{before} -> {after}");
}
