//! The heuristics consume only the distance matrix, so they transfer to a
//! completely different fabric without modification: a BlueGene-class 3D
//! torus. These tests pin that generality claim end to end.

use tarr::core::{Scheme, Session, SessionConfig};
use tarr::mapping::{InitialMapping, OrderFix};
use tarr::topo::{Cluster, CoreId, DistanceConfig, NodeTopology, Torus3D};

fn torus_session(dims: [usize; 3], layout: InitialMapping) -> Session {
    let cluster = Cluster::with_torus(NodeTopology::gpc(), dims);
    let p = cluster.total_cores();
    Session::from_layout(cluster, layout, p, SessionConfig::default())
}

#[test]
fn torus_distances_grow_with_hops() {
    let cluster = Cluster::with_torus(NodeTopology::gpc(), [4, 4, 4]);
    let cfg = DistanceConfig::default();
    let t = cluster.fabric().as_torus().unwrap();
    // Pick cores on nodes at hop distances 1, 2, 6 from node 0.
    let d1 = tarr::topo::distance::core_distance(&cluster, &cfg, CoreId(0), CoreId(8));
    let n_far = t.node_at([2, 2, 2]);
    let far_core = cluster.core_id(n_far, 0);
    let d6 = tarr::topo::distance::core_distance(&cluster, &cfg, CoreId(0), far_core);
    assert!(d1 < d6, "1 hop {d1} vs 6 hops {d6}");
    assert_eq!(d6 - d1, 5 * cfg.torus_hop);
}

#[test]
fn ring_reordering_helps_cyclic_on_torus() {
    // 64 nodes × 8 cores = 512 ranks on a 4×4×4 torus, cyclic layout.
    let mut s = torus_session([4, 4, 4], InitialMapping::CYCLIC_BUNCH);
    let msg = 65536u64;
    let before = s.allgather_time(msg, Scheme::Default);
    let after = s.allgather_time(msg, Scheme::hrstc(OrderFix::InitComm));
    assert!(
        after < 0.6 * before,
        "torus cyclic ring should improve a lot: {before} -> {after}"
    );
    // And the output ordering machinery is fabric-independent.
    s.verify_allgather(msg, Scheme::hrstc(OrderFix::InitComm))
        .unwrap();
}

#[test]
fn rd_reordering_helps_block_on_torus() {
    let mut s = torus_session([4, 4, 4], InitialMapping::BLOCK_BUNCH);
    let before = s.allgather_time(512, Scheme::Default);
    let after = s.allgather_time(512, Scheme::hrstc(OrderFix::InitComm));
    assert!(after < before, "torus block RD: {before} -> {after}");
}

#[test]
fn no_degradation_on_torus_block_ring() {
    let mut s = torus_session([4, 2, 2], InitialMapping::BLOCK_BUNCH);
    let before = s.allgather_time(65536, Scheme::Default);
    let after = s.allgather_time(65536, Scheme::hrstc(OrderFix::InitComm));
    assert!(after <= before * 1.0001, "{before} -> {after}");
}

#[test]
fn hierarchical_works_on_torus() {
    use tarr::collectives::allgather::{HierarchicalConfig, InterAlg, IntraPattern};
    let mut s = torus_session([2, 2, 2], InitialMapping::BLOCK_SCATTER);
    let hcfg = HierarchicalConfig {
        intra: IntraPattern::Binomial,
        inter: InterAlg::RecursiveDoubling, // 8 leaders: power of two
    };
    s.verify_hierarchical_allgather(hcfg, Scheme::hrstc(OrderFix::InitComm))
        .expect("supported")
        .expect("correct");
    let before = s
        .hierarchical_allgather_time(16384, hcfg, Scheme::Default)
        .unwrap();
    let after = s
        .hierarchical_allgather_time(16384, hcfg, Scheme::hrstc(OrderFix::InitComm))
        .unwrap();
    assert!(after < before, "{before} -> {after}");
}

#[test]
fn torus_dimension_skew_matters() {
    // An elongated torus (16×2×2) has longer average paths than a balanced
    // one (4×4×4) at equal node count — the mapping problem gets harder and
    // the simulated default ring gets slower under a cyclic layout.
    let balanced = Torus3D::new([4, 4, 4]);
    let skewed = Torus3D::new([16, 2, 2]);
    let avg = |t: &Torus3D| -> f64 {
        let n = t.num_nodes();
        let mut total = 0usize;
        for a in 0..n {
            for b in 0..n {
                total += t.hops(
                    tarr::topo::NodeId::from_idx(a),
                    tarr::topo::NodeId::from_idx(b),
                );
            }
        }
        total as f64 / (n * n) as f64
    };
    assert!(avg(&skewed) > avg(&balanced));
}
