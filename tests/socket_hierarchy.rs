//! Socket-leader hierarchy: the paper's §II notes hierarchical algorithms
//! run "across the nodes/sockets" — the group machinery supports socket-level
//! leaders directly (groups of one socket each), giving a three-tier
//! decomposition without new code.

use tarr::collectives::allgather::{hierarchical, HierarchicalConfig, InterAlg, IntraPattern};
use tarr::mpi::{time_schedule, Communicator, FunctionalState};
use tarr::netsim::{NetParams, StageModel};
use tarr::topo::Cluster;

fn socket_groups(nodes: usize, sockets_per_node: usize, per_socket: u32) -> Vec<(u32, u32)> {
    (0..(nodes * sockets_per_node) as u32)
        .map(|g| (g * per_socket, per_socket))
        .collect()
}

#[test]
fn socket_leader_allgather_is_correct() {
    // 4 nodes × 2 sockets × 4 cores: 8 socket groups of 4 ranks.
    let p = 32u32;
    let groups = socket_groups(4, 2, 4);
    for intra in [IntraPattern::Linear, IntraPattern::Binomial] {
        for inter in [InterAlg::RecursiveDoubling, InterAlg::Ring] {
            let sched = hierarchical(p, &groups, HierarchicalConfig { intra, inter });
            sched.validate().unwrap();
            let mut st = FunctionalState::init_allgather(p as usize);
            st.run(&sched).unwrap();
            st.verify_allgather_identity()
                .unwrap_or_else(|e| panic!("{intra:?}/{inter:?}: {e}"));
        }
    }
}

#[test]
fn socket_leaders_trade_leader_count_for_qpi_traffic() {
    // Socket-leader groups double the leader-exchange participants (two
    // leaders share each HCA at half the message size — a wash on the
    // network) but keep *both* intra phases entirely inside sockets: the
    // full-vector broadcast never touches the QPI link. In the contention
    // model that makes the socket decomposition the better one — the
    // three-tier design Ma et al. (cited in §III) argue for.
    let cluster = Cluster::gpc(8);
    let p = cluster.total_cores() as u32;
    let comm = Communicator::new(cluster.cores().collect());
    let model = StageModel::new(&cluster, NetParams::default());
    let cfg = HierarchicalConfig {
        intra: IntraPattern::Binomial,
        inter: InterAlg::Ring,
    };

    let node_groups: Vec<(u32, u32)> = (0..8u32).map(|n| (n * 8, 8)).collect();
    let sock_groups = socket_groups(8, 2, 4);
    let bytes = 65536u64;
    let t_node = time_schedule(&hierarchical(p, &node_groups, cfg), &comm, &model, bytes);
    let t_sock = time_schedule(&hierarchical(p, &sock_groups, cfg), &comm, &model, bytes);
    assert!(t_node > 0.0 && t_sock > 0.0);
    assert!(
        t_sock < t_node,
        "socket leaders avoid intra-node QPI: node {t_node} socket {t_sock}"
    );
}
