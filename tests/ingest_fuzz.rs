//! Corpus-driven robustness tests for the ingest parsers.
//!
//! Every checked-in fixture is mutated two ways — truncation at evenly
//! spaced byte offsets, and seeded random byte flips — and fed back through
//! the parser that owns its format. The contract under test is the one
//! `tarr-ingest` documents: malformed input surfaces as a typed
//! [`IngestError`], **never** a panic, and nothing downstream of a
//! successful parse (classification, fabric construction, cluster
//! rebuild) may panic either, since a mutation can produce a document
//! that is syntactically fine but structurally hostile.
//!
//! The adversarial-scalar tests pin the allocation caps: a snapshot is a
//! few hundred bytes, so nothing it describes may allocate more than a
//! small multiple of that before validation rejects it (e.g. a claimed
//! switch count of 4 × 10⁹ must fail *before* the O(switches²) BFS table).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tarr::ingest::{classify, ingest_cluster, parse_hwloc, parse_ibnet, ClusterSnapshot};
use tarr::topo::{Cluster, IrregularFabric, NodeTopology};

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// Truncations at `n` evenly spaced offsets, always including 0 and len−1.
fn truncations(text: &str, n: usize) -> Vec<String> {
    let len = text.len();
    let mut cuts: Vec<usize> = (0..n).map(|i| i * len / n).collect();
    cuts.push(len.saturating_sub(1));
    cuts.into_iter()
        .map(|c| {
            // Byte offsets may split a UTF-8 sequence; the fixtures are
            // ASCII today, but don't let the corpus rot if one stops being.
            let mut bytes = text.as_bytes()[..c].to_vec();
            while !bytes.is_empty() && String::from_utf8(bytes.clone()).is_err() {
                bytes.pop();
            }
            String::from_utf8(bytes).unwrap()
        })
        .collect()
}

/// `n` seeded single-byte corruptions (flip to an arbitrary byte), each
/// applied to a fresh copy; invalid UTF-8 is repaired lossily.
fn byte_flips(text: &str, n: usize, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut bytes = text.as_bytes().to_vec();
            let at = rng.gen_range(0..bytes.len());
            bytes[at] = rng.gen_range(0..=255u8);
            String::from_utf8_lossy(&bytes).into_owned()
        })
        .collect()
}

fn mutations(text: &str, seed: u64) -> Vec<String> {
    let mut v = truncations(text, 48);
    v.extend(byte_flips(text, 192, seed));
    v
}

/// The full ibnet pipeline on one input: parse, classify, build the fabric.
/// Any stage may reject with a typed error; none may panic.
fn drive_ibnet(text: &str) {
    let Ok(graph) = parse_ibnet(text) else { return };
    let Ok(cls) = classify(&graph) else { return };
    if let tarr::ingest::ClassifiedFabric::Irregular(cfg) = cls.fabric {
        let _ = IrregularFabric::new(cfg);
    }
}

fn drive_snapshot(text: &str) {
    let Ok(snap) = ClusterSnapshot::parse(text) else {
        return;
    };
    let _ = snap.to_cluster();
}

#[test]
fn mutated_hwloc_corpus_never_panics() {
    for (i, name) in ["gpc_node.xml", "degraded_node.xml", "malformed.xml"]
        .iter()
        .enumerate()
    {
        let text = fixture(name);
        for m in mutations(&text, 0xf1a6 + i as u64) {
            let _ = parse_hwloc(&m);
        }
    }
}

#[test]
fn mutated_ibnet_corpus_never_panics() {
    for (i, name) in [
        "gpc_ib.txt",
        "twolevel_ib.txt",
        "miswired_ib.txt",
        "malformed_ib.txt",
    ]
    .iter()
    .enumerate()
    {
        let text = fixture(name);
        for m in mutations(&text, 0x1b1e + i as u64) {
            drive_ibnet(&m);
        }
    }
}

#[test]
fn mutated_snapshot_corpus_never_panics() {
    // The snapshot corpus is generated, not checked in: one per fabric kind.
    let corpus = [
        ClusterSnapshot::from_cluster(&Cluster::gpc(64)).to_text(),
        ClusterSnapshot::from_cluster(&Cluster::with_torus(NodeTopology::gpc(), [4, 3, 2]))
            .to_text(),
        ClusterSnapshot::from_cluster(
            &Cluster::from_parts(
                NodeTopology::gpc(),
                tarr::topo::Fabric::Irregular(
                    IrregularFabric::new(Cluster::gpc(16).fabric().to_switch_graph()).unwrap(),
                ),
                16,
            )
            .unwrap(),
        )
        .to_text(),
    ];
    for (i, text) in corpus.iter().enumerate() {
        for m in mutations(text, 0x5a9 + i as u64) {
            drive_snapshot(&m);
        }
    }
}

#[test]
fn mutated_pair_ingest_never_panics() {
    // Cross-wire the full two-input entry point with mutated halves.
    let xml = fixture("gpc_node.xml");
    let ib = fixture("twolevel_ib.txt");
    for m in mutations(&xml, 0xab) {
        let _ = ingest_cluster(&m, &ib);
    }
    for m in mutations(&ib, 0xcd) {
        let _ = ingest_cluster(&xml, &m);
    }
}

/// A snapshot claiming four billion switches is ~60 bytes of text; the
/// rebuild must reject it as a typed error *before* sizing any per-switch
/// table (the BFS levels alone would be S² entries).
#[test]
fn snapshot_switch_count_is_capped_by_references() {
    let text = "tarr-cluster-snapshot v1\n\
                [node] sockets=2 cores_per_socket=4 cores_per_l2=1 smt=1\n\
                [fabric.irregular] switches=4000000000\n\
                [node-switch] 0 0 1 1\n\
                [links] 0:1:2\n\
                [nodes] 4\n";
    let snap = ClusterSnapshot::parse(text).unwrap();
    let err = snap.to_cluster().unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("switch count"), "{msg}");

    // At exactly the reference bound the same shape still needs every
    // switch wired, so it fails connectivity — but only after being *let
    // through* the cap (a DisconnectedFabric error, not the cap's).
    let text = text.replace("switches=4000000000", "switches=6");
    let err = ClusterSnapshot::parse(&text)
        .unwrap()
        .to_cluster()
        .unwrap_err();
    assert!(err.to_string().contains("unreachable"), "{err}");
}

#[test]
fn snapshot_torus_overflow_is_a_typed_error() {
    let text = "tarr-cluster-snapshot v1\n\
                [node] sockets=2 cores_per_socket=4 cores_per_l2=1 smt=1\n\
                [fabric.torus] dims=4294967296x4294967296x4294967296\n\
                [nodes] 8\n";
    let snap = ClusterSnapshot::parse(text).unwrap();
    let err = snap.to_cluster().unwrap_err();
    assert!(err.to_string().contains("overflow"), "{err}");
}
