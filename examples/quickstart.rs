//! Quickstart: make an MPI_Allgather topology-aware in four steps.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tarr::core::{Scheme, Session, SessionConfig};
use tarr::mapping::{InitialMapping, OrderFix};
use tarr::topo::Cluster;

fn main() {
    // 1. Model the machine: 64 GPC-style nodes (2×4 cores, QDR fat-tree).
    let cluster = Cluster::gpc(64);

    // 2. Bind 512 ranks with a cyclic-bunch layout — a layout that is
    //    hostile to the ring allgather (every neighbour is on another node).
    let mut session = Session::from_layout(
        cluster,
        InitialMapping::CYCLIC_BUNCH,
        512,
        SessionConfig::default(),
    );

    // 3. Price the default allgather and the topology-aware one.
    println!("MPI_Allgather latency, 512 ranks, cyclic-bunch layout\n");
    println!(
        "{:>8}  {:>12}  {:>12}  {:>12}",
        "size", "default", "reordered", "improvement"
    );
    for msg in [64u64, 1024, 16384, 262144] {
        let before = session.allgather_time(msg, Scheme::Default);
        let after = session.allgather_time(msg, Scheme::hrstc(OrderFix::InitComm));
        println!(
            "{:>8}  {:>10.1}us  {:>10.1}us  {:>11.1}%",
            msg,
            before * 1e6,
            after * 1e6,
            100.0 * (before - after) / before
        );
    }

    // 4. The reordering is not just fast — it is *correct*: every rank ends
    //    with all blocks in original-rank order (§V-B machinery).
    session
        .verify_allgather(16384, Scheme::hrstc(OrderFix::InitComm))
        .expect("output buffer must be in original-rank order");
    println!("\nfunctional verification: output order preserved ✓");
}
