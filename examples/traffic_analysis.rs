//! Where do the bytes go? The mechanism behind every figure of the paper,
//! observed directly: rank reordering moves collective traffic from slow,
//! contended channels (fat-tree links, QPI) onto fast local ones (shared
//! memory), without changing the total moved.
//!
//! ```text
//! cargo run --release --example traffic_analysis
//! ```

use tarr::core::{Scheme, Session, SessionConfig};
use tarr::mapping::{InitialMapping, OrderFix};
use tarr::topo::Cluster;

fn print_row(label: &str, t: tarr::mpi::TrafficBreakdown) {
    let mb = |b: u64| b as f64 / 1e6;
    println!(
        "{label:>10}  {:>12.1}  {:>8.1}  {:>10.1}  {:>10.1}  {:>10.1}",
        mb(t.intra_socket),
        mb(t.qpi),
        mb(t.same_leaf),
        mb(t.cross_leaf),
        mb(t.total())
    );
}

fn main() {
    let msg = 64 * 1024;
    println!("ring allgather traffic by channel class (MB), 512 ranks, 64 KiB messages\n");
    println!(
        "{:>10}  {:>12}  {:>8}  {:>10}  {:>10}  {:>10}",
        "", "intra-socket", "QPI", "same-leaf", "cross-leaf", "total"
    );

    for layout in InitialMapping::ALL {
        let mut session =
            Session::from_layout(Cluster::gpc(64), layout, 512, SessionConfig::default());
        println!("\n  initial mapping: {}", layout.name());
        print_row("default", session.allgather_traffic(msg, Scheme::Default));
        print_row(
            "reordered",
            session.allgather_traffic(msg, Scheme::hrstc(OrderFix::InPlace)),
        );
        let before = session.allgather_time(msg, Scheme::Default);
        let after = session.allgather_time(msg, Scheme::hrstc(OrderFix::InPlace));
        println!(
            "{:>10}  latency {:.1} ms -> {:.1} ms ({:+.1}%)",
            "",
            before * 1e3,
            after * 1e3,
            100.0 * (before - after) / before
        );
    }
}
