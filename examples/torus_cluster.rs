//! The heuristics on a different machine: a BlueGene-class 3D torus.
//!
//! The mapping heuristics consume only the physical distance matrix, so a
//! new fabric needs no new heuristic code — build the torus cluster, and
//! RDMH/RMH work unchanged. (This is the generality the paper's design
//! argues for: collective patterns are fixed; only the topology input
//! varies.)
//!
//! ```text
//! cargo run --release --example torus_cluster
//! ```

use tarr::core::{Scheme, Session, SessionConfig};
use tarr::mapping::{InitialMapping, OrderFix};
use tarr::topo::{Cluster, NodeTopology};
use tarr::workloads::percent_improvement;

fn main() {
    // 8×8×4 torus of GPC-style nodes = 256 nodes, 2048 ranks.
    let cluster = Cluster::with_torus(NodeTopology::gpc(), [8, 8, 4]);
    let p = cluster.total_cores();
    let t = cluster.fabric().as_torus().unwrap();
    println!(
        "3D torus {:?}: {} nodes, {} ranks",
        t.dims(),
        cluster.num_nodes(),
        p
    );

    for layout in [InitialMapping::BLOCK_BUNCH, InitialMapping::CYCLIC_BUNCH] {
        let mut session =
            Session::from_layout(cluster.clone(), layout, p, SessionConfig::default());
        println!("\n  layout: {}", layout.name());
        println!(
            "  {:>8}  {:>12}  {:>12}  {:>12}",
            "size", "default", "reordered", "improvement"
        );
        for msg in [256u64, 4096, 65536] {
            let before = session.allgather_time(msg, Scheme::Default);
            let after = session.allgather_time(msg, Scheme::hrstc(OrderFix::InitComm));
            println!(
                "  {:>8}  {:>10.2}ms  {:>10.2}ms  {:>11.1}%",
                msg,
                before * 1e3,
                after * 1e3,
                percent_improvement(before, after)
            );
        }
    }
}
