//! A mixed-collective application: allgather, allreduce and broadcast in one
//! iteration loop, each running over its own reordered communicator — the
//! framework's "reordered copy per collective communication pattern" (§IV)
//! in action, with all mappings created lazily and exactly once.
//!
//! ```text
//! cargo run --release --example mixed_workload
//! ```

use tarr::core::{Scheme, Session, SessionConfig};
use tarr::mapping::{InitialMapping, OrderFix};
use tarr::topo::Cluster;

fn main() {
    let mut session = Session::from_layout(
        Cluster::gpc(64),
        InitialMapping::CYCLIC_SCATTER,
        512,
        SessionConfig::default(),
    );

    // A CG-solver-like iteration: halo allgather (4 KiB), dot-product
    // allreduce (64 B), and a occasional parameter broadcast (1 KiB).
    let iters = 200;
    let bcast_every = 20;

    let mut t_default = 0.0;
    let mut t_reordered = 0.0;
    for i in 0..iters {
        t_default += session.allgather_time(4096, Scheme::Default);
        t_default += session.allreduce_time(64, false, Scheme::Default);
        t_reordered += session.allgather_time(4096, Scheme::hrstc(OrderFix::InitComm));
        t_reordered += session.allreduce_time(64, false, Scheme::hrstc(OrderFix::InitComm));
        if i % bcast_every == 0 {
            t_default += session.bcast_time(1024, Scheme::Default);
            t_reordered += session.bcast_time(1024, Scheme::hrstc(OrderFix::InPlace));
        }
    }

    println!("mixed workload, {iters} iterations, 512 ranks, cyclic-scatter layout");
    println!("  communication, default:   {:.2} ms", t_default * 1e3);
    println!("  communication, reordered: {:.2} ms", t_reordered * 1e3);
    println!(
        "  improvement: {:.1}%",
        100.0 * (t_default - t_reordered) / t_default
    );

    // Three patterns ⇒ three cached mappings, created once each.
    use tarr::core::{Mapper, PatternKind};
    for pattern in [
        PatternKind::Ring,
        PatternKind::Rd,
        PatternKind::BinomialBcast,
    ] {
        let info = session.mapping(Mapper::Hrstc, pattern);
        println!(
            "  mapping {:?}: computed once in {:?}",
            pattern, info.compute
        );
    }
}
