//! The application workload: a real (small-scale) N-body simulation whose
//! per-iteration position exchange is an `MPI_Allgather` — the structure of
//! the paper's application benchmark (358 allgather calls). The example
//! runs the physics kernel, verifies that the reordered allgather delivers
//! positions in the correct rank order, and reports the at-scale timing
//! model of Figs. 5–6.
//!
//! ```text
//! cargo run --release --example nbody_app
//! ```

use tarr::collectives::allgather::{HierarchicalConfig, InterAlg, IntraPattern};
use tarr::core::{Scheme, Session, SessionConfig};
use tarr::mapping::{InitialMapping, OrderFix};
use tarr::topo::Cluster;
use tarr::workloads::{AppConfig, NBodySystem};

fn main() {
    // ---- The physics: 4 ranks × 16 bodies, ten steps ----
    // After each allgather every rank holds the same position snapshot and
    // advances its own slice against it; `step_range` over the full system
    // models exactly that (forces from the pre-step snapshot).
    let p = 4usize;
    let bodies_per_rank = 16;
    let n = p * bodies_per_rank;
    let mut system = NBodySystem::new(n, 42);
    let m0 = system.momentum();
    for _ in 0..10 {
        system.step_range(0..n, 1e-3);
    }
    let m1 = system.momentum();
    println!("N-body kernel: 10 steps, momentum drift = {:.2e}", {
        let d: f64 = (0..3).map(|k| (m1[k] - m0[k]).powi(2)).sum();
        d.sqrt()
    });

    // ---- The exchange correctness under reordering ----
    let cluster = Cluster::gpc(32);
    let mut session = Session::from_layout(
        cluster,
        InitialMapping::CYCLIC_BUNCH,
        256,
        SessionConfig::default(),
    );
    session
        .verify_allgather(
            AppConfig::default().message_bytes(),
            Scheme::hrstc(OrderFix::InitComm),
        )
        .expect("positions must arrive in rank order");
    println!("position allgather under reordering: order preserved ✓");

    // ---- The at-scale timing model (Fig. 5 row) ----
    let app = AppConfig::default();
    println!(
        "\napplication model: {} iterations, {} B per-rank messages, 256 ranks",
        app.iterations,
        app.message_bytes()
    );
    let base = app.simulate(&mut session, Scheme::Default);
    let reordered = app.simulate(&mut session, Scheme::hrstc(OrderFix::InitComm));
    println!(
        "default:   total {:.3} s (comm {:.3} s, {:.0}% of run)",
        base.total,
        base.comm,
        100.0 * base.comm_fraction()
    );
    println!(
        "reordered: total {:.3} s ({:.1}% faster)",
        reordered.total,
        100.0 * (base.total - reordered.total) / base.total
    );

    // Hierarchical variant for block layouts (Fig. 6 row).
    let mut block = Session::from_layout(
        Cluster::gpc(32),
        InitialMapping::BLOCK_SCATTER,
        256,
        SessionConfig::default(),
    );
    let hcfg = HierarchicalConfig {
        intra: IntraPattern::Binomial,
        inter: InterAlg::Ring,
    };
    let hb = app
        .simulate_hierarchical(&mut block, hcfg, Scheme::Default)
        .unwrap();
    let hr = app
        .simulate_hierarchical(&mut block, hcfg, Scheme::hrstc(OrderFix::InitComm))
        .unwrap();
    println!(
        "hierarchical on block-scatter: default {:.3} s, reordered {:.3} s ({:.1}% faster)",
        hb.total,
        hr.total,
        100.0 * (hb.total - hr.total) / hb.total
    );
}
