//! Regenerate the rendered golden fixtures under `tests/fixtures/`.
//!
//! ```text
//! cargo run --example ingest_fixtures
//! ```
//!
//! `gpc_node.xml` and `gpc_ib.txt` are what `lstopo --of xml` and
//! `ibnetdiscover` would report on a GPC-like cluster of 64 nodes; they are
//! produced by the tarr-ingest renderers so fixture and renderer can never
//! drift apart — `tests/ingest_roundtrip.rs` asserts byte equality against
//! a fresh render and fails if either side changes unilaterally.
//!
//! The hand-written fixtures (`degraded_node.xml`, `twolevel_ib.txt`,
//! `miswired_ib.txt`, `malformed.xml`, `malformed_ib.txt`) are *not*
//! regenerated here: they exist precisely because no renderer emits them.

use tarr_ingest::{render_hwloc_xml, render_ibnetdiscover};
use tarr_topo::Cluster;

fn main() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    std::fs::create_dir_all(&dir).expect("create tests/fixtures");

    let gpc = Cluster::gpc(64);
    let xml = render_hwloc_xml(gpc.node_topology());
    let ibnet = render_ibnetdiscover(&gpc).expect("gpc is a fat-tree");

    for (name, text) in [("gpc_node.xml", &xml), ("gpc_ib.txt", &ibnet)] {
        let path = dir.join(name);
        std::fs::write(&path, text).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        println!("wrote {} ({} bytes)", path.display(), text.len());
    }
}
