//! OSU-style microbenchmark: the full message-size sweep of the paper's
//! Fig. 3 for one initial mapping, with every scheme side by side.
//!
//! ```text
//! cargo run --release --example microbenchmark [block-bunch|block-scatter|cyclic-bunch|cyclic-scatter]
//! ```

use tarr::core::{Scheme, Session, SessionConfig};
use tarr::mapping::{InitialMapping, OrderFix};
use tarr::topo::Cluster;
use tarr::workloads::{percent_improvement, OsuSweep};

fn main() {
    let layout = match std::env::args().nth(1).as_deref() {
        None | Some("cyclic-bunch") => InitialMapping::CYCLIC_BUNCH,
        Some("block-bunch") => InitialMapping::BLOCK_BUNCH,
        Some("block-scatter") => InitialMapping::BLOCK_SCATTER,
        Some("cyclic-scatter") => InitialMapping::CYCLIC_SCATTER,
        Some(other) => panic!("unknown layout {other}"),
    };

    let procs = 512;
    let mut session = Session::from_layout(
        Cluster::gpc(procs / 8),
        layout,
        procs,
        SessionConfig::default(),
    );
    println!(
        "allgather latency improvement over the default, {} ranks, {} layout",
        procs,
        layout.name()
    );

    let sweep = OsuSweep::paper_range();
    let base = sweep.run(&mut session, Scheme::Default);
    let schemes = [
        ("Hrstc+initComm", Scheme::hrstc(OrderFix::InitComm)),
        ("Hrstc+endShfl", Scheme::hrstc(OrderFix::EndShuffle)),
        ("Scotch+initComm", Scheme::scotch(OrderFix::InitComm)),
    ];
    let series: Vec<Vec<(u64, f64)>> = schemes
        .iter()
        .map(|&(_, s)| sweep.run(&mut session, s))
        .collect();

    print!("{:>8}  {:>12}", "size", "default(us)");
    for (name, _) in &schemes {
        print!("  {name:>16}");
    }
    println!();
    for (i, &(size, b)) in base.iter().enumerate() {
        print!("{size:>8}  {:>12.1}", b * 1e6);
        for s in &series {
            print!("  {:>15.1}%", percent_improvement(b, s[i].1));
        }
        println!();
    }
}
