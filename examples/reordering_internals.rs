//! A guided tour of the reordering machinery of §V: the mapping arrays the
//! heuristics produce, the three output-order fixes, and a functional proof
//! that each of them delivers the output buffer in original-rank order.
//!
//! ```text
//! cargo run --release --example reordering_internals
//! ```

use tarr::collectives::allgather::{recursive_doubling, ring_with_placement};
use tarr::mapping::{
    bbmh, bgmh, end_shuffle_perm, init_comm_schedule, rdmh, reorder::reordered_init_state,
    ring_placement, rmh, InitialMapping,
};
use tarr::topo::{Cluster, DistanceConfig, DistanceMatrix};

fn main() {
    // A 2-node job with a cyclic-bunch layout: ranks alternate nodes.
    let cluster = Cluster::gpc(2);
    let p = 16usize;
    let cores = InitialMapping::CYCLIC_BUNCH.layout(&cluster, p);
    let d = DistanceMatrix::build(&cluster, &cores, &DistanceConfig::default());

    println!("initial layout (rank -> core): {cores:?}\n");
    println!("mapping arrays m[new_rank] = old_rank:");
    println!("  RDMH: {:?}", rdmh(&d, 0));
    println!("  RMH:  {:?}", rmh(&d, 0));
    println!("  BBMH: {:?}", bbmh(&d, 0));
    println!("  BGMH: {:?}", bgmh(&d, 0));

    // Pick the ring mapping and walk the three §V-B fixes.
    let m = rmh(&d, 0);
    println!("\nusing the RMH mapping {m:?}");

    // Fix 1: extra initial communications.
    let ic = init_comm_schedule(&m);
    println!(
        "initComm: one stage, {} displaced processes exchange inputs",
        ic.num_ops()
    );
    let mut st = reordered_init_state(&m, false);
    st.run(&ic.then(recursive_doubling(p as u32))).unwrap();
    st.verify_allgather_identity().unwrap();
    println!("  -> RD after initComm: output in original-rank order ✓");

    // Fix 2: memory shuffling at the end.
    let mut st = reordered_init_state(&m, false);
    st.run(&recursive_doubling(p as u32)).unwrap();
    assert!(
        st.verify_allgather_identity().is_err(),
        "order wrong before shuffle"
    );
    st.shuffle_outputs(&end_shuffle_perm(&m));
    st.verify_allgather_identity().unwrap();
    println!("endShfl: RD then per-rank buffer permutation: order restored ✓");

    // Fix 3: the ring stores blocks at their final offsets — free.
    let sched = ring_with_placement(p as u32, Some(&ring_placement(&m)));
    let mut st = reordered_init_state(&m, true);
    st.run(&sched).unwrap();
    st.verify_allgather_identity().unwrap();
    println!("in-place ring: no extra communication, no shuffle, order correct ✓");
}
