//! Build a custom cluster model — the paper's future-work scenario of nodes
//! with "a more complicated intra-node topology and a larger number of cores"
//! — and inspect the topology the mapping heuristics consume. Also prints the
//! GPC preset matching the paper's Fig. 2 description.
//!
//! ```text
//! cargo run --release --example custom_cluster
//! ```

use tarr::core::{Scheme, Session, SessionConfig};
use tarr::mapping::{InitialMapping, OrderFix};
use tarr::topo::{Cluster, ClusterConfig, CoreId, FatTreeConfig, NodeTopology};

fn main() {
    // ---- The paper's evaluation platform (Fig. 2) ----
    let gpc = Cluster::gpc(512);
    let f = gpc.fabric().as_fattree().expect("GPC is a fat-tree");
    println!(
        "GPC preset: {} nodes × {} cores = {} processes max",
        gpc.num_nodes(),
        gpc.cores_per_node(),
        gpc.total_cores()
    );
    println!(
        "fabric: {} leaf switches ({} nodes each), {} core switches, {}:1 blocking",
        f.num_leaves(),
        f.config().nodes_per_leaf,
        f.config().core_switches,
        f.config().nodes_per_leaf / (f.config().core_switches * f.config().uplinks_per_core)
    );

    // ---- A custom many-core cluster ----
    let cluster = Cluster::new(ClusterConfig {
        node: NodeTopology {
            sockets: 4,
            cores_per_socket: 16,
            cores_per_l2: 4,
            smt: 1,
        },
        fabric: FatTreeConfig {
            nodes_per_leaf: 16,
            core_switches: 2,
            uplinks_per_core: 4,
            lines_per_core: 8,
            spines_per_core: 4,
            line_spine_links: 2,
        },
        num_nodes: 16,
    });
    println!(
        "\ncustom cluster: {} nodes × {} cores ({} sockets, L2 groups of {})",
        cluster.num_nodes(),
        cluster.cores_per_node(),
        cluster.node_topology().sockets,
        cluster.node_topology().cores_per_l2
    );

    // Distances between a probe core and representatives of each level.
    let probe = CoreId(0);
    println!("\ndistance levels from core 0:");
    for (label, other) in [
        ("same L2 group", CoreId(1)),
        ("same socket", CoreId(5)),
        ("cross socket", CoreId(17)),
        ("other node", CoreId(64)),
    ] {
        let d = tarr::topo::distance::core_distance(
            &cluster,
            &tarr::topo::DistanceConfig::default(),
            probe,
            other,
        );
        println!("  {label:>14}: {d}");
    }

    // The heuristics work unchanged on the deeper hierarchy.
    let p = cluster.total_cores();
    let mut session = Session::from_layout(
        cluster,
        InitialMapping::CYCLIC_SCATTER,
        p,
        SessionConfig::default(),
    );
    let before = session.allgather_time(65536, Scheme::Default);
    let after = session.allgather_time(65536, Scheme::hrstc(OrderFix::InitComm));
    println!(
        "\nring allgather at 64 KiB on {} many-core ranks: {:.1} ms -> {:.1} ms ({:.0}% faster)",
        p,
        before * 1e3,
        after * 1e3,
        100.0 * (before - after) / before
    );
}
