use tarr_collectives::{allgather::ring, pattern_graph};
use tarr_core::{Mapper, PatternKind, Scheme, Session, SessionConfig};
use tarr_mapping::{mapping_cost, rmh, InitialMapping, OrderFix};
use tarr_topo::Cluster;

fn main() {
    let cluster = Cluster::gpc(128);
    let p = 1024;
    let mut s = Session::from_layout(
        cluster,
        InitialMapping::CYCLIC_BUNCH,
        p,
        SessionConfig::default(),
    );
    let m = s
        .mapping(Mapper::ScotchLike, PatternKind::Ring)
        .mapping
        .clone();
    let g = pattern_graph(&ring(p as u32), 4096);
    let ident: Vec<u32> = (0..p as u32).collect();
    let d = s.distance_matrix();
    println!("cost ident  = {}", mapping_cost(&g, d, &ident));
    println!("cost scotch = {}", mapping_cost(&g, d, &m));
    println!("cost rmh    = {}", mapping_cost(&g, d, &rmh(d, 0)));
    println!("m[0..16] = {:?}", &m[..16]);
    let t0 = s.allgather_time(65536, Scheme::Default);
    let t1 = s.allgather_time(65536, Scheme::scotch(OrderFix::InitComm));
    let t2 = s.allgather_time(65536, Scheme::hrstc(OrderFix::InitComm));
    println!("time default {t0:.6} scotch {t1:.6} hrstc {t2:.6}");
}
