//! # tarr — Topology-Aware Rank Reordering for MPI collectives
//!
//! Facade crate re-exporting the whole workspace. See the individual crates
//! for details:
//!
//! * [`topo`] — hardware topology model (nodes, fat-tree fabric, distances);
//! * [`ingest`] — real-topology ingestion (hwloc XML, `ibnetdiscover`,
//!   cluster snapshots);
//! * [`netsim`] — network performance models (analytic + discrete-event);
//! * [`mpi`] — simulated MPI layer (communicators, schedules, executors);
//! * [`collectives`] — allgather/bcast/gather/allreduce algorithms;
//! * [`mapping`] — the paper's mapping heuristics and baseline mappers;
//! * [`core`] — the public [`core::Session`] API;
//! * [`workloads`] — microbenchmark sweeps and the mini-application.

pub use tarr_collectives as collectives;
pub use tarr_core as core;
pub use tarr_ingest as ingest;
pub use tarr_mapping as mapping;
pub use tarr_mpi as mpi;
pub use tarr_netsim as netsim;
pub use tarr_topo as topo;
pub use tarr_workloads as workloads;
