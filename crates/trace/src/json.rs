//! Minimal hand-rolled JSON: a writer-side string escaper and a
//! recursive-descent parser, enough to emit and re-validate the trace
//! formats without external dependencies.

use std::fmt::Write as _;

/// A parsed JSON value. Numbers are kept as `f64` — every number this
/// crate emits (ns timestamps, counter values) is well below 2^53.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// Append `s` to `out` as a quoted, escaped JSON string.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a finite `f64` as a JSON number (non-finite values become `null`,
/// which JSON cannot represent as a number).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Parse a complete JSON document. Returns an error message with a byte
/// offset on malformed input or trailing garbage.
pub fn parse(s: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

/// Deepest container nesting [`parse`] accepts. The parser recurses per
/// container, so without a cap adversarial input like ten thousand `[`s
/// would overflow the stack instead of returning an error — the serving
/// stack feeds untrusted network bytes straight in here.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Current container nesting, bounded by [`MAX_DEPTH`].
    depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err("lone high surrogate".into());
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("bad codepoint {code:#x}"))?,
                            );
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so boundaries
                    // are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let c = rest.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(format!("unescaped control char at byte {}", self.pos));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "bad \\u escape".to_string())?;
        let v = u32::from_str_radix(text, 16).map_err(|_| format!("bad \\u escape '{text}'"))?;
        self.pos = end;
        Ok(v)
    }

    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at byte {}",
                self.pos
            ));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        self.enter()?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_emitted_subset() {
        let doc = r#"{"type":"span","name":"a b","ts":12, "dur":3.5,
                      "args":{"ok":true,"none":null,"xs":[1,-2,3e2]}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("span"));
        assert_eq!(v.get("ts").unwrap().as_u64(), Some(12));
        assert_eq!(v.get("dur").unwrap().as_f64(), Some(3.5));
        let args = v.get("args").unwrap();
        assert_eq!(args.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(args.get("none"), Some(&Json::Null));
        assert_eq!(
            args.get("xs").unwrap().as_arr().unwrap(),
            &[Json::Num(1.0), Json::Num(-2.0), Json::Num(300.0)]
        );
    }

    #[test]
    fn escape_round_trips() {
        let cases = [
            "plain",
            "q\"q",
            "back\\slash",
            "nl\nnl",
            "tab\t",
            "unicode ρ→ψ",
            "ctl\u{1}",
        ];
        for case in cases {
            let mut doc = String::from("{\"k\":");
            write_escaped(&mut doc, case);
            doc.push('}');
            let v = parse(&doc).unwrap();
            assert_eq!(v.get("k").unwrap().as_str(), Some(case), "{doc}");
        }
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["{", "[1,", "\"", "{\"a\":}", "1 2", "tru", "{\"a\" 1}"] {
            assert!(parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn depth_is_capped_not_a_stack_overflow() {
        // Just inside the cap parses; one past it errors; absurdly deep
        // input errors instead of exhausting the stack.
        let deep = |n: usize| format!("{}1{}", "[".repeat(n), "]".repeat(n));
        assert!(parse(&deep(MAX_DEPTH)).is_ok());
        assert!(parse(&deep(MAX_DEPTH + 1))
            .unwrap_err()
            .contains("nesting deeper"));
        assert!(parse(&"[".repeat(100_000)).is_err());
        let objs = format!("{}1{}", "{\"k\":".repeat(200), "}".repeat(200));
        assert!(parse(&objs).unwrap_err().contains("nesting deeper"));
    }

    #[test]
    fn non_finite_writes_null() {
        let mut s = String::new();
        write_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
        let mut s = String::new();
        write_f64(&mut s, 1.5);
        assert_eq!(s, "1.5");
    }
}
