//! Offline analysis of a JSONL export: reconstruct each request's span
//! tree from the `req_id` arguments stamped by [`crate::request_scope`],
//! attribute self-time and the critical path per request, and aggregate
//! per span name. Library half of the `trace-analyze` binary; kept here so
//! tests can drive it on synthetic exports.
//!
//! Tree building uses the same laminar-containment sweep as the validator:
//! within one thread, spans sorted by (start asc, dur desc) form a
//! nesting stack, so a span's parent is the innermost still-open interval
//! on its thread. Request grouping happens first — a request's spans all
//! carry its id (the scope is thread-local), so concurrent requests on
//! different workers never entangle.

use std::collections::BTreeMap;

use crate::json::{parse, Json};

/// One span node in a request's reconstructed tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// Span name.
    pub name: String,
    /// Total duration, ns.
    pub dur_ns: u64,
    /// Duration minus direct children, ns.
    pub self_ns: u64,
    /// Direct children in start order.
    pub children: Vec<Node>,
}

/// Every span recorded under one request id, as a tree per root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestTree {
    /// The `req_id` the spans carried.
    pub id: u64,
    /// The `req_op` argument of a root span, when present.
    pub op: Option<String>,
    /// The `cluster` argument of a root span, when present.
    pub cluster: Option<String>,
    /// The `queue_wait_ns` argument of a root span, when present.
    pub queue_wait_ns: Option<u64>,
    /// Sum of root-span durations (the request's service time), ns.
    pub total_ns: u64,
    /// Root spans (normally one `serve.handle`) with their subtrees.
    pub roots: Vec<Node>,
}

/// Per-span-name aggregate over the whole export (request-tagged or not).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NameAgg {
    /// Span name.
    pub name: String,
    /// Occurrences.
    pub count: u64,
    /// Summed duration, ns.
    pub total_ns: u64,
    /// Summed self-time, ns.
    pub self_ns: u64,
    /// Largest single duration, ns.
    pub max_ns: u64,
}

/// Everything `trace-analyze` reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Analysis {
    /// One tree per request id, ascending by id.
    pub requests: Vec<RequestTree>,
    /// Per-span-name aggregates, ascending by name.
    pub by_name: Vec<NameAgg>,
    /// Spans with no `req_id` argument (background/untagged work).
    pub untagged_spans: usize,
}

struct SpanRec {
    name: String,
    tid: u64,
    ts: u64,
    dur: u64,
    req: Option<u64>,
    op: Option<String>,
    cluster: Option<String>,
    queue_wait_ns: Option<u64>,
}

fn arg_str(args: Option<&Json>, key: &str) -> Option<String> {
    args?.get(key)?.as_str().map(str::to_string)
}

fn arg_u64(args: Option<&Json>, key: &str) -> Option<u64> {
    args?.get(key)?.as_u64()
}

/// Indices of each span's direct children under the laminar sweep, plus
/// the roots, for one already-(tid, ts asc, dur desc)-sorted slice.
fn link(spans: &[&SpanRec]) -> (Vec<Vec<usize>>, Vec<usize>) {
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
    let mut roots: Vec<usize> = Vec::new();
    let mut stack: Vec<usize> = Vec::new(); // indices of open spans
    for (i, s) in spans.iter().enumerate() {
        while let Some(&top) = stack.last() {
            let t = spans[top];
            if t.tid != s.tid || t.ts + t.dur <= s.ts {
                stack.pop();
            } else {
                break;
            }
        }
        match stack.last() {
            Some(&parent) => children[parent].push(i),
            None => roots.push(i),
        }
        stack.push(i);
    }
    (children, roots)
}

fn build(spans: &[&SpanRec], children: &[Vec<usize>], i: usize) -> Node {
    let kids: Vec<Node> = children[i]
        .iter()
        .map(|&c| build(spans, children, c))
        .collect();
    let child_ns: u64 = kids.iter().map(|k| k.dur_ns).sum();
    Node {
        name: spans[i].name.clone(),
        dur_ns: spans[i].dur,
        self_ns: spans[i].dur.saturating_sub(child_ns),
        children: kids,
    }
}

/// Analyze a JSONL export. Only `span` lines matter; other line types are
/// ignored (the validator owns their schema). Errors on unparseable lines.
pub fn analyze(text: &str) -> Result<Analysis, String> {
    let mut spans: Vec<SpanRec> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        if v.get("type").and_then(Json::as_str) != Some("span") {
            continue;
        }
        let need = |key: &str| {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("line {}: span without \"{key}\"", i + 1))
        };
        let args = v.get("args");
        spans.push(SpanRec {
            name: v
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("line {}: span without \"name\"", i + 1))?
                .to_string(),
            tid: need("tid")?,
            ts: need("ts")?,
            dur: need("dur")?,
            req: arg_u64(args, "req_id"),
            op: arg_str(args, "req_op"),
            cluster: arg_str(args, "cluster"),
            queue_wait_ns: arg_u64(args, "queue_wait_ns"),
        });
    }

    // Global aggregate: self-times come from a sweep over ALL spans per
    // thread, so untagged background spans attribute correctly too.
    let mut all: Vec<&SpanRec> = spans.iter().collect();
    all.sort_by_key(|s| (s.tid, s.ts, std::cmp::Reverse(s.dur)));
    let (children, _) = link(&all);
    let mut by_name: BTreeMap<String, NameAgg> = BTreeMap::new();
    for (i, s) in all.iter().enumerate() {
        let child_ns: u64 = children[i].iter().map(|&c| all[c].dur).sum();
        let e = by_name.entry(s.name.clone()).or_insert(NameAgg {
            name: s.name.clone(),
            count: 0,
            total_ns: 0,
            self_ns: 0,
            max_ns: 0,
        });
        e.count += 1;
        e.total_ns += s.dur;
        e.self_ns += s.dur.saturating_sub(child_ns);
        e.max_ns = e.max_ns.max(s.dur);
    }

    // Per-request trees.
    let mut by_req: BTreeMap<u64, Vec<&SpanRec>> = BTreeMap::new();
    let mut untagged = 0usize;
    for s in &spans {
        match s.req {
            Some(id) => by_req.entry(id).or_default().push(s),
            None => untagged += 1,
        }
    }
    let requests = by_req
        .into_iter()
        .map(|(id, mut group)| {
            group.sort_by_key(|s| (s.tid, s.ts, std::cmp::Reverse(s.dur)));
            let (children, roots) = link(&group);
            let nodes: Vec<Node> = roots.iter().map(|&r| build(&group, &children, r)).collect();
            let root_meta = roots.iter().map(|&r| group[r]).find(|s| s.op.is_some());
            RequestTree {
                id,
                op: root_meta.and_then(|s| s.op.clone()),
                cluster: roots
                    .iter()
                    .map(|&r| group[r])
                    .find_map(|s| s.cluster.clone()),
                queue_wait_ns: roots
                    .iter()
                    .map(|&r| group[r])
                    .find_map(|s| s.queue_wait_ns),
                total_ns: nodes.iter().map(|n| n.dur_ns).sum(),
                roots: nodes,
            }
        })
        .collect();

    Ok(Analysis {
        requests,
        by_name: by_name.into_values().collect(),
        untagged_spans: untagged,
    })
}

/// The critical path of a request: from its largest root, repeatedly
/// descend into the largest child. Returns `(name, dur_ns, self_ns)` per
/// hop, root first.
pub fn critical_path(tree: &RequestTree) -> Vec<(String, u64, u64)> {
    let mut path = Vec::new();
    let mut node = tree.roots.iter().max_by_key(|n| n.dur_ns);
    while let Some(n) = node {
        path.push((n.name.clone(), n.dur_ns, n.self_ns));
        node = n.children.iter().max_by_key(|c| c.dur_ns);
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(lines: &[&str]) -> String {
        let mut s =
            String::from(r#"{"type":"meta","format":"tarr-trace","version":1,"clock":"ns"}"#);
        for l in lines {
            s.push('\n');
            s.push_str(l);
        }
        s
    }

    #[test]
    fn reconstructs_request_trees_by_req_id() {
        // Two requests interleaved on two threads plus one untagged span.
        let text = doc(&[
            r#"{"type":"span","name":"serve.handle","tid":0,"depth":0,"ts":0,"dur":100,"args":{"req_op":"price","cluster":"gpc","queue_wait_ns":7,"req_id":1}}"#,
            r#"{"type":"span","name":"mpi.price","tid":0,"depth":1,"ts":10,"dur":80,"args":{"req_id":1}}"#,
            r#"{"type":"span","name":"netsim.stage","tid":0,"depth":2,"ts":20,"dur":30,"args":{"req_id":1}}"#,
            r#"{"type":"span","name":"serve.handle","tid":1,"depth":0,"ts":5,"dur":40,"args":{"req_op":"map","req_id":2}}"#,
            r#"{"type":"span","name":"background","tid":2,"depth":0,"ts":0,"dur":9,"args":{}}"#,
            r#"{"type":"counter","name":"c","ts":1,"value":1}"#,
        ]);
        let a = analyze(&text).unwrap();
        assert_eq!(a.requests.len(), 2);
        assert_eq!(a.untagged_spans, 1);

        let r1 = &a.requests[0];
        assert_eq!(r1.id, 1);
        assert_eq!(r1.op.as_deref(), Some("price"));
        assert_eq!(r1.cluster.as_deref(), Some("gpc"));
        assert_eq!(r1.queue_wait_ns, Some(7));
        assert_eq!(r1.total_ns, 100);
        assert_eq!(r1.roots.len(), 1);
        let root = &r1.roots[0];
        assert_eq!(root.name, "serve.handle");
        assert_eq!(root.self_ns, 20); // 100 − 80
        assert_eq!(root.children[0].name, "mpi.price");
        assert_eq!(root.children[0].self_ns, 50); // 80 − 30

        let cp = critical_path(r1);
        let names: Vec<&str> = cp.iter().map(|(n, _, _)| n.as_str()).collect();
        assert_eq!(names, ["serve.handle", "mpi.price", "netsim.stage"]);

        let r2 = &a.requests[1];
        assert_eq!((r2.id, r2.total_ns), (2, 40));
        assert_eq!(r2.op.as_deref(), Some("map"));
        assert_eq!(r2.queue_wait_ns, None);
    }

    #[test]
    fn aggregates_include_untagged_spans() {
        let text = doc(&[
            r#"{"type":"span","name":"w","tid":0,"depth":0,"ts":0,"dur":10,"args":{}}"#,
            r#"{"type":"span","name":"w","tid":0,"depth":0,"ts":20,"dur":30,"args":{"req_id":5}}"#,
        ]);
        let a = analyze(&text).unwrap();
        assert_eq!(a.by_name.len(), 1);
        let agg = &a.by_name[0];
        assert_eq!((agg.count, agg.total_ns, agg.max_ns), (2, 40, 30));
        assert_eq!(agg.self_ns, 40);
        assert_eq!(a.requests.len(), 1);
    }

    #[test]
    fn rejects_malformed_span_lines() {
        let text = doc(&[r#"{"type":"span","name":"w","tid":0}"#]);
        let err = analyze(&text).unwrap_err();
        assert!(err.contains("span without"), "{err}");
    }
}
