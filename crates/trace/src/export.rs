//! Exporters: newline-delimited JSON (the machine-checked format), Chrome
//! trace-event JSON (Perfetto / `chrome://tracing`), and a human-readable
//! end-of-run summary table.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::path::Path;

use crate::json::{write_escaped, write_f64};
use crate::{snapshot, Sample, Value};

fn write_args(out: &mut String, args: &[(&'static str, Value)]) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_escaped(out, k);
        out.push(':');
        match v {
            Value::U64(n) => out.push_str(&n.to_string()),
            Value::I64(n) => out.push_str(&n.to_string()),
            Value::F64(n) => write_f64(out, *n),
            Value::Str(s) => write_escaped(out, s),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
    out.push('}');
}

/// Export the recording as newline-delimited JSON. One object per line:
/// a `meta` header, then `span` / `instant` / `counter` / `gauge` lines in
/// timestamp order within their kind, `hist` digests, and a final
/// `dropped` line if the event cap was hit. A last metrics sample is taken
/// automatically so counters always carry their end-of-run values.
pub fn export_jsonl(path: impl AsRef<Path>) -> io::Result<()> {
    let snap = snapshot();
    let mut w = io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(
        w,
        r#"{{"type":"meta","format":"tarr-trace","version":1,"clock":"ns-since-enable"}}"#
    )?;
    for s in &snap.spans {
        let mut line = String::with_capacity(128);
        line.push_str(r#"{"type":"span","name":"#);
        write_escaped(&mut line, s.name);
        line.push_str(&format!(
            r#","tid":{},"depth":{},"ts":{},"dur":{},"args":"#,
            s.tid, s.depth, s.ts_ns, s.dur_ns
        ));
        write_args(&mut line, &s.args);
        line.push('}');
        writeln!(w, "{line}")?;
    }
    for e in &snap.instants {
        let mut line = String::with_capacity(128);
        line.push_str(r#"{"type":"instant","name":"#);
        write_escaped(&mut line, e.name);
        line.push_str(&format!(r#","tid":{},"ts":{},"args":"#, e.tid, e.ts_ns));
        write_args(&mut line, &e.args);
        line.push('}');
        writeln!(w, "{line}")?;
    }
    for s in &snap.samples {
        let mut line = String::with_capacity(96);
        match s {
            Sample::Counter { name, ts_ns, value } => {
                line.push_str(r#"{"type":"counter","name":"#);
                write_escaped(&mut line, name);
                line.push_str(&format!(r#","ts":{ts_ns},"value":{value}}}"#));
            }
            Sample::Gauge { name, ts_ns, value } => {
                line.push_str(r#"{"type":"gauge","name":"#);
                write_escaped(&mut line, name);
                line.push_str(&format!(r#","ts":{ts_ns},"value":"#));
                write_f64(&mut line, *value);
                line.push('}');
            }
        }
        writeln!(w, "{line}")?;
    }
    for (name, h) in &snap.hists {
        let mut line = String::with_capacity(128);
        line.push_str(r#"{"type":"hist","name":"#);
        write_escaped(&mut line, name);
        line.push_str(&format!(
            r#","count":{},"sum":{},"min":{},"max":{},"buckets":["#,
            h.count, h.sum, h.min, h.max
        ));
        for (i, (k, c)) in h.buckets.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&format!("[{k},{c}]"));
        }
        line.push_str("]}");
        writeln!(w, "{line}")?;
    }
    if snap.dropped > 0 {
        writeln!(w, r#"{{"type":"dropped","count":{}}}"#, snap.dropped)?;
    }
    w.flush()
}

/// Export the recording in the Chrome trace-event format: complete (`X`)
/// events for spans, instant (`i`) events, and counter (`C`) series, all
/// with microsecond timestamps. Load the file in Perfetto
/// (<https://ui.perfetto.dev>) or `chrome://tracing` for a flamegraph view.
pub fn export_chrome(path: impl AsRef<Path>) -> io::Result<()> {
    let snap = snapshot();
    let mut w = io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(w, "{{\"traceEvents\":[")?;
    let mut first = true;
    let emit = |w: &mut dyn Write, line: &str, first: &mut bool| -> io::Result<()> {
        if *first {
            *first = false;
        } else {
            writeln!(w, ",")?;
        }
        write!(w, "{line}")
    };
    for s in &snap.spans {
        let mut line = String::with_capacity(160);
        line.push_str(r#"{"ph":"X","pid":1,"tid":"#);
        line.push_str(&s.tid.to_string());
        line.push_str(r#","name":"#);
        write_escaped(&mut line, s.name);
        line.push_str(&format!(
            r#","ts":{:.3},"dur":{:.3},"args":"#,
            s.ts_ns as f64 / 1e3,
            s.dur_ns as f64 / 1e3
        ));
        write_args(&mut line, &s.args);
        line.push('}');
        emit(&mut w, &line, &mut first)?;
    }
    for e in &snap.instants {
        let mut line = String::with_capacity(160);
        line.push_str(r#"{"ph":"i","s":"t","pid":1,"tid":"#);
        line.push_str(&e.tid.to_string());
        line.push_str(r#","name":"#);
        write_escaped(&mut line, e.name);
        line.push_str(&format!(r#","ts":{:.3},"args":"#, e.ts_ns as f64 / 1e3));
        write_args(&mut line, &e.args);
        line.push('}');
        emit(&mut w, &line, &mut first)?;
    }
    for s in &snap.samples {
        let (name, ts_ns, value) = match s {
            Sample::Counter { name, ts_ns, value } => (*name, *ts_ns, *value as f64),
            Sample::Gauge { name, ts_ns, value } => (*name, *ts_ns, *value),
        };
        let mut line = String::with_capacity(128);
        line.push_str(r#"{"ph":"C","pid":1,"tid":0,"name":"#);
        write_escaped(&mut line, name);
        line.push_str(&format!(
            r#","ts":{:.3},"args":{{"value":"#,
            ts_ns as f64 / 1e3
        ));
        write_f64(&mut line, value);
        line.push_str("}}");
        emit(&mut w, &line, &mut first)?;
    }
    writeln!(w, "\n]}}")?;
    w.flush()
}

fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Render a human-readable digest of the recording: per-span-name
/// count/total/max, final counter values, gauges, and histogram summaries.
pub fn summary_table() -> String {
    let snap = snapshot();
    let mut out = String::new();
    out.push_str("== trace summary ==\n");

    // Spans, aggregated by name.
    let mut by_name: BTreeMap<&str, (u64, u64, u64)> = BTreeMap::new();
    for s in &snap.spans {
        let e = by_name.entry(s.name).or_insert((0, 0, 0));
        e.0 += 1;
        e.1 += s.dur_ns;
        e.2 = e.2.max(s.dur_ns);
    }
    if !by_name.is_empty() {
        out.push_str(&format!(
            "{:<40} {:>8} {:>12} {:>12}\n",
            "span", "count", "total", "max"
        ));
        for (name, (count, total, max)) in &by_name {
            out.push_str(&format!(
                "{:<40} {:>8} {:>12} {:>12}\n",
                name,
                count,
                fmt_ns(*total),
                fmt_ns(*max)
            ));
        }
    }

    // Final counter/gauge readings (snapshot() appended them last).
    let mut counters: BTreeMap<&str, u64> = BTreeMap::new();
    let mut gauges: BTreeMap<&str, f64> = BTreeMap::new();
    for s in &snap.samples {
        match s {
            Sample::Counter { name, value, .. } => {
                counters.insert(name, *value);
            }
            Sample::Gauge { name, value, .. } => {
                gauges.insert(name, *value);
            }
        }
    }
    counters.retain(|_, v| *v > 0);
    if !counters.is_empty() {
        out.push_str(&format!("{:<40} {:>8}\n", "counter", "value"));
        for (name, value) in &counters {
            out.push_str(&format!("{name:<40} {value:>8}\n"));
        }
    }
    if !gauges.is_empty() {
        out.push_str(&format!("{:<40} {:>8}\n", "gauge", "value"));
        for (name, value) in &gauges {
            out.push_str(&format!("{name:<40} {value:>8.3}\n"));
        }
    }

    if !snap.hists.is_empty() {
        out.push_str(&format!(
            "{:<40} {:>8} {:>12} {:>12} {:>12}\n",
            "histogram", "count", "mean", "min", "max"
        ));
        for (name, h) in &snap.hists {
            out.push_str(&format!(
                "{:<40} {:>8} {:>12} {:>12} {:>12}\n",
                name,
                h.count,
                fmt_ns(h.sum / h.count.max(1)),
                fmt_ns(h.min),
                fmt_ns(h.max)
            ));
        }
    }
    if snap.dropped > 0 {
        out.push_str(&format!("dropped events: {}\n", snap.dropped));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{counter, histogram, instant, json, sample_metrics, set_enabled, span, test_guard};

    fn populate() {
        set_enabled(true);
        {
            let _outer = span("export.outer").arg("p", 4u64).arg("kind", "ring");
            let _inner = span("export.inner");
        }
        counter("export.ops").add(7);
        sample_metrics();
        counter("export.ops").add(1);
        histogram("export.h").record(100);
        instant("export.evt").arg("bytes", 12u64).emit();
        set_enabled(false);
    }

    #[test]
    fn jsonl_lines_all_parse_and_cover_kinds() {
        let _g = test_guard();
        populate();
        let dir = std::env::temp_dir();
        let path = dir.join("tarr_trace_test_export.jsonl");
        export_jsonl(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let mut kinds = std::collections::BTreeSet::new();
        for line in text.lines() {
            let v = json::parse(line).expect(line);
            kinds.insert(v.get("type").unwrap().as_str().unwrap().to_string());
        }
        for k in ["meta", "span", "instant", "counter", "hist"] {
            assert!(kinds.contains(k), "missing {k} in {kinds:?}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chrome_export_is_valid_json() {
        let _g = test_guard();
        populate();
        let path = std::env::temp_dir().join("tarr_trace_test_export.chrome.json");
        export_chrome(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let v = json::parse(&text).expect("chrome export parses");
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(events
            .iter()
            .any(|e| e.get("ph").unwrap().as_str() == Some("X")));
        assert!(events
            .iter()
            .any(|e| e.get("ph").unwrap().as_str() == Some("C")));
        assert!(events
            .iter()
            .any(|e| e.get("ph").unwrap().as_str() == Some("i")));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn summary_mentions_spans_and_counters() {
        let _g = test_guard();
        populate();
        let table = summary_table();
        assert!(table.contains("export.outer"));
        assert!(table.contains("export.ops"));
        assert!(table.contains("export.h"));
    }
}
