//! Hand-rolled structured tracing for the tarr workspace.
//!
//! The mapping→compile→price pipeline spans seven crates; understanding
//! where a sweep spends its time (and where bytes land on the network)
//! needs instrumentation that every crate can afford to link. This crate is
//! that substrate, built in the same spirit as `tarr-netsim`'s hand-rolled
//! FxHash: zero dependencies (no tokio, no `tracing`), offline-friendly,
//! and compiled down to a single relaxed atomic load when disabled.
//!
//! Primitives:
//!
//! * **Spans** — RAII guards ([`span`]) recording name, thread, nesting
//!   depth, start and duration against a process-wide monotonic epoch.
//!   [`timed_span`] additionally *returns* the measured [`Duration`] so
//!   call sites that feed durations into their own bookkeeping (e.g.
//!   `MappingInfo::compute`) need no second clock.
//! * **Counters** — monotonic [`Counter`]s, sampled into the timeline with
//!   [`sample_metrics`]. The [`counter_add!`] macro caches the registry
//!   lookup per call site.
//! * **Gauges** — last-value [`Gauge`]s for levels (cache sizes, RSS).
//! * **Histograms** — lock-free log2-bucket [`Histogram`]s for latency- or
//!   size-shaped distributions.
//! * **Instant events** — point-in-time records ([`instant`]) carrying
//!   structured args, used e.g. for per-stage traffic breakdowns.
//! * **Request scopes** — a thread-local current-request context
//!   ([`request_scope`]): every span or instant that closes inside the
//!   scope carries a `req_id` argument (so one JSONL export reconstructs
//!   each request's full span tree — see [`analyze`]), and the scope
//!   accumulates per-span-name *self*-times, which it returns as a
//!   [`RequestBreakdown`] even while the recorder is off — the substrate
//!   for slow-request logging.
//!
//! Two exporters serialize the recording: newline-delimited JSON
//! ([`export_jsonl`], the machine-checked format — see [`validate_jsonl`])
//! and the Chrome trace-event format ([`export_chrome`]) loadable in
//! Perfetto / `chrome://tracing` for flamegraph views. [`summary_table`]
//! renders an end-of-run text digest.
//!
//! Everything is a no-op until [`set_enabled`]`(true)`; the recorder is a
//! process-wide singleton guarded by plain mutexes (contention is bounded:
//! events are pushed once per span end, not per operation).

pub mod analyze;
mod export;
pub mod json;
mod validate;

pub use export::{export_chrome, export_jsonl, summary_table};
pub use validate::{validate_jsonl, Expectations, ValidationReport};

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering::Relaxed};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Global switch and clock
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn recording on or off. Off (the default) makes every primitive a
/// no-op behind one relaxed atomic load.
pub fn set_enabled(on: bool) {
    if on {
        epoch(); // pin the epoch before the first event
    }
    ENABLED.store(on, Relaxed);
}

/// Is recording currently enabled?
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Relaxed)
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

// ---------------------------------------------------------------------------
// Values
// ---------------------------------------------------------------------------

/// A structured argument value attached to spans and instant events.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

type Args = Vec<(&'static str, Value)>;

// ---------------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub(crate) struct SpanEvent {
    pub(crate) name: &'static str,
    pub(crate) tid: u32,
    pub(crate) depth: u32,
    pub(crate) ts_ns: u64,
    pub(crate) dur_ns: u64,
    pub(crate) args: Args,
}

#[derive(Debug, Clone)]
pub(crate) struct InstantEvent {
    pub(crate) name: &'static str,
    pub(crate) tid: u32,
    pub(crate) ts_ns: u64,
    pub(crate) args: Args,
}

#[derive(Debug, Clone)]
pub(crate) enum Sample {
    Counter {
        name: &'static str,
        ts_ns: u64,
        value: u64,
    },
    Gauge {
        name: &'static str,
        ts_ns: u64,
        value: f64,
    },
}

struct Recorder {
    spans: Mutex<Vec<SpanEvent>>,
    instants: Mutex<Vec<InstantEvent>>,
    samples: Mutex<Vec<Sample>>,
    counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    gauges: Mutex<BTreeMap<&'static str, &'static Gauge>>,
    hists: Mutex<BTreeMap<&'static str, &'static Histogram>>,
    dropped: AtomicU64,
}

/// Hard cap on buffered span/instant events; beyond it events are counted
/// as dropped instead of growing memory without bound.
const MAX_EVENTS: usize = 1 << 20;

fn rec() -> &'static Recorder {
    static REC: OnceLock<Recorder> = OnceLock::new();
    REC.get_or_init(|| Recorder {
        spans: Mutex::new(Vec::new()),
        instants: Mutex::new(Vec::new()),
        samples: Mutex::new(Vec::new()),
        counters: Mutex::new(BTreeMap::new()),
        gauges: Mutex::new(BTreeMap::new()),
        hists: Mutex::new(BTreeMap::new()),
        dropped: AtomicU64::new(0),
    })
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panic while holding one of these locks cannot leave partial state:
    // every critical section is a single push/insert.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn push_span(ev: SpanEvent) {
    let mut spans = lock(&rec().spans);
    if spans.len() < MAX_EVENTS {
        spans.push(ev);
    } else {
        rec().dropped.fetch_add(1, Relaxed);
    }
}

fn push_instant(ev: InstantEvent) {
    let mut instants = lock(&rec().instants);
    if instants.len() < MAX_EVENTS {
        instants.push(ev);
    } else {
        rec().dropped.fetch_add(1, Relaxed);
    }
}

pub(crate) struct Snapshot {
    pub(crate) spans: Vec<SpanEvent>,
    pub(crate) instants: Vec<InstantEvent>,
    pub(crate) samples: Vec<Sample>,
    pub(crate) hists: Vec<(&'static str, HistSnapshot)>,
    pub(crate) dropped: u64,
}

pub(crate) fn snapshot() -> Snapshot {
    // Stamp the current counter/gauge values into the timeline so exports
    // always carry final readings even if the caller never sampled.
    sample_metrics_at(now_ns());
    Snapshot {
        spans: lock(&rec().spans).clone(),
        instants: lock(&rec().instants).clone(),
        samples: lock(&rec().samples).clone(),
        hists: lock(&rec().hists)
            .iter()
            .filter(|(_, h)| h.count.load(Relaxed) > 0)
            .map(|(&n, h)| (n, h.snapshot()))
            .collect(),
        dropped: rec().dropped.load(Relaxed),
    }
}

/// Clear every buffered event and zero all registered metrics. Intended for
/// tests; a reset mid-run breaks counter monotonicity in the export.
pub fn reset() {
    lock(&rec().spans).clear();
    lock(&rec().instants).clear();
    lock(&rec().samples).clear();
    for c in lock(&rec().counters).values() {
        c.value.store(0, Relaxed);
    }
    for g in lock(&rec().gauges).values() {
        g.bits.store(0, Relaxed);
        g.touched.store(false, Relaxed);
    }
    for h in lock(&rec().hists).values() {
        h.reset();
    }
    rec().dropped.store(0, Relaxed);
}

// ---------------------------------------------------------------------------
// Thread identity and span nesting depth
// ---------------------------------------------------------------------------

thread_local! {
    static TID: Cell<u32> = const { Cell::new(u32::MAX) };
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

fn tid() -> u32 {
    TID.with(|t| {
        let v = t.get();
        if v != u32::MAX {
            return v;
        }
        static NEXT: AtomicU32 = AtomicU32::new(0);
        let v = NEXT.fetch_add(1, Relaxed);
        t.set(v);
        v
    })
}

// ---------------------------------------------------------------------------
// Request context
// ---------------------------------------------------------------------------

thread_local! {
    static REQ: RefCell<Option<ReqState>> = const { RefCell::new(None) };
    /// Retired [`ReqState`]s, recycled so the per-request hot path reuses
    /// their vector allocations instead of allocating per scope.
    static REQ_POOL: RefCell<Vec<ReqState>> = const { RefCell::new(Vec::new()) };
}

/// Most pooled states a thread retains; beyond this they are dropped.
const REQ_POOL_CAP: usize = 8;

fn recycle_req_state(mut st: ReqState) {
    REQ_POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < REQ_POOL_CAP {
            st.child_ns.clear();
            st.self_ns.clear();
            pool.push(st);
        }
    });
}

struct ReqState {
    id: u64,
    /// One accumulator per open tracked span on this thread plus a root
    /// sentinel; each entry sums the durations of its direct children, so
    /// a closing span's self-time is `dur − child_ns.pop()`.
    child_ns: Vec<u64>,
    /// Self-time accumulated per span name.
    self_ns: Vec<(&'static str, u64)>,
}

/// The request id of the innermost active [`request_scope`] on this
/// thread, if any.
pub fn current_request() -> Option<u64> {
    REQ.with(|r| r.borrow().as_ref().map(|st| st.id))
}

fn request_active() -> bool {
    REQ.with(|r| r.borrow().is_some())
}

/// Open a child accumulator for a span starting under the active request.
/// Returns false (and records nothing) when no scope is active.
fn open_request_child() -> bool {
    REQ.with(|r| match r.borrow_mut().as_mut() {
        Some(st) => {
            st.child_ns.push(0);
            true
        }
        None => false,
    })
}

/// Close a tracked span: fold its self-time into the per-name table, add
/// its full duration to the parent accumulator, and return the request id.
fn close_request_child(name: &'static str, dur_ns: u64) -> Option<u64> {
    REQ.with(|r| {
        let mut b = r.borrow_mut();
        let st = b.as_mut()?;
        let children = st.child_ns.pop().unwrap_or(0);
        let self_ns = dur_ns.saturating_sub(children);
        match st.self_ns.iter_mut().find(|(n, _)| *n == name) {
            Some(e) => e.1 += self_ns,
            None => st.self_ns.push((name, self_ns)),
        }
        if let Some(parent) = st.child_ns.last_mut() {
            *parent += dur_ns;
        }
        Some(st.id)
    })
}

/// Per-request timing totals returned by [`RequestScope::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestBreakdown {
    /// The id the scope was opened with.
    pub id: u64,
    /// Wall-clock nanoseconds between scope open and finish.
    pub total_ns: u64,
    /// Per-span-name *self*-time (duration minus child spans), sorted
    /// largest first. Empty if no span closed inside the scope.
    pub stages: Vec<(&'static str, u64)>,
}

/// RAII guard installing `id` as this thread's current request; see
/// [`request_scope`].
#[must_use = "the scope attributes spans to the request only while it is alive"]
pub struct RequestScope {
    id: u64,
    prev: Option<ReqState>,
    start_ns: u64,
    armed: bool,
}

/// Install `id` as the current request on this thread. Until the returned
/// scope is finished (or dropped), every [`span`] opened on this thread
/// records a `req_id` argument and contributes its self-time to the
/// scope's [`RequestBreakdown`]; [`instant`] events gain the same
/// argument. Scopes nest (the previous request is restored on exit) and
/// the state is purely thread-local — nothing on the hot path is shared.
pub fn request_scope(id: u64) -> RequestScope {
    let mut st = REQ_POOL.with(|p| p.borrow_mut().pop()).unwrap_or(ReqState {
        id,
        child_ns: Vec::new(),
        self_ns: Vec::new(),
    });
    st.id = id;
    st.child_ns.push(0);
    let prev = REQ.with(|r| r.borrow_mut().replace(st));
    RequestScope {
        id,
        prev,
        start_ns: now_ns(),
        armed: true,
    }
}

impl RequestScope {
    /// End the scope and return the accumulated per-stage self-times.
    /// Costs a sort and an allocation — when the breakdown is not needed,
    /// just drop the scope instead.
    pub fn finish(mut self) -> RequestBreakdown {
        self.armed = false;
        let st = REQ.with(|r| {
            let taken = r.borrow_mut().take();
            *r.borrow_mut() = self.prev.take();
            taken
        });
        let mut stages = match st {
            Some(mut s) => {
                let stages = std::mem::take(&mut s.self_ns);
                recycle_req_state(s);
                stages
            }
            None => Vec::new(),
        };
        stages.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        RequestBreakdown {
            id: self.id,
            total_ns: now_ns().saturating_sub(self.start_ns),
            stages,
        }
    }
}

impl Drop for RequestScope {
    fn drop(&mut self) {
        if self.armed {
            let taken = REQ.with(|r| {
                let taken = r.borrow_mut().take();
                *r.borrow_mut() = self.prev.take();
                taken
            });
            if let Some(st) = taken {
                recycle_req_state(st);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

struct SpanInner {
    name: &'static str,
    ts_ns: u64,
    depth: u32,
    args: Args,
    /// Push a trace event on drop (the recorder was on at open).
    record: bool,
    /// A request scope was active at open: close its child accumulator
    /// (and stamp `req_id`) on drop.
    tracked: bool,
}

/// An RAII span guard: records a complete event (name, thread, depth,
/// start, duration) when dropped. Construct with [`span`].
#[must_use = "a span measures the scope it is bound to; dropping it immediately records nothing useful"]
pub struct Span {
    inner: Option<SpanInner>,
}

/// Open a span. No-op (and allocation-free) while tracing is disabled and
/// no [`request_scope`] is active on this thread.
pub fn span(name: &'static str) -> Span {
    let record = enabled();
    if !record && !request_active() {
        return Span { inner: None };
    }
    let tracked = open_request_child();
    let depth = DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v
    });
    Span {
        inner: Some(SpanInner {
            name,
            ts_ns: now_ns(),
            depth,
            // Sized for the common case (two caller args + req_id) so the
            // builder chain never reallocates on the hot path.
            args: Vec::with_capacity(4),
            record,
            tracked,
        }),
    }
}

impl Span {
    /// Whether this span will record anything at all (recorder on, or a
    /// request scope active at open). Lets callers skip building args
    /// whose `Into<Value>` conversion allocates.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// Attach a structured argument (builder style).
    pub fn arg(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        if let Some(i) = &mut self.inner {
            i.args.push((key, value.into()));
        }
        self
    }

    /// Attach an argument whose value is only known mid-scope.
    pub fn record(&mut self, key: &'static str, value: impl Into<Value>) {
        if let Some(i) = &mut self.inner {
            i.args.push((key, value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(i) = self.inner.take() {
            DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            let dur_ns = now_ns().saturating_sub(i.ts_ns);
            let req_id = if i.tracked {
                close_request_child(i.name, dur_ns)
            } else {
                None
            };
            if i.record {
                let mut args = i.args;
                if let Some(id) = req_id {
                    args.push(("req_id", Value::U64(id)));
                }
                push_span(SpanEvent {
                    name: i.name,
                    tid: tid(),
                    depth: i.depth,
                    ts_ns: i.ts_ns,
                    dur_ns,
                    args,
                });
            }
        }
    }
}

/// A span that *always* measures wall-clock time, recording a trace event
/// only when tracing is enabled. For call sites that must return the
/// duration regardless (e.g. mapping-overhead bookkeeping).
#[must_use = "call finish() to obtain the measured duration"]
pub struct TimedSpan {
    start: Instant,
    span: Span,
}

/// Open a [`TimedSpan`]. The [`Instant`] is taken unconditionally.
pub fn timed_span(name: &'static str) -> TimedSpan {
    TimedSpan {
        start: Instant::now(),
        span: span(name),
    }
}

impl TimedSpan {
    /// Attach a structured argument (builder style).
    pub fn arg(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        self.span = self.span.arg(key, value);
        self
    }

    /// Close the span and return the measured wall-clock duration.
    pub fn finish(self) -> Duration {
        let d = self.start.elapsed();
        drop(self.span);
        d
    }
}

// ---------------------------------------------------------------------------
// Instant events
// ---------------------------------------------------------------------------

/// Builder for a point-in-time event; see [`instant`].
#[must_use = "call emit() to record the event"]
pub struct EventBuilder {
    inner: Option<(&'static str, Args)>,
}

/// Start building an instant event. No-op while tracing is disabled.
pub fn instant(name: &'static str) -> EventBuilder {
    EventBuilder {
        inner: enabled().then(|| (name, Vec::new())),
    }
}

impl EventBuilder {
    /// Attach a structured argument.
    pub fn arg(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        if let Some((_, args)) = &mut self.inner {
            args.push((key, value.into()));
        }
        self
    }

    /// Record the event. Inside a [`request_scope`], a `req_id` argument
    /// is appended automatically.
    pub fn emit(self) {
        if let Some((name, mut args)) = self.inner {
            if let Some(id) = current_request() {
                args.push(("req_id", Value::U64(id)));
            }
            push_instant(InstantEvent {
                name,
                tid: tid(),
                ts_ns: now_ns(),
                args,
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Counters, gauges, histograms
// ---------------------------------------------------------------------------

/// A monotonic counter. Obtain a handle with [`counter`]; handles are
/// `'static` and can be cached (the [`counter_add!`] macro does so).
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add `n`, but only while tracing is enabled (keeps samples monotone
    /// across enable/disable cycles and keeps disabled runs free).
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Relaxed);
        }
    }

    /// Add `n` without re-checking the enable flag (caller already did).
    #[inline]
    pub fn add_unchecked(&self, n: u64) {
        self.value.fetch_add(n, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Relaxed)
    }
}

/// Look up (registering on first use) the counter named `name`.
pub fn counter(name: &'static str) -> &'static Counter {
    lock(&rec().counters).entry(name).or_insert_with(|| {
        Box::leak(Box::new(Counter {
            value: AtomicU64::new(0),
        }))
    })
}

/// Add to a named counter, caching the registry lookup per call site.
/// Compiles to one relaxed load when tracing is disabled.
#[macro_export]
macro_rules! counter_add {
    ($name:literal, $n:expr) => {{
        if $crate::enabled() {
            static CELL: ::std::sync::OnceLock<&'static $crate::Counter> =
                ::std::sync::OnceLock::new();
            CELL.get_or_init(|| $crate::counter($name))
                .add_unchecked($n);
        }
    }};
}

/// A last-value gauge. Obtain with [`gauge`].
pub struct Gauge {
    bits: AtomicU64,
    /// Set at least once since the last reset — a touched gauge is sampled
    /// even at 0.0, so exports show levels returning to zero (the
    /// set/unset pairing `trace-validate` can then check).
    touched: AtomicBool,
}

impl Gauge {
    /// Set the gauge (no-op while tracing is disabled).
    #[inline]
    pub fn set(&self, v: f64) {
        if enabled() {
            self.bits.store(v.to_bits(), Relaxed);
            self.touched.store(true, Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Relaxed))
    }
}

/// Look up (registering on first use) the gauge named `name`.
pub fn gauge(name: &'static str) -> &'static Gauge {
    lock(&rec().gauges).entry(name).or_insert_with(|| {
        Box::leak(Box::new(Gauge {
            bits: AtomicU64::new(0),
            touched: AtomicBool::new(false),
        }))
    })
}

/// Number of log2 buckets: bucket `k` holds values in `[2^(k−1), 2^k)`
/// (bucket 0 holds exactly 0), so 65 buckets cover all of `u64`.
pub const HIST_BUCKETS: usize = 65;

/// A lock-free log2-bucket histogram with count/sum/min/max.
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

/// A point-in-time copy of a histogram's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Occupied `(bucket_index, count)` pairs; values in bucket `k` lie in
    /// `[2^(k−1), 2^k)`.
    pub buckets: Vec<(u32, u64)>,
}

/// The `[lo, hi]` value range of log2 bucket `k`.
pub fn bucket_bounds(k: u32) -> (u64, u64) {
    match k {
        0 => (0, 0),
        64.. => (1u64 << 63, u64::MAX),
        k => (1u64 << (k - 1), (1u64 << k) - 1),
    }
}

impl HistSnapshot {
    /// The `q`-quantile (`0 < q ≤ 1`) estimated from the log2 buckets:
    /// find the bucket holding the target rank, linearly interpolate
    /// inside it, and clamp to the observed min/max (so p100 is exactly
    /// `max` and the coarse buckets cannot over-report). 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for &(k, c) in &self.buckets {
            cum += c;
            if cum >= target {
                let (lo, hi) = bucket_bounds(k);
                let into = (target - (cum - c)) as f64 / c as f64;
                let v = lo as f64 + into * (hi - lo) as f64;
                return (v as u64).clamp(self.min, self.max.max(self.min));
            }
        }
        self.max
    }

    /// The (p50, p95, p99) triple — the percentile summary exposition and
    /// benches report.
    pub fn percentiles(&self) -> (u64, u64, u64) {
        (
            self.quantile(0.50),
            self.quantile(0.95),
            self.quantile(0.99),
        )
    }
}

impl Histogram {
    /// A standalone (unregistered) histogram for embedding in always-on
    /// metric structs; pair with [`Histogram::record_always`], since the
    /// gated [`Histogram::record`] is meant for registry histograms.
    pub const fn new() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
        }
    }

    /// Record a value while tracing is enabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if !enabled() {
            return;
        }
        self.record_always(v);
    }

    /// Record a value regardless of the recorder switch — for histograms
    /// owned by always-on metric structs rather than the trace registry.
    #[inline]
    pub fn record_always(&self, v: u64) {
        let idx = (64 - v.leading_zeros()) as usize; // 0 for v == 0
        self.buckets[idx].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        self.min.fetch_min(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    /// Record a duration, in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos() as u64);
    }

    /// Record a non-negative float (e.g. simulated seconds scaled to ns),
    /// saturating at `u64::MAX`.
    #[inline]
    pub fn record_f64(&self, v: f64) {
        if v.is_finite() && v >= 0.0 {
            self.record(if v >= u64::MAX as f64 {
                u64::MAX
            } else {
                v as u64
            });
        }
    }

    /// A point-in-time copy of count/sum/min/max and the occupied buckets.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            count: self.count.load(Relaxed),
            sum: self.sum.load(Relaxed),
            min: self.min.load(Relaxed),
            max: self.max.load(Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, b)| b.load(Relaxed) > 0)
                .map(|(i, b)| (i as u32, b.load(Relaxed)))
                .collect(),
        }
    }

    fn reset(&self) {
        self.count.store(0, Relaxed);
        self.sum.store(0, Relaxed);
        self.min.store(u64::MAX, Relaxed);
        self.max.store(0, Relaxed);
        for b in &self.buckets {
            b.store(0, Relaxed);
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Look up (registering on first use) the histogram named `name`.
pub fn histogram(name: &'static str) -> &'static Histogram {
    lock(&rec().hists)
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(Histogram::new())))
}

// ---------------------------------------------------------------------------
// Metric sampling
// ---------------------------------------------------------------------------

/// Stamp the current value of every registered counter and gauge into the
/// timeline. Call between phases so the exported series show progression;
/// the exporters take one final sample automatically.
pub fn sample_metrics() {
    if !enabled() {
        return;
    }
    sample_metrics_at(now_ns());
}

fn sample_metrics_at(ts_ns: u64) {
    let mut out: Vec<Sample> = Vec::new();
    for (&name, c) in lock(&rec().counters).iter() {
        out.push(Sample::Counter {
            name,
            ts_ns,
            value: c.get(),
        });
    }
    for (&name, g) in lock(&rec().gauges).iter() {
        // Touched gauges sample even at zero (so a level that returned to
        // zero shows it); never-set gauges stay out of the export.
        if g.touched.load(Relaxed) {
            let value = g.get();
            out.push(Sample::Gauge { name, ts_ns, value });
        }
    }
    lock(&rec().samples).extend(out);
}

#[cfg(test)]
pub(crate) fn test_guard() -> MutexGuard<'static, ()> {
    // The recorder is process-global; tests that enable it must serialize.
    static GUARD: Mutex<()> = Mutex::new(());
    let g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
    set_enabled(false);
    reset();
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_inert() {
        let _g = test_guard();
        {
            let _s = span("noop").arg("k", 1u64);
        }
        counter("noop.c").add(5);
        gauge("noop.g").set(1.5);
        histogram("noop.h").record(42);
        instant("noop.e").arg("x", 1u64).emit();
        sample_metrics();
        assert_eq!(counter("noop.c").get(), 0);
        assert_eq!(gauge("noop.g").get(), 0.0);
        assert!(lock(&rec().spans).is_empty());
        assert!(lock(&rec().instants).is_empty());
        assert!(lock(&rec().samples).is_empty());
    }

    #[test]
    fn spans_record_nesting_and_duration() {
        let _g = test_guard();
        set_enabled(true);
        {
            let _outer = span("outer").arg("p", 8u64);
            std::thread::sleep(Duration::from_millis(2));
            {
                let _inner = span("inner");
            }
        }
        set_enabled(false);
        let spans = lock(&rec().spans).clone();
        assert_eq!(spans.len(), 2);
        // Children drop (and record) before parents.
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[1].name, "outer");
        assert_eq!(spans[0].depth, 1);
        assert_eq!(spans[1].depth, 0);
        assert!(spans[1].dur_ns >= 2_000_000, "outer spans the sleep");
        // inner lies within outer
        let (o, i) = (&spans[1], &spans[0]);
        assert!(i.ts_ns >= o.ts_ns && i.ts_ns + i.dur_ns <= o.ts_ns + o.dur_ns);
        assert_eq!(o.args, vec![("p", Value::U64(8))]);
    }

    #[test]
    fn timed_span_measures_even_when_disabled() {
        let _g = test_guard();
        let ts = timed_span("work");
        std::thread::sleep(Duration::from_millis(2));
        let d = ts.finish();
        assert!(d >= Duration::from_millis(2));
        assert!(lock(&rec().spans).is_empty(), "disabled: no event recorded");
    }

    #[test]
    fn counters_accumulate_and_sample_monotone() {
        let _g = test_guard();
        set_enabled(true);
        let c = counter("t.ops");
        c.add(3);
        sample_metrics();
        c.add(4);
        counter_add!("t.ops", 1);
        sample_metrics();
        set_enabled(false);
        assert_eq!(c.get(), 8);
        let vals: Vec<u64> = lock(&rec().samples)
            .iter()
            .filter_map(|s| match s {
                Sample::Counter { name, value, .. } if *name == "t.ops" => Some(*value),
                _ => None,
            })
            .collect();
        assert_eq!(vals, vec![3, 8]);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let _g = test_guard();
        set_enabled(true);
        let h = histogram("t.h");
        for v in [0u64, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        set_enabled(false);
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1010);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1000);
        // 0→bucket 0, 1→1, 2..3→2, 4→3, 1000→10
        assert_eq!(s.buckets, vec![(0, 1), (1, 1), (2, 2), (3, 1), (10, 1)]);
    }

    #[test]
    fn request_scope_tags_spans_and_accumulates_self_times() {
        let _g = test_guard();
        set_enabled(true);
        let scope = request_scope(42);
        {
            let _outer = span("req.outer");
            std::thread::sleep(Duration::from_millis(2));
            {
                let _inner = span("req.inner");
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        instant("req.evt").emit();
        let bd = scope.finish();
        set_enabled(false);
        assert_eq!(bd.id, 42);
        assert!(bd.total_ns >= 4_000_000);
        let stages: BTreeMap<&str, u64> = bd.stages.iter().copied().collect();
        assert!(stages["req.inner"] >= 2_000_000);
        // outer's self excludes inner's time
        let outer_self = stages["req.outer"];
        let spans = lock(&rec().spans).clone();
        let outer = spans.iter().find(|s| s.name == "req.outer").unwrap();
        let inner = spans.iter().find(|s| s.name == "req.inner").unwrap();
        assert_eq!(outer_self, outer.dur_ns - inner.dur_ns);
        for s in [outer, inner] {
            assert!(
                s.args.contains(&("req_id", Value::U64(42))),
                "{} lacks req_id: {:?}",
                s.name,
                s.args
            );
        }
        let ev = &lock(&rec().instants).clone()[0];
        assert!(ev.args.contains(&("req_id", Value::U64(42))));
        assert_eq!(
            current_request(),
            None,
            "finish restores the previous scope"
        );
    }

    #[test]
    fn request_scope_breaks_down_without_the_recorder() {
        let _g = test_guard();
        assert!(!enabled());
        let scope = request_scope(7);
        {
            let _s = span("dark.work");
            std::thread::sleep(Duration::from_millis(2));
        }
        let bd = scope.finish();
        assert_eq!(bd.id, 7);
        assert_eq!(bd.stages.len(), 1);
        assert_eq!(bd.stages[0].0, "dark.work");
        assert!(bd.stages[0].1 >= 2_000_000);
        assert!(
            lock(&rec().spans).is_empty(),
            "recorder off: nothing buffered"
        );
    }

    #[test]
    fn request_scopes_nest_and_restore() {
        let _g = test_guard();
        let outer = request_scope(1);
        assert_eq!(current_request(), Some(1));
        let inner = request_scope(2);
        assert_eq!(current_request(), Some(2));
        drop(inner);
        assert_eq!(current_request(), Some(1));
        let bd = outer.finish();
        assert_eq!(bd.id, 1);
        assert_eq!(current_request(), None);
    }

    #[test]
    fn quantiles_interpolate_and_clamp() {
        let _g = test_guard();
        set_enabled(true);
        let h = histogram("t.q");
        for v in 1..=100u64 {
            h.record(v);
        }
        set_enabled(false);
        let s = h.snapshot();
        let (p50, p95, p99) = s.percentiles();
        // log2 buckets are coarse: accept the right bucket, not the exact
        // rank, and the clamp pins the extremes.
        assert!((32..=64).contains(&p50), "p50 = {p50}");
        assert!((64..=100).contains(&p95), "p95 = {p95}");
        assert!((64..=100).contains(&p99), "p99 = {p99}");
        assert_eq!(s.quantile(1.0), 100, "p100 clamps to max");
        let one = HistSnapshot {
            count: 1,
            sum: 7,
            min: 7,
            max: 7,
            buckets: vec![(3, 1)],
        };
        assert_eq!(one.quantile(0.5), 7);
        let empty = HistSnapshot {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: Vec::new(),
        };
        assert_eq!(empty.quantile(0.5), 0);
    }

    #[test]
    fn touched_gauges_sample_at_zero() {
        let _g = test_guard();
        set_enabled(true);
        gauge("t.level").set(3.0);
        gauge("t.level").set(0.0);
        gauge("t.never");
        sample_metrics();
        set_enabled(false);
        let samples = lock(&rec().samples).clone();
        let zeroed = samples.iter().any(|s| {
            matches!(s, Sample::Gauge { name, value, .. } if *name == "t.level" && *value == 0.0)
        });
        assert!(zeroed, "a touched gauge samples even at zero");
        let never = samples
            .iter()
            .any(|s| matches!(s, Sample::Gauge { name, .. } if *name == "t.never"));
        assert!(!never, "a never-set gauge stays out of the export");
    }

    #[test]
    fn event_cap_counts_drops() {
        let _g = test_guard();
        set_enabled(true);
        lock(&rec().spans).resize(
            MAX_EVENTS,
            SpanEvent {
                name: "pad",
                tid: 0,
                depth: 0,
                ts_ns: 0,
                dur_ns: 0,
                args: Vec::new(),
            },
        );
        {
            let _s = span("over");
        }
        set_enabled(false);
        assert_eq!(rec().dropped.load(Relaxed), 1);
        assert_eq!(lock(&rec().spans).len(), MAX_EVENTS);
    }
}
