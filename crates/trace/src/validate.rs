//! Schema validation for the JSONL export, used by the `trace-validate`
//! binary (CI's trace-smoke step) and by tests.
//!
//! Checks, in order:
//! 1. every line parses as a JSON object of a known `type` with the
//!    required fields of the right shapes (histogram lines additionally
//!    need strictly increasing bucket indices that sum to `count`);
//! 2. spans nest per thread — sorted by start time, the intervals form a
//!    laminar family (each pair nested or disjoint, never overlapping);
//! 3. counter samples are monotone non-decreasing per counter name;
//! 4. caller-supplied expectations hold (named spans/instants present,
//!    named counters present with a nonzero final value, named gauges
//!    set and returned to zero, named spans carrying a `req_id` arg on
//!    every occurrence).

use std::collections::{BTreeMap, BTreeSet};

use crate::json::{parse, Json};

/// Names the caller requires to be present in the trace.
#[derive(Debug, Clone, Default)]
pub struct Expectations {
    /// Span names that must appear at least once.
    pub spans: Vec<String>,
    /// Counter names that must appear with a nonzero final value.
    pub counters: Vec<String>,
    /// Instant-event names that must appear at least once.
    pub instants: Vec<String>,
    /// Gauge names that must appear and whose *final* sample is 0 — the
    /// set/unset pairing check for level gauges (e.g. busy workers must
    /// all have gone idle by end of run).
    pub zeroed_gauges: Vec<String>,
    /// Span names whose every occurrence must carry an integer `req_id`
    /// argument (request attribution never silently dropped).
    pub req_id_spans: Vec<String>,
}

/// What a successful validation saw.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationReport {
    /// Total lines checked.
    pub lines: usize,
    /// Span lines.
    pub spans: usize,
    /// Instant-event lines.
    pub instants: usize,
    /// Counter-sample lines.
    pub counter_samples: usize,
    /// Distinct thread ids seen on spans.
    pub threads: usize,
}

fn need_u64(v: &Json, key: &str, line_no: usize) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("line {line_no}: missing or non-integer \"{key}\""))
}

fn need_str<'a>(v: &'a Json, key: &str, line_no: usize) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("line {line_no}: missing or non-string \"{key}\""))
}

fn need_args(v: &Json, line_no: usize) -> Result<(), String> {
    match v.get("args") {
        Some(Json::Obj(_)) | None => Ok(()),
        Some(_) => Err(format!("line {line_no}: \"args\" is not an object")),
    }
}

/// Validate a JSONL export against the schema and `exp`. Returns a report
/// on success, or a message naming the first violated rule.
pub fn validate_jsonl(text: &str, exp: &Expectations) -> Result<ValidationReport, String> {
    // (tid, ts, dur, name) per span, for the nesting check.
    let mut spans: Vec<(u64, u64, u64, String)> = Vec::new();
    let mut counter_series: BTreeMap<String, Vec<u64>> = BTreeMap::new();
    let mut span_names: BTreeSet<String> = BTreeSet::new();
    let mut instant_names: BTreeSet<String> = BTreeSet::new();
    // Per span name: occurrences lacking an integer args.req_id.
    let mut spans_missing_req_id: BTreeMap<String, usize> = BTreeMap::new();
    let mut gauge_last: BTreeMap<String, f64> = BTreeMap::new();
    let mut lines = 0usize;
    let mut instants = 0usize;
    let mut saw_meta = false;

    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        if line.trim().is_empty() {
            return Err(format!("line {line_no}: empty line"));
        }
        let v = parse(line).map_err(|e| format!("line {line_no}: {e}"))?;
        lines += 1;
        let kind = need_str(&v, "type", line_no)?.to_string();
        match kind.as_str() {
            "meta" => {
                need_str(&v, "format", line_no)?;
                saw_meta = true;
            }
            "span" => {
                let name = need_str(&v, "name", line_no)?.to_string();
                let tid = need_u64(&v, "tid", line_no)?;
                need_u64(&v, "depth", line_no)?;
                let ts = need_u64(&v, "ts", line_no)?;
                let dur = need_u64(&v, "dur", line_no)?;
                need_args(&v, line_no)?;
                let has_req_id = v
                    .get("args")
                    .and_then(|a| a.get("req_id"))
                    .and_then(Json::as_u64)
                    .is_some();
                if !has_req_id {
                    *spans_missing_req_id.entry(name.clone()).or_default() += 1;
                }
                span_names.insert(name.clone());
                spans.push((tid, ts, dur, name));
            }
            "instant" => {
                let name = need_str(&v, "name", line_no)?.to_string();
                need_u64(&v, "tid", line_no)?;
                need_u64(&v, "ts", line_no)?;
                need_args(&v, line_no)?;
                instant_names.insert(name);
                instants += 1;
            }
            "counter" => {
                let name = need_str(&v, "name", line_no)?.to_string();
                need_u64(&v, "ts", line_no)?;
                let value = need_u64(&v, "value", line_no)?;
                counter_series.entry(name).or_default().push(value);
            }
            "gauge" => {
                let name = need_str(&v, "name", line_no)?.to_string();
                need_u64(&v, "ts", line_no)?;
                let value = v
                    .get("value")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("line {line_no}: gauge without numeric value"))?;
                gauge_last.insert(name, value);
            }
            "hist" => {
                need_str(&v, "name", line_no)?;
                let count = need_u64(&v, "count", line_no)?;
                need_u64(&v, "sum", line_no)?;
                let buckets = v
                    .get("buckets")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| format!("line {line_no}: hist without buckets array"))?;
                let mut total = 0u64;
                let mut last_idx: Option<u64> = None;
                for b in buckets {
                    let pair = b
                        .as_arr()
                        .filter(|p| p.len() == 2)
                        .ok_or_else(|| format!("line {line_no}: malformed bucket"))?;
                    let idx = pair[0]
                        .as_u64()
                        .ok_or_else(|| format!("line {line_no}: malformed bucket"))?;
                    let c = pair[1]
                        .as_u64()
                        .ok_or_else(|| format!("line {line_no}: malformed bucket"))?;
                    if last_idx.is_some_and(|prev| idx <= prev) {
                        return Err(format!(
                            "line {line_no}: hist bucket indices not strictly increasing \
                             ({:?} then {idx})",
                            last_idx.unwrap()
                        ));
                    }
                    last_idx = Some(idx);
                    total += c;
                }
                if total != count {
                    return Err(format!(
                        "line {line_no}: hist bucket counts sum to {total}, count says {count}"
                    ));
                }
            }
            "dropped" => {
                need_u64(&v, "count", line_no)?;
            }
            other => return Err(format!("line {line_no}: unknown type \"{other}\"")),
        }
    }
    if !saw_meta {
        return Err("no meta line".into());
    }

    // Nesting: per tid, sweep spans sorted by (start asc, dur desc) with a
    // stack of open intervals; a span starting inside one must end inside.
    let threads: BTreeSet<u64> = spans.iter().map(|s| s.0).collect();
    let mut sorted = spans.clone();
    sorted.sort_by_key(|s| (s.0, s.1, std::cmp::Reverse(s.2)));
    let mut stack: Vec<(u64, u64, u64, &str)> = Vec::new(); // (tid, ts, end, name)
    for (tid, ts, dur, name) in &sorted {
        let end = ts + dur;
        while let Some(top) = stack.last() {
            if top.0 != *tid || top.2 <= *ts {
                stack.pop();
            } else {
                break;
            }
        }
        if let Some(top) = stack.last() {
            if end > top.2 {
                return Err(format!(
                    "span \"{name}\" [{ts}, {end}) overlaps \"{}\" [{}, {}) on tid {tid}",
                    top.3, top.1, top.2
                ));
            }
        }
        stack.push((*tid, *ts, end, name));
    }

    // Counter monotonicity, in file order per name.
    for (name, series) in &counter_series {
        for w in series.windows(2) {
            if w[1] < w[0] {
                return Err(format!(
                    "counter \"{name}\" not monotone: {} then {}",
                    w[0], w[1]
                ));
            }
        }
    }

    // Expectations.
    for want in &exp.spans {
        if !span_names.contains(want) {
            return Err(format!("expected span \"{want}\" not found"));
        }
    }
    for want in &exp.instants {
        if !instant_names.contains(want) {
            return Err(format!("expected instant event \"{want}\" not found"));
        }
    }
    for want in &exp.counters {
        let ok = counter_series
            .get(want)
            .and_then(|s| s.last())
            .is_some_and(|&v| v > 0);
        if !ok {
            return Err(format!(
                "expected counter \"{want}\" missing or zero at end of run"
            ));
        }
    }
    for want in &exp.zeroed_gauges {
        match gauge_last.get(want) {
            None => return Err(format!("expected gauge \"{want}\" never sampled")),
            Some(&v) if v != 0.0 => {
                return Err(format!(
                    "gauge \"{want}\" ends at {v}, expected it back at 0"
                ))
            }
            Some(_) => {}
        }
    }
    for want in &exp.req_id_spans {
        if !span_names.contains(want) {
            return Err(format!("expected span \"{want}\" not found"));
        }
        if let Some(&missing) = spans_missing_req_id.get(want) {
            if missing > 0 {
                return Err(format!(
                    "{missing} \"{want}\" span(s) lack an integer \"req_id\" arg"
                ));
            }
        }
    }

    Ok(ValidationReport {
        lines,
        spans: spans.len(),
        instants,
        counter_samples: counter_series.values().map(Vec::len).sum(),
        threads: threads.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const META: &str =
        r#"{"type":"meta","format":"tarr-trace","version":1,"clock":"ns-since-enable"}"#;

    fn doc(lines: &[&str]) -> String {
        let mut s = String::from(META);
        for l in lines {
            s.push('\n');
            s.push_str(l);
        }
        s
    }

    #[test]
    fn accepts_a_well_formed_trace() {
        let text = doc(&[
            r#"{"type":"span","name":"inner","tid":0,"depth":1,"ts":10,"dur":5,"args":{}}"#,
            r#"{"type":"span","name":"outer","tid":0,"depth":0,"ts":0,"dur":100,"args":{"p":4}}"#,
            r#"{"type":"instant","name":"evt","tid":0,"ts":12,"args":{"bytes":7}}"#,
            r#"{"type":"counter","name":"c","ts":50,"value":3}"#,
            r#"{"type":"counter","name":"c","ts":90,"value":8}"#,
            r#"{"type":"gauge","name":"g","ts":90,"value":1.5}"#,
            r#"{"type":"hist","name":"h","count":2,"sum":3,"min":1,"max":2,"buckets":[[1,1],[2,1]]}"#,
        ]);
        let exp = Expectations {
            spans: vec!["outer".into()],
            counters: vec!["c".into()],
            instants: vec!["evt".into()],
            ..Default::default()
        };
        let r = validate_jsonl(&text, &exp).unwrap();
        assert_eq!(r.spans, 2);
        assert_eq!(r.instants, 1);
        assert_eq!(r.threads, 1);
    }

    #[test]
    fn rejects_overlapping_spans() {
        let text = doc(&[
            r#"{"type":"span","name":"a","tid":0,"depth":0,"ts":0,"dur":10}"#,
            r#"{"type":"span","name":"b","tid":0,"depth":0,"ts":5,"dur":10}"#,
        ]);
        let err = validate_jsonl(&text, &Expectations::default()).unwrap_err();
        assert!(err.contains("overlaps"), "{err}");
    }

    #[test]
    fn overlap_on_other_thread_is_fine() {
        let text = doc(&[
            r#"{"type":"span","name":"a","tid":0,"depth":0,"ts":0,"dur":10}"#,
            r#"{"type":"span","name":"b","tid":1,"depth":0,"ts":5,"dur":10}"#,
        ]);
        let r = validate_jsonl(&text, &Expectations::default()).unwrap();
        assert_eq!(r.threads, 2);
    }

    #[test]
    fn rejects_non_monotone_counter() {
        let text = doc(&[
            r#"{"type":"counter","name":"c","ts":1,"value":5}"#,
            r#"{"type":"counter","name":"c","ts":2,"value":4}"#,
        ]);
        let err = validate_jsonl(&text, &Expectations::default()).unwrap_err();
        assert!(err.contains("monotone"), "{err}");
    }

    #[test]
    fn rejects_bad_json_and_unknown_types() {
        let err = validate_jsonl(&doc(&["{oops"]), &Expectations::default()).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err =
            validate_jsonl(&doc(&[r#"{"type":"mystery"}"#]), &Expectations::default()).unwrap_err();
        assert!(err.contains("unknown type"), "{err}");
    }

    #[test]
    fn rejects_zero_expected_counter() {
        let text = doc(&[r#"{"type":"counter","name":"c","ts":1,"value":0}"#]);
        let exp = Expectations {
            counters: vec!["c".into()],
            ..Default::default()
        };
        assert!(validate_jsonl(&text, &exp).is_err());
    }

    #[test]
    fn rejects_hist_count_mismatch() {
        let text = doc(&[
            r#"{"type":"hist","name":"h","count":3,"sum":3,"min":1,"max":2,"buckets":[[1,1]]}"#,
        ]);
        assert!(validate_jsonl(&text, &Expectations::default()).is_err());
    }

    #[test]
    fn rejects_non_monotone_hist_buckets() {
        let text = doc(&[
            r#"{"type":"hist","name":"h","count":2,"sum":3,"min":1,"max":2,"buckets":[[2,1],[1,1]]}"#,
        ]);
        let err = validate_jsonl(&text, &Expectations::default()).unwrap_err();
        assert!(err.contains("strictly increasing"), "{err}");
    }

    #[test]
    fn checks_gauge_returns_to_zero() {
        let up_down = doc(&[
            r#"{"type":"gauge","name":"busy","ts":1,"value":3}"#,
            r#"{"type":"gauge","name":"busy","ts":2,"value":0}"#,
        ]);
        let exp = Expectations {
            zeroed_gauges: vec!["busy".into()],
            ..Default::default()
        };
        validate_jsonl(&up_down, &exp).unwrap();

        let stuck = doc(&[r#"{"type":"gauge","name":"busy","ts":1,"value":3}"#]);
        let err = validate_jsonl(&stuck, &exp).unwrap_err();
        assert!(err.contains("expected it back at 0"), "{err}");

        let absent = doc(&[r#"{"type":"counter","name":"c","ts":1,"value":1}"#]);
        let err = validate_jsonl(&absent, &exp).unwrap_err();
        assert!(err.contains("never sampled"), "{err}");
    }

    #[test]
    fn checks_every_named_span_carries_req_id() {
        let tagged = doc(&[
            r#"{"type":"span","name":"serve.handle","tid":0,"depth":0,"ts":0,"dur":5,"args":{"req_id":1}}"#,
            r#"{"type":"span","name":"serve.handle","tid":0,"depth":0,"ts":10,"dur":5,"args":{"req_id":2}}"#,
        ]);
        let exp = Expectations {
            req_id_spans: vec!["serve.handle".into()],
            ..Default::default()
        };
        validate_jsonl(&tagged, &exp).unwrap();

        let untagged = doc(&[
            r#"{"type":"span","name":"serve.handle","tid":0,"depth":0,"ts":0,"dur":5,"args":{"req_id":1}}"#,
            r#"{"type":"span","name":"serve.handle","tid":0,"depth":0,"ts":10,"dur":5,"args":{}}"#,
        ]);
        let err = validate_jsonl(&untagged, &exp).unwrap_err();
        assert!(err.contains("lack an integer"), "{err}");

        let missing = doc(&[r#"{"type":"counter","name":"c","ts":1,"value":1}"#]);
        let err = validate_jsonl(&missing, &exp).unwrap_err();
        assert!(err.contains("not found"), "{err}");
    }
}
