//! Offline analyzer for tarr-trace JSONL exports.
//!
//! ```text
//! trace-analyze FILE [--top N] [--min-requests N]
//! ```
//!
//! Prints, from the `req_id`-tagged spans of the export: the request
//! count, the top-N slowest requests as indented span trees with
//! self-time and critical-path attribution, and a per-span-name aggregate
//! table. Exits nonzero when the file is unreadable/malformed or fewer
//! than `--min-requests` requests were found (the CI guard that a traced
//! serve session actually produced attributable requests).

use tarr_trace::analyze::{analyze, critical_path, Node};

fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

fn print_node(node: &Node, indent: usize) {
    println!(
        "{:indent$}{} {} (self {})",
        "",
        node.name,
        fmt_ns(node.dur_ns),
        fmt_ns(node.self_ns),
        indent = indent
    );
    for child in &node.children {
        print_node(child, indent + 2);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut file: Option<String> = None;
    let mut top = 5usize;
    let mut min_requests = 1usize;
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| {
                eprintln!("error: {} needs a value", args[*i - 1]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--top" => {
                top = take(&mut i).parse().unwrap_or_else(|e| {
                    eprintln!("error: --top: {e}");
                    std::process::exit(2);
                })
            }
            "--min-requests" => {
                min_requests = take(&mut i).parse().unwrap_or_else(|e| {
                    eprintln!("error: --min-requests: {e}");
                    std::process::exit(2);
                })
            }
            "--help" | "-h" => {
                eprintln!("usage: trace-analyze FILE [--top N] [--min-requests N]");
                std::process::exit(0);
            }
            other if file.is_none() && !other.starts_with('-') => file = Some(other.to_string()),
            other => {
                eprintln!("error: unexpected argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let Some(file) = file else {
        eprintln!("error: no trace file given");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {file}: {e}");
            std::process::exit(2);
        }
    };
    let a = match analyze(&text) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{file}: INVALID — {e}");
            std::process::exit(1);
        }
    };

    let tagged: usize = a.requests.iter().map(|r| count_nodes(&r.roots)).sum();
    println!(
        "{file}: {} requests, {} request-tagged spans, {} untagged",
        a.requests.len(),
        tagged,
        a.untagged_spans
    );

    let mut slowest: Vec<_> = a.requests.iter().collect();
    slowest.sort_by_key(|r| std::cmp::Reverse(r.total_ns));
    if !slowest.is_empty() {
        println!("\n== top {} slowest requests ==", top.min(slowest.len()));
        for r in slowest.iter().take(top) {
            let op = r.op.as_deref().unwrap_or("?");
            let cluster = r.cluster.as_deref().unwrap_or("-");
            let wait = r.queue_wait_ns.map_or_else(|| "-".into(), fmt_ns);
            println!(
                "req {} op={op} cluster={cluster} queue_wait={wait} service={}",
                r.id,
                fmt_ns(r.total_ns)
            );
            for root in &r.roots {
                print_node(root, 2);
            }
            let cp: Vec<String> = critical_path(r)
                .iter()
                .map(|(n, _, s)| format!("{n}({})", fmt_ns(*s)))
                .collect();
            println!("  critical path: {}", cp.join(" -> "));
        }
    }

    if !a.by_name.is_empty() {
        println!("\n== per-span-name aggregates ==");
        println!(
            "{:<40} {:>8} {:>12} {:>12} {:>12}",
            "span", "count", "total", "self", "max"
        );
        for agg in &a.by_name {
            println!(
                "{:<40} {:>8} {:>12} {:>12} {:>12}",
                agg.name,
                agg.count,
                fmt_ns(agg.total_ns),
                fmt_ns(agg.self_ns),
                fmt_ns(agg.max_ns)
            );
        }
    }

    if a.requests.len() < min_requests {
        eprintln!(
            "{file}: FAILED — {} request(s) found, --min-requests {min_requests}",
            a.requests.len()
        );
        std::process::exit(1);
    }
}

fn count_nodes(nodes: &[Node]) -> usize {
    nodes
        .iter()
        .map(|n| 1 + count_nodes(&n.children))
        .sum::<usize>()
}
