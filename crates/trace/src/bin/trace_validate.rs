//! CI smoke validator for tarr-trace JSONL exports.
//!
//! ```text
//! trace-validate FILE [--expect-span NAME]... [--expect-counter NAME]...
//!                     [--expect-instant NAME]... [--expect-gauge-zeroed NAME]...
//!                     [--expect-req-id-span NAME]...
//! ```
//!
//! Exits nonzero (with a message naming the first violated rule) unless
//! every line parses, spans nest per thread, counters are monotone, and
//! every expectation is met.

use tarr_trace::{validate_jsonl, Expectations};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut file: Option<String> = None;
    let mut exp = Expectations::default();
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| {
                eprintln!("error: {} needs a value", args[*i - 1]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--expect-span" => exp.spans.push(take(&mut i)),
            "--expect-counter" => exp.counters.push(take(&mut i)),
            "--expect-instant" => exp.instants.push(take(&mut i)),
            "--expect-gauge-zeroed" => exp.zeroed_gauges.push(take(&mut i)),
            "--expect-req-id-span" => exp.req_id_spans.push(take(&mut i)),
            "--help" | "-h" => {
                eprintln!(
                    "usage: trace-validate FILE [--expect-span N]... \
                     [--expect-counter N]... [--expect-instant N]... \
                     [--expect-gauge-zeroed N]... [--expect-req-id-span N]..."
                );
                std::process::exit(0);
            }
            other if file.is_none() && !other.starts_with('-') => file = Some(other.to_string()),
            other => {
                eprintln!("error: unexpected argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let Some(file) = file else {
        eprintln!("error: no trace file given");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {file}: {e}");
            std::process::exit(2);
        }
    };
    match validate_jsonl(&text, &exp) {
        Ok(r) => {
            println!(
                "{file}: OK — {} lines, {} spans on {} thread(s), {} instants, {} counter samples",
                r.lines, r.spans, r.threads, r.instants, r.counter_samples
            );
        }
        Err(e) => {
            eprintln!("{file}: INVALID — {e}");
            std::process::exit(1);
        }
    }
}
