//! Property-based tests for the mapping heuristics and baselines.

use proptest::prelude::*;
use tarr_collectives::allgather::{recursive_doubling, ring};
use tarr_collectives::pattern_graph;
use tarr_mapping::{
    bbmh, bgmh, greedy_map, invert, is_permutation, mapping_cost, rdmh, rmh, scotch_like_map,
    InitialMapping,
};
use tarr_topo::{Cluster, DistanceConfig, DistanceMatrix};

fn matrix_for(layout: InitialMapping, nodes: usize) -> (Cluster, DistanceMatrix) {
    let cluster = Cluster::gpc(nodes);
    let p = cluster.total_cores();
    let cores = layout.layout(&cluster, p);
    let d = DistanceMatrix::build(&cluster, &cores, &DistanceConfig::default());
    (cluster, d)
}

fn arb_layout() -> impl Strategy<Value = InitialMapping> {
    prop::sample::select(InitialMapping::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every heuristic yields a permutation fixing rank 0, for every layout
    /// and power-of-two node count.
    #[test]
    fn heuristics_yield_permutations(layout in arb_layout(), ln in 0usize..5, seed in any::<u64>()) {
        let nodes = 1usize << ln;
        let (_c, d) = matrix_for(layout, nodes);
        for m in [rdmh(&d, seed), rmh(&d, seed), bbmh(&d, seed), bgmh(&d, seed)] {
            prop_assert!(is_permutation(&m));
            prop_assert_eq!(m[0], 0);
        }
    }

    /// The general mappers also yield permutations.
    #[test]
    fn general_mappers_yield_permutations(layout in arb_layout(), ln in 0usize..4, seed in any::<u64>()) {
        let nodes = 1usize << ln;
        let (_c, d) = matrix_for(layout, nodes);
        let p = d.len() as u32;
        let g = pattern_graph(&ring(p), 512);
        prop_assert!(is_permutation(&scotch_like_map(&g, &d, seed)));
        prop_assert!(is_permutation(&greedy_map(&g, &d)));
    }

    /// RMH never increases the ring cost relative to the initial layout
    /// (the paper's "no degradation" goal), for every initial layout.
    #[test]
    fn rmh_never_degrades(layout in arb_layout(), ln in 1usize..5, seed in any::<u64>()) {
        let nodes = 1usize << ln;
        let (_c, d) = matrix_for(layout, nodes);
        let p = d.len() as u32;
        let g = pattern_graph(&ring(p), 4096);
        let ident: Vec<u32> = (0..p).collect();
        let before = mapping_cost(&g, &d, &ident);
        let after = mapping_cost(&g, &d, &rmh(&d, seed));
        prop_assert!(after <= before, "layout {} before {} after {}", layout.name(), before, after);
    }

    /// RDMH never increases the recursive-doubling cost.
    #[test]
    fn rdmh_never_degrades(layout in arb_layout(), ln in 1usize..5, seed in any::<u64>()) {
        let nodes = 1usize << ln;
        let (_c, d) = matrix_for(layout, nodes);
        let p = d.len() as u32;
        let g = pattern_graph(&recursive_doubling(p), 1024);
        let ident: Vec<u32> = (0..p).collect();
        let before = mapping_cost(&g, &d, &ident);
        let after = mapping_cost(&g, &d, &rdmh(&d, seed));
        prop_assert!(after <= before, "layout {} before {} after {}", layout.name(), before, after);
    }

    /// Inverting a heuristic mapping twice is the identity.
    #[test]
    fn double_inversion_is_identity(ln in 0usize..5, seed in any::<u64>()) {
        let nodes = 1usize << ln;
        let (_c, d) = matrix_for(InitialMapping::CYCLIC_SCATTER, nodes);
        let m = bgmh(&d, seed);
        prop_assert_eq!(invert(&invert(&m)), m);
    }

    /// Functional correctness end to end under arbitrary heuristic
    /// reorderings: initComm + RD restores original-rank order.
    #[test]
    fn reordered_allgather_is_functionally_correct(layout in arb_layout(), ln in 0usize..4, seed in any::<u64>()) {
        let nodes = 1usize << ln;
        let (_c, d) = matrix_for(layout, nodes);
        let p = d.len() as u32;
        let m = rdmh(&d, seed);
        let sched = tarr_mapping::init_comm_schedule(&m).then(recursive_doubling(p));
        let mut st = tarr_mapping::reorder::reordered_init_state(&m, false);
        st.run(&sched).unwrap();
        prop_assert!(st.verify_allgather_identity().is_ok());
    }
}
