//! Differential tests for the scaled mapping pipeline: for a fixed seed,
//! every heuristic must produce **bit-identical** mappings through all three
//! execution paths —
//!
//! 1. dense [`DistanceMatrix`] + linear scan (the reference),
//! 2. [`ImplicitDistance`] + linear scan (same scan, O(P) oracle),
//! 3. [`ImplicitDistance`] + bucketed free-slot index (`*_bucketed`).
//!
//! The canonical tie-break contract (count minimum-distance candidates, draw
//! once iff there is a genuine tie, pick in ascending physical-core order)
//! is what makes this equality hold; see `tarr_mapping::scheme`.

use proptest::prelude::*;
use tarr_mapping::{
    bbmh, bbmh_bucketed, bgmh, bgmh_bucketed, bkmh, bkmh_bucketed, greedy_map, rdmh, rdmh_bucketed,
    rmh, rmh_bucketed, scotch_like_map, InitialMapping,
};
use tarr_topo::{Cluster, CoreId, DistanceConfig, DistanceMatrix, ImplicitDistance};

/// Build both oracles over the same layout.
fn oracles(layout: InitialMapping, nodes: usize) -> (DistanceMatrix, ImplicitDistance) {
    let cluster = Cluster::gpc(nodes);
    let p = cluster.total_cores();
    let cores = layout.layout(&cluster, p);
    let cfg = DistanceConfig::default();
    (
        DistanceMatrix::build(&cluster, &cores, &cfg),
        ImplicitDistance::build(&cluster, &cores, &cfg),
    )
}

fn arb_layout() -> impl Strategy<Value = InitialMapping> {
    prop::sample::select(InitialMapping::ALL.to_vec())
}

/// One heuristic's mapping through the three execution paths.
type PathTriple = (&'static str, Vec<u32>, Vec<u32>, Vec<u32>);

/// Assert all three paths agree for every heuristic at this size/seed.
/// `p` is a power of two here, so RDMH applies too.
fn assert_all_paths_agree(
    dense: &DistanceMatrix,
    implicit: &ImplicitDistance,
    seed: u64,
) -> Result<(), TestCaseError> {
    let cases: [PathTriple; 5] = [
        (
            "rmh",
            rmh(dense, seed),
            rmh(implicit, seed),
            rmh_bucketed(implicit, seed),
        ),
        (
            "rdmh",
            rdmh(dense, seed),
            rdmh(implicit, seed),
            rdmh_bucketed(implicit, seed),
        ),
        (
            "bbmh",
            bbmh(dense, seed),
            bbmh(implicit, seed),
            bbmh_bucketed(implicit, seed),
        ),
        (
            "bgmh",
            bgmh(dense, seed),
            bgmh(implicit, seed),
            bgmh_bucketed(implicit, seed),
        ),
        (
            "bkmh",
            bkmh(dense, seed),
            bkmh(implicit, seed),
            bkmh_bucketed(implicit, seed),
        ),
    ];
    for (name, reference, linear, bucketed) in &cases {
        prop_assert_eq!(reference, linear, "{}: dense vs implicit-linear", name);
        prop_assert_eq!(reference, bucketed, "{}: dense vs bucketed", name);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// P = 32 (4 GPC nodes): every heuristic, every layout, random seeds.
    #[test]
    fn all_paths_agree_p32(layout in arb_layout(), seed in any::<u64>()) {
        let (dense, implicit) = oracles(layout, 4);
        assert_all_paths_agree(&dense, &implicit, seed)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// P = 512 (64 GPC nodes): every heuristic, every layout, random seeds.
    #[test]
    fn all_paths_agree_p512(layout in arb_layout(), seed in any::<u64>()) {
        let (dense, implicit) = oracles(layout, 64);
        assert_all_paths_agree(&dense, &implicit, seed)?;
    }
}

/// P = 4096 (512 GPC nodes), fixed seed — the issue's acceptance criterion.
/// One shot (the dense side is quadratic); all five heuristics through all
/// three paths.
#[test]
fn all_paths_agree_p4096_fixed_seed() {
    let (dense, implicit) = oracles(InitialMapping::BLOCK_BUNCH, 512);
    assert_all_paths_agree(&dense, &implicit, 42).unwrap();
}

/// Torus fabrics go through a different bucket walk (hop rings); check the
/// heuristics end-to-end there as well.
#[test]
fn all_paths_agree_on_torus() {
    let cluster = Cluster::with_torus(tarr_topo::NodeTopology::gpc(), [4, 2, 2]);
    let cores: Vec<CoreId> = cluster.cores().collect(); // p = 128, power of two
    let cfg = DistanceConfig::default();
    let dense = DistanceMatrix::build(&cluster, &cores, &cfg);
    let implicit = ImplicitDistance::build(&cluster, &cores, &cfg);
    for seed in [0u64, 7, 1234] {
        assert_all_paths_agree(&dense, &implicit, seed).unwrap();
    }
}

/// The general mappers are generic over the oracle too: dense and implicit
/// must agree (they share the identical scan order).
#[test]
fn general_mappers_agree_across_oracles() {
    use tarr_collectives::{allgather::ring, pattern_graph};
    let (dense, implicit) = oracles(InitialMapping::CYCLIC_BUNCH, 8);
    let g = pattern_graph(&ring(64), 4096);
    assert_eq!(greedy_map(&g, &dense), greedy_map(&g, &implicit));
    assert_eq!(
        scotch_like_map(&g, &dense, 5),
        scotch_like_map(&g, &implicit, 5)
    );
}
