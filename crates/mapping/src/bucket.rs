//! Bucketed free-slot index: `find_closest_to` without scanning all P slots.
//!
//! [`MappingContext`](crate::scheme::MappingContext) answers each closest-
//! free-slot query with an O(P) scan, so a full heuristic run is O(P²) —
//! fine at 4096 ranks, hopeless at 65 536. This module exploits that
//! distances are *hierarchical*: all free slots at one distance from a
//! reference form a **class** determined by the level of the hierarchy they
//! share with it (same physical core ⊃ L2 group ⊃ socket ⊃ node ⊃ leaf ⊃
//! line-connected leaves ⊃ rest of the fabric; on a torus, hop-count rings
//! around the reference node). Because the distance configuration is
//! validated strictly increasing across levels, the first non-empty class
//! *is* the minimum distance.
//!
//! [`BucketContext`] keeps one free counter per L2 group, socket, node and
//! leaf, maintained incrementally on [`take`](PlacementContext::take). A
//! query walks the class ladder outward, reads the class size `k` from the
//! counters in O(1) (O(peer leaves) for the line class), performs the
//! canonical tie-break draw, and enumerates only the chosen class — skipping
//! whole leaves and nodes by their counters — in ascending physical-core-id
//! order. That reproduces the linear scan's choices **bit-identically** (see
//! [`crate::scheme`] for the tie-break contract) at O(L + nodes_per_leaf +
//! node_size) per query instead of O(P).

use crate::scheme::{tie_break, PlacementContext};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tarr_topo::{DistanceOracle, Fabric, ImplicitDistance, NodeId};

/// Offsets of a torus, grouped by wrapped hop distance: `by_dist[r]` holds
/// every coordinate offset whose shortest-wrap hop count is exactly `r + 1`.
/// O(N) memory; lets a query enumerate the ring of nodes at each hop
/// distance around a reference without touching the rest of the grid.
struct RingTable {
    dims: [usize; 3],
    by_dist: Vec<Vec<[usize; 3]>>,
}

impl RingTable {
    fn new(dims: [usize; 3]) -> Self {
        let wrapped = |d: usize, extent: usize| d.min(extent - d);
        let mut by_dist: Vec<Vec<[usize; 3]>> = Vec::new();
        for dx in 0..dims[0] {
            for dy in 0..dims[1] {
                for dz in 0..dims[2] {
                    let r = wrapped(dx, dims[0]) + wrapped(dy, dims[1]) + wrapped(dz, dims[2]);
                    if r == 0 {
                        continue;
                    }
                    if by_dist.len() < r {
                        by_dist.resize_with(r, Vec::new);
                    }
                    by_dist[r - 1].push([dx, dy, dz]);
                }
            }
        }
        RingTable { dims, by_dist }
    }

    /// Node ids at hop distance `r ≥ 1` around `center`, in ascending order.
    fn ring(&self, center: [usize; 3], r: usize) -> Vec<u32> {
        let Some(offsets) = self.by_dist.get(r - 1) else {
            return Vec::new();
        };
        let [dx_max, dy_max, dz_max] = self.dims;
        let mut nodes: Vec<u32> = offsets
            .iter()
            .map(|&[dx, dy, dz]| {
                let x = (center[0] + dx) % dx_max;
                let y = (center[1] + dy) % dy_max;
                let z = (center[2] + dz) % dz_max;
                (x + dx_max * (y + dy_max * z)) as u32
            })
            .collect();
        nodes.sort_unstable();
        nodes
    }

    fn max_dist(&self) -> usize {
        self.by_dist.len()
    }
}

/// Bucketed placement state over the implicit distance oracle.
///
/// Produces the same mappings as
/// [`MappingContext`](crate::scheme::MappingContext) for the same seed, in
/// O(P) memory and sublinear per-query time.
pub struct BucketContext<'a> {
    o: &'a ImplicitDistance,
    free: Vec<bool>,
    total_free: usize,
    /// Free slots per global physical-core / L2-group / socket key and node.
    free_core: Vec<u32>,
    free_l2: Vec<u32>,
    free_socket: Vec<u32>,
    free_node: Vec<u32>,
    /// Fat-tree only: free slots per leaf switch.
    free_leaf: Vec<u32>,
    /// Slot indices hosted on each node, ascending physical core id.
    node_slots: Vec<Vec<u32>>,
    nodes_per_leaf: usize,
    rings: Option<RingTable>,
    /// Irregular only: nodes hosted by each switch (ascending node id) and,
    /// per reference switch, the nodes at each BFS switch distance ≥ 1
    /// (ascending node id — the canonical candidate order, since global core
    /// ids ascend with node ids).
    switch_nodes: Option<Vec<Vec<u32>>>,
    switch_rings: Option<Vec<Vec<Vec<u32>>>>,
    rng: StdRng,
    /// Instrumentation: closest-free-slot queries answered.
    queries: u64,
    /// Instrumentation: empty classes walked past before the answer class.
    class_fallthroughs: u64,
    /// Instrumentation: whole nodes skipped by counter instead of scanned
    /// (`Cell` because the pick helpers take `&self`).
    nodes_skipped: std::cell::Cell<u64>,
}

impl<'a> BucketContext<'a> {
    /// Fresh context over the oracle; all slots free.
    pub fn new(o: &'a ImplicitDistance, seed: u64) -> Self {
        let cluster = o.cluster();
        let nt = cluster.node_topology();
        let num_nodes = cluster.num_nodes();
        let phys_per_node = nt.sockets * nt.cores_per_socket;
        let l2_per_node = phys_per_node / nt.cores_per_l2;

        let (num_leaves, nodes_per_leaf, rings, switch_nodes, switch_rings) = match cluster.fabric()
        {
            Fabric::FatTree(f) => (f.num_leaves(), f.config().nodes_per_leaf, None, None, None),
            Fabric::Torus(t) => (0, 0, Some(RingTable::new(t.dims())), None, None),
            Fabric::Irregular(g) => {
                let s_count = g.num_switches();
                let mut nodes: Vec<Vec<u32>> = vec![Vec::new(); s_count];
                for node in 0..num_nodes {
                    nodes[g.switch_of(NodeId(node as u32)) as usize].push(node as u32);
                }
                // Node rings around each switch: bucket every node by its
                // hosting switch's BFS level; level vectors fill in
                // ascending node order, so each ring is already sorted.
                let rings: Vec<Vec<Vec<u32>>> = (0..s_count as u32)
                    .map(|s| {
                        let levels = g.level_row(s);
                        let max = levels.iter().copied().max().unwrap_or(0) as usize;
                        let mut by_dist: Vec<Vec<u32>> = vec![Vec::new(); max];
                        for node in 0..num_nodes {
                            let h = levels[g.switch_of(NodeId(node as u32)) as usize] as usize;
                            if h > 0 {
                                by_dist[h - 1].push(node as u32);
                            }
                        }
                        by_dist
                    })
                    .collect();
                (s_count, 0, None, Some(nodes), Some(rings))
            }
        };

        let mut ctx = BucketContext {
            o,
            free: vec![true; o.len()],
            total_free: o.len(),
            free_core: vec![0; num_nodes * phys_per_node],
            free_l2: vec![0; num_nodes * l2_per_node],
            free_socket: vec![0; num_nodes * nt.sockets],
            free_node: vec![0; num_nodes],
            free_leaf: vec![0; num_leaves],
            node_slots: vec![Vec::new(); num_nodes],
            nodes_per_leaf,
            rings,
            switch_nodes,
            switch_rings,
            rng: StdRng::seed_from_u64(seed),
            queries: 0,
            class_fallthroughs: 0,
            nodes_skipped: std::cell::Cell::new(0),
        };
        for (slot, p) in o.paths().iter().enumerate() {
            ctx.free_core[p.core as usize] += 1;
            ctx.free_l2[p.l2 as usize] += 1;
            ctx.free_socket[p.socket as usize] += 1;
            ctx.free_node[p.node as usize] += 1;
            if !ctx.free_leaf.is_empty() {
                ctx.free_leaf[p.leaf as usize] += 1;
            }
            ctx.node_slots[p.node as usize].push(slot as u32);
        }
        let cores = o.cores();
        for slots in &mut ctx.node_slots {
            slots.sort_unstable_by_key(|&s| cores[s as usize]);
        }
        ctx
    }

    /// The `j`-th (0-based) free slot on `node` satisfying `pred`, counting
    /// in ascending core-id order; decrements `j` past non-matches' worth of
    /// matches and returns `None` if the node holds fewer than `j + 1`.
    fn pick_on_node<F: Fn(&tarr_topo::SlotPath) -> bool>(
        &self,
        node: u32,
        pred: F,
        j: &mut usize,
    ) -> Option<usize> {
        for &slot in &self.node_slots[node as usize] {
            if !self.free[slot as usize] || !pred(&self.o.paths()[slot as usize]) {
                continue;
            }
            if *j == 0 {
                return Some(slot as usize);
            }
            *j -= 1;
        }
        None
    }

    /// The `j`-th free slot under `leaf` (all its nodes except `skip_node`),
    /// skipping whole nodes by their free counters. On fat-trees a leaf's
    /// nodes are the contiguous range the wiring assigns; on irregular
    /// fabrics they come from the per-switch node lists.
    fn pick_under_leaf(&self, leaf: u32, skip_node: Option<u32>, j: &mut usize) -> Option<usize> {
        if let Some(switch_nodes) = &self.switch_nodes {
            for &node in &switch_nodes[leaf as usize] {
                if skip_node == Some(node) {
                    continue;
                }
                let here = self.free_node[node as usize] as usize;
                if *j >= here {
                    *j -= here;
                    self.nodes_skipped.set(self.nodes_skipped.get() + 1);
                    continue;
                }
                return self.pick_on_node(node, |_| true, j);
            }
            return None;
        }
        let lo = leaf as usize * self.nodes_per_leaf;
        let hi = (lo + self.nodes_per_leaf).min(self.free_node.len());
        for node in lo..hi {
            if skip_node == Some(node as u32) {
                continue;
            }
            let here = self.free_node[node] as usize;
            if *j >= here {
                *j -= here;
                self.nodes_skipped.set(self.nodes_skipped.get() + 1);
                continue;
            }
            return self.pick_on_node(node as u32, |_| true, j);
        }
        None
    }

    /// The `j`-th free slot on a set of whole nodes given in ascending order.
    fn pick_on_nodes(&self, nodes: &[u32], j: &mut usize) -> Option<usize> {
        for &node in nodes {
            let here = self.free_node[node as usize] as usize;
            if *j >= here {
                *j -= here;
                self.nodes_skipped.set(self.nodes_skipped.get() + 1);
                continue;
            }
            return self.pick_on_node(node, |_| true, j);
        }
        None
    }
}

impl PlacementContext for BucketContext<'_> {
    fn len(&self) -> usize {
        self.o.len()
    }

    fn free_count(&self) -> usize {
        self.total_free
    }

    fn take(&mut self, slot: usize) {
        assert!(self.free[slot], "slot {slot} taken twice");
        self.free[slot] = false;
        self.total_free -= 1;
        let p = &self.o.paths()[slot];
        self.free_core[p.core as usize] -= 1;
        self.free_l2[p.l2 as usize] -= 1;
        self.free_socket[p.socket as usize] -= 1;
        self.free_node[p.node as usize] -= 1;
        if !self.free_leaf.is_empty() {
            self.free_leaf[p.leaf as usize] -= 1;
        }
    }

    fn find_closest_to(&mut self, reference: usize) -> usize {
        assert!(self.total_free > 0, "no free slots left");
        self.queries += 1;
        let r = self.o.paths()[reference];

        // Intra-node class ladder. Each class count is the difference of two
        // enclosing-region counters; strict distance ordering makes the
        // first non-empty class the minimum distance. (With cores_per_l2 ==
        // 1 the L2 key equals the core key, so that class is always empty —
        // matching the oracle's distance semantics.)
        let k_core = self.free_core[r.core as usize] as usize;
        if k_core > 0 {
            let mut j = tie_break(&mut self.rng, k_core);
            return self
                .pick_on_node(r.node, |p| p.core == r.core, &mut j)
                .expect("counter says same-core slot exists");
        }
        self.class_fallthroughs += 1;
        let k_l2 = (self.free_l2[r.l2 as usize] - self.free_core[r.core as usize]) as usize;
        if k_l2 > 0 {
            let mut j = tie_break(&mut self.rng, k_l2);
            return self
                .pick_on_node(r.node, |p| p.l2 == r.l2 && p.core != r.core, &mut j)
                .expect("counter says same-L2 slot exists");
        }
        self.class_fallthroughs += 1;
        let k_socket = (self.free_socket[r.socket as usize] - self.free_l2[r.l2 as usize]) as usize;
        if k_socket > 0 {
            let mut j = tie_break(&mut self.rng, k_socket);
            return self
                .pick_on_node(r.node, |p| p.socket == r.socket && p.l2 != r.l2, &mut j)
                .expect("counter says same-socket slot exists");
        }
        self.class_fallthroughs += 1;
        let k_node =
            (self.free_node[r.node as usize] - self.free_socket[r.socket as usize]) as usize;
        if k_node > 0 {
            let mut j = tie_break(&mut self.rng, k_node);
            return self
                .pick_on_node(r.node, |p| p.socket != r.socket, &mut j)
                .expect("counter says same-node slot exists");
        }

        if let Some(rings) = &self.rings {
            // Torus: rings of nodes by hop distance, strictly increasing in
            // distance (`same_leaf + (hops − 1) · torus_hop`, torus_hop > 0).
            let center = self
                .o
                .cluster()
                .fabric()
                .as_torus()
                .expect("ring table implies torus")
                .coords(NodeId(r.node));
            for dist in 1..=rings.max_dist() {
                let nodes = rings.ring(center, dist);
                let k: usize = nodes
                    .iter()
                    .map(|&n| self.free_node[n as usize] as usize)
                    .sum();
                if k == 0 {
                    self.class_fallthroughs += 1;
                    continue;
                }
                let mut j = tie_break(&mut self.rng, k);
                return self
                    .pick_on_nodes(&nodes, &mut j)
                    .expect("counter says ring slot exists");
            }
            unreachable!("free slots exist but no ring contains one")
        }

        if let Some(switch_rings) = &self.switch_rings {
            // Irregular: same hosting switch first, then node rings by BFS
            // switch distance (strictly increasing:
            // `same_leaf + h · torus_hop`, torus_hop > 0).
            self.class_fallthroughs += 1;
            let k_switch =
                (self.free_leaf[r.leaf as usize] - self.free_node[r.node as usize]) as usize;
            if k_switch > 0 {
                let mut j = tie_break(&mut self.rng, k_switch);
                return self
                    .pick_under_leaf(r.leaf, Some(r.node), &mut j)
                    .expect("counter says same-switch slot exists");
            }
            for ring in &switch_rings[r.leaf as usize] {
                let k: usize = ring
                    .iter()
                    .map(|&n| self.free_node[n as usize] as usize)
                    .sum();
                if k == 0 {
                    self.class_fallthroughs += 1;
                    continue;
                }
                let mut j = tie_break(&mut self.rng, k);
                return self
                    .pick_on_nodes(ring, &mut j)
                    .expect("counter says switch-ring slot exists");
            }
            unreachable!("free slots exist but no switch ring contains one")
        }

        // Fat-tree: same leaf, then line-connected leaves, then the rest.
        self.class_fallthroughs += 1;
        let k_leaf = (self.free_leaf[r.leaf as usize] - self.free_node[r.node as usize]) as usize;
        if k_leaf > 0 {
            let mut j = tie_break(&mut self.rng, k_leaf);
            return self
                .pick_under_leaf(r.leaf, Some(r.node), &mut j)
                .expect("counter says same-leaf slot exists");
        }
        self.class_fallthroughs += 1;
        let peers = self.o.line_peers(r.leaf);
        let k_line: usize = peers
            .iter()
            .map(|&l| self.free_leaf[l as usize] as usize)
            .sum();
        if k_line > 0 {
            let mut j = tie_break(&mut self.rng, k_line);
            for &leaf in peers {
                let here = self.free_leaf[leaf as usize] as usize;
                if j >= here {
                    j -= here;
                    continue;
                }
                return self
                    .pick_under_leaf(leaf, None, &mut j)
                    .expect("counter says same-line slot exists");
            }
            unreachable!("tie-break index beyond line-class count")
        }
        self.class_fallthroughs += 1;
        let k_spine = self.total_free - self.free_leaf[r.leaf as usize] as usize - k_line;
        debug_assert!(k_spine > 0, "free slots exist but no class contains one");
        let mut j = tie_break(&mut self.rng, k_spine);
        let mut peer_it = peers.iter().peekable();
        for leaf in 0..self.free_leaf.len() as u32 {
            while peer_it.peek().is_some_and(|&&p| p < leaf) {
                peer_it.next();
            }
            if leaf == r.leaf || peer_it.peek() == Some(&&leaf) {
                continue;
            }
            let here = self.free_leaf[leaf as usize] as usize;
            if j >= here {
                j -= here;
                continue;
            }
            return self
                .pick_under_leaf(leaf, None, &mut j)
                .expect("counter says cross-spine slot exists");
        }
        unreachable!("tie-break index beyond spine-class count")
    }
}

impl Drop for BucketContext<'_> {
    fn drop(&mut self) {
        if !tarr_trace::enabled() {
            return;
        }
        tarr_trace::counter_add!("mapping.bucket.queries", self.queries);
        tarr_trace::counter_add!("mapping.bucket.class_fallthroughs", self.class_fallthroughs);
        tarr_trace::counter_add!("mapping.bucket.nodes_skipped", self.nodes_skipped.get());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::MappingContext;
    use tarr_topo::{Cluster, CoreId, DistanceConfig, DistanceMatrix, NodeTopology};

    fn oracle_for(c: &Cluster, cores: &[CoreId]) -> ImplicitDistance {
        ImplicitDistance::build(c, cores, &DistanceConfig::default())
    }

    #[test]
    fn closest_prefers_same_socket() {
        let c = Cluster::gpc(2);
        let cores: Vec<CoreId> = c.cores().collect();
        let o = oracle_for(&c, &cores);
        let mut ctx = BucketContext::new(&o, 42);
        ctx.take(0);
        let s = ctx.claim_closest_to(0);
        assert!((1..=3).contains(&s), "got {s}");
    }

    #[test]
    fn exhausting_levels_walks_outward() {
        let c = Cluster::gpc(2);
        let cores: Vec<CoreId> = c.cores().collect();
        let o = oracle_for(&c, &cores);
        let mut ctx = BucketContext::new(&o, 1);
        for s in 0..4 {
            ctx.take(s);
        }
        let s = ctx.claim_closest_to(0);
        assert!((4..=7).contains(&s), "got {s}");
        for _ in 0..3 {
            let s = ctx.claim_closest_to(0);
            assert!((4..=7).contains(&s), "got {s}");
        }
        let s = ctx.claim_closest_to(0);
        assert!((8..16).contains(&s), "got {s}");
    }

    /// Drain an entire cluster through both context implementations with the
    /// same seed; every single choice must match.
    fn assert_drains_identically(c: &Cluster, cores: &[CoreId], seed: u64) {
        let d = DistanceMatrix::build(c, cores, &DistanceConfig::default());
        let o = oracle_for(c, cores);
        let mut lin = MappingContext::new(&d, seed);
        let mut buk = BucketContext::new(&o, seed);
        lin.take(0);
        buk.take(0);
        let mut reference = 0usize;
        while lin.free_count() > 0 {
            let a = lin.claim_closest_to(reference);
            let b = buk.claim_closest_to(reference);
            assert_eq!(a, b, "diverged at free_count {}", lin.free_count() + 1);
            reference = a;
        }
        assert_eq!(buk.free_count(), 0);
    }

    #[test]
    fn matches_linear_scan_on_gpc_block() {
        let c = Cluster::gpc(8);
        let cores: Vec<CoreId> = c.cores().collect();
        for seed in [0u64, 1, 7, 42] {
            assert_drains_identically(&c, &cores, seed);
        }
    }

    #[test]
    fn matches_linear_scan_on_cyclic_allocation() {
        let c = Cluster::gpc(8);
        let p = c.total_cores();
        let cores: Vec<CoreId> = (0..p)
            .map(|r| CoreId::from_idx((r % 8) * c.cores_per_node() + r / 8))
            .collect();
        assert_drains_identically(&c, &cores, 3);
    }

    #[test]
    fn matches_linear_scan_on_manycore() {
        let c = Cluster::new(tarr_topo::ClusterConfig {
            node: NodeTopology::manycore(),
            fabric: tarr_topo::FatTreeConfig::tiny(),
            num_nodes: 6,
        });
        let cores: Vec<CoreId> = c.cores().collect();
        assert_drains_identically(&c, &cores, 5);
    }

    #[test]
    fn matches_linear_scan_on_torus() {
        let c = Cluster::with_torus(NodeTopology::gpc(), [3, 4, 2]);
        let cores: Vec<CoreId> = c.cores().collect();
        for seed in [0u64, 9] {
            assert_drains_identically(&c, &cores, seed);
        }
    }

    #[test]
    fn matches_linear_scan_on_irregular() {
        use tarr_topo::{Fabric, IrregularConfig, IrregularFabric};
        // 5 switches in a partial mesh, nodes spread unevenly (and not in
        // switch order), exercising the per-switch node lists.
        let g = IrregularFabric::new(IrregularConfig {
            switches: 5,
            node_switch: vec![0, 2, 4, 1, 3, 0, 2, 1, 4, 3, 0, 2],
            links: vec![(0, 1, 2), (1, 2, 1), (2, 3, 2), (3, 4, 1), (0, 4, 1)],
        })
        .unwrap();
        let c = Cluster::from_parts(NodeTopology::gpc(), Fabric::Irregular(g), 12).unwrap();
        let cores: Vec<CoreId> = c.cores().collect();
        for seed in [0u64, 4, 23] {
            assert_drains_identically(&c, &cores, seed);
        }
        // Fragmented allocation over the same fabric.
        let sparse: Vec<CoreId> = c.cores().step_by(3).collect();
        assert_drains_identically(&c, &sparse, 7);
    }

    #[test]
    fn matches_linear_scan_on_fragmented_allocation() {
        let c = Cluster::gpc(16);
        let cores: Vec<CoreId> = c.cores().step_by(3).collect();
        assert_drains_identically(&c, &cores, 11);
    }

    #[test]
    #[should_panic(expected = "taken twice")]
    fn double_take_panics() {
        let c = Cluster::gpc(1);
        let cores: Vec<CoreId> = c.cores().collect();
        let o = oracle_for(&c, &cores);
        let mut ctx = BucketContext::new(&o, 0);
        ctx.take(3);
        ctx.take(3);
    }

    #[test]
    fn free_count_tracks_claims() {
        let c = Cluster::gpc(1);
        let cores: Vec<CoreId> = c.cores().collect();
        let o = oracle_for(&c, &cores);
        let mut ctx = BucketContext::new(&o, 0);
        assert_eq!(ctx.free_count(), 8);
        ctx.take(0);
        let _ = ctx.claim_closest_to(0);
        assert_eq!(ctx.free_count(), 6);
    }

    #[test]
    fn torus_ring_table_covers_grid() {
        let t = RingTable::new([3, 4, 2]);
        let total: usize = (1..=t.max_dist()).map(|r| t.ring([0, 0, 0], r).len()).sum();
        assert_eq!(total, 3 * 4 * 2 - 1);
        for r in 1..=t.max_dist() {
            let ring = t.ring([1, 2, 0], r);
            assert!(ring.windows(2).all(|w| w[0] < w[1]), "ring {r} unsorted");
        }
    }
}
