//! # tarr-mapping — topology-aware mapping heuristics
//!
//! The paper's primary contribution: four fine-tuned mapping heuristics that
//! reorder MPI ranks so a collective's fixed communication pattern matches
//! the physical topology (§V):
//!
//! * [`rdmh()`](rdmh()) — recursive doubling (Algorithm 2);
//! * [`rmh()`](rmh()) — ring (Algorithm 3);
//! * [`bbmh()`](bbmh()) — binomial broadcast (Algorithm 4, smaller-subtree-first DFT);
//! * [`bgmh()`](bgmh()) — binomial gather (Algorithm 5, heaviest-edge-first);
//! * [`bkmh()`](bkmh()) — Bruck allgather (the paper's §VII future-work extension).
//!
//! All four instantiate the general greedy scheme of Algorithm 1
//! ([`scheme::MappingContext`]): fix rank 0, then repeatedly place a
//! pattern-chosen process on the free core closest to a reference core.
//!
//! Baselines: [`scotch_like_map`] (dual recursive bipartitioning, standing in
//! for the Scotch library), [`greedy_map`] (the Hoefler–Snir general greedy
//! mapper), and [`initial::mvapich_cyclic_reorder`] (MVAPICH's fixed
//! block→cyclic reorder for recursive doubling).
//!
//! A **mapping** is always an array `M` with `M[new_rank] = slot`, where a
//! slot is an index into the job's allocated cores in initial-rank order —
//! exactly the output of the paper's algorithms. `M` is a permutation.
//!
//! ```
//! use tarr_mapping::{is_permutation, rmh, InitialMapping};
//! use tarr_topo::{Cluster, DistanceConfig, DistanceMatrix};
//!
//! let cluster = Cluster::gpc(4);
//! let cores = InitialMapping::CYCLIC_BUNCH.layout(&cluster, 32);
//! let d = DistanceMatrix::build(&cluster, &cores, &DistanceConfig::default());
//! let m = rmh(&d, 0);          // ring mapping heuristic
//! assert!(is_permutation(&m));
//! assert_eq!(m[0], 0);         // rank 0 stays on its core
//! ```

pub mod bbmh;
pub mod bgmh;
pub mod bkmh;
pub mod bucket;
pub mod greedy;
pub mod initial;
pub mod rdmh;
pub mod reorder;
pub mod rmh;
pub mod scheme;
pub mod scotchlike;

pub use bbmh::{bbmh, bbmh_bucketed, bbmh_with_order, TraversalOrder};
pub use bgmh::{bgmh, bgmh_bucketed};
pub use bkmh::{bkmh, bkmh_bucketed};
pub use bucket::BucketContext;
pub use greedy::greedy_map;
pub use initial::{InitialMapping, IntraOrder, NodeOrder};
pub use rdmh::{rdmh, rdmh_bucketed, rdmh_with_cadence};
pub use reorder::{
    end_shuffle_perm, init_comm_schedule, ring_placement, try_end_shuffle_perm,
    try_init_comm_schedule, try_reordered_init_state, try_ring_placement, OrderFix,
};
pub use rmh::{rmh, rmh_bucketed};
pub use scheme::{MappingContext, PlacementContext};
pub use scotchlike::{scotch_like_map, scotch_like_map_with, ScotchVariant};

/// A structurally invalid mapping handed to the reorder machinery.
///
/// Mappings produced by the heuristics in this crate are permutations by
/// construction; this error surfaces when a mapping arrives from outside —
/// a file, a test harness, or a degraded-session remap — and fails the
/// contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// The mapping is not a permutation of `0..len`.
    NotAPermutation {
        /// Length of the offending mapping.
        len: usize,
    },
    /// The mapping's length does not match the structure it applies to
    /// (e.g. a communicator of `expected` ranks).
    LengthMismatch {
        /// Length of the offending mapping.
        len: usize,
        /// Length the consumer required.
        expected: usize,
    },
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::NotAPermutation { len } => {
                write!(f, "mapping is not a permutation of 0..{len}")
            }
            MapError::LengthMismatch { len, expected } => {
                write!(f, "mapping has length {len}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for MapError {}

/// Check that `m` is a permutation of `0..m.len()` (every mapping must be).
pub fn is_permutation(m: &[u32]) -> bool {
    let mut seen = vec![false; m.len()];
    for &x in m {
        let Some(s) = seen.get_mut(x as usize) else {
            return false;
        };
        if *s {
            return false;
        }
        *s = true;
    }
    true
}

/// Invert a mapping: `inv[old] = new` given `m[new] = old`.
///
/// # Panics
/// Panics if `m` is not a permutation of `0..m.len()` — a non-permutation
/// would silently produce an inverse with aliased entries, so the input is
/// validated unconditionally.
pub fn invert(m: &[u32]) -> Vec<u32> {
    assert!(
        is_permutation(m),
        "invert: input is not a permutation of 0..{}",
        m.len()
    );
    let mut inv = vec![0u32; m.len()];
    for (new, &old) in m.iter().enumerate() {
        inv[old as usize] = new as u32;
    }
    inv
}

/// Fallible [`invert`] for externally-sourced mappings.
pub fn try_invert(m: &[u32]) -> Result<Vec<u32>, MapError> {
    if !is_permutation(m) {
        return Err(MapError::NotAPermutation { len: m.len() });
    }
    Ok(invert(m))
}

/// Total weighted communication cost of a mapping: `Σ w(a,b) · D(M[a], M[b])`
/// over the pattern's edges. The objective every mapper minimizes, used to
/// compare mapping quality independent of the network simulator.
pub fn mapping_cost<O: tarr_topo::DistanceOracle>(
    graph: &tarr_collectives::pattern::PatternGraph,
    d: &O,
    m: &[u32],
) -> u64 {
    assert_eq!(graph.p as usize, m.len());
    let mut cost = 0u64;
    for (a, nbrs) in graph.adj.iter().enumerate() {
        for &(b, w) in nbrs {
            if (b as usize) > a {
                cost += w * d.distance(m[a] as usize, m[b as usize] as usize) as u64;
            }
        }
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_check() {
        assert!(is_permutation(&[0, 1, 2]));
        assert!(is_permutation(&[2, 0, 1]));
        assert!(!is_permutation(&[0, 0, 1]));
        assert!(!is_permutation(&[0, 1, 3]));
        assert!(is_permutation(&[]));
    }

    #[test]
    fn invert_roundtrip() {
        let m = vec![2u32, 0, 3, 1];
        let inv = invert(&m);
        assert_eq!(inv, vec![1, 3, 0, 2]);
        for (new, &old) in m.iter().enumerate() {
            assert_eq!(inv[old as usize] as usize, new);
        }
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn invert_rejects_duplicate_entries() {
        invert(&[0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn invert_rejects_out_of_range_entries() {
        invert(&[0, 1, 3]);
    }
}
