//! BGMH — Algorithm 5: the mapping heuristic for the binomial gather
//! communication pattern.
//!
//! Unlike broadcast, gather messages grow towards the root, so BGMH picks
//! the **heaviest remaining edge** of the tree each time: it walks the edge
//! weight `i` from `p/2` downward and, for every potential reference core in
//! the set `V` (all ranks mapped so far, in insertion order), maps the child
//! `ref + i` as close as possible to the reference. Every newly mapped rank
//! joins `V`. This mirrors the Hoefler–Snir greedy rationale, but derives
//! the pattern in closed form — no process-topology graph is built.

use crate::bucket::BucketContext;
use crate::scheme::{MappingContext, PlacementContext};
use tarr_topo::{DistanceOracle, ImplicitDistance};

/// Compute the BGMH mapping: `m[new_rank] = slot`, via a linear scan over
/// any distance oracle. Works for any process count (children past `p` are
/// skipped).
pub fn bgmh<O: DistanceOracle>(d: &O, seed: u64) -> Vec<u32> {
    bgmh_in(&mut MappingContext::new(d, seed))
}

/// BGMH over the bucketed free-slot index: same mapping as [`bgmh`] for the
/// same seed, in O(P) memory and sublinear per-step time.
pub fn bgmh_bucketed(o: &ImplicitDistance, seed: u64) -> Vec<u32> {
    bgmh_in(&mut BucketContext::new(o, seed))
}

/// Algorithm 5 against any placement context.
pub fn bgmh_in<C: PlacementContext>(ctx: &mut C) -> Vec<u32> {
    let p = ctx.len() as u32;
    let _span = tarr_trace::span("mapping.bgmh").arg("p", p);
    let mut m = vec![u32::MAX; p as usize];
    m[0] = 0;
    ctx.take(0);

    if p == 1 {
        return m;
    }
    // V: potential reference cores, in insertion order. The heaviest edge of
    // the halving tree has weight i = the largest power of two below p.
    let mut v: Vec<u32> = vec![0];
    let mut i = next_power_of_two_at_most(p - 1);
    while i > 0 {
        // Iterate the snapshot of V (newly mapped ranks become references
        // only at smaller i, matching the halving-tree levels).
        let snapshot_len = v.len();
        for vi in 0..snapshot_len {
            let ref_rank = v[vi];
            let new_rank = ref_rank + i;
            if new_rank >= p {
                continue;
            }
            // In the halving tree each rank has exactly one parent; the
            // member of V at distance i below ref is unmapped iff ref ≡ 0
            // (mod 2i) — i.e. ref is a genuine parent at this level.
            if !ref_rank.is_multiple_of(2 * i) {
                continue;
            }
            let target = ctx.claim_closest_to(m[ref_rank as usize] as usize);
            m[new_rank as usize] = target as u32;
            v.push(new_rank);
        }
        i /= 2;
    }
    m
}

/// Largest power of two ≤ `x` (0 for `x == 0`).
fn next_power_of_two_at_most(x: u32) -> u32 {
    if x == 0 {
        0
    } else {
        1 << (31 - x.leading_zeros())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{is_permutation, mapping_cost};
    use tarr_collectives::gather::binomial_gather;
    use tarr_collectives::pattern_graph;
    use tarr_topo::{Cluster, CoreId, DistanceConfig, DistanceMatrix, Rank};

    fn matrix_block(nodes: usize) -> DistanceMatrix {
        let c = Cluster::gpc(nodes);
        let cores: Vec<CoreId> = c.cores().collect();
        DistanceMatrix::build(&c, &cores, &DistanceConfig::default())
    }

    fn matrix_scatter(nodes: usize) -> DistanceMatrix {
        // Block across nodes, scatter across sockets within the node.
        let c = Cluster::gpc(nodes);
        let p = c.total_cores();
        let cores: Vec<CoreId> = (0..p)
            .map(|r| {
                let node = r / 8;
                let v = r % 8;
                let local = (v % 2) * 4 + v / 2;
                CoreId::from_idx(node * 8 + local)
            })
            .collect();
        DistanceMatrix::build(&c, &cores, &DistanceConfig::default())
    }

    #[test]
    fn produces_permutations() {
        for nodes in [1usize, 2, 4, 16] {
            let m = bgmh(&matrix_block(nodes), 0);
            assert!(is_permutation(&m), "nodes={nodes}");
            assert_eq!(m[0], 0);
        }
    }

    #[test]
    fn works_for_non_power_of_two() {
        let c = Cluster::gpc(3);
        let cores: Vec<CoreId> = c.cores().collect();
        let d = DistanceMatrix::build(&c, &cores, &DistanceConfig::default());
        let m = bgmh(&d, 0);
        assert!(is_permutation(&m));
    }

    #[test]
    fn heaviest_edge_mapped_first() {
        // The heaviest gather edge is p/2 → 0 (carrying p/2 blocks); rank
        // p/2 must land in rank 0's socket.
        let d = matrix_block(4); // p = 32
        let m = bgmh(&d, 0);
        assert!(d.get(0, m[16] as usize) <= 2, "rank 16 on slot {}", m[16]);
    }

    #[test]
    fn tree_edges_match_halving_binomial() {
        // Verify the parent-selection logic by reconstructing the edge set
        // BGMH maps: parent(ref) → ref+i exactly when ref ≡ 0 (mod 2i).
        // That is the same tree binomial_gather(p, 0) uses.
        let p = 16u32;
        let sched = binomial_gather(p, Rank(0));
        let mut sched_edges: Vec<(u32, u32)> = sched
            .stages
            .iter()
            .flat_map(|s| s.ops.iter().map(|o| (o.to.0, o.from.0)))
            .collect();
        sched_edges.sort_unstable();
        let mut bgmh_edges = Vec::new();
        let mut i = p / 2;
        while i > 0 {
            for r in (0..p).step_by((2 * i) as usize) {
                if r + i < p {
                    bgmh_edges.push((r, r + i));
                }
            }
            i /= 2;
        }
        bgmh_edges.sort_unstable();
        assert_eq!(sched_edges, bgmh_edges);
    }

    #[test]
    fn improves_gather_cost_on_scatter_layout() {
        // Fig. 4(b): with block-scatter, BGMH pulls the large-message gather
        // edges back inside a single socket.
        let d = matrix_scatter(8);
        let g = pattern_graph(&binomial_gather(64, Rank(0)), 1 << 14);
        let ident: Vec<u32> = (0..64).collect();
        let before = mapping_cost(&g, &d, &ident);
        let after = mapping_cost(&g, &d, &bgmh(&d, 0));
        assert!(after < before, "before {before} after {after}");
    }

    #[test]
    fn no_degradation_on_block_layout() {
        let d = matrix_block(8);
        let g = pattern_graph(&binomial_gather(64, Rank(0)), 1 << 14);
        let ident: Vec<u32> = (0..64).collect();
        let before = mapping_cost(&g, &d, &ident);
        let after = mapping_cost(&g, &d, &bgmh(&d, 0));
        assert!(after <= before, "before {before} after {after}");
    }

    #[test]
    fn deterministic_per_seed() {
        let d = matrix_block(4);
        assert_eq!(bgmh(&d, 2), bgmh(&d, 2));
    }

    #[test]
    fn pow2_helper() {
        assert_eq!(next_power_of_two_at_most(1), 1);
        assert_eq!(next_power_of_two_at_most(2), 2);
        assert_eq!(next_power_of_two_at_most(3), 2);
        assert_eq!(next_power_of_two_at_most(12), 8);
        assert_eq!(next_power_of_two_at_most(16), 16);
    }
}
