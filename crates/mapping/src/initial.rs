//! Initial process layouts (§VI-A): how the resource manager binds ranks to
//! cores before any reordering happens.
//!
//! Two orthogonal choices, as in SLURM/Hydra:
//!
//! * **node order** — `block` packs consecutive ranks onto the same node;
//!   `cyclic` deals consecutive ranks across nodes round-robin;
//! * **intra-node order** — `bunch` packs consecutive visits onto the same
//!   socket; `scatter` deals them across sockets round-robin.
//!
//! The paper evaluates all four combinations (block-bunch, block-scatter,
//! cyclic-bunch, cyclic-scatter).

use serde::{Deserialize, Serialize};
use tarr_topo::{Cluster, CoreId, NodeId};

/// Rank-to-node assignment policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeOrder {
    /// Fill each node before moving on.
    Block,
    /// Round-robin across nodes.
    Cyclic,
}

/// Rank-to-socket assignment policy within a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IntraOrder {
    /// Fill each socket before moving on.
    Bunch,
    /// Round-robin across sockets.
    Scatter,
}

/// One of the four initial layouts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct InitialMapping {
    /// Node-level policy.
    pub node: NodeOrder,
    /// Socket-level policy.
    pub intra: IntraOrder,
}

impl InitialMapping {
    /// block-bunch: the layout closest to the natural core numbering.
    pub const BLOCK_BUNCH: InitialMapping = InitialMapping {
        node: NodeOrder::Block,
        intra: IntraOrder::Bunch,
    };
    /// block-scatter.
    pub const BLOCK_SCATTER: InitialMapping = InitialMapping {
        node: NodeOrder::Block,
        intra: IntraOrder::Scatter,
    };
    /// cyclic-bunch.
    pub const CYCLIC_BUNCH: InitialMapping = InitialMapping {
        node: NodeOrder::Cyclic,
        intra: IntraOrder::Bunch,
    };
    /// cyclic-scatter.
    pub const CYCLIC_SCATTER: InitialMapping = InitialMapping {
        node: NodeOrder::Cyclic,
        intra: IntraOrder::Scatter,
    };

    /// All four layouts, in the paper's presentation order.
    pub const ALL: [InitialMapping; 4] = [
        InitialMapping::BLOCK_BUNCH,
        InitialMapping::BLOCK_SCATTER,
        InitialMapping::CYCLIC_BUNCH,
        InitialMapping::CYCLIC_SCATTER,
    ];

    /// Display name ("block-bunch" etc.).
    pub fn name(&self) -> &'static str {
        match (self.node, self.intra) {
            (NodeOrder::Block, IntraOrder::Bunch) => "block-bunch",
            (NodeOrder::Block, IntraOrder::Scatter) => "block-scatter",
            (NodeOrder::Cyclic, IntraOrder::Bunch) => "cyclic-bunch",
            (NodeOrder::Cyclic, IntraOrder::Scatter) => "cyclic-scatter",
        }
    }

    /// Produce the rank→core binding for `p` processes on `cluster`.
    ///
    /// # Panics
    /// Panics unless `p` is a positive multiple of the cores per node and at
    /// most the cluster size (whole nodes are allocated, as on GPC).
    pub fn layout(&self, cluster: &Cluster, p: usize) -> Vec<CoreId> {
        let cpn = cluster.cores_per_node();
        assert!(
            p > 0 && p.is_multiple_of(cpn),
            "p must be a positive multiple of {cpn}"
        );
        let nodes = p / cpn;
        assert!(
            nodes <= cluster.num_nodes(),
            "cluster has only {} nodes",
            cluster.num_nodes()
        );
        let node_list: Vec<NodeId> = (0..nodes).map(NodeId::from_idx).collect();
        self.layout_on_nodes(cluster, &node_list)
    }

    /// Produce the rank→core binding on an **explicit node allocation** —
    /// the fragmented, scattered allocations a busy resource manager hands
    /// out (the paper's motivation: "a job can initially be mapped in quite
    /// a large number of different ways"). All cores of every listed node
    /// are used; the block/cyclic and bunch/scatter policies apply over the
    /// allocation in list order.
    ///
    /// # Panics
    /// Panics if the node list is empty, contains duplicates, or references
    /// nodes outside the cluster.
    pub fn layout_on_nodes(&self, cluster: &Cluster, alloc: &[NodeId]) -> Vec<CoreId> {
        assert!(!alloc.is_empty(), "empty allocation");
        {
            let mut sorted: Vec<_> = alloc.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), alloc.len(), "duplicate node in allocation");
            assert!(
                sorted.last().unwrap().idx() < cluster.num_nodes(),
                "node outside cluster"
            );
        }
        let cpn = cluster.cores_per_node();
        let nodes = alloc.len();
        let p = nodes * cpn;
        let topo = cluster.node_topology();
        let sockets = topo.sockets;
        let per_socket = topo.cores_per_socket * topo.smt;

        (0..p)
            .map(|r| {
                let (node_idx, visit) = match self.node {
                    NodeOrder::Block => (r / cpn, r % cpn),
                    NodeOrder::Cyclic => (r % nodes, r / nodes),
                };
                let local = match self.intra {
                    IntraOrder::Bunch => visit,
                    IntraOrder::Scatter => {
                        let socket = visit % sockets;
                        let within = visit / sockets;
                        socket * per_socket + within
                    }
                };
                cluster.core_id(alloc[node_idx], local)
            })
            .collect()
    }
}

/// MVAPICH's built-in rank reordering for recursive doubling: a fixed
/// block→cyclic permutation, with no topology input (§V-A.1). Returned in the
/// usual `m[new_rank] = slot` convention for a job of `p` ranks on nodes of
/// `cpn` cores.
pub fn mvapich_cyclic_reorder(p: usize, cpn: usize) -> Vec<u32> {
    assert!(
        p > 0 && p.is_multiple_of(cpn),
        "p must be a multiple of cpn"
    );
    let nodes = p / cpn;
    (0..p)
        .map(|r| ((r % nodes) * cpn + r / nodes) as u32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_permutation;

    #[test]
    fn block_bunch_is_natural_order() {
        let c = Cluster::gpc(2);
        let l = InitialMapping::BLOCK_BUNCH.layout(&c, 16);
        let expect: Vec<CoreId> = (0..16).map(CoreId::from_idx).collect();
        assert_eq!(l, expect);
    }

    #[test]
    fn block_scatter_alternates_sockets() {
        let c = Cluster::gpc(1);
        let l = InitialMapping::BLOCK_SCATTER.layout(&c, 8);
        // visits: s0c0, s1c0, s0c1, s1c1, …
        let locals: Vec<u32> = l.iter().map(|c| c.0).collect();
        assert_eq!(locals, vec![0, 4, 1, 5, 2, 6, 3, 7]);
    }

    #[test]
    fn cyclic_bunch_deals_across_nodes() {
        let c = Cluster::gpc(2);
        let l = InitialMapping::CYCLIC_BUNCH.layout(&c, 16);
        // Rank 0 → node0 core0, rank 1 → node1 core0, rank 2 → node0 core1…
        assert_eq!(l[0], CoreId(0));
        assert_eq!(l[1], CoreId(8));
        assert_eq!(l[2], CoreId(1));
        assert_eq!(l[3], CoreId(9));
    }

    #[test]
    fn cyclic_scatter_combines_both() {
        let c = Cluster::gpc(2);
        let l = InitialMapping::CYCLIC_SCATTER.layout(&c, 16);
        // Rank 0 → node0 s0c0; rank 2 (second visit of node0) → s1c0 = core 4.
        assert_eq!(l[0], CoreId(0));
        assert_eq!(l[2], CoreId(4));
        assert_eq!(l[4], CoreId(1));
    }

    #[test]
    fn all_layouts_are_bijections() {
        let c = Cluster::gpc(4);
        for m in InitialMapping::ALL {
            let l = m.layout(&c, 32);
            let mut ids: Vec<u32> = l.iter().map(|c| c.0).collect();
            ids.sort_unstable();
            let expect: Vec<u32> = (0..32).collect();
            assert_eq!(ids, expect, "{}", m.name());
        }
    }

    #[test]
    fn names_are_stable() {
        let names: Vec<&str> = InitialMapping::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            vec![
                "block-bunch",
                "block-scatter",
                "cyclic-bunch",
                "cyclic-scatter"
            ]
        );
    }

    #[test]
    fn mvapich_reorder_is_cyclic_permutation() {
        let m = mvapich_cyclic_reorder(16, 8);
        assert!(is_permutation(&m));
        // New rank 0 on slot 0, new rank 1 on node 1's first slot.
        assert_eq!(m[0], 0);
        assert_eq!(m[1], 8);
        assert_eq!(m[2], 1);
    }

    #[test]
    fn fragmented_allocation_layout() {
        use tarr_topo::NodeId;
        let c = Cluster::gpc(64);
        // A scattered allocation: nodes 3, 17, 40, 61 (crossing leaves).
        let alloc = [NodeId(3), NodeId(17), NodeId(40), NodeId(61)];
        let l = InitialMapping::BLOCK_BUNCH.layout_on_nodes(&c, &alloc);
        assert_eq!(l.len(), 32);
        // Ranks 0..8 on node 3, 8..16 on node 17, …
        assert_eq!(l[0], CoreId(24));
        assert_eq!(l[8], CoreId(17 * 8));
        assert_eq!(l[31], CoreId(61 * 8 + 7));
        // Cyclic over the same allocation deals across the listed nodes.
        let lc = InitialMapping::CYCLIC_BUNCH.layout_on_nodes(&c, &alloc);
        assert_eq!(lc[0], CoreId(24));
        assert_eq!(lc[1], CoreId(17 * 8));
    }

    #[test]
    fn layout_on_nodes_matches_layout_for_prefix() {
        use tarr_topo::NodeId;
        let c = Cluster::gpc(8);
        for m in InitialMapping::ALL {
            let full = m.layout(&c, 32);
            let alloc: Vec<NodeId> = (0..4).map(NodeId::from_idx).collect();
            assert_eq!(full, m.layout_on_nodes(&c, &alloc), "{}", m.name());
        }
    }

    #[test]
    #[should_panic(expected = "duplicate node")]
    fn duplicate_allocation_rejected() {
        use tarr_topo::NodeId;
        let c = Cluster::gpc(4);
        InitialMapping::BLOCK_BUNCH.layout_on_nodes(&c, &[NodeId(1), NodeId(1)]);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn partial_nodes_rejected() {
        let c = Cluster::gpc(2);
        InitialMapping::BLOCK_BUNCH.layout(&c, 12);
    }
}
