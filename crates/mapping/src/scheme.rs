//! Algorithm 1 — the general scheme shared by all four heuristics.
//!
//! The scheme state tracks which slots (cores) are still free and answers
//! `find_closest_to(reference)` queries: the free slot with minimum distance
//! from the reference slot, ties broken uniformly at random (the paper: "if
//! more than one core satisfy this condition, one of them is chosen
//! randomly"). Randomness is seeded for reproducibility.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tarr_topo::DistanceMatrix;

/// Shared state of a running mapping heuristic.
pub struct MappingContext<'a> {
    d: &'a DistanceMatrix,
    free: Vec<bool>,
    free_count: usize,
    rng: StdRng,
}

impl<'a> MappingContext<'a> {
    /// Fresh context over the distance matrix; all slots free.
    pub fn new(d: &'a DistanceMatrix, seed: u64) -> Self {
        let p = d.len();
        MappingContext {
            d,
            free: vec![true; p],
            free_count: p,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Number of slots (= processes).
    pub fn len(&self) -> usize {
        self.d.len()
    }

    /// Whether no slots exist (never true in practice).
    pub fn is_empty(&self) -> bool {
        self.d.is_empty()
    }

    /// Number of slots still free.
    pub fn free_count(&self) -> usize {
        self.free_count
    }

    /// Mark `slot` as taken.
    ///
    /// # Panics
    /// Panics if the slot was already taken.
    pub fn take(&mut self, slot: usize) {
        assert!(self.free[slot], "slot {slot} taken twice");
        self.free[slot] = false;
        self.free_count -= 1;
    }

    /// The free slot closest to `reference` (which need not be free), ties
    /// broken uniformly at random; the slot is *not* taken.
    ///
    /// # Panics
    /// Panics if no free slot remains.
    pub fn find_closest_to(&mut self, reference: usize) -> usize {
        assert!(self.free_count > 0, "no free slots left");
        let row = self.d.row(reference);
        let mut best = u16::MAX;
        let mut choice = usize::MAX;
        let mut ties = 0u32;
        for (slot, (&dist, &free)) in row.iter().zip(&self.free).enumerate() {
            if !free {
                continue;
            }
            if dist < best {
                best = dist;
                choice = slot;
                ties = 1;
            } else if dist == best {
                // Reservoir sampling keeps each tied slot equally likely.
                ties += 1;
                if self.rng.gen_range(0..ties) == 0 {
                    choice = slot;
                }
            }
        }
        choice
    }

    /// `find_closest_to` followed by `take` — the common step of Algorithm 1.
    pub fn claim_closest_to(&mut self, reference: usize) -> usize {
        let slot = self.find_closest_to(reference);
        self.take(slot);
        slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tarr_topo::{Cluster, CoreId, DistanceConfig};

    fn ctx_for(nodes: usize) -> (Cluster, Vec<CoreId>) {
        let c = Cluster::gpc(nodes);
        let cores: Vec<CoreId> = c.cores().collect();
        (c, cores)
    }

    #[test]
    fn closest_prefers_same_socket() {
        let (c, cores) = ctx_for(2);
        let d = DistanceMatrix::build(&c, &cores, &DistanceConfig::default());
        let mut ctx = MappingContext::new(&d, 42);
        ctx.take(0);
        // Closest free slot to slot 0 must be within socket 0 (slots 1–3).
        let s = ctx.claim_closest_to(0);
        assert!((1..=3).contains(&s), "got {s}");
    }

    #[test]
    fn exhausting_a_socket_moves_to_next_level() {
        let (c, cores) = ctx_for(2);
        let d = DistanceMatrix::build(&c, &cores, &DistanceConfig::default());
        let mut ctx = MappingContext::new(&d, 1);
        for s in 0..4 {
            ctx.take(s);
        }
        // Socket 0 full: next closest to 0 is socket 1 of node 0 (slots 4–7).
        let s = ctx.claim_closest_to(0);
        assert!((4..=7).contains(&s), "got {s}");
        for _ in 0..3 {
            let s = ctx.claim_closest_to(0);
            assert!((4..=7).contains(&s), "got {s}");
        }
        // Node 0 full: now the other node.
        let s = ctx.claim_closest_to(0);
        assert!((8..16).contains(&s), "got {s}");
    }

    #[test]
    fn tie_breaking_is_seed_deterministic() {
        let (c, cores) = ctx_for(4);
        let d = DistanceMatrix::build(&c, &cores, &DistanceConfig::default());
        let run = |seed: u64| -> Vec<usize> {
            let mut ctx = MappingContext::new(&d, seed);
            ctx.take(0);
            (0..8).map(|_| ctx.claim_closest_to(0)).collect()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn tie_breaking_varies_with_seed() {
        let (c, cores) = ctx_for(8);
        let d = DistanceMatrix::build(&c, &cores, &DistanceConfig::default());
        let run = |seed: u64| -> Vec<usize> {
            let mut ctx = MappingContext::new(&d, seed);
            ctx.take(0);
            (0..16).map(|_| ctx.claim_closest_to(0)).collect()
        };
        // Across many seeds at least two sequences differ (3 same-socket ties
        // at the first step).
        let baseline = run(0);
        assert!((1..20).any(|s| run(s) != baseline));
    }

    #[test]
    #[should_panic(expected = "taken twice")]
    fn double_take_panics() {
        let (c, cores) = ctx_for(1);
        let d = DistanceMatrix::build(&c, &cores, &DistanceConfig::default());
        let mut ctx = MappingContext::new(&d, 0);
        ctx.take(3);
        ctx.take(3);
    }

    #[test]
    fn free_count_tracks_claims() {
        let (c, cores) = ctx_for(1);
        let d = DistanceMatrix::build(&c, &cores, &DistanceConfig::default());
        let mut ctx = MappingContext::new(&d, 0);
        assert_eq!(ctx.free_count(), 8);
        ctx.take(0);
        let _ = ctx.claim_closest_to(0);
        assert_eq!(ctx.free_count(), 6);
    }
}
