//! Algorithm 1 — the general scheme shared by all the heuristics.
//!
//! The scheme state tracks which slots (cores) are still free and answers
//! `find_closest_to(reference)` queries: the free slot with minimum distance
//! from the reference slot, ties broken uniformly at random (the paper: "if
//! more than one core satisfy this condition, one of them is chosen
//! randomly"). Randomness is seeded for reproducibility.
//!
//! Two interchangeable implementations exist: [`MappingContext`], a linear
//! scan over any [`DistanceOracle`], and
//! [`BucketContext`](crate::bucket::BucketContext), a bucketed free-slot
//! index over the implicit oracle that answers the same queries without
//! touching all P slots. To let them produce **bit-identical** choices, the
//! tie-break is defined canonically for both:
//!
//! 1. find the minimum distance and the number `k` of free slots at it;
//! 2. draw one `gen_range(0..k)` from the seeded RNG **only when `k > 1`**;
//! 3. pick the drawn candidate counting in **ascending physical-core-id
//!    order**.
//!
//! Because the RNG is consumed identically (`k` depends only on the free
//! set, not on how it is scanned) and the candidate ordering is a property
//! of the hardware, any two correct implementations walk the same mapping
//! for a fixed seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tarr_topo::DistanceOracle;

/// The canonical tie-break draw: uniform in `0..k`, consuming RNG only for
/// genuine ties. Both context implementations must use this.
pub(crate) fn tie_break(rng: &mut StdRng, k: usize) -> usize {
    if k <= 1 {
        0
    } else {
        rng.gen_range(0..k)
    }
}

/// The slot-placement interface of Algorithm 1, as consumed by every
/// heuristic: query the closest free slot to a reference, claim slots.
pub trait PlacementContext {
    /// Number of slots (= processes).
    fn len(&self) -> usize;

    /// Whether no slots exist (never true in practice).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of slots still free.
    fn free_count(&self) -> usize;

    /// Mark `slot` as taken.
    ///
    /// # Panics
    /// Panics if the slot was already taken.
    fn take(&mut self, slot: usize);

    /// The free slot closest to `reference` (which need not be free), ties
    /// broken uniformly at random; the slot is *not* taken.
    ///
    /// # Panics
    /// Panics if no free slot remains.
    fn find_closest_to(&mut self, reference: usize) -> usize;

    /// `find_closest_to` followed by `take` — the common step of Algorithm 1.
    fn claim_closest_to(&mut self, reference: usize) -> usize {
        let slot = self.find_closest_to(reference);
        self.take(slot);
        slot
    }
}

/// Linear-scan placement state over any distance oracle.
///
/// Reference implementation: every query walks all slots. Works with the
/// dense matrix (the validation path) and the implicit oracle alike; for
/// large P prefer [`BucketContext`](crate::bucket::BucketContext).
pub struct MappingContext<'a, O: DistanceOracle = tarr_topo::DistanceMatrix> {
    d: &'a O,
    free: Vec<bool>,
    free_count: usize,
    /// Slot indices in ascending physical-core-id order — the canonical
    /// candidate order (allocation order need not follow core ids, e.g.
    /// under cyclic layouts).
    order: Vec<u32>,
    rng: StdRng,
    /// Instrumentation: closest-free-slot queries answered (each is an O(P)
    /// scan here — compare against `mapping.bucket.queries`).
    queries: u64,
}

impl<'a, O: DistanceOracle> MappingContext<'a, O> {
    /// Fresh context over the oracle; all slots free.
    pub fn new(d: &'a O, seed: u64) -> Self {
        let p = d.len();
        let mut order: Vec<u32> = (0..p as u32).collect();
        order.sort_unstable_by_key(|&s| d.slot_core(s as usize));
        MappingContext {
            d,
            free: vec![true; p],
            free_count: p,
            order,
            rng: StdRng::seed_from_u64(seed),
            queries: 0,
        }
    }
}

impl<O: DistanceOracle> Drop for MappingContext<'_, O> {
    fn drop(&mut self) {
        if !tarr_trace::enabled() {
            return;
        }
        tarr_trace::counter_add!("mapping.linear.queries", self.queries);
    }
}

impl<O: DistanceOracle> PlacementContext for MappingContext<'_, O> {
    fn len(&self) -> usize {
        self.d.len()
    }

    fn free_count(&self) -> usize {
        self.free_count
    }

    fn take(&mut self, slot: usize) {
        assert!(self.free[slot], "slot {slot} taken twice");
        self.free[slot] = false;
        self.free_count -= 1;
    }

    fn find_closest_to(&mut self, reference: usize) -> usize {
        assert!(self.free_count > 0, "no free slots left");
        self.queries += 1;
        let mut best = u16::MAX;
        let mut k = 0usize;
        for &slot in &self.order {
            if !self.free[slot as usize] {
                continue;
            }
            let dist = self.d.distance(reference, slot as usize);
            if dist < best {
                best = dist;
                k = 1;
            } else if dist == best {
                k += 1;
            }
        }
        let pick = tie_break(&mut self.rng, k);
        let mut seen = 0usize;
        for &slot in &self.order {
            if !self.free[slot as usize] || self.d.distance(reference, slot as usize) != best {
                continue;
            }
            if seen == pick {
                return slot as usize;
            }
            seen += 1;
        }
        unreachable!("tie-break index {pick} beyond {k} candidates")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tarr_topo::{Cluster, CoreId, DistanceConfig, DistanceMatrix};

    fn ctx_for(nodes: usize) -> (Cluster, Vec<CoreId>) {
        let c = Cluster::gpc(nodes);
        let cores: Vec<CoreId> = c.cores().collect();
        (c, cores)
    }

    #[test]
    fn closest_prefers_same_socket() {
        let (c, cores) = ctx_for(2);
        let d = DistanceMatrix::build(&c, &cores, &DistanceConfig::default());
        let mut ctx = MappingContext::new(&d, 42);
        ctx.take(0);
        // Closest free slot to slot 0 must be within socket 0 (slots 1–3).
        let s = ctx.claim_closest_to(0);
        assert!((1..=3).contains(&s), "got {s}");
    }

    #[test]
    fn exhausting_a_socket_moves_to_next_level() {
        let (c, cores) = ctx_for(2);
        let d = DistanceMatrix::build(&c, &cores, &DistanceConfig::default());
        let mut ctx = MappingContext::new(&d, 1);
        for s in 0..4 {
            ctx.take(s);
        }
        // Socket 0 full: next closest to 0 is socket 1 of node 0 (slots 4–7).
        let s = ctx.claim_closest_to(0);
        assert!((4..=7).contains(&s), "got {s}");
        for _ in 0..3 {
            let s = ctx.claim_closest_to(0);
            assert!((4..=7).contains(&s), "got {s}");
        }
        // Node 0 full: now the other node.
        let s = ctx.claim_closest_to(0);
        assert!((8..16).contains(&s), "got {s}");
    }

    #[test]
    fn tie_breaking_is_seed_deterministic() {
        let (c, cores) = ctx_for(4);
        let d = DistanceMatrix::build(&c, &cores, &DistanceConfig::default());
        let run = |seed: u64| -> Vec<usize> {
            let mut ctx = MappingContext::new(&d, seed);
            ctx.take(0);
            (0..8).map(|_| ctx.claim_closest_to(0)).collect()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn tie_breaking_varies_with_seed() {
        let (c, cores) = ctx_for(8);
        let d = DistanceMatrix::build(&c, &cores, &DistanceConfig::default());
        let run = |seed: u64| -> Vec<usize> {
            let mut ctx = MappingContext::new(&d, seed);
            ctx.take(0);
            (0..16).map(|_| ctx.claim_closest_to(0)).collect()
        };
        // Across many seeds at least two sequences differ (3 same-socket ties
        // at the first step).
        let baseline = run(0);
        assert!((1..20).any(|s| run(s) != baseline));
    }

    #[test]
    fn singleton_minimum_consumes_no_randomness() {
        // With a unique closest slot the RNG must not advance, so a
        // subsequent genuine tie is broken identically regardless of how
        // many singleton queries preceded it.
        let (c, cores) = ctx_for(2);
        let d = DistanceMatrix::build(&c, &cores, &DistanceConfig::default());
        let run = |warmup_singletons: bool| -> usize {
            let mut ctx = MappingContext::new(&d, 99);
            for s in [0usize, 1, 2] {
                ctx.take(s);
            }
            if warmup_singletons {
                // Slot 3 is the unique same-socket candidate: k = 1.
                let s = ctx.find_closest_to(0);
                assert_eq!(s, 3);
                let s = ctx.find_closest_to(0);
                assert_eq!(s, 3);
            }
            ctx.take(3);
            // Now slots 4–7 tie at node distance: k = 4, one RNG draw.
            ctx.find_closest_to(0)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn works_over_implicit_oracle() {
        let (c, cores) = ctx_for(2);
        let o = tarr_topo::ImplicitDistance::build(&c, &cores, &DistanceConfig::default());
        let mut ctx = MappingContext::new(&o, 42);
        ctx.take(0);
        let s = ctx.claim_closest_to(0);
        assert!((1..=3).contains(&s), "got {s}");
    }

    #[test]
    #[should_panic(expected = "taken twice")]
    fn double_take_panics() {
        let (c, cores) = ctx_for(1);
        let d = DistanceMatrix::build(&c, &cores, &DistanceConfig::default());
        let mut ctx = MappingContext::new(&d, 0);
        ctx.take(3);
        ctx.take(3);
    }

    #[test]
    fn free_count_tracks_claims() {
        let (c, cores) = ctx_for(1);
        let d = DistanceMatrix::build(&c, &cores, &DistanceConfig::default());
        let mut ctx = MappingContext::new(&d, 0);
        assert_eq!(ctx.free_count(), 8);
        ctx.take(0);
        let _ = ctx.claim_closest_to(0);
        assert_eq!(ctx.free_count(), 6);
    }
}
