//! Reordering plumbing: the §V-B machinery that keeps the allgather output
//! buffer in original-rank order after ranks have been renumbered.
//!
//! Conventions: a mapping `m` satisfies `m[new_rank] = old_rank` (the slot of
//! the process). Under the reordered communicator, the process with new rank
//! `r` contributes the data of original rank `m[r]`, so a plain run leaves
//! the output in `m`-order. Three fixes exist:
//!
//! * [`init_comm_schedule`] — *extra initial communications*: a one-stage
//!   exchange moving every input vector to the process whose **new** rank
//!   equals the data's original rank, before the algorithm runs;
//! * [`end_shuffle_perm`] — *memory shuffling at the end*: the permutation to
//!   apply to every output buffer after the algorithm runs (content observed
//!   at slot `j` belongs at slot `m[j]`);
//! * [`ring_placement`] — the ring algorithm's in-place resolution: incoming
//!   blocks are stored directly at their correct final offset, no extra
//!   communication or shuffle needed.

use crate::{invert, is_permutation, MapError};
use serde::{Deserialize, Serialize};
use tarr_mpi::{Payload, Schedule, SendOp, Stage};
use tarr_topo::Rank;

/// Which §V-B mechanism preserves the output order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OrderFix {
    /// Extra initial communications ("initComm" in the paper's figures).
    InitComm,
    /// Memory shuffling at the end ("endShfl").
    EndShuffle,
    /// In-place placement (ring and binomial broadcast need nothing else).
    InPlace,
}

impl OrderFix {
    /// Display name matching the paper's figure legends.
    pub fn name(&self) -> &'static str {
        match self {
            OrderFix::InitComm => "initComm",
            OrderFix::EndShuffle => "endShfl",
            OrderFix::InPlace => "inPlace",
        }
    }
}

/// Build the one-stage input exchange for `m[new] = old`: the process
/// holding original data `r` (new rank `m⁻¹[r]`) sends it to new rank `r`,
/// placed at slot `r`.
///
/// # Panics
/// Panics if `m` is not a permutation.
pub fn init_comm_schedule(m: &[u32]) -> Schedule {
    try_init_comm_schedule(m).expect("mapping must be a permutation")
}

/// Fallible [`init_comm_schedule`] for externally-sourced mappings.
pub fn try_init_comm_schedule(m: &[u32]) -> Result<Schedule, MapError> {
    check_permutation(m)?;
    let p = m.len() as u32;
    let inv = invert(m);
    let mut ops = Vec::new();
    for r in 0..p {
        let holder = inv[r as usize];
        if holder != r {
            ops.push(SendOp {
                from: Rank(holder),
                to: Rank(r),
                payload: Payload::Blocks {
                    src_slot: holder,
                    dst_slot: r,
                    len: 1,
                },
            });
        }
    }
    let mut sched = Schedule::new(p);
    if !ops.is_empty() {
        sched.push(Stage::new(ops));
    }
    Ok(sched)
}

fn check_permutation(m: &[u32]) -> Result<(), MapError> {
    if !is_permutation(m) {
        return Err(MapError::NotAPermutation { len: m.len() });
    }
    Ok(())
}

/// The endShfl permutation: content observed at output slot `j` moves to
/// slot `m[j]` (suitable for `FunctionalState::shuffle_outputs`).
///
/// # Panics
/// Panics if `m` is not a permutation.
pub fn end_shuffle_perm(m: &[u32]) -> Vec<u32> {
    try_end_shuffle_perm(m).expect("mapping must be a permutation")
}

/// Fallible [`end_shuffle_perm`] for externally-sourced mappings.
pub fn try_end_shuffle_perm(m: &[u32]) -> Result<Vec<u32>, MapError> {
    check_permutation(m)?;
    Ok(m.to_vec())
}

/// The in-place ring placement: block `b` (the contribution of new rank `b`)
/// is stored at slot `m[b]`, its correct final offset.
///
/// # Panics
/// Panics if `m` is not a permutation.
pub fn ring_placement(m: &[u32]) -> Vec<u32> {
    try_ring_placement(m).expect("mapping must be a permutation")
}

/// Fallible [`ring_placement`] for externally-sourced mappings.
pub fn try_ring_placement(m: &[u32]) -> Result<Vec<u32>, MapError> {
    check_permutation(m)?;
    Ok(m.to_vec())
}

/// Initial buffer state of a reordered communicator for the functional
/// executor: new rank `r` holds the data of original rank `m[r]` (tag
/// `m[r]`) at slot `slots[r]`.
///
/// With `in_place = false` the tag sits at the rank's own slot `r` (the
/// standard algorithms read it from there); with `in_place = true` it sits
/// directly at its final offset `m[r]` (the ring placement).
pub fn reordered_init_state(m: &[u32], in_place: bool) -> tarr_mpi::FunctionalState {
    try_reordered_init_state(m, in_place).expect("mapping must be a permutation")
}

/// Fallible [`reordered_init_state`] for externally-sourced mappings.
pub fn try_reordered_init_state(
    m: &[u32],
    in_place: bool,
) -> Result<tarr_mpi::FunctionalState, MapError> {
    check_permutation(m)?;
    let p = m.len();
    let slots: Vec<u32> = if in_place {
        m.to_vec()
    } else {
        (0..p as u32).collect()
    };
    Ok(tarr_mpi::FunctionalState::init_allgather_with(p, m, &slots))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tarr_collectives::allgather::{recursive_doubling, ring_with_placement};

    /// A scrambled but fixed mapping for 8 ranks.
    fn m8() -> Vec<u32> {
        vec![0, 4, 1, 5, 2, 6, 3, 7]
    }

    #[test]
    fn init_comm_then_rd_restores_order() {
        let m = m8();
        let sched = init_comm_schedule(&m).then(recursive_doubling(8));
        sched.validate().unwrap();
        let mut st = reordered_init_state(&m, false);
        st.run(&sched).unwrap();
        // Output must be in original-rank order everywhere.
        st.verify_allgather_identity().unwrap();
    }

    #[test]
    fn end_shuffle_after_rd_restores_order() {
        let m = m8();
        let sched = recursive_doubling(8);
        let mut st = reordered_init_state(&m, false);
        st.run(&sched).unwrap();
        // Before the shuffle the order is wrong…
        assert!(st.verify_allgather_identity().is_err());
        st.shuffle_outputs(&end_shuffle_perm(&m));
        st.verify_allgather_identity().unwrap();
    }

    #[test]
    fn in_place_ring_needs_no_fix() {
        let m = m8();
        let sched = ring_with_placement(8, Some(&ring_placement(&m)));
        let mut st = reordered_init_state(&m, true);
        st.run(&sched).unwrap();
        st.verify_allgather_identity().unwrap();
    }

    #[test]
    fn identity_mapping_needs_no_initcomm_ops() {
        let ident: Vec<u32> = (0..8).collect();
        assert_eq!(init_comm_schedule(&ident).num_ops(), 0);
    }

    #[test]
    fn init_comm_is_single_stage() {
        let m = m8();
        let s = init_comm_schedule(&m);
        assert_eq!(s.stages.len(), 1);
        // Every displaced process sends exactly once.
        assert_eq!(s.num_ops(), 6); // ranks 0 and 7 stay put
    }

    #[test]
    fn plain_allgather_without_fix_is_in_mapping_order() {
        let m = m8();
        let mut st = reordered_init_state(&m, false);
        st.run(&recursive_doubling(8)).unwrap();
        // Slot j holds tag m[j] at every rank.
        st.verify_allgather_tags(&m).unwrap();
    }

    #[test]
    fn random_mappings_all_three_fixes_agree() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for _ in 0..20 {
            let mut m: Vec<u32> = (0..16).collect();
            m.shuffle(&mut rng);

            // initComm
            let mut a = reordered_init_state(&m, false);
            a.run(&init_comm_schedule(&m).then(recursive_doubling(16)))
                .unwrap();
            a.verify_allgather_identity().unwrap();

            // endShfl
            let mut b = reordered_init_state(&m, false);
            b.run(&recursive_doubling(16)).unwrap();
            b.shuffle_outputs(&end_shuffle_perm(&m));
            b.verify_allgather_identity().unwrap();

            // in-place ring
            let mut c = reordered_init_state(&m, true);
            c.run(&ring_with_placement(16, Some(&ring_placement(&m))))
                .unwrap();
            c.verify_allgather_identity().unwrap();
        }
    }

    #[test]
    fn non_permutations_yield_typed_errors() {
        for bad in [&[0u32, 0, 1][..], &[0, 1, 3], &[1, 2, 3]] {
            let err = MapError::NotAPermutation { len: bad.len() };
            assert_eq!(try_init_comm_schedule(bad).unwrap_err(), err);
            assert_eq!(try_end_shuffle_perm(bad).unwrap_err(), err);
            assert_eq!(try_ring_placement(bad).unwrap_err(), err);
            assert!(try_reordered_init_state(bad, false).is_err());
            assert_eq!(crate::try_invert(bad).unwrap_err(), err);
        }
        // Valid mappings round-trip through the fallible API identically.
        let m = m8();
        assert_eq!(try_end_shuffle_perm(&m).unwrap(), end_shuffle_perm(&m));
        assert_eq!(
            try_init_comm_schedule(&m).unwrap().num_ops(),
            init_comm_schedule(&m).num_ops()
        );
    }

    #[test]
    fn order_fix_names() {
        assert_eq!(OrderFix::InitComm.name(), "initComm");
        assert_eq!(OrderFix::EndShuffle.name(), "endShfl");
        assert_eq!(OrderFix::InPlace.name(), "inPlace");
    }
}
