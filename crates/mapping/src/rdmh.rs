//! RDMH — Algorithm 2: the mapping heuristic for the recursive-doubling
//! communication pattern.
//!
//! Recursive doubling's later stages carry exponentially larger messages, so
//! the heuristic walks partner distances from `p/2` downward: the first
//! process placed next to rank 0 is its *last-stage* partner `0 ⊕ p/2`, then
//! the second-to-last `0 ⊕ p/4`, and after mapping **two** processes against
//! a reference the reference moves to the most recently mapped rank (whose
//! last-stage partner also communicates with already-placed ranks in the
//! second-to-last stage — the paper's two-fold rationale).

use crate::bucket::BucketContext;
use crate::scheme::{MappingContext, PlacementContext};
use tarr_topo::{DistanceOracle, ImplicitDistance};

/// Compute the RDMH mapping: `m[new_rank] = slot`, via a linear scan over
/// any distance oracle.
///
/// `update_after` is the number of processes mapped against one reference
/// core before the reference is updated; the paper uses 2 (Algorithm 2 line
/// 11), other values are exposed for the ablation study.
///
/// # Panics
/// Panics unless the process count is a power of two (recursive doubling's
/// own requirement).
pub fn rdmh_with_cadence<O: DistanceOracle>(d: &O, seed: u64, update_after: u32) -> Vec<u32> {
    rdmh_in(&mut MappingContext::new(d, seed), update_after)
}

/// RDMH over the bucketed free-slot index: same mapping as [`rdmh`] for the
/// same seed, in O(P) memory and sublinear per-step time.
pub fn rdmh_bucketed(o: &ImplicitDistance, seed: u64) -> Vec<u32> {
    rdmh_in(&mut BucketContext::new(o, seed), 2)
}

/// Algorithm 2 against any placement context.
///
/// # Panics
/// Panics unless the process count is a power of two.
pub fn rdmh_in<C: PlacementContext>(ctx: &mut C, update_after: u32) -> Vec<u32> {
    let p = ctx.len();
    assert!(
        p.is_power_of_two(),
        "RDMH needs a power-of-two process count"
    );
    assert!(update_after >= 1, "reference update cadence must be ≥ 1");
    let _span = tarr_trace::span("mapping.rdmh").arg("p", p);
    let p32 = p as u32;

    let mut m = vec![u32::MAX; p];
    let mut mapped = vec![false; p];

    // Fix rank 0 on its current core; choose it as the reference.
    m[0] = 0;
    mapped[0] = true;
    ctx.take(0);
    let mut ref_rank = 0u32;
    let mut i = p32 / 2;
    let mut mapped_with_ref = 0u32;
    let mut last_mapped = 0u32;

    let mut remaining = p - 1;
    while remaining > 0 {
        // Find the farthest-stage partner of the reference not yet mapped.
        while i >= 1 && mapped[(ref_rank ^ i) as usize] {
            i /= 2;
        }
        if i == 0 {
            // Every XOR partner of the reference is mapped (possible late in
            // the run): fall back to the most recently mapped rank with an
            // unmapped partner.
            ref_rank = last_mapped;
            i = p32 / 2;
            while mapped[(ref_rank ^ i) as usize] {
                if i == 1 {
                    // Scan for any mapped rank with an unmapped partner.
                    'outer: for r in 0..p32 {
                        if !mapped[r as usize] {
                            continue;
                        }
                        let mut j = p32 / 2;
                        while j >= 1 {
                            if !mapped[(r ^ j) as usize] {
                                ref_rank = r;
                                i = j;
                                break 'outer;
                            }
                            j /= 2;
                        }
                    }
                    break;
                }
                i /= 2;
            }
            mapped_with_ref = 0;
            continue;
        }

        let new_rank = ref_rank ^ i;
        let target = ctx.claim_closest_to(m[ref_rank as usize] as usize);
        m[new_rank as usize] = target as u32;
        mapped[new_rank as usize] = true;
        last_mapped = new_rank;
        remaining -= 1;
        mapped_with_ref += 1;

        if mapped_with_ref >= update_after {
            ref_rank = new_rank;
            i = p32 / 2;
            mapped_with_ref = 0;
        }
    }
    m
}

/// RDMH with the paper's reference-update cadence (2).
pub fn rdmh<O: DistanceOracle>(d: &O, seed: u64) -> Vec<u32> {
    rdmh_with_cadence(d, seed, 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_permutation;
    use tarr_topo::{Cluster, CoreId, DistanceConfig, DistanceMatrix};

    fn matrix(nodes: usize) -> DistanceMatrix {
        let c = Cluster::gpc(nodes);
        let cores: Vec<CoreId> = c.cores().collect();
        DistanceMatrix::build(&c, &cores, &DistanceConfig::default())
    }

    fn matrix_cyclic(nodes: usize) -> DistanceMatrix {
        // Slots in cyclic order: rank r on node r % nodes.
        let c = Cluster::gpc(nodes);
        let p = c.total_cores();
        let cores: Vec<CoreId> = (0..p)
            .map(|r| {
                let node = r % nodes;
                let visit = r / nodes;
                CoreId::from_idx(node * c.cores_per_node() + visit)
            })
            .collect();
        DistanceMatrix::build(&c, &cores, &DistanceConfig::default())
    }

    #[test]
    fn produces_permutations_at_many_sizes() {
        for nodes in [1usize, 2, 4, 8, 16, 32, 64] {
            let d = matrix(nodes);
            let m = rdmh(&d, 0);
            assert!(is_permutation(&m), "nodes={nodes}");
            assert_eq!(m[0], 0, "rank 0 stays on its core");
        }
    }

    #[test]
    fn cadence_variants_also_valid() {
        let d = matrix(8);
        for cadence in [1u32, 2, 4, 8] {
            assert!(is_permutation(&rdmh_with_cadence(&d, 0, cadence)));
        }
    }

    #[test]
    fn last_stage_partner_of_zero_lands_nearby() {
        // With a block-layout matrix, slot 0's nearest free cores are its
        // socket mates; RDMH must put rank p/2 (0's heaviest partner) there.
        let d = matrix(4); // p = 32
        let m = rdmh(&d, 0);
        let half = m[16] as usize; // rank p/2 = 16
                                   // Same socket as slot 0 ⇒ distance = socket level (2).
        assert!(d.get(0, half) <= 2, "rank 16 on slot {half}");
    }

    #[test]
    fn improves_rd_cost_on_cyclic_layout() {
        use crate::mapping_cost;
        use tarr_collectives::allgather::recursive_doubling;
        use tarr_collectives::pattern_graph;
        let d = matrix_cyclic(16); // 128 procs, cyclic = RD-hostile at top stages
        let g = pattern_graph(&recursive_doubling(128), 1024);
        let ident: Vec<u32> = (0..128).collect();
        let before = mapping_cost(&g, &d, &ident);
        let after = mapping_cost(&g, &d, &rdmh(&d, 0));
        assert!(after < before, "before {before} after {after}");
    }

    #[test]
    fn does_not_degrade_good_layout_much() {
        // Goal 2 of the paper: on a block layout (already decent for RD's
        // small stages) the reordered cost must not blow up.
        use crate::mapping_cost;
        use tarr_collectives::allgather::recursive_doubling;
        use tarr_collectives::pattern_graph;
        let d = matrix(16);
        let g = pattern_graph(&recursive_doubling(128), 1024);
        let ident: Vec<u32> = (0..128).collect();
        let before = mapping_cost(&g, &d, &ident);
        let after = mapping_cost(&g, &d, &rdmh(&d, 0));
        assert!(after <= before, "before {before} after {after}");
    }

    #[test]
    fn deterministic_per_seed() {
        let d = matrix(8);
        assert_eq!(rdmh(&d, 5), rdmh(&d, 5));
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_non_power_of_two() {
        let c = Cluster::gpc(3);
        let cores: Vec<CoreId> = c.cores().take(24).collect();
        let d = DistanceMatrix::build(&c, &cores, &DistanceConfig::default());
        rdmh(&d, 0);
    }
}
