//! BBMH — Algorithm 4: the mapping heuristic for the binomial broadcast
//! communication pattern.
//!
//! Binomial broadcast moves a constant-size message along every tree edge,
//! so no size weighting is needed; what matters is the traversal order. The
//! paper proposes a DFT variant that visits nodes with **smaller** subtrees
//! first: later broadcast stages have exponentially more concurrent
//! transmissions (1 in the first stage, p/2 in the last) and are therefore
//! the contention-prone ones, so their endpoints are placed while close
//! cores are still available. The opposite order (larger subtrees first, the
//! Subramoni et al. choice) is kept for the ablation study.

use crate::bucket::BucketContext;
use crate::scheme::{MappingContext, PlacementContext};
use tarr_topo::{DistanceOracle, ImplicitDistance};

/// Order in which a node's children are visited during the recursive
/// mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraversalOrder {
    /// Smaller subtrees first — the paper's proposal (child `r+1` before
    /// `r+2` before `r+4` …).
    SmallerFirst,
    /// Larger subtrees first — the prior-work alternative.
    LargerFirst,
}

/// Compute the BBMH mapping with an explicit traversal order, via a linear
/// scan over any distance oracle.
///
/// Works for any process count (children past `p` are skipped, matching the
/// broadcast schedule's clipping).
pub fn bbmh_with_order<O: DistanceOracle>(d: &O, seed: u64, order: TraversalOrder) -> Vec<u32> {
    bbmh_in(&mut MappingContext::new(d, seed), order)
}

/// BBMH with the paper's smaller-subtree-first traversal.
pub fn bbmh<O: DistanceOracle>(d: &O, seed: u64) -> Vec<u32> {
    bbmh_with_order(d, seed, TraversalOrder::SmallerFirst)
}

/// BBMH over the bucketed free-slot index: same mapping as [`bbmh`] for the
/// same seed, in O(P) memory and sublinear per-step time.
pub fn bbmh_bucketed(o: &ImplicitDistance, seed: u64) -> Vec<u32> {
    bbmh_in(
        &mut BucketContext::new(o, seed),
        TraversalOrder::SmallerFirst,
    )
}

/// Algorithm 4 against any placement context.
pub fn bbmh_in<C: PlacementContext>(ctx: &mut C, order: TraversalOrder) -> Vec<u32> {
    let p = ctx.len() as u32;
    let _span = tarr_trace::span("mapping.bbmh").arg("p", p);
    let mut m = vec![u32::MAX; p as usize];
    m[0] = 0;
    ctx.take(0);
    rec_binomial_map(0, p, order, &mut m, ctx);
    m
}

/// The recursive mapping procedure of Algorithm 4 (`RecBinomialMap`).
fn rec_binomial_map<C: PlacementContext>(
    r: u32,
    p: u32,
    order: TraversalOrder,
    m: &mut [u32],
    ctx: &mut C,
) {
    // Children of r in the binomial tree: r + i for i = 1, 2, 4, … while the
    // corresponding bit of r is clear and i below the tree height (i ≤ p/2
    // in the paper's power-of-two setting; i < p in general, with children
    // past p clipped like the broadcast schedule does).
    let mut offsets = Vec::new();
    let mut i = 1u32;
    while (r & i) == 0 && i < p {
        if r + i < p {
            offsets.push(i);
        }
        i <<= 1;
    }
    if order == TraversalOrder::LargerFirst {
        offsets.reverse();
    }
    for i in offsets {
        let new_rank = r + i;
        let target = ctx.claim_closest_to(m[r as usize] as usize);
        m[new_rank as usize] = target as u32;
        rec_binomial_map(new_rank, p, order, m, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{is_permutation, mapping_cost};
    use tarr_collectives::bcast::binomial_bcast;
    use tarr_collectives::pattern_graph;
    use tarr_topo::{Cluster, CoreId, DistanceConfig, DistanceMatrix, Rank};

    fn matrix_block(nodes: usize) -> DistanceMatrix {
        let c = Cluster::gpc(nodes);
        let cores: Vec<CoreId> = c.cores().collect();
        DistanceMatrix::build(&c, &cores, &DistanceConfig::default())
    }

    fn matrix_cyclic(nodes: usize) -> DistanceMatrix {
        let c = Cluster::gpc(nodes);
        let p = c.total_cores();
        let cores: Vec<CoreId> = (0..p)
            .map(|r| CoreId::from_idx((r % nodes) * c.cores_per_node() + r / nodes))
            .collect();
        DistanceMatrix::build(&c, &cores, &DistanceConfig::default())
    }

    #[test]
    fn produces_permutations_both_orders() {
        for nodes in [1usize, 2, 4, 16] {
            let d = matrix_block(nodes);
            for order in [TraversalOrder::SmallerFirst, TraversalOrder::LargerFirst] {
                let m = bbmh_with_order(&d, 0, order);
                assert!(is_permutation(&m), "nodes={nodes} order={order:?}");
                assert_eq!(m[0], 0);
            }
        }
    }

    #[test]
    fn works_for_non_power_of_two() {
        // 24 slots (3 nodes × 8).
        let c = Cluster::gpc(3);
        let cores: Vec<CoreId> = c.cores().collect();
        let d = DistanceMatrix::build(&c, &cores, &DistanceConfig::default());
        let m = bbmh(&d, 0);
        assert!(is_permutation(&m));
    }

    #[test]
    fn smaller_first_places_last_stage_neighbour_closest() {
        // With SmallerFirst, the first process placed is rank 1 (the
        // last-stage partner of rank 0); it must land in rank 0's socket.
        let d = matrix_block(4);
        let m = bbmh(&d, 0);
        assert!(d.get(0, m[1] as usize) <= 2, "rank 1 on slot {}", m[1]);
    }

    #[test]
    fn larger_first_places_heavy_subtree_root_closest() {
        let d = matrix_block(4);
        let m = bbmh_with_order(&d, 0, TraversalOrder::LargerFirst);
        // First placed is rank p/2 = 16 (the largest subtree).
        assert!(d.get(0, m[16] as usize) <= 2, "rank 16 on slot {}", m[16]);
    }

    #[test]
    fn improves_bcast_cost_on_cyclic_layout() {
        let d = matrix_cyclic(8);
        let g = pattern_graph(&binomial_bcast(64, Rank(0), 4096), 1);
        let ident: Vec<u32> = (0..64).collect();
        let before = mapping_cost(&g, &d, &ident);
        let after = mapping_cost(&g, &d, &bbmh(&d, 0));
        assert!(after < before, "before {before} after {after}");
    }

    #[test]
    fn no_degradation_on_block_layout() {
        let d = matrix_block(8);
        let g = pattern_graph(&binomial_bcast(64, Rank(0), 4096), 1);
        let ident: Vec<u32> = (0..64).collect();
        let before = mapping_cost(&g, &d, &ident);
        let after = mapping_cost(&g, &d, &bbmh(&d, 0));
        assert!(after <= before, "before {before} after {after}");
    }

    #[test]
    fn deterministic_per_seed() {
        let d = matrix_block(4);
        assert_eq!(bbmh(&d, 11), bbmh(&d, 11));
    }
}
