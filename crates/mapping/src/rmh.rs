//! RMH — Algorithm 3: the mapping heuristic for the ring communication
//! pattern.
//!
//! Every rank talks to exactly one fixed successor, so the heuristic simply
//! chains the ranks: rank 1 as close as possible to rank 0, rank 2 as close
//! as possible to rank 1, and so on; the reference core advances every step.

use crate::bucket::BucketContext;
use crate::scheme::{MappingContext, PlacementContext};
use tarr_topo::{DistanceOracle, ImplicitDistance};

/// Compute the RMH mapping: `m[new_rank] = slot`, via a linear scan over any
/// distance oracle.
pub fn rmh<O: DistanceOracle>(d: &O, seed: u64) -> Vec<u32> {
    rmh_in(&mut MappingContext::new(d, seed))
}

/// RMH over the bucketed free-slot index: same mapping as [`rmh`] for the
/// same seed, in O(P) memory and sublinear per-step time.
pub fn rmh_bucketed(o: &ImplicitDistance, seed: u64) -> Vec<u32> {
    rmh_in(&mut BucketContext::new(o, seed))
}

/// Algorithm 3 against any placement context.
pub fn rmh_in<C: PlacementContext>(ctx: &mut C) -> Vec<u32> {
    let p = ctx.len();
    let _span = tarr_trace::span("mapping.rmh").arg("p", p);
    let mut m = vec![u32::MAX; p];

    m[0] = 0;
    ctx.take(0);
    let mut ref_slot = 0usize;
    for slot in m.iter_mut().skip(1) {
        let target = ctx.claim_closest_to(ref_slot);
        *slot = target as u32;
        ref_slot = target;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{is_permutation, mapping_cost};
    use tarr_collectives::allgather::ring;
    use tarr_collectives::pattern_graph;
    use tarr_topo::{Cluster, CoreId, DistanceConfig, DistanceMatrix};

    fn matrix_block(nodes: usize) -> DistanceMatrix {
        let c = Cluster::gpc(nodes);
        let cores: Vec<CoreId> = c.cores().collect();
        DistanceMatrix::build(&c, &cores, &DistanceConfig::default())
    }

    fn matrix_cyclic(nodes: usize) -> DistanceMatrix {
        let c = Cluster::gpc(nodes);
        let p = c.total_cores();
        let cores: Vec<CoreId> = (0..p)
            .map(|r| CoreId::from_idx((r % nodes) * c.cores_per_node() + r / nodes))
            .collect();
        DistanceMatrix::build(&c, &cores, &DistanceConfig::default())
    }

    #[test]
    fn produces_permutations() {
        for nodes in [1usize, 2, 3, 7, 16] {
            let m = rmh(&matrix_block(nodes), 0);
            assert!(is_permutation(&m), "nodes={nodes}");
            assert_eq!(m[0], 0);
        }
    }

    #[test]
    fn block_layout_is_already_optimal_and_preserved() {
        // On a block layout consecutive slots are already adjacent: RMH must
        // keep consecutive ranks on consecutive-or-equal-distance slots — in
        // particular the ring cost must not increase (paper goal 2).
        let d = matrix_block(8);
        let g = pattern_graph(&ring(64), 4096);
        let ident: Vec<u32> = (0..64).collect();
        let before = mapping_cost(&g, &d, &ident);
        let after = mapping_cost(&g, &d, &rmh(&d, 0));
        assert!(after <= before, "before {before} after {after}");
    }

    #[test]
    fn repairs_cyclic_layout() {
        // Under a cyclic layout every ring neighbour is on another node; RMH
        // must collapse the chain back into nodes.
        let d = matrix_cyclic(8);
        let g = pattern_graph(&ring(64), 4096);
        let ident: Vec<u32> = (0..64).collect();
        let before = mapping_cost(&g, &d, &ident);
        let after = mapping_cost(&g, &d, &rmh(&d, 0));
        assert!(
            after < before / 2,
            "cyclic ring should improve a lot: before {before} after {after}"
        );
    }

    #[test]
    fn chain_is_locally_tight() {
        // Each consecutive pair must sit at the minimum distance available
        // when it was placed; in a fresh block layout that means the first 8
        // ranks fill node 0.
        let d = matrix_block(4);
        let m = rmh(&d, 3);
        let node_of_slot = |s: u32| s / 8;
        for (r, &slot) in m.iter().enumerate().take(8) {
            assert_eq!(node_of_slot(slot), 0, "rank {r} on slot {slot}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let d = matrix_block(4);
        assert_eq!(rmh(&d, 9), rmh(&d, 9));
    }
}
