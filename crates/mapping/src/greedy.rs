//! The Hoefler–Snir general greedy graph mapper (related work the paper
//! builds its BGMH rationale on).
//!
//! Iteratively takes the unmapped vertex most heavily connected to the
//! already-mapped set and places it on the free slot minimizing the weighted
//! distance to its mapped neighbours. Unlike the fine-tuned heuristics it
//! needs an explicit pattern graph, and unlike the Scotch-style mapper it is
//! a single greedy sweep.

use tarr_collectives::pattern::PatternGraph;
use tarr_topo::DistanceOracle;

/// Compute a greedy mapping `m[rank] = slot`, with rank 0 fixed on slot 0.
pub fn greedy_map<O: DistanceOracle>(graph: &PatternGraph, d: &O) -> Vec<u32> {
    assert_eq!(graph.p as usize, d.len(), "graph/matrix size mismatch");
    let p = d.len();
    let _span = tarr_trace::span("mapping.greedy").arg("p", p);
    let mut m = vec![u32::MAX; p];
    let mut mapped = vec![false; p];
    let mut free = vec![true; p];
    // conn[r] = weight from r into the mapped set.
    let mut conn = vec![0u64; p];

    let place = |r: usize,
                 slot: usize,
                 m: &mut [u32],
                 mapped: &mut [bool],
                 free: &mut [bool],
                 conn: &mut [u64]| {
        m[r] = slot as u32;
        mapped[r] = true;
        free[slot] = false;
        for &(j, w) in &graph.adj[r] {
            conn[j as usize] += w;
        }
    };
    place(0, 0, &mut m, &mut mapped, &mut free, &mut conn);

    for _ in 1..p {
        // Most heavily connected unmapped vertex (ties: lowest index); if the
        // graph is disconnected fall back to the lowest unmapped index.
        let mut best_r = usize::MAX;
        let mut best_c = 0u64;
        for r in 0..p {
            if !mapped[r] && (best_r == usize::MAX || conn[r] > best_c) {
                best_r = r;
                best_c = conn[r];
            }
        }

        // Free slot minimizing Σ w·d(slot, M[nbr]) over mapped neighbours.
        let mut best_slot = usize::MAX;
        let mut best_cost = u64::MAX;
        for (slot, &is_free) in free.iter().enumerate() {
            if !is_free {
                continue;
            }
            let mut cost = 0u64;
            for &(j, w) in &graph.adj[best_r] {
                if mapped[j as usize] {
                    cost += w * d.distance(slot, m[j as usize] as usize) as u64;
                }
            }
            if cost < best_cost {
                best_cost = cost;
                best_slot = slot;
            }
        }
        place(best_r, best_slot, &mut m, &mut mapped, &mut free, &mut conn);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{is_permutation, mapping_cost};
    use tarr_collectives::allgather::{recursive_doubling, ring};
    use tarr_collectives::pattern_graph;
    use tarr_topo::{Cluster, CoreId, DistanceConfig, DistanceMatrix};

    fn matrix_cyclic(nodes: usize) -> DistanceMatrix {
        let c = Cluster::gpc(nodes);
        let p = c.total_cores();
        let cores: Vec<CoreId> = (0..p)
            .map(|r| CoreId::from_idx((r % nodes) * c.cores_per_node() + r / nodes))
            .collect();
        DistanceMatrix::build(&c, &cores, &DistanceConfig::default())
    }

    #[test]
    fn produces_permutations() {
        let d = matrix_cyclic(4);
        for g in [
            pattern_graph(&ring(32), 100),
            pattern_graph(&recursive_doubling(32), 100),
        ] {
            let m = greedy_map(&g, &d);
            assert!(is_permutation(&m));
            assert_eq!(m[0], 0);
        }
    }

    #[test]
    fn improves_cyclic_ring() {
        let d = matrix_cyclic(8);
        let g = pattern_graph(&ring(64), 4096);
        let ident: Vec<u32> = (0..64).collect();
        let before = mapping_cost(&g, &d, &ident);
        let after = mapping_cost(&g, &d, &greedy_map(&g, &d));
        assert!(after < before, "before {before} after {after}");
    }

    #[test]
    fn handles_disconnected_graph() {
        // An empty pattern (no edges) still yields a permutation.
        let d = matrix_cyclic(2);
        let g = tarr_collectives::pattern::PatternGraph {
            p: 16,
            adj: vec![Vec::new(); 16],
        };
        let m = greedy_map(&g, &d);
        assert!(is_permutation(&m));
    }
}
