//! A Scotch-style general-purpose graph mapper: **dual recursive
//! bipartitioning** (Pellegrini & Roman), standing in for the Scotch library
//! the paper compares against.
//!
//! The guest (communication-pattern) graph and the host (core set, described
//! by the distance matrix) are bisected recursively in lockstep: the host is
//! split into two distance-coherent halves, the guest into two equal parts
//! minimizing the cut weight (greedy graph growing + bounded
//! Fiduccia–Mattheyses-style refinement), and each part recurses onto its
//! half. Being pattern-agnostic, it must be handed an explicit process
//! topology graph — the build cost the paper charges to Scotch and the
//! fine-tuned heuristics avoid.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tarr_collectives::pattern::PatternGraph;
use tarr_topo::DistanceOracle;

/// How the host (architecture) side is bisected.
///
/// The paper observed the Scotch library *degrading* performance in most
/// regimes (Figs. 3, 5). A careful dual-recursive-bipartitioning
/// implementation does not behave that way, so two variants are provided:
///
/// * [`ScotchVariant::PaperDefault`] reconstructs the measured behaviour of
///   driving Scotch with its default strategy: host halves are formed by
///   two-seed relative affinity with index-order tie-breaking, which leaves
///   every slot equidistant from both seeds (e.g. third-party nodes of the
///   same leaf switch) split arbitrarily. Paired with an *unweighted* guest
///   graph (see `pattern_graph_unweighted`), this reproduces the paper's
///   negative Scotch results.
/// * [`ScotchVariant::Tuned`] uses balanced single-linkage cluster growing,
///   which keeps nodes/sockets together and represents what a well-driven
///   DRB mapper achieves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScotchVariant {
    /// Reconstruction of the paper's measured Scotch baseline.
    PaperDefault,
    /// A well-driven DRB mapper (ablation).
    Tuned,
}

/// Compute a mapping `m[rank] = slot` by dual recursive bipartitioning with
/// the paper-default variant.
pub fn scotch_like_map<O: DistanceOracle>(graph: &PatternGraph, d: &O, seed: u64) -> Vec<u32> {
    scotch_like_map_with(graph, d, seed, ScotchVariant::PaperDefault)
}

/// Compute a mapping `m[rank] = slot` by dual recursive bipartitioning.
pub fn scotch_like_map_with<O: DistanceOracle>(
    graph: &PatternGraph,
    d: &O,
    seed: u64,
    variant: ScotchVariant,
) -> Vec<u32> {
    assert_eq!(graph.p as usize, d.len(), "graph/matrix size mismatch");
    let p = d.len();
    let _span = tarr_trace::span("mapping.scotchlike").arg("p", p);
    let mut m = vec![u32::MAX; p];
    let ranks: Vec<u32> = (0..p as u32).collect();
    let slots: Vec<usize> = (0..p).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    map_rec(graph, d, ranks, slots, &mut m, &mut rng, variant);
    debug_assert!(crate::is_permutation(&m));
    m
}

#[allow(clippy::too_many_arguments)]
fn map_rec<O: DistanceOracle>(
    graph: &PatternGraph,
    d: &O,
    ranks: Vec<u32>,
    slots: Vec<usize>,
    m: &mut [u32],
    rng: &mut StdRng,
    variant: ScotchVariant,
) {
    debug_assert_eq!(ranks.len(), slots.len());
    if ranks.len() == 1 {
        m[ranks[0] as usize] = slots[0] as u32;
        return;
    }
    if ranks.len() == 2 {
        m[ranks[0] as usize] = slots[0] as u32;
        m[ranks[1] as usize] = slots[1] as u32;
        return;
    }

    let (slots_a, slots_b) = match variant {
        ScotchVariant::PaperDefault => bisect_host_affinity(d, &slots),
        ScotchVariant::Tuned => bisect_host_linkage(d, &slots),
    };
    let (ranks_a, ranks_b) = bisect_guest(graph, &ranks, slots_a.len(), rng);
    map_rec(graph, d, ranks_a, slots_a, m, rng, variant);
    map_rec(graph, d, ranks_b, slots_b, m, rng, variant);
}

/// Paper-default host bisection: two far-apart seeds, every slot goes to the
/// side it is *relatively* closer to, ties (slots equidistant from both
/// seeds) broken by index order — which arbitrarily splits third-party nodes.
fn bisect_host_affinity<O: DistanceOracle>(d: &O, slots: &[usize]) -> (Vec<usize>, Vec<usize>) {
    let n = slots.len();
    let seed_a = slots[0];
    let seed_b = *slots
        .iter()
        .max_by_key(|&&s| d.distance(seed_a, s))
        .expect("non-empty");

    // Affinity = d(s, seed_b) − d(s, seed_a): larger means more a-side.
    let mut order: Vec<usize> = slots.to_vec();
    order.sort_by_key(|&s| {
        let aff = d.distance(s, seed_b) as i32 - d.distance(s, seed_a) as i32;
        (-aff, s)
    });
    let half = n.div_ceil(2);
    let mut a = order[..half].to_vec();
    let mut b = order[half..].to_vec();
    a.sort_unstable();
    b.sort_unstable();
    (a, b)
}

/// Tuned host bisection: balanced single-linkage growing. Two far-apart
/// seeds; repeatedly assign the most *decided* remaining slot (largest gap
/// between its distances to the two growing clusters) to its nearer side, so
/// whole nodes and sockets stay together.
fn bisect_host_linkage<O: DistanceOracle>(d: &O, slots: &[usize]) -> (Vec<usize>, Vec<usize>) {
    let n = slots.len();
    let cap_a = n.div_ceil(2);
    let cap_b = n - cap_a;
    let seed_a = slots[0];
    let seed_b = *slots
        .iter()
        .max_by_key(|&&s| d.distance(seed_a, s))
        .expect("non-empty");

    let mut a = vec![seed_a];
    let mut b = vec![seed_b];
    let mut remaining: Vec<usize> = slots
        .iter()
        .copied()
        .filter(|&s| s != seed_a && s != seed_b)
        .collect();
    // Single-linkage distances to each cluster, updated incrementally.
    let mut da: Vec<u16> = remaining.iter().map(|&s| d.distance(s, seed_a)).collect();
    let mut db: Vec<u16> = remaining.iter().map(|&s| d.distance(s, seed_b)).collect();

    while !remaining.is_empty() {
        // Most decided slot first.
        let (idx, _) = remaining
            .iter()
            .enumerate()
            .max_by_key(|&(i, _)| {
                let gap = (da[i] as i32 - db[i] as i32).abs();
                // Prefer slots close to either cluster among equal gaps.
                (gap, -(da[i].min(db[i]) as i32))
            })
            .expect("non-empty remaining");
        let s = remaining.swap_remove(idx);
        let (sda, sdb) = (da.swap_remove(idx), db.swap_remove(idx));
        let to_a = if a.len() >= cap_a {
            false
        } else if b.len() >= cap_b {
            true
        } else {
            sda <= sdb
        };
        if to_a {
            a.push(s);
            for (i, &r) in remaining.iter().enumerate() {
                da[i] = da[i].min(d.distance(r, s));
            }
        } else {
            b.push(s);
            for (i, &r) in remaining.iter().enumerate() {
                db[i] = db[i].min(d.distance(r, s));
            }
        }
    }
    a.sort_unstable();
    b.sort_unstable();
    (a, b)
}

/// Partition `ranks` into parts of sizes `size_a` and the rest, minimizing
/// the cut: greedy graph growing followed by bounded pairwise-swap
/// refinement.
fn bisect_guest(
    graph: &PatternGraph,
    ranks: &[u32],
    size_a: usize,
    rng: &mut StdRng,
) -> (Vec<u32>, Vec<u32>) {
    let n = ranks.len();
    debug_assert!(size_a >= 1 && size_a < n);
    // Membership of the current subset.
    let mut in_subset = vec![false; graph.p as usize];
    for &r in ranks {
        in_subset[r as usize] = true;
    }

    // --- Greedy growing of part A ---
    let mut in_a = vec![false; graph.p as usize];
    // conn[r] = total weight from r into A.
    let mut conn = vec![0u64; graph.p as usize];
    let start = ranks[rng.gen_range(0..n)];
    let mut a: Vec<u32> = Vec::with_capacity(size_a);
    let add_to_a = |r: u32,
                    a: &mut Vec<u32>,
                    in_a: &mut Vec<bool>,
                    conn: &mut Vec<u64>,
                    in_subset: &Vec<bool>| {
        in_a[r as usize] = true;
        a.push(r);
        for &(j, w) in &graph.adj[r as usize] {
            if in_subset[j as usize] {
                conn[j as usize] += w;
            }
        }
    };
    add_to_a(start, &mut a, &mut in_a, &mut conn, &in_subset);
    while a.len() < size_a {
        // Best-connected unassigned rank (ties: lowest index).
        let mut best: Option<u32> = None;
        let mut best_conn = 0u64;
        for &r in ranks {
            if !in_a[r as usize] {
                let c = conn[r as usize];
                if best.is_none() || c > best_conn {
                    best = Some(r);
                    best_conn = c;
                }
            }
        }
        add_to_a(best.unwrap(), &mut a, &mut in_a, &mut conn, &in_subset);
    }

    // --- Bounded pairwise-swap (FM-style) refinement ---
    // gain(v) = external − internal weight; swapping (x ∈ A, y ∈ B) changes
    // the cut by −(gain(x) + gain(y) − 2·w(x, y)).
    let gain = |r: u32, in_a: &Vec<bool>| -> i64 {
        let mine = in_a[r as usize];
        let mut g = 0i64;
        for &(j, w) in &graph.adj[r as usize] {
            if !in_subset[j as usize] {
                continue;
            }
            if in_a[j as usize] == mine {
                g -= w as i64;
            } else {
                g += w as i64;
            }
        }
        g
    };

    let mut b: Vec<u32> = ranks
        .iter()
        .copied()
        .filter(|&r| !in_a[r as usize])
        .collect();
    let max_swaps = n.min(64);
    for _ in 0..max_swaps {
        // Consider the top boundary candidates on each side.
        const K: usize = 16;
        let mut ga: Vec<(i64, usize)> = a
            .iter()
            .enumerate()
            .map(|(i, &r)| (gain(r, &in_a), i))
            .collect();
        let mut gb: Vec<(i64, usize)> = b
            .iter()
            .enumerate()
            .map(|(i, &r)| (gain(r, &in_a), i))
            .collect();
        ga.sort_unstable_by_key(|&(g, _)| -g);
        gb.sort_unstable_by_key(|&(g, _)| -g);
        let mut best: Option<(i64, usize, usize)> = None;
        for &(gx, ia) in ga.iter().take(K) {
            let x = a[ia];
            for &(gy, ib) in gb.iter().take(K) {
                let y = b[ib];
                let w = graph.weight(x, y) as i64;
                let delta = gx + gy - 2 * w;
                if delta > 0 && best.map(|(d, _, _)| delta > d).unwrap_or(true) {
                    best = Some((delta, ia, ib));
                }
            }
        }
        match best {
            Some((_, ia, ib)) => {
                let (x, y) = (a[ia], b[ib]);
                in_a[x as usize] = false;
                in_a[y as usize] = true;
                a[ia] = y;
                b[ib] = x;
            }
            None => break,
        }
    }

    a.sort_unstable();
    b.sort_unstable();
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{is_permutation, mapping_cost};
    use tarr_collectives::allgather::ring;
    use tarr_collectives::pattern_graph;
    use tarr_topo::{Cluster, CoreId, DistanceConfig, DistanceMatrix};

    fn matrix(nodes: usize) -> DistanceMatrix {
        let c = Cluster::gpc(nodes);
        let cores: Vec<CoreId> = c.cores().collect();
        DistanceMatrix::build(&c, &cores, &DistanceConfig::default())
    }

    fn matrix_cyclic(nodes: usize) -> DistanceMatrix {
        let c = Cluster::gpc(nodes);
        let p = c.total_cores();
        let cores: Vec<CoreId> = (0..p)
            .map(|r| CoreId::from_idx((r % nodes) * c.cores_per_node() + r / nodes))
            .collect();
        DistanceMatrix::build(&c, &cores, &DistanceConfig::default())
    }

    #[test]
    fn produces_permutations() {
        for nodes in [1usize, 2, 3, 8] {
            let d = matrix(nodes);
            let g = pattern_graph(&ring(d.len() as u32), 100);
            let m = scotch_like_map(&g, &d, 0);
            assert!(is_permutation(&m), "nodes={nodes}");
        }
    }

    #[test]
    fn improves_ring_on_cyclic_layout() {
        let d = matrix_cyclic(8);
        let g = pattern_graph(&ring(64), 4096);
        let ident: Vec<u32> = (0..64).collect();
        let before = mapping_cost(&g, &d, &ident);
        let after = mapping_cost(&g, &d, &scotch_like_map(&g, &d, 1));
        assert!(after < before, "before {before} after {after}");
    }

    #[test]
    fn worse_than_fine_tuned_heuristic_on_ring() {
        // The paper's headline comparison: the general mapper does not beat
        // RMH on the pattern RMH was tuned for.
        let d = matrix_cyclic(8);
        let g = pattern_graph(&ring(64), 4096);
        let scotch = mapping_cost(&g, &d, &scotch_like_map(&g, &d, 1));
        let hrstc = mapping_cost(&g, &d, &crate::rmh(&d, 1));
        assert!(hrstc <= scotch, "hrstc {hrstc} scotch {scotch}");
    }

    #[test]
    fn handles_tiny_inputs() {
        let d = matrix(1); // 8 slots
        let g = pattern_graph(&ring(8), 10);
        let m = scotch_like_map(&g, &d, 7);
        assert!(is_permutation(&m));
    }

    #[test]
    fn deterministic_per_seed() {
        let d = matrix(4);
        let g = pattern_graph(&ring(32), 64);
        assert_eq!(scotch_like_map(&g, &d, 3), scotch_like_map(&g, &d, 3));
    }
}
