//! BKMH — mapping heuristic for the Bruck allgather pattern (the paper's
//! §VII future-work extension, built in the spirit of RDMH).
//!
//! In Bruck's algorithm rank `i` sends to `i − 2ᵏ (mod p)` at stage `k`, and
//! like recursive doubling the carried volume grows with the stage
//! (`min(2ᵏ, p − 2ᵏ)` blocks). BKMH therefore mirrors RDMH: starting from
//! rank 0 it places the reference's *latest-stage* peers first (`ref ± 2ᵏ`
//! for the largest `k` with an unmapped peer), and moves the reference after
//! two placements. Unlike RDMH it works for any `p` — Bruck's partners are
//! additive (mod p) rather than XOR, so no power-of-two structure is needed.

use crate::bucket::BucketContext;
use crate::scheme::{MappingContext, PlacementContext};
use tarr_topo::{DistanceOracle, ImplicitDistance};

/// Compute the BKMH mapping: `m[new_rank] = slot`, for any `p ≥ 1`, via a
/// linear scan over any distance oracle.
pub fn bkmh<O: DistanceOracle>(d: &O, seed: u64) -> Vec<u32> {
    bkmh_in(&mut MappingContext::new(d, seed))
}

/// BKMH over the bucketed free-slot index: same mapping as [`bkmh`] for the
/// same seed, in O(P) memory and sublinear per-step time.
pub fn bkmh_bucketed(o: &ImplicitDistance, seed: u64) -> Vec<u32> {
    bkmh_in(&mut BucketContext::new(o, seed))
}

/// The BKMH procedure against any placement context.
pub fn bkmh_in<C: PlacementContext>(ctx: &mut C) -> Vec<u32> {
    let p = ctx.len() as u32;
    let _span = tarr_trace::span("mapping.bkmh").arg("p", p);
    let mut m = vec![u32::MAX; p as usize];
    let mut mapped = vec![false; p as usize];

    m[0] = 0;
    mapped[0] = true;
    ctx.take(0);
    if p == 1 {
        return m;
    }

    // Stage offsets, largest (heaviest) first.
    let mut offsets: Vec<u32> = Vec::new();
    let mut k = 1u32;
    while k < p {
        offsets.push(k);
        k <<= 1;
    }
    offsets.reverse();

    let mut ref_rank = 0u32;
    let mut mapped_with_ref = 0u32;
    let mut remaining = p - 1;
    while remaining > 0 {
        // The reference's unmapped peer of the heaviest stage: receiver
        // (ref − 2ᵏ) preferred, then sender (ref + 2ᵏ).
        let mut next: Option<u32> = None;
        'search: for &off in &offsets {
            for cand in [(ref_rank + p - off % p) % p, (ref_rank + off) % p] {
                if !mapped[cand as usize] {
                    next = Some(cand);
                    break 'search;
                }
            }
        }
        let new_rank = match next {
            Some(r) => r,
            None => {
                // All peers of the reference mapped: advance the reference to
                // the next mapped rank with an unmapped peer (guaranteed to
                // exist while ranks remain, since the Bruck graph with
                // offset 1 contains the full ring).
                let start = ref_rank;
                loop {
                    ref_rank = (ref_rank + 1) % p;
                    assert_ne!(ref_rank, start, "no reference with unmapped peers");
                    if mapped[ref_rank as usize]
                        && (!mapped[((ref_rank + 1) % p) as usize]
                            || !mapped[((ref_rank + p - 1) % p) as usize])
                    {
                        break;
                    }
                }
                mapped_with_ref = 0;
                continue;
            }
        };

        let target = ctx.claim_closest_to(m[ref_rank as usize] as usize);
        m[new_rank as usize] = target as u32;
        mapped[new_rank as usize] = true;
        remaining -= 1;
        mapped_with_ref += 1;
        if mapped_with_ref >= 2 {
            ref_rank = new_rank;
            mapped_with_ref = 0;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{is_permutation, mapping_cost};
    use tarr_collectives::allgather::bruck;
    use tarr_collectives::pattern_graph;
    use tarr_topo::{Cluster, CoreId, DistanceConfig, DistanceMatrix};

    fn matrix_cyclic(nodes: usize) -> DistanceMatrix {
        let c = Cluster::gpc(nodes);
        let p = c.total_cores();
        let cores: Vec<CoreId> = (0..p)
            .map(|r| CoreId::from_idx((r % nodes) * c.cores_per_node() + r / nodes))
            .collect();
        DistanceMatrix::build(&c, &cores, &DistanceConfig::default())
    }

    #[test]
    fn produces_permutations_any_p() {
        // Including non-power-of-two process counts.
        for nodes in [1usize, 2, 3, 5, 8, 13] {
            let c = Cluster::gpc(nodes);
            let cores: Vec<CoreId> = c.cores().collect();
            let d = DistanceMatrix::build(&c, &cores, &DistanceConfig::default());
            let m = bkmh(&d, 0);
            assert!(is_permutation(&m), "nodes={nodes}");
            assert_eq!(m[0], 0);
        }
    }

    #[test]
    fn heaviest_partner_lands_near_rank_zero() {
        let c = Cluster::gpc(4); // p = 32
        let cores: Vec<CoreId> = c.cores().collect();
        let d = DistanceMatrix::build(&c, &cores, &DistanceConfig::default());
        let m = bkmh(&d, 0);
        // The heaviest Bruck peer of 0 is 0 − 16 mod 32 = 16.
        assert!(d.get(0, m[16] as usize) <= 2, "rank 16 on slot {}", m[16]);
    }

    #[test]
    fn improves_bruck_cost_on_cyclic_layout() {
        let d = matrix_cyclic(8);
        let p = d.len() as u32;
        let g = pattern_graph(&bruck(p), 512);
        let ident: Vec<u32> = (0..p).collect();
        let before = mapping_cost(&g, &d, &ident);
        let after = mapping_cost(&g, &d, &bkmh(&d, 0));
        assert!(after < before, "before {before} after {after}");
    }

    #[test]
    fn deterministic_per_seed() {
        let d = matrix_cyclic(4);
        assert_eq!(bkmh(&d, 3), bkmh(&d, 3));
    }

    #[test]
    fn single_rank_trivial() {
        let c = Cluster::gpc(1);
        let cores: Vec<CoreId> = c.cores().take(1).collect();
        let d = DistanceMatrix::build(&c, &cores, &DistanceConfig::default());
        assert_eq!(bkmh(&d, 0), vec![0]);
    }
}
