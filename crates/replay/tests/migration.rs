//! Snapshot forward-migration: the checked-in V1 fixture must keep
//! loading, bit-identically, on every future build. V1 snapshots have no
//! meta section; decode migrates them to the in-memory form with empty
//! meta. If this test fails after a format change, the change broke the
//! "old snapshots load forever" contract — fix the decoder, never the
//! fixture.
//!
//! Regenerate (only when *adding* a fixture, never to paper over a
//! decode break): `TARR_REGEN_FIXTURES=1 cargo test -p tarr-replay
//! --test migration`.

use std::path::PathBuf;
use std::sync::Arc;
use tarr_replay::{probe_suite, BackendKind, EngineSnapshot, IngestSource, IngestSpec, LayoutKind};

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/snapshot_v1.tsnap")
}

/// The fixture's source state, reproducible from first principles: a
/// seeded 16-rank GPC core warmed by the standard probe suite (which
/// deterministically fills the mapping/comm/sched/price caches).
fn warm_fixture_core() -> Arc<tarr_core::SessionCore> {
    let spec = IngestSpec {
        source: IngestSource::GpcNodes(2),
        layout: LayoutKind::BlockBunch,
        p: None,
        seed: Some(42),
        backend: BackendKind::Implicit,
        replace: false,
    };
    let core = Arc::new(tarr_replay::build_core(&spec).unwrap());
    let _ = probe_suite(&core);
    core
}

#[test]
fn v1_fixture_loads_forever() {
    let path = fixture_path();
    let core = warm_fixture_core();
    if std::env::var("TARR_REGEN_FIXTURES").is_ok() {
        let snap = EngineSnapshot::capture(3, &[("gpc".to_string(), core.clone())]).unwrap();
        let bytes = snap.encode_with_version(1).unwrap();
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &bytes).unwrap();
    }
    let bytes = std::fs::read(&path)
        .unwrap_or_else(|e| panic!("missing fixture {} ({e}); see module docs", path.display()));
    let snap = EngineSnapshot::decode(&bytes).expect("V1 snapshot must decode on every build");
    assert_eq!(snap.last_event_id, 3);
    assert!(snap.meta.is_empty(), "V1 migrates to empty meta");
    assert_eq!(snap.clusters.len(), 1);
    assert_eq!(snap.clusters[0].0, "gpc");
    let restored = Arc::new(snap.clusters[0].1.restore().unwrap());
    assert_eq!(
        probe_suite(&restored),
        probe_suite(&core),
        "V1-restored state must answer probes bit-identically"
    );
}
