//! Property tests over random mutation sequences: however ingests and
//! faults interleave, (a) replaying the WAL from disk, (b) booting from a
//! mid-sequence snapshot plus the log tail, and (c) recovering a randomly
//! torn tail all reconstruct engine state **bit-identically** (probe
//! suites render floats as IEEE-754 bit patterns, so equality is exact).

use proptest::prelude::*;
use std::path::PathBuf;
use tarr_replay::{
    probe_suite, read_wal, recover_wal, restore_dir, BackendKind, EngineSnapshot, Event, FaultSpec,
    IngestSource, IngestSpec, LayoutKind, ReplayState, WalTail, WalWriter, WAL_FILE,
};

/// Small deterministic generator for derived choices inside a case.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self, bound: usize) -> usize {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.0 >> 33) as usize) % bound.max(1)
    }
}

fn tmpdir(tag: u64) -> PathBuf {
    let d = std::env::temp_dir().join(format!("tarr-replay-props-{tag:x}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

const LAYOUTS: [LayoutKind; 4] = [
    LayoutKind::BlockBunch,
    LayoutKind::BlockScatter,
    LayoutKind::CyclicBunch,
    LayoutKind::CyclicScatter,
];

/// A random mutation sequence: every fault targets an already-ingested
/// cluster, rates stay mild enough that application always succeeds.
fn arb_events(pick: &mut Lcg) -> Vec<Event> {
    let n = 2 + pick.next(3); // 2..=4 events
    let mut events = Vec::with_capacity(n);
    let mut known: Vec<String> = Vec::new();
    for _ in 0..n {
        if known.is_empty() || pick.next(3) == 0 {
            let name = format!("c{}", pick.next(2));
            events.push(Event::Ingest {
                cluster: name.clone(),
                spec: IngestSpec {
                    source: IngestSource::GpcNodes(2 + pick.next(2) as u64),
                    layout: LAYOUTS[pick.next(4)],
                    p: None,
                    seed: Some(pick.next(1 << 16) as u64),
                    backend: if pick.next(4) == 0 {
                        BackendKind::Dense
                    } else {
                        BackendKind::Implicit
                    },
                    replace: true,
                },
            });
            if !known.contains(&name) {
                known.push(name);
            }
        } else {
            let name = known[pick.next(known.len())].clone();
            events.push(Event::Fault {
                cluster: name,
                fault: FaultSpec {
                    seed: pick.next(1 << 16) as u64,
                    link_fail: 0.02 + 0.02 * pick.next(4) as f64,
                    switch_fail: 0.0,
                    node_drain: 0.0,
                    core_drain: 0.0,
                },
            });
        }
    }
    events
}

fn apply_all(events: &[Event]) -> ReplayState {
    let mut s = ReplayState::default();
    for (i, e) in events.iter().enumerate() {
        s.apply(i as u64 + 1, e).unwrap();
    }
    s
}

fn assert_same_state(a: &ReplayState, b: &ReplayState, what: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        a.clusters.keys().collect::<Vec<_>>(),
        b.clusters.keys().collect::<Vec<_>>(),
        "{}: cluster sets differ",
        what
    );
    for (name, core) in &a.clusters {
        prop_assert_eq!(
            probe_suite(core),
            probe_suite(&b.clusters[name]),
            "{}: probe divergence on {}",
            what,
            name
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn random_sequences_replay_bit_identically(case_seed in 0u64..(1u64 << 48)) {
        let mut pick = Lcg(case_seed);
        let events = arb_events(&mut pick);
        let direct = apply_all(&events);

        // Write the sequence as a WAL, tracking the last record's extent
        // for the torn-tail case below.
        let d = tmpdir(case_seed);
        let wal = d.join(WAL_FILE);
        let mut w = WalWriter::open_append(&wal).unwrap();
        let mut len_before_last = w.bytes();
        for (i, e) in events.iter().enumerate() {
            len_before_last = w.bytes();
            w.append(i as u64 + 1, i as u64 + 1, &e.encode()).unwrap();
        }
        let full_len = w.bytes();
        drop(w);

        // (a) Full replay from disk.
        let restored = restore_dir(&d, false).unwrap();
        prop_assert_eq!(restored.events_replayed, events.len() as u64);
        assert_same_state(&direct, &restored.state, "full replay")?;

        // (b) Snapshot at a random cut + tail replay.
        let cut = 1 + pick.next(events.len());
        let mut upto = ReplayState::default();
        for (i, e) in events.iter().take(cut).enumerate() {
            upto.apply(i as u64 + 1, e).unwrap();
        }
        let cores: Vec<_> = upto.clusters.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        let snap = EngineSnapshot::capture(cut as u64, &cores).unwrap();
        tarr_replay::write_snapshot(&d, &snap).unwrap();
        let restored = restore_dir(&d, false).unwrap();
        prop_assert_eq!(restored.events_skipped, cut as u64);
        prop_assert_eq!(restored.events_replayed, (events.len() - cut) as u64);
        assert_same_state(&direct, &restored.state, "snapshot + tail")?;

        // (c) Tear the last record at a random byte and recover: exactly
        // the unacknowledged suffix is dropped, never more.
        let _ = std::fs::remove_file(d.join(tarr_replay::SNAP_FILE));
        let cut_at = len_before_last + pick.next((full_len - len_before_last) as usize) as u64;
        let f = std::fs::OpenOptions::new().write(true).open(&wal).unwrap();
        f.set_len(cut_at).unwrap();
        drop(f);
        let (records, tail, _) = recover_wal(&wal).unwrap();
        prop_assert_eq!(records.len(), events.len() - 1);
        if cut_at > len_before_last {
            prop_assert!(matches!(tail, WalTail::Torn { .. }), "{:?}", tail);
        }
        // Post-recovery the log is clean and equals the first n-1 events.
        let (clean, tail) = read_wal(&wal).unwrap();
        prop_assert_eq!(tail, WalTail::Clean);
        prop_assert_eq!(clean.len(), events.len() - 1);
        let minus_last = apply_all(&events[..events.len() - 1]);
        let restored = restore_dir(&d, false).unwrap();
        assert_same_state(&minus_last, &restored.state, "torn recovery")?;

        let _ = std::fs::remove_dir_all(&d);
    }
}
