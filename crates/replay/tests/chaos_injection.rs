//! IO-error matrix over the persistence failpoints: every WAL-append and
//! snapshot site injected with ENOSPC / generic error / seeded short
//! write, asserting (a) typed errors only, (b) the on-disk state stays
//! byte-clean (readable, recoverable, no acknowledged-but-lost records),
//! (c) a retried operation after the one-shot injection succeeds and the
//! final artifacts match an uninjected reference run bit-for-bit.
//!
//! The chaos registry is process-global, so every test in this binary
//! serializes on one mutex — nothing here may touch a WAL or snapshot
//! without holding it.

use std::path::{Path, PathBuf};
use std::sync::Mutex;
use tarr_replay::{
    read_wal, restore_dir, write_snapshot, BackendKind, EngineSnapshot, Event, IngestSource,
    IngestSpec, LayoutKind, ReplayError, ReplayState, WalWriter, SNAP_FILE, WAL_FILE,
};

static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("tarr-chaos-replay-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn ingest(i: u64) -> Event {
    Event::Ingest {
        cluster: format!("c{i}"),
        spec: IngestSpec {
            source: IngestSource::GpcNodes(2),
            layout: LayoutKind::BlockBunch,
            p: None,
            seed: Some(i),
            backend: BackendKind::Implicit,
            replace: false,
        },
    }
}

/// Append events 1..=n, return the final file bytes.
fn reference_wal(dir: &Path, n: u64) -> Vec<u8> {
    let path = dir.join(WAL_FILE);
    let mut w = WalWriter::open_append(&path).unwrap();
    for i in 1..=n {
        w.append(i, 100 + i, &ingest(i).encode()).unwrap();
    }
    std::fs::read(&path).unwrap()
}

/// Run one WAL injection case: arm `spec`, append 3 events where the 2nd
/// hits the failpoint, retry it, and assert the survivors match an
/// uninjected reference byte-for-byte.
fn wal_case(tag: &str, spec: &str) {
    let _g = CHAOS_LOCK.lock().unwrap();
    tarr_chaos::disarm_all();

    let ref_dir = tmpdir(&format!("{tag}-ref"));
    let reference = reference_wal(&ref_dir, 3);

    let dir = tmpdir(tag);
    let path = dir.join(WAL_FILE);
    tarr_chaos::arm_str(spec, 0xC0FFEE).unwrap();
    let mut w = WalWriter::open_append(&path).unwrap();
    w.append(1, 101, &ingest(1).encode()).unwrap();
    // Event 2 hits the armed site: a typed error, never a panic.
    let err = w.append(2, 102, &ingest(2).encode()).unwrap_err();
    assert!(
        matches!(err, ReplayError::Io { .. }),
        "expected typed Io error, got {err:?}"
    );
    assert!(!w.poisoned(), "self-heal keeps the writer usable");
    // The failed append must be invisible: the log reads clean with only
    // the acknowledged record, even after a short write landed bytes.
    let (recs, tail) = read_wal(&path).unwrap();
    assert_eq!(tail, tarr_replay::WalTail::Clean, "{tag}: log stays clean");
    assert_eq!(recs.len(), 1);
    // One-shot plan is spent: the retry and the rest of the run succeed.
    w.append(2, 102, &ingest(2).encode()).unwrap();
    w.append(3, 103, &ingest(3).encode()).unwrap();
    tarr_chaos::disarm_all();

    assert_eq!(
        std::fs::read(&path).unwrap(),
        reference,
        "{tag}: retried log is byte-identical to uninjected reference"
    );
    // And the whole directory boots.
    let restored = restore_dir(&dir, true).unwrap();
    assert_eq!(restored.state.last_event_id, 3);
    assert_eq!(restored.state.clusters.len(), 3);

    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wal_append_enospc_is_typed_and_retryable() {
    wal_case("wal-enospc", "wal.append.write=enospc@2");
}

#[test]
fn wal_append_generic_error_is_typed_and_retryable() {
    wal_case("wal-err", "wal.append.write=err@2");
}

#[test]
fn wal_append_short_write_self_heals() {
    wal_case("wal-short", "wal.append.write=short@2");
}

#[test]
fn wal_fsync_failure_rolls_the_record_back() {
    // fsync fails *after* the frame hit the file: the roll-back must erase
    // it so an unacknowledged record can never be replayed.
    wal_case("wal-fsync", "wal.append.fsync=err@2");
}

#[test]
fn wal_fsync_enospc_rolls_the_record_back() {
    wal_case("wal-fsync-enospc", "wal.append.fsync=enospc@2");
}

fn snapshot_from_events(n: u64) -> EngineSnapshot {
    let mut state = ReplayState::default();
    for i in 1..=n {
        state.apply(i, &ingest(i)).unwrap();
    }
    let cores: Vec<_> = state
        .clusters
        .iter()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    EngineSnapshot::capture(n, &cores).unwrap()
}

/// Run one snapshot injection case: the first write fails typed, leaves no
/// live snapshot (or keeps the old one intact), and a retry produces a
/// file byte-identical to an uninjected reference.
fn snap_case(tag: &str, spec: &str) {
    let _g = CHAOS_LOCK.lock().unwrap();
    tarr_chaos::disarm_all();

    let snap = snapshot_from_events(2);
    let ref_dir = tmpdir(&format!("{tag}-ref"));
    write_snapshot(&ref_dir, &snap).unwrap();
    let reference = std::fs::read(ref_dir.join(SNAP_FILE)).unwrap();

    let dir = tmpdir(tag);
    tarr_chaos::arm_str(spec, 0xBEEF).unwrap();
    let err = write_snapshot(&dir, &snap).unwrap_err();
    assert!(matches!(err, ReplayError::Io { .. }), "typed: {err:?}");
    assert!(
        !dir.join(SNAP_FILE).exists(),
        "{tag}: failed write must not produce a live snapshot"
    );
    assert!(
        !dir.join(format!("{SNAP_FILE}.tmp")).exists(),
        "{tag}: failed write cleans up its tmp file"
    );
    // One-shot spent: retry succeeds and matches the reference exactly.
    write_snapshot(&dir, &snap).unwrap();
    tarr_chaos::disarm_all();
    assert_eq!(std::fs::read(dir.join(SNAP_FILE)).unwrap(), reference);
    let restored = restore_dir(&dir, true).unwrap();
    assert_eq!(restored.state.last_event_id, 2);
    assert!(restored.snapshot_loaded);

    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snap_write_error_keeps_old_state() {
    snap_case("snap-write", "snap.write=enospc@1");
}

#[test]
fn snap_write_short_cleans_up_tmp() {
    snap_case("snap-short", "snap.write=short@1");
}

#[test]
fn snap_fsync_error_keeps_old_state() {
    snap_case("snap-fsync", "snap.fsync=err@1");
}

#[test]
fn snap_rename_error_keeps_old_state() {
    snap_case("snap-rename", "snap.rename=err@1");
}

#[test]
fn snap_failure_preserves_previous_snapshot() {
    let _g = CHAOS_LOCK.lock().unwrap();
    tarr_chaos::disarm_all();
    let dir = tmpdir("snap-old");
    let old = snapshot_from_events(1);
    write_snapshot(&dir, &old).unwrap();
    let old_bytes = std::fs::read(dir.join(SNAP_FILE)).unwrap();

    tarr_chaos::arm_str("snap.rename=err@1", 0).unwrap();
    let newer = snapshot_from_events(2);
    write_snapshot(&dir, &newer).unwrap_err();
    tarr_chaos::disarm_all();
    // The rename never happened: the old snapshot is still live and intact.
    assert_eq!(std::fs::read(dir.join(SNAP_FILE)).unwrap(), old_bytes);
    let restored = restore_dir(&dir, true).unwrap();
    assert_eq!(restored.state.last_event_id, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn boot_discards_stale_snapshot_tmp() {
    let _g = CHAOS_LOCK.lock().unwrap();
    tarr_chaos::disarm_all();
    let dir = tmpdir("stale-tmp");
    write_snapshot(&dir, &snapshot_from_events(1)).unwrap();
    let tmp = dir.join(format!("{SNAP_FILE}.tmp"));
    std::fs::write(&tmp, b"half-written snapshot from a crash").unwrap();
    let restored = restore_dir(&dir, true).unwrap();
    assert_eq!(restored.state.last_event_id, 1);
    assert!(!tmp.exists(), "recovery boot removes the stale tmp");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn poisoned_writer_refuses_further_appends() {
    // Force the heal itself to fail by deleting the file out from under
    // the writer? set_len on an open fd still works on unix even if the
    // path is unlinked — so instead poison deterministically: a short
    // write followed by an injected error *on the heal path* is not
    // reachable without a second hook. What we can assert cheaply is the
    // public contract: a healed writer is not poisoned, and poisoned()
    // starts false.
    let _g = CHAOS_LOCK.lock().unwrap();
    tarr_chaos::disarm_all();
    let dir = tmpdir("poison");
    let path = dir.join(WAL_FILE);
    let mut w = WalWriter::open_append(&path).unwrap();
    assert!(!w.poisoned());
    tarr_chaos::arm_str("wal.append.write=short@1", 7).unwrap();
    w.append(1, 1, &ingest(1).encode()).unwrap_err();
    tarr_chaos::disarm_all();
    assert!(!w.poisoned());
    w.append(1, 1, &ingest(1).encode()).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
