//! The hand-rolled binary wire layer every persisted byte goes through.
//!
//! Zero-dependency by design (the workspace's serde is a no-op facade):
//! a tiny append-only encoder ([`Enc`]), a bounds-checked cursor decoder
//! ([`Dec`]) whose every failure carries the byte offset it happened at,
//! and the IEEE CRC-32 both the WAL framing and the snapshot trailer use.
//!
//! Conventions, fixed forever (versioning happens a layer up, in the
//! record/snapshot headers — never by reinterpreting these primitives):
//!
//! * all integers little-endian, fixed width;
//! * `f64` as the raw IEEE-754 bit pattern (`to_bits`/`from_bits`), so
//!   round-trips are bit-exact — including NaN payloads — and never pass
//!   through decimal text;
//! * strings and vectors length-prefixed with a `u32` count;
//! * decode never trusts a length prefix further than the bytes actually
//!   present — `need()` runs before any allocation, so a corrupt prefix
//!   cannot drive an OOM.

use std::fmt;

/// A decode failure: what was being read and the offset it failed at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Byte offset into the buffer where the read began.
    pub offset: usize,
    /// What the decoder was trying to read.
    pub what: &'static str,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "truncated or corrupt data: {} at byte {}",
            self.what, self.offset
        )
    }
}

impl std::error::Error for WireError {}

/// Append-only encoder over a growable byte buffer.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Fresh empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// Finish and take the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append a single byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Append raw bytes with no length prefix (magic numbers, payloads
    /// whose length is framed elsewhere).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append a `u32`-count-prefixed vector of `u32`s.
    pub fn vec_u32(&mut self, v: &[u32]) {
        self.u32(v.len() as u32);
        for &x in v {
            self.u32(x);
        }
    }
}

/// Bounds-checked cursor over a byte slice.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the cursor consumed the whole buffer.
    pub fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Fail unless the entire buffer was consumed — trailing garbage after
    /// a structurally-valid decode is corruption, not padding.
    pub fn finish(self, what: &'static str) -> Result<(), WireError> {
        if self.is_done() {
            Ok(())
        } else {
            Err(WireError {
                offset: self.pos,
                what,
            })
        }
    }

    fn need(&self, n: usize, what: &'static str) -> Result<(), WireError> {
        if self.remaining() < n {
            Err(WireError {
                offset: self.pos,
                what,
            })
        } else {
            Ok(())
        }
    }

    /// Read `n` raw bytes.
    pub fn raw(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        self.need(n, what)?;
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.raw(1, what)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self, what: &'static str) -> Result<u16, WireError> {
        let b = self.raw(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        let b = self.raw(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        let b = self.raw(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self, what: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Read a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &'static str) -> Result<String, WireError> {
        let at = self.pos;
        let len = self.u32(what)? as usize;
        let bytes = self.raw(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError { offset: at, what })
    }

    /// Read a `u32`-count-prefixed vector of `u32`s.
    pub fn vec_u32(&mut self, what: &'static str) -> Result<Vec<u32>, WireError> {
        let n = self.u32(what)? as usize;
        // 4 bytes per element must still be present — checked before the
        // allocation so a corrupt count cannot request gigabytes.
        self.need(n.saturating_mul(4), what)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u32(what)?);
        }
        Ok(out)
    }
}

/// IEEE CRC-32 (reflected, polynomial `0xEDB88320`) — the checksum of
/// zip/png/ethernet, computed bytewise from a lazily-built table.
pub fn crc32(bytes: &[u8]) -> u32 {
    // 256-entry table, built once. `OnceLock` keeps this dependency-free.
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    });
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn scalar_roundtrip() {
        let mut e = Enc::new();
        e.u8(7);
        e.u16(0xBEEF);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX - 3);
        e.f64(-0.0);
        e.f64(f64::from_bits(0x7FF8_0000_0000_1234)); // NaN with payload
        e.str("héllo");
        e.vec_u32(&[3, 1, 2]);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8("a").unwrap(), 7);
        assert_eq!(d.u16("b").unwrap(), 0xBEEF);
        assert_eq!(d.u32("c").unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64("d").unwrap(), u64::MAX - 3);
        assert_eq!(d.f64("e").unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(d.f64("f").unwrap().to_bits(), 0x7FF8_0000_0000_1234);
        assert_eq!(d.str("g").unwrap(), "héllo");
        assert_eq!(d.vec_u32("h").unwrap(), vec![3, 1, 2]);
        d.finish("trailing").unwrap();
    }

    #[test]
    fn truncation_is_typed_not_panic() {
        let mut e = Enc::new();
        e.str("hello");
        let bytes = e.into_bytes();
        // Every proper prefix fails with a WireError, never a panic.
        for cut in 0..bytes.len() {
            let mut d = Dec::new(&bytes[..cut]);
            let err = d.str("s").unwrap_err();
            assert!(err.offset <= cut);
        }
    }

    #[test]
    fn corrupt_length_prefix_does_not_allocate() {
        // A count claiming u32::MAX elements with 4 bytes of data behind it.
        let mut e = Enc::new();
        e.u32(u32::MAX);
        e.u32(42);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert!(d.vec_u32("v").is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut e = Enc::new();
        e.u32(1);
        e.u8(0xAB);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        d.u32("x").unwrap();
        assert!(d.finish("tail").is_err());
    }
}
