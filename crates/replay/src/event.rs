//! The session-mutating events the WAL records.
//!
//! Only two ops mutate engine state — `ingest` (binds a name to a fresh
//! [`tarr_core::SessionCore`]) and `fault` (swaps a name to a degraded
//! core). Everything else (`map`, `reorder`, `price`, …) is a *derived*
//! pure function of that state and is deliberately **not** logged: replay
//! re-derives answers instead of trusting recorded ones, which is what
//! makes the log a ground truth rather than a cache.
//!
//! Events capture the request **semantics**, not the request bytes: an
//! ingest that named a `snapshot_path` is recorded with the resolved
//! snapshot *text*, so replay does not depend on a file that may have
//! changed or vanished; a fault is recorded as its seed and rates, because
//! `FaultSet::random` is a deterministic function of
//! (cluster, rates, seed).
//!
//! Every encoded event starts with [`EVENT_VERSION`]; decoding a newer
//! version is a typed error (old binaries refuse politely), and future
//! versions must keep decoding every older one.

use crate::wire::{Dec, Enc, WireError};
use tarr_core::DistanceBackend;
use tarr_faults::FaultRates;
use tarr_mapping::InitialMapping;

/// Current event encoding version.
pub const EVENT_VERSION: u8 = 1;

/// Where an ingested cluster came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestSource {
    /// A `topo-ingest` cluster snapshot, stored by value (resolved text,
    /// never a path).
    SnapshotText(String),
    /// The synthetic GPC fat-tree with this many nodes.
    GpcNodes(u64),
}

/// The four standard initial layouts, as a closed wire-stable enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayoutKind {
    /// Block node order, bunch intra-node order (the default).
    BlockBunch,
    /// Block node order, scatter intra-node order.
    BlockScatter,
    /// Cyclic node order, bunch intra-node order.
    CyclicBunch,
    /// Cyclic node order, scatter intra-node order.
    CyclicScatter,
}

impl LayoutKind {
    /// The serve-protocol spelling (`"block_bunch"`, …).
    pub fn name(self) -> &'static str {
        match self {
            LayoutKind::BlockBunch => "block_bunch",
            LayoutKind::BlockScatter => "block_scatter",
            LayoutKind::CyclicBunch => "cyclic_bunch",
            LayoutKind::CyclicScatter => "cyclic_scatter",
        }
    }

    /// Parse the serve-protocol spelling.
    pub fn parse(s: &str) -> Option<LayoutKind> {
        Some(match s {
            "block_bunch" => LayoutKind::BlockBunch,
            "block_scatter" => LayoutKind::BlockScatter,
            "cyclic_bunch" => LayoutKind::CyclicBunch,
            "cyclic_scatter" => LayoutKind::CyclicScatter,
            _ => return None,
        })
    }

    /// The corresponding [`InitialMapping`].
    pub fn initial(self) -> InitialMapping {
        match self {
            LayoutKind::BlockBunch => InitialMapping::BLOCK_BUNCH,
            LayoutKind::BlockScatter => InitialMapping::BLOCK_SCATTER,
            LayoutKind::CyclicBunch => InitialMapping::CYCLIC_BUNCH,
            LayoutKind::CyclicScatter => InitialMapping::CYCLIC_SCATTER,
        }
    }

    /// Classify an [`InitialMapping`] back into the closed enum (the four
    /// standard layouts are exhaustive today; a future custom layout would
    /// extend this).
    pub fn of_initial(m: InitialMapping) -> Option<LayoutKind> {
        Some(match m {
            InitialMapping::BLOCK_BUNCH => LayoutKind::BlockBunch,
            InitialMapping::BLOCK_SCATTER => LayoutKind::BlockScatter,
            InitialMapping::CYCLIC_BUNCH => LayoutKind::CyclicBunch,
            InitialMapping::CYCLIC_SCATTER => LayoutKind::CyclicScatter,
        })
    }

    fn code(self) -> u8 {
        match self {
            LayoutKind::BlockBunch => 0,
            LayoutKind::BlockScatter => 1,
            LayoutKind::CyclicBunch => 2,
            LayoutKind::CyclicScatter => 3,
        }
    }

    fn from_code(c: u8, at: usize) -> Result<LayoutKind, WireError> {
        Ok(match c {
            0 => LayoutKind::BlockBunch,
            1 => LayoutKind::BlockScatter,
            2 => LayoutKind::CyclicBunch,
            3 => LayoutKind::CyclicScatter,
            _ => {
                return Err(WireError {
                    offset: at,
                    what: "layout code",
                })
            }
        })
    }
}

/// Distance backend, wire-stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// O(P)-memory implicit oracle (the serve default).
    Implicit,
    /// Dense reference matrix.
    Dense,
}

impl BackendKind {
    /// The corresponding [`DistanceBackend`].
    pub fn backend(self) -> DistanceBackend {
        match self {
            BackendKind::Implicit => DistanceBackend::Implicit,
            BackendKind::Dense => DistanceBackend::Dense,
        }
    }

    /// Classify a [`DistanceBackend`].
    pub fn of_backend(b: DistanceBackend) -> BackendKind {
        match b {
            DistanceBackend::Implicit => BackendKind::Implicit,
            DistanceBackend::Dense => BackendKind::Dense,
        }
    }

    fn code(self) -> u8 {
        match self {
            BackendKind::Implicit => 0,
            BackendKind::Dense => 1,
        }
    }

    fn from_code(c: u8, at: usize) -> Result<BackendKind, WireError> {
        Ok(match c {
            0 => BackendKind::Implicit,
            1 => BackendKind::Dense,
            _ => {
                return Err(WireError {
                    offset: at,
                    what: "backend code",
                })
            }
        })
    }
}

/// Everything an `ingest` request determines about the core it builds.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestSpec {
    /// Cluster source, by value.
    pub source: IngestSource,
    /// Initial layout.
    pub layout: LayoutKind,
    /// Requested process count (`None` = the source's total core count for
    /// GPC, the snapshot's own default otherwise).
    pub p: Option<u64>,
    /// Session seed override (`None` = `SessionConfig::default().seed`).
    pub seed: Option<u64>,
    /// Distance backend.
    pub backend: BackendKind,
    /// Whether the request authorised replacing an existing binding.
    pub replace: bool,
}

/// Everything a `fault` request determines about the degradation it applies.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Fault-set seed.
    pub seed: u64,
    /// Per-cable failure probability.
    pub link_fail: f64,
    /// Per-switch failure probability.
    pub switch_fail: f64,
    /// Per-node drain probability.
    pub node_drain: f64,
    /// Per-core drain probability.
    pub core_drain: f64,
}

impl FaultSpec {
    /// The [`FaultRates`] this spec describes.
    pub fn rates(&self) -> FaultRates {
        FaultRates {
            link_fail: self.link_fail,
            switch_fail: self.switch_fail,
            node_drain: self.node_drain,
            core_drain: self.core_drain,
        }
    }
}

/// One session-mutating event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Bind `cluster` to a core built from `spec`.
    Ingest {
        /// Cluster name.
        cluster: String,
        /// How to build the core.
        spec: IngestSpec,
    },
    /// Degrade `cluster` with a seeded fault set.
    Fault {
        /// Cluster name.
        cluster: String,
        /// Seed and rates.
        fault: FaultSpec,
    },
}

impl Event {
    /// The cluster this event mutates.
    pub fn cluster(&self) -> &str {
        match self {
            Event::Ingest { cluster, .. } | Event::Fault { cluster, .. } => cluster,
        }
    }

    /// Short op name for summaries.
    pub fn op(&self) -> &'static str {
        match self {
            Event::Ingest { .. } => "ingest",
            Event::Fault { .. } => "fault",
        }
    }

    /// Encode as a versioned payload (the WAL frames and checksums it).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u8(EVENT_VERSION);
        match self {
            Event::Ingest { cluster, spec } => {
                e.u8(1);
                e.str(cluster);
                match &spec.source {
                    IngestSource::SnapshotText(text) => {
                        e.u8(0);
                        e.str(text);
                    }
                    IngestSource::GpcNodes(n) => {
                        e.u8(1);
                        e.u64(*n);
                    }
                }
                e.u8(spec.layout.code());
                match spec.p {
                    None => e.u8(0),
                    Some(p) => {
                        e.u8(1);
                        e.u64(p);
                    }
                }
                match spec.seed {
                    None => e.u8(0),
                    Some(s) => {
                        e.u8(1);
                        e.u64(s);
                    }
                }
                e.u8(spec.backend.code());
                e.u8(spec.replace as u8);
            }
            Event::Fault { cluster, fault } => {
                e.u8(2);
                e.str(cluster);
                e.u64(fault.seed);
                e.f64(fault.link_fail);
                e.f64(fault.switch_fail);
                e.f64(fault.node_drain);
                e.f64(fault.core_drain);
            }
        }
        e.into_bytes()
    }

    /// Decode a versioned payload. Newer [`EVENT_VERSION`]s are a typed
    /// error; trailing bytes after a valid event are corruption.
    pub fn decode(payload: &[u8]) -> Result<Event, WireError> {
        let mut d = Dec::new(payload);
        let version = d.u8("event version")?;
        if version == 0 || version > EVENT_VERSION {
            return Err(WireError {
                offset: 0,
                what: "unsupported event version",
            });
        }
        let at = d.pos();
        let tag = d.u8("event tag")?;
        let ev = match tag {
            1 => {
                let cluster = d.str("ingest cluster name")?;
                let sat = d.pos();
                let source = match d.u8("ingest source tag")? {
                    0 => IngestSource::SnapshotText(d.str("ingest snapshot text")?),
                    1 => IngestSource::GpcNodes(d.u64("ingest gpc nodes")?),
                    _ => {
                        return Err(WireError {
                            offset: sat,
                            what: "ingest source tag",
                        })
                    }
                };
                let lat = d.pos();
                let layout = LayoutKind::from_code(d.u8("ingest layout")?, lat)?;
                let pat = d.pos();
                let p = match d.u8("ingest p flag")? {
                    0 => None,
                    1 => Some(d.u64("ingest p")?),
                    _ => {
                        return Err(WireError {
                            offset: pat,
                            what: "ingest p flag",
                        })
                    }
                };
                let st = d.pos();
                let seed = match d.u8("ingest seed flag")? {
                    0 => None,
                    1 => Some(d.u64("ingest seed")?),
                    _ => {
                        return Err(WireError {
                            offset: st,
                            what: "ingest seed flag",
                        })
                    }
                };
                let bat = d.pos();
                let backend = BackendKind::from_code(d.u8("ingest backend")?, bat)?;
                let rat = d.pos();
                let replace = match d.u8("ingest replace flag")? {
                    0 => false,
                    1 => true,
                    _ => {
                        return Err(WireError {
                            offset: rat,
                            what: "ingest replace flag",
                        })
                    }
                };
                Event::Ingest {
                    cluster,
                    spec: IngestSpec {
                        source,
                        layout,
                        p,
                        seed,
                        backend,
                        replace,
                    },
                }
            }
            2 => Event::Fault {
                cluster: d.str("fault cluster name")?,
                fault: FaultSpec {
                    seed: d.u64("fault seed")?,
                    link_fail: d.f64("fault link_fail")?,
                    switch_fail: d.f64("fault switch_fail")?,
                    node_drain: d.f64("fault node_drain")?,
                    core_drain: d.f64("fault core_drain")?,
                },
            },
            _ => {
                return Err(WireError {
                    offset: at,
                    what: "event tag",
                })
            }
        };
        d.finish("event trailing bytes")?;
        Ok(ev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ingest() -> Event {
        Event::Ingest {
            cluster: "gpc".into(),
            spec: IngestSpec {
                source: IngestSource::SnapshotText("tarr-cluster-snapshot v1\n".into()),
                layout: LayoutKind::CyclicScatter,
                p: Some(128),
                seed: Some(0xABCD),
                backend: BackendKind::Implicit,
                replace: true,
            },
        }
    }

    fn sample_fault() -> Event {
        Event::Fault {
            cluster: "gpc".into(),
            fault: FaultSpec {
                seed: 7,
                link_fail: 0.02,
                switch_fail: 0.0,
                node_drain: 0.125,
                core_drain: 1e-9,
            },
        }
    }

    #[test]
    fn events_roundtrip() {
        for ev in [sample_ingest(), sample_fault()] {
            let bytes = ev.encode();
            assert_eq!(Event::decode(&bytes).unwrap(), ev);
        }
        // GPC source and all-default options too.
        let ev = Event::Ingest {
            cluster: "x".into(),
            spec: IngestSpec {
                source: IngestSource::GpcNodes(18),
                layout: LayoutKind::BlockBunch,
                p: None,
                seed: None,
                backend: BackendKind::Dense,
                replace: false,
            },
        };
        assert_eq!(Event::decode(&ev.encode()).unwrap(), ev);
    }

    #[test]
    fn truncated_event_is_typed_error() {
        let bytes = sample_ingest().encode();
        for cut in 0..bytes.len() {
            assert!(
                Event::decode(&bytes[..cut]).is_err(),
                "prefix {cut} decoded"
            );
        }
    }

    #[test]
    fn future_version_refused() {
        let mut bytes = sample_fault().encode();
        bytes[0] = EVENT_VERSION + 1;
        let err = Event::decode(&bytes).unwrap_err();
        assert_eq!(err.what, "unsupported event version");
    }

    #[test]
    fn trailing_bytes_refused() {
        let mut bytes = sample_fault().encode();
        bytes.push(0);
        assert!(Event::decode(&bytes).is_err());
    }

    #[test]
    fn layout_names_roundtrip() {
        for l in [
            LayoutKind::BlockBunch,
            LayoutKind::BlockScatter,
            LayoutKind::CyclicBunch,
            LayoutKind::CyclicScatter,
        ] {
            assert_eq!(LayoutKind::parse(l.name()), Some(l));
            assert_eq!(LayoutKind::of_initial(l.initial()), Some(l));
        }
        assert_eq!(LayoutKind::parse("diagonal"), None);
    }
}
