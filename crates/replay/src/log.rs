//! The write-ahead event log: append-only, length-prefixed, checksummed.
//!
//! File layout:
//!
//! ```text
//! [8]  magic  "TARRWAL\x01"
//! then zero or more records, each:
//! [4]  payload length (u32 LE)
//! [8]  event id       (u64 LE, strictly increasing from 1)
//! [8]  req id         (u64 LE, the serve request that caused it)
//! [4]  CRC-32         over event id ‖ req id ‖ payload (LE bytes)
//! [n]  payload        (a versioned [`Event`] encoding)
//! ```
//!
//! **Crash consistency.** Appends are written in one `write_all` and
//! `fdatasync`'d before the serve reply is emitted, so an acknowledged
//! mutation is on disk. A crash mid-append leaves a *torn tail*: a record
//! whose bytes stop at EOF or whose CRC fails **at EOF**. That is expected
//! damage — [`read_wal`] reports it as [`WalTail::Torn`] and
//! [`recover_wal`] truncates back to the last record boundary, losing only
//! the never-acknowledged suffix. A bad record with *more data after it*
//! cannot be explained by a torn append; that is real corruption and
//! surfaces as a typed [`ReplayError::Corrupt`], never a panic and never a
//! silent skip.

use crate::event::Event;
use crate::wire::crc32;
use crate::ReplayError;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// WAL file magic: name + format version byte.
pub const WAL_MAGIC: &[u8; 8] = b"TARRWAL\x01";

/// Fixed bytes per record before the payload.
const RECORD_HEADER: usize = 4 + 8 + 8 + 4;

/// Default WAL file name inside a state directory.
pub const WAL_FILE: &str = "events.twal";

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Monotonic event id (1-based).
    pub event_id: u64,
    /// The serve `req_id` that produced the event.
    pub req_id: u64,
    /// The event itself.
    pub event: Event,
}

/// What the end of the log looked like.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalTail {
    /// Every byte parsed; the file ends exactly on a record boundary.
    Clean,
    /// The file ends in a partially-written record (crash mid-append).
    Torn {
        /// Length of the valid prefix (a record boundary).
        valid_len: u64,
        /// Bytes of torn suffix after it.
        dropped: u64,
    },
}

/// Append-only writer with an explicit fsync per record.
pub struct WalWriter {
    file: File,
    path: PathBuf,
    bytes: u64,
    /// Set when a failed append could not be rolled back to the last
    /// record boundary: further appends would risk mid-log corruption, so
    /// they are refused until the process restarts through recovery.
    poisoned: bool,
}

impl WalWriter {
    /// Open `path` for appending, creating it (with its magic header) if
    /// absent. An existing file must start with [`WAL_MAGIC`]; its tail is
    /// *not* validated here — boot goes through [`read_wal`] first and
    /// passes the recovered length via [`WalWriter::open_at`].
    pub fn open_append(path: &Path) -> Result<WalWriter, ReplayError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| ReplayError::io(path, e))?;
        // An empty file (fresh, or truncated to nothing by torn-header
        // recovery) gets its header written like a new one.
        let exists = file.metadata().map_err(|e| ReplayError::io(path, e))?.len() > 0;
        let bytes = if exists {
            let mut magic = [0u8; 8];
            file.read_exact(&mut magic)
                .map_err(|_| ReplayError::corrupt(path, 0, "missing WAL magic"))?;
            if &magic != WAL_MAGIC {
                return Err(ReplayError::corrupt(path, 0, "bad WAL magic"));
            }
            let len = file.metadata().map_err(|e| ReplayError::io(path, e))?.len();
            file.seek_end().map_err(|e| ReplayError::io(path, e))?;
            len
        } else {
            file.write_all(WAL_MAGIC)
                .map_err(|e| ReplayError::io(path, e))?;
            file.sync_data().map_err(|e| ReplayError::io(path, e))?;
            WAL_MAGIC.len() as u64
        };
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            bytes,
            poisoned: false,
        })
    }

    /// Open for appending at a known valid length (after [`read_wal`] +
    /// recovery truncated any torn tail).
    pub fn open_at(path: &Path, valid_len: u64) -> Result<WalWriter, ReplayError> {
        let mut w = Self::open_append(path)?;
        // A valid length below the header (0 = the file was missing, or
        // its header itself was torn) means "no valid records": keep the
        // bare header `open_append` ensured rather than truncating it away.
        let valid_len = valid_len.max(WAL_MAGIC.len() as u64);
        if w.bytes != valid_len {
            w.file
                .set_len(valid_len)
                .map_err(|e| ReplayError::io(path, e))?;
            w.file.seek_end().map_err(|e| ReplayError::io(path, e))?;
            w.file.sync_data().map_err(|e| ReplayError::io(path, e))?;
            w.bytes = valid_len;
        }
        Ok(w)
    }

    /// Append one framed record and `fdatasync` it. Returns the file size
    /// after the append. The caller must not acknowledge the mutation
    /// before this returns.
    pub fn append(
        &mut self,
        event_id: u64,
        req_id: u64,
        payload: &[u8],
    ) -> Result<u64, ReplayError> {
        let mut frame = Vec::with_capacity(RECORD_HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&event_id.to_le_bytes());
        frame.extend_from_slice(&req_id.to_le_bytes());
        let mut sum = Vec::with_capacity(16 + payload.len());
        sum.extend_from_slice(&event_id.to_le_bytes());
        sum.extend_from_slice(&req_id.to_le_bytes());
        sum.extend_from_slice(payload);
        frame.extend_from_slice(&crc32(&sum).to_le_bytes());
        frame.extend_from_slice(payload);
        if self.poisoned {
            return Err(ReplayError::io(
                &self.path,
                std::io::Error::other(
                    "WAL writer poisoned by an earlier failed append; restart to recover",
                ),
            ));
        }
        match self.write_frame(&frame) {
            Ok(()) => {
                self.bytes += frame.len() as u64;
                Ok(self.bytes)
            }
            Err(e) => {
                // The failed append may have left a partial frame behind
                // (short write, or a write that errored midway). Roll the
                // file back to the last acknowledged boundary so the log
                // still reads clean and the *next* append cannot turn the
                // partial frame into mid-log corruption. If even the
                // rollback fails, poison the writer: callers keep getting
                // typed errors and recovery happens at restart.
                let healed = self
                    .file
                    .set_len(self.bytes)
                    .and_then(|()| self.file.seek_end().map(|_| ()))
                    .and_then(|()| self.file.sync_data());
                if healed.is_err() {
                    self.poisoned = true;
                }
                Err(ReplayError::io(&self.path, e))
            }
        }
    }

    /// The raw framed write + fdatasync, with chaos injection sites:
    /// `wal.append.write` (error or seeded short write before any real IO
    /// reaches the file) and `wal.append.fsync` (record fully written but
    /// durability unknown — exactly the window a crash-consistency harness
    /// needs to probe).
    fn write_frame(&mut self, frame: &[u8]) -> std::io::Result<()> {
        match tarr_chaos::hit("wal.append.write") {
            Some(tarr_chaos::Action::Error(e)) => return Err(e),
            Some(tarr_chaos::Action::Short(raw)) => {
                // Land a strict prefix, as a real torn write would, then fail.
                let n = (raw as usize) % frame.len().max(1);
                self.file.write_all(&frame[..n])?;
                return Err(std::io::Error::other(
                    "tarr-chaos: injected short write at wal.append.write",
                ));
            }
            None => {}
        }
        self.file.write_all(frame)?;
        tarr_chaos::fail_io("wal.append.fsync")?;
        self.file.sync_data()
    }

    /// True once a failed append could not be rolled back (see `append`).
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Flush pending data to disk (appends already sync; this is for
    /// teardown paths that want an explicit barrier).
    pub fn sync(&mut self) -> Result<(), ReplayError> {
        self.file
            .sync_data()
            .map_err(|e| ReplayError::io(&self.path, e))
    }

    /// Truncate back to the bare header — the `compact` op, after a
    /// snapshot has captured everything the log described.
    pub fn reset(&mut self) -> Result<u64, ReplayError> {
        let len = WAL_MAGIC.len() as u64;
        self.file
            .set_len(len)
            .map_err(|e| ReplayError::io(&self.path, e))?;
        self.file
            .seek_end()
            .map_err(|e| ReplayError::io(&self.path, e))?;
        self.file
            .sync_data()
            .map_err(|e| ReplayError::io(&self.path, e))?;
        self.bytes = len;
        Ok(len)
    }

    /// Current file size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

/// `Seek::seek(SeekFrom::End(0))` without importing the trait at every
/// call site.
trait SeekEnd {
    fn seek_end(&mut self) -> std::io::Result<u64>;
}

impl SeekEnd for File {
    fn seek_end(&mut self) -> std::io::Result<u64> {
        use std::io::{Seek, SeekFrom};
        self.seek(SeekFrom::End(0))
    }
}

/// Parse a WAL file. Returns the decoded records plus the tail
/// classification; hard corruption (anywhere but a torn tail) is a typed
/// error. A missing file is an empty, clean log.
pub fn read_wal(path: &Path) -> Result<(Vec<WalRecord>, WalTail), ReplayError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok((Vec::new(), WalTail::Clean))
        }
        Err(e) => return Err(ReplayError::io(path, e)),
    };
    if bytes.len() < WAL_MAGIC.len() {
        // Crashed before the header hit disk: treat as torn-at-zero so
        // recovery rewrites a fresh header.
        return Ok((
            Vec::new(),
            WalTail::Torn {
                valid_len: 0,
                dropped: bytes.len() as u64,
            },
        ));
    }
    if &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(ReplayError::corrupt(path, 0, "bad WAL magic"));
    }
    let mut records = Vec::new();
    let mut pos = WAL_MAGIC.len();
    let mut last_id = 0u64;
    while pos < bytes.len() {
        let rest = &bytes[pos..];
        let torn = |dropped: usize| WalTail::Torn {
            valid_len: pos as u64,
            dropped: dropped as u64,
        };
        if rest.len() < RECORD_HEADER {
            return Ok((records, torn(rest.len())));
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        let total = RECORD_HEADER + len;
        if rest.len() < total {
            return Ok((records, torn(rest.len())));
        }
        let event_id = u64::from_le_bytes(rest[4..12].try_into().expect("8 bytes"));
        let req_id = u64::from_le_bytes(rest[12..20].try_into().expect("8 bytes"));
        let stored_crc = u32::from_le_bytes(rest[20..24].try_into().expect("4 bytes"));
        let payload = &rest[RECORD_HEADER..total];
        let mut sum = Vec::with_capacity(16 + len);
        sum.extend_from_slice(&rest[4..20]);
        sum.extend_from_slice(payload);
        if crc32(&sum) != stored_crc {
            if rest.len() == total {
                // The damaged record is the last thing in the file — a torn
                // append, recoverable.
                return Ok((records, torn(rest.len())));
            }
            return Err(ReplayError::corrupt(
                path,
                pos as u64,
                "record CRC mismatch mid-log",
            ));
        }
        // CRC-valid frame: the payload must decode and ids must advance.
        // Failures here are not explainable by a torn append.
        let event = Event::decode(payload)
            .map_err(|e| ReplayError::corrupt(path, (pos + RECORD_HEADER) as u64, e.what))?;
        if event_id <= last_id {
            return Err(ReplayError::corrupt(
                path,
                pos as u64,
                "event ids not increasing",
            ));
        }
        last_id = event_id;
        records.push(WalRecord {
            event_id,
            req_id,
            event,
        });
        pos += total;
    }
    Ok((records, WalTail::Clean))
}

/// [`read_wal`], then physically truncate any torn tail so the file ends
/// on a record boundary (recreating the header if even that was torn).
/// Returns the records, the tail as it was *found*, and the valid length.
pub fn recover_wal(path: &Path) -> Result<(Vec<WalRecord>, WalTail, u64), ReplayError> {
    let (records, tail) = read_wal(path)?;
    match tail {
        WalTail::Clean => {
            let len = if path.exists() {
                std::fs::metadata(path)
                    .map_err(|e| ReplayError::io(path, e))?
                    .len()
            } else {
                0
            };
            Ok((records, tail, len))
        }
        WalTail::Torn { valid_len, .. } => {
            let file = OpenOptions::new()
                .write(true)
                .open(path)
                .map_err(|e| ReplayError::io(path, e))?;
            if valid_len == 0 {
                // Header itself was torn: rewrite it whole.
                file.set_len(0).map_err(|e| ReplayError::io(path, e))?;
                let mut file = file;
                file.write_all(WAL_MAGIC)
                    .map_err(|e| ReplayError::io(path, e))?;
                file.sync_data().map_err(|e| ReplayError::io(path, e))?;
                Ok((records, tail, WAL_MAGIC.len() as u64))
            } else {
                file.set_len(valid_len)
                    .map_err(|e| ReplayError::io(path, e))?;
                file.sync_data().map_err(|e| ReplayError::io(path, e))?;
                Ok((records, tail, valid_len))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::BackendKind;
    use crate::event::{FaultSpec, IngestSource, IngestSpec, LayoutKind};

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("tarr-replay-log-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn ev(i: u64) -> Event {
        if i.is_multiple_of(2) {
            Event::Ingest {
                cluster: format!("c{i}"),
                spec: IngestSpec {
                    source: IngestSource::GpcNodes(2 + i),
                    layout: LayoutKind::BlockBunch,
                    p: None,
                    seed: Some(i),
                    backend: BackendKind::Implicit,
                    replace: false,
                },
            }
        } else {
            Event::Fault {
                cluster: format!("c{}", i - 1),
                fault: FaultSpec {
                    seed: i,
                    link_fail: 0.01,
                    switch_fail: 0.0,
                    node_drain: 0.0,
                    core_drain: 0.0,
                },
            }
        }
    }

    fn write_log(path: &Path, n: u64) {
        let mut w = WalWriter::open_append(path).unwrap();
        for i in 1..=n {
            w.append(i, 100 + i, &ev(i).encode()).unwrap();
        }
    }

    #[test]
    fn append_read_roundtrip() {
        let d = tmpdir("roundtrip");
        let path = d.join(WAL_FILE);
        write_log(&path, 4);
        let (records, tail) = read_wal(&path).unwrap();
        assert_eq!(tail, WalTail::Clean);
        assert_eq!(records.len(), 4);
        for (i, r) in records.iter().enumerate() {
            let id = i as u64 + 1;
            assert_eq!(r.event_id, id);
            assert_eq!(r.req_id, 100 + id);
            assert_eq!(r.event, ev(id));
        }
        // Reopen appends after the existing tail.
        let mut w = WalWriter::open_append(&path).unwrap();
        w.append(5, 105, &ev(5).encode()).unwrap();
        let (records, tail) = read_wal(&path).unwrap();
        assert_eq!(tail, WalTail::Clean);
        assert_eq!(records.len(), 5);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn missing_file_is_empty_clean() {
        let d = tmpdir("missing");
        let (records, tail) = read_wal(&d.join("nope.twal")).unwrap();
        assert!(records.is_empty());
        assert_eq!(tail, WalTail::Clean);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn every_truncation_of_last_record_recovers() {
        let d = tmpdir("torn");
        let path = d.join(WAL_FILE);
        write_log(&path, 3);
        let full = std::fs::read(&path).unwrap();
        // Find the boundary before the last record.
        let (records, _) = read_wal(&path).unwrap();
        assert_eq!(records.len(), 3);
        let last_len = 24 + ev(3).encode().len();
        let boundary = full.len() - last_len;
        for cut in boundary..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let (recs, tail, valid) = recover_wal(&path).unwrap();
            if cut == boundary {
                // Exactly on the boundary: clean two-record log.
                assert_eq!(tail, WalTail::Clean);
            } else {
                assert_eq!(
                    tail,
                    WalTail::Torn {
                        valid_len: boundary as u64,
                        dropped: (cut - boundary) as u64
                    }
                );
            }
            assert_eq!(recs.len(), 2, "cut at {cut}");
            assert_eq!(valid, boundary as u64);
            // After recovery the file reads clean and appends still work.
            let (recs2, tail2) = read_wal(&path).unwrap();
            assert_eq!(tail2, WalTail::Clean);
            assert_eq!(recs2, recs);
            let mut w = WalWriter::open_at(&path, valid).unwrap();
            w.append(3, 103, &ev(3).encode()).unwrap();
            let (recs3, _) = read_wal(&path).unwrap();
            assert_eq!(recs3.len(), 3);
        }
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn torn_header_recovers_to_empty() {
        let d = tmpdir("torn-header");
        let path = d.join(WAL_FILE);
        std::fs::write(&path, &WAL_MAGIC[..3]).unwrap();
        let (recs, tail, valid) = recover_wal(&path).unwrap();
        assert!(recs.is_empty());
        assert_eq!(
            tail,
            WalTail::Torn {
                valid_len: 0,
                dropped: 3
            }
        );
        assert_eq!(valid, WAL_MAGIC.len() as u64);
        let mut w = WalWriter::open_at(&path, valid).unwrap();
        w.append(1, 1, &ev(1).encode()).unwrap();
        let (recs, tail) = read_wal(&path).unwrap();
        assert_eq!(tail, WalTail::Clean);
        assert_eq!(recs.len(), 1);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn mid_log_corruption_is_hard_error() {
        let d = tmpdir("corrupt");
        let path = d.join(WAL_FILE);
        write_log(&path, 3);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload byte of the FIRST record (there is data after it).
        let idx = WAL_MAGIC.len() + RECORD_HEADER + 2;
        bytes[idx] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        match read_wal(&path) {
            Err(ReplayError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn bad_magic_is_hard_error() {
        let d = tmpdir("magic");
        let path = d.join(WAL_FILE);
        std::fs::write(&path, b"NOTAWAL\x01extra").unwrap();
        assert!(matches!(read_wal(&path), Err(ReplayError::Corrupt { .. })));
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn non_monotonic_ids_are_hard_error() {
        let d = tmpdir("ids");
        let path = d.join(WAL_FILE);
        let mut w = WalWriter::open_append(&path).unwrap();
        w.append(2, 1, &ev(1).encode()).unwrap();
        w.append(2, 2, &ev(2).encode()).unwrap();
        assert!(matches!(read_wal(&path), Err(ReplayError::Corrupt { .. })));
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn reset_truncates_to_header() {
        let d = tmpdir("reset");
        let path = d.join(WAL_FILE);
        write_log(&path, 3);
        let mut w = WalWriter::open_append(&path).unwrap();
        assert_eq!(w.reset().unwrap(), WAL_MAGIC.len() as u64);
        let (recs, tail) = read_wal(&path).unwrap();
        assert!(recs.is_empty());
        assert_eq!(tail, WalTail::Clean);
        // And the writer keeps appending from the fresh header.
        w.append(9, 9, &ev(1).encode()).unwrap();
        let (recs, _) = read_wal(&path).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].event_id, 9);
        let _ = std::fs::remove_dir_all(&d);
    }
}
