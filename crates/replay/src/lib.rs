//! tarr-replay — deterministic event log, warm snapshot/restore, and
//! crash-safe replay for the mapping service.
//!
//! The persistence story in one paragraph: the only two ops that mutate
//! engine state (`ingest`, `fault`) are recorded as seeded, versioned
//! [`Event`]s in a checksummed write-ahead log ([`log`]), fsync'd before
//! the reply is acknowledged. A [`snapshot`] captures every named
//! cluster's warm [`tarr_core::SessionCore`] — binding, cached mappings,
//! reordered communicators, compiled schedules, priced totals — so a
//! restarted service boots by loading the latest snapshot and replaying
//! only the log tail ([`state::restore_dir`]) instead of re-pricing the
//! world. Because every event is a *seeded* description of a
//! deterministic computation (not a diff of its output), replay
//! reconstructs engine state bit-identically; the `tarr-replay` binary's
//! `--diff` mode proves it by comparing probe suites between a
//! snapshot-boot and a from-genesis replay.
//!
//! Crash-consistency contract, shortest form: *acknowledged implies
//! durable* (the WAL append syncs before the reply), *torn implies
//! unacknowledged* (a torn tail can only be the record whose reply never
//! went out, and recovery drops exactly that suffix), and *corrupt
//! implies loud* (damage anywhere else is a typed error, never a skip).

pub mod event;
pub mod log;
pub mod snapshot;
pub mod state;
pub mod wire;

pub use event::{
    BackendKind, Event, FaultSpec, IngestSource, IngestSpec, LayoutKind, EVENT_VERSION,
};
pub use log::{read_wal, recover_wal, WalRecord, WalTail, WalWriter, WAL_FILE, WAL_MAGIC};
pub use snapshot::{
    load as load_snapshot, write_atomic as write_snapshot, ClusterState, EngineSnapshot, SNAP_FILE,
    SNAP_MAGIC, SNAP_VERSION,
};
pub use state::{build_core, fault_core, probe_suite, restore_dir, ReplayState, Restore};
pub use wire::{crc32, Dec, Enc, WireError};

use std::path::Path;

/// Everything that can go wrong while persisting or replaying.
#[derive(Debug)]
pub enum ReplayError {
    /// An OS-level I/O failure on `path`.
    Io {
        /// File the operation touched.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// Structural damage that a torn append cannot explain.
    Corrupt {
        /// Damaged file.
        path: String,
        /// Byte offset of the damage.
        offset: u64,
        /// What was wrong.
        what: &'static str,
    },
    /// A snapshot that fails decoding or semantic validation.
    BadSnapshot {
        /// What was wrong.
        what: String,
    },
    /// A snapshot or event written by a newer format version.
    UnsupportedVersion(u32),
    /// A structurally-valid event that cannot be applied (e.g. a fault on
    /// a cluster the log never ingested).
    Apply(String),
}

impl ReplayError {
    pub(crate) fn io(path: &Path, source: std::io::Error) -> ReplayError {
        ReplayError::Io {
            path: path.display().to_string(),
            source,
        }
    }

    pub(crate) fn corrupt(path: &Path, offset: u64, what: &'static str) -> ReplayError {
        ReplayError::Corrupt {
            path: path.display().to_string(),
            offset,
            what,
        }
    }
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Io { path, source } => write!(f, "io error on {path}: {source}"),
            ReplayError::Corrupt { path, offset, what } => {
                write!(f, "corrupt {path} at byte {offset}: {what}")
            }
            ReplayError::BadSnapshot { what } => write!(f, "bad snapshot: {what}"),
            ReplayError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported format version {v} (written by a newer build?)"
                )
            }
            ReplayError::Apply(what) => write!(f, "cannot apply event: {what}"),
        }
    }
}

impl std::error::Error for ReplayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplayError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}
