//! Versioned warm-state snapshots of the whole engine.
//!
//! A snapshot captures every named cluster's [`tarr_core::CoreState`]
//! (binding + all four cache contents), its cluster as canonical
//! `topo-ingest` text, and its [`SessionConfig`] — everything needed to
//! rebuild a warm [`SessionCore`] without re-running a single mapping,
//! schedule compile, or price. The distance structure is *not* stored: it
//! is a pure function of (cluster, binding, config) and is re-extracted on
//! restore (O(P) on the implicit backend).
//!
//! File layout:
//!
//! ```text
//! [8]  magic "TARRSNAP"
//! [4]  version (u32 LE)
//! [n]  body (version-specific)
//! [4]  CRC-32 over the body
//! ```
//!
//! **Versioning policy.** [`SNAP_VERSION`] is the only version ever
//! written. Decoding dispatches on the stored version: every version ever
//! shipped keeps its decoder forever, and each old decoder *migrates
//! forward* into the current in-memory [`EngineSnapshot`] (V1 → V2 fills
//! the then-nonexistent `meta` section with its V2 default). A version
//! newer than [`SNAP_VERSION`] is a typed [`ReplayError::UnsupportedVersion`].
//! `encode_with_version` can still write old versions — that is how the
//! committed migration fixtures were generated and how the policy is
//! tested.
//!
//! **Determinism.** Cache entries are sorted by their encoded key bytes
//! and all wall-clock metadata is excluded, so two engines with identical
//! state produce byte-identical snapshots regardless of hash-map iteration
//! order or how long computes took.

use crate::wire::{crc32, Dec, Enc, WireError};
use crate::ReplayError;
use std::path::Path;
use std::sync::Arc;
use tarr_collectives::{AllgatherAlg, InterAlg, IntraPattern};
use tarr_core::{
    CommKey, CoreState, DistanceBackend, Mapper, PatternKind, SchedKey, SessionConfig, SessionCore,
};
use tarr_ingest::ClusterSnapshot;
use tarr_mpi::{MergedOp, TimedSchedule};

/// Snapshot file magic.
pub const SNAP_MAGIC: &[u8; 8] = b"TARRSNAP";

/// Current (and only ever written) snapshot version.
pub const SNAP_VERSION: u32 = 2;

/// Default snapshot file name inside a state directory.
pub const SNAP_FILE: &str = "snapshot.tsnap";

/// One cluster's warm state, snapshot-shaped.
#[derive(Debug, Clone)]
pub struct ClusterState {
    /// The cluster in canonical `topo-ingest` text form.
    pub cluster_text: String,
    /// The session config the core was extracted under.
    pub cfg: SessionConfig,
    /// Exported binding + cache contents.
    pub state: CoreState,
}

/// A whole-engine snapshot: every named cluster plus the WAL position it
/// is consistent with.
#[derive(Debug, Clone)]
pub struct EngineSnapshot {
    /// Highest WAL event id already reflected in this snapshot. Boot
    /// replays only records with larger ids.
    pub last_event_id: u64,
    /// Free-form key/value metadata (introduced in V2; empty under V1).
    pub meta: Vec<(String, String)>,
    /// Named clusters, sorted by name.
    pub clusters: Vec<(String, ClusterState)>,
}

// ---------------------------------------------------------------------------
// enum codes — wire-stable, append-only
// ---------------------------------------------------------------------------

fn enc_mapper(e: &mut Enc, m: Mapper) {
    e.u8(match m {
        Mapper::Hrstc => 0,
        Mapper::ScotchLike => 1,
        Mapper::ScotchTuned => 2,
        Mapper::Greedy => 3,
        Mapper::MvapichCyclic => 4,
    });
}

fn dec_mapper(d: &mut Dec) -> Result<Mapper, WireError> {
    let at = d.pos();
    Ok(match d.u8("mapper code")? {
        0 => Mapper::Hrstc,
        1 => Mapper::ScotchLike,
        2 => Mapper::ScotchTuned,
        3 => Mapper::Greedy,
        4 => Mapper::MvapichCyclic,
        _ => {
            return Err(WireError {
                offset: at,
                what: "mapper code",
            })
        }
    })
}

fn enc_inter(e: &mut Enc, a: InterAlg) {
    e.u8(match a {
        InterAlg::RecursiveDoubling => 0,
        InterAlg::Ring => 1,
    });
}

fn dec_inter(d: &mut Dec) -> Result<InterAlg, WireError> {
    let at = d.pos();
    Ok(match d.u8("inter alg code")? {
        0 => InterAlg::RecursiveDoubling,
        1 => InterAlg::Ring,
        _ => {
            return Err(WireError {
                offset: at,
                what: "inter alg code",
            })
        }
    })
}

fn enc_intra(e: &mut Enc, a: IntraPattern) {
    e.u8(match a {
        IntraPattern::Linear => 0,
        IntraPattern::Binomial => 1,
    });
}

fn dec_intra(d: &mut Dec) -> Result<IntraPattern, WireError> {
    let at = d.pos();
    Ok(match d.u8("intra pattern code")? {
        0 => IntraPattern::Linear,
        1 => IntraPattern::Binomial,
        _ => {
            return Err(WireError {
                offset: at,
                what: "intra pattern code",
            })
        }
    })
}

fn enc_alg(e: &mut Enc, a: AllgatherAlg) {
    e.u8(match a {
        AllgatherAlg::RecursiveDoubling => 0,
        AllgatherAlg::Ring => 1,
        AllgatherAlg::Bruck => 2,
    });
}

fn dec_alg(d: &mut Dec) -> Result<AllgatherAlg, WireError> {
    let at = d.pos();
    Ok(match d.u8("allgather alg code")? {
        0 => AllgatherAlg::RecursiveDoubling,
        1 => AllgatherAlg::Ring,
        2 => AllgatherAlg::Bruck,
        _ => {
            return Err(WireError {
                offset: at,
                what: "allgather alg code",
            })
        }
    })
}

fn enc_pattern(e: &mut Enc, p: PatternKind) {
    match p {
        PatternKind::Rd => e.u8(0),
        PatternKind::Ring => e.u8(1),
        PatternKind::Bruck => e.u8(2),
        PatternKind::BinomialBcast => e.u8(3),
        PatternKind::BinomialGather => e.u8(4),
        PatternKind::Hier(inter, intra) => {
            e.u8(5);
            enc_inter(e, inter);
            enc_intra(e, intra);
        }
    }
}

fn dec_pattern(d: &mut Dec) -> Result<PatternKind, WireError> {
    let at = d.pos();
    Ok(match d.u8("pattern code")? {
        0 => PatternKind::Rd,
        1 => PatternKind::Ring,
        2 => PatternKind::Bruck,
        3 => PatternKind::BinomialBcast,
        4 => PatternKind::BinomialGather,
        5 => PatternKind::Hier(dec_inter(d)?, dec_intra(d)?),
        _ => {
            return Err(WireError {
                offset: at,
                what: "pattern code",
            })
        }
    })
}

fn enc_sched_key(e: &mut Enc, k: SchedKey) {
    match k {
        SchedKey::Flat(a) => {
            e.u8(0);
            enc_alg(e, a);
        }
        SchedKey::FlatInit(a, m) => {
            e.u8(1);
            enc_alg(e, a);
            enc_mapper(e, m);
        }
        SchedKey::Gather => e.u8(2),
        SchedKey::GatherInit(m) => {
            e.u8(3);
            enc_mapper(e, m);
        }
        SchedKey::Hier(inter, intra, m) => {
            e.u8(4);
            enc_inter(e, inter);
            enc_intra(e, intra);
            match m {
                None => e.u8(0),
                Some(m) => {
                    e.u8(1);
                    enc_mapper(e, m);
                }
            }
        }
        SchedKey::HierInit(inter, intra, m) => {
            e.u8(5);
            enc_inter(e, inter);
            enc_intra(e, intra);
            enc_mapper(e, m);
        }
    }
}

fn dec_sched_key(d: &mut Dec) -> Result<SchedKey, WireError> {
    let at = d.pos();
    Ok(match d.u8("sched key tag")? {
        0 => SchedKey::Flat(dec_alg(d)?),
        1 => SchedKey::FlatInit(dec_alg(d)?, dec_mapper(d)?),
        2 => SchedKey::Gather,
        3 => SchedKey::GatherInit(dec_mapper(d)?),
        4 => {
            let inter = dec_inter(d)?;
            let intra = dec_intra(d)?;
            let mat = d.pos();
            let m = match d.u8("sched key mapper flag")? {
                0 => None,
                1 => Some(dec_mapper(d)?),
                _ => {
                    return Err(WireError {
                        offset: mat,
                        what: "sched key mapper flag",
                    })
                }
            };
            SchedKey::Hier(inter, intra, m)
        }
        5 => SchedKey::HierInit(dec_inter(d)?, dec_intra(d)?, dec_mapper(d)?),
        _ => {
            return Err(WireError {
                offset: at,
                what: "sched key tag",
            })
        }
    })
}

fn enc_comm_key(e: &mut Enc, k: CommKey) {
    match k {
        CommKey::Default => e.u8(0),
        CommKey::Reordered(m, p) => {
            e.u8(1);
            enc_mapper(e, m);
            enc_pattern(e, p);
        }
    }
}

fn dec_comm_key(d: &mut Dec) -> Result<CommKey, WireError> {
    let at = d.pos();
    Ok(match d.u8("comm key tag")? {
        0 => CommKey::Default,
        1 => CommKey::Reordered(dec_mapper(d)?, dec_pattern(d)?),
        _ => {
            return Err(WireError {
                offset: at,
                what: "comm key tag",
            })
        }
    })
}

// ---------------------------------------------------------------------------
// config
// ---------------------------------------------------------------------------

fn enc_cfg(e: &mut Enc, cfg: &SessionConfig) {
    e.u64(cfg.seed);
    e.u8(match cfg.backend {
        DistanceBackend::Dense => 0,
        DistanceBackend::Implicit => 1,
    });
    let d = &cfg.dist;
    for v in [
        d.same_core,
        d.l2,
        d.socket,
        d.node,
        d.same_leaf,
        d.same_line,
        d.cross_spine,
        d.torus_hop,
    ] {
        e.u16(v);
    }
    e.f64(cfg.extraction.base_seconds);
    e.f64(cfg.extraction.per_rank_seconds);
    let n = &cfg.net;
    e.f64(n.sw_overhead_s);
    for ch in [
        &n.shm,
        &n.qpi,
        &n.hca,
        &n.leaf_link,
        &n.spine_link,
        &n.torus_link,
        &n.switch_link,
    ] {
        e.f64(ch.latency_s);
        e.f64(ch.bandwidth_bps);
    }
    e.f64(n.memcpy.latency_s);
    e.f64(n.memcpy.bandwidth_bps);
}

fn dec_cfg(d: &mut Dec) -> Result<SessionConfig, WireError> {
    let mut cfg = SessionConfig {
        seed: d.u64("cfg seed")?,
        ..SessionConfig::default()
    };
    let at = d.pos();
    cfg.backend = match d.u8("cfg backend")? {
        0 => DistanceBackend::Dense,
        1 => DistanceBackend::Implicit,
        _ => {
            return Err(WireError {
                offset: at,
                what: "cfg backend",
            })
        }
    };
    cfg.dist.same_core = d.u16("cfg dist")?;
    cfg.dist.l2 = d.u16("cfg dist")?;
    cfg.dist.socket = d.u16("cfg dist")?;
    cfg.dist.node = d.u16("cfg dist")?;
    cfg.dist.same_leaf = d.u16("cfg dist")?;
    cfg.dist.same_line = d.u16("cfg dist")?;
    cfg.dist.cross_spine = d.u16("cfg dist")?;
    cfg.dist.torus_hop = d.u16("cfg dist")?;
    cfg.extraction.base_seconds = d.f64("cfg extraction")?;
    cfg.extraction.per_rank_seconds = d.f64("cfg extraction")?;
    cfg.net.sw_overhead_s = d.f64("cfg net")?;
    for ch in [
        &mut cfg.net.shm,
        &mut cfg.net.qpi,
        &mut cfg.net.hca,
        &mut cfg.net.leaf_link,
        &mut cfg.net.spine_link,
        &mut cfg.net.torus_link,
        &mut cfg.net.switch_link,
    ] {
        ch.latency_s = d.f64("cfg channel")?;
        ch.bandwidth_bps = d.f64("cfg channel")?;
    }
    cfg.net.memcpy.latency_s = d.f64("cfg memcpy")?;
    cfg.net.memcpy.bandwidth_bps = d.f64("cfg memcpy")?;
    cfg.net.link_overrides = Vec::new();
    Ok(cfg)
}

// ---------------------------------------------------------------------------
// schedules
// ---------------------------------------------------------------------------

fn enc_schedule(e: &mut Enc, ts: &TimedSchedule) {
    e.u32(ts.p());
    let uniq = ts.unique_stages();
    e.u32(uniq.len() as u32);
    for stage in uniq {
        e.u32(stage.len() as u32);
        for op in stage {
            e.u32(op.from);
            e.u32(op.to);
            e.u64(op.blocks);
            e.u64(op.raw);
        }
    }
    e.vec_u32(ts.stage_order());
}

fn dec_schedule(d: &mut Dec) -> Result<TimedSchedule, WireError> {
    let at = d.pos();
    let p = d.u32("schedule p")?;
    let n = d.u32("schedule unique count")? as usize;
    let mut uniq = Vec::new();
    for _ in 0..n {
        let m = d.u32("schedule stage op count")? as usize;
        let mut stage = Vec::new();
        for _ in 0..m {
            stage.push(MergedOp {
                from: d.u32("schedule op from")?,
                to: d.u32("schedule op to")?,
                blocks: d.u64("schedule op blocks")?,
                raw: d.u64("schedule op raw")?,
            });
        }
        uniq.push(stage);
    }
    let order = d.vec_u32("schedule order")?;
    TimedSchedule::from_parts(p, uniq, order).map_err(|_| WireError {
        offset: at,
        what: "schedule invariants",
    })
}

// ---------------------------------------------------------------------------
// cluster state
// ---------------------------------------------------------------------------

/// Sort cache entries by their encoded key bytes — the determinism trick
/// that makes snapshots independent of hash-map iteration order.
fn sort_by_key_bytes<K: Copy, V>(entries: &mut [(K, V)], enc_key: impl Fn(&mut Enc, K)) {
    entries.sort_by_cached_key(|(k, _)| {
        let mut e = Enc::new();
        enc_key(&mut e, *k);
        e.into_bytes()
    });
}

impl ClusterState {
    /// Capture one core. Fails (typed, never silently lossy) if the config
    /// carries per-link overrides — they reference live fabric hops and
    /// have no closed wire form yet; a future snapshot version can add one.
    pub fn capture(core: &SessionCore) -> Result<ClusterState, ReplayError> {
        let cfg = core.config().clone();
        if !cfg.net.link_overrides.is_empty() {
            return Err(ReplayError::BadSnapshot {
                what: "sessions with per-link NetParams overrides are not snapshottable".into(),
            });
        }
        let mut state = core.export_state();
        sort_by_key_bytes(&mut state.mappings, |e, (m, p)| {
            enc_mapper(e, m);
            enc_pattern(e, p);
        });
        sort_by_key_bytes(&mut state.comms, |e, (m, p)| {
            enc_mapper(e, m);
            enc_pattern(e, p);
        });
        sort_by_key_bytes(&mut state.scheds, enc_sched_key);
        sort_by_key_bytes(&mut state.prices, |e, (sk, ck, bytes)| {
            enc_sched_key(e, sk);
            enc_comm_key(e, ck);
            e.u64(bytes);
        });
        Ok(ClusterState {
            cluster_text: ClusterSnapshot::canonical_cluster_text(core.cluster()),
            cfg,
            state,
        })
    }

    /// Rebuild a warm core: parse the cluster text, re-extract the distance
    /// structure, seed the caches. All structural validation lives in
    /// [`SessionCore::from_state`].
    pub fn restore(&self) -> Result<SessionCore, ReplayError> {
        let cluster = ClusterSnapshot::parse(&self.cluster_text)
            .and_then(|s| s.to_cluster())
            .map_err(|e| ReplayError::BadSnapshot {
                what: format!("cluster text: {e}"),
            })?;
        SessionCore::from_state(cluster, self.cfg.clone(), self.state.clone())
            .map_err(|what| ReplayError::BadSnapshot { what })
    }

    fn encode(&self, e: &mut Enc) {
        e.str(&self.cluster_text);
        enc_cfg(e, &self.cfg);
        e.vec_u32(&self.state.cores);
        e.u32(self.state.mappings.len() as u32);
        for ((m, p), v) in &self.state.mappings {
            enc_mapper(e, *m);
            enc_pattern(e, *p);
            match v {
                None => e.u8(0),
                Some(mapping) => {
                    e.u8(1);
                    e.vec_u32(mapping);
                }
            }
        }
        e.u32(self.state.comms.len() as u32);
        for ((m, p), v) in &self.state.comms {
            enc_mapper(e, *m);
            enc_pattern(e, *p);
            match v {
                None => e.u8(0),
                Some(cores) => {
                    e.u8(1);
                    e.vec_u32(cores);
                }
            }
        }
        e.u32(self.state.scheds.len() as u32);
        for (k, v) in &self.state.scheds {
            enc_sched_key(e, *k);
            match v {
                None => e.u8(0),
                Some(ts) => {
                    e.u8(1);
                    enc_schedule(e, ts);
                }
            }
        }
        e.u32(self.state.prices.len() as u32);
        for ((sk, ck, bytes), price) in &self.state.prices {
            enc_sched_key(e, *sk);
            enc_comm_key(e, *ck);
            e.u64(*bytes);
            e.f64(*price);
        }
    }

    fn decode(d: &mut Dec) -> Result<ClusterState, WireError> {
        let cluster_text = d.str("cluster text")?;
        let cfg = dec_cfg(d)?;
        let cores = d.vec_u32("binding")?;
        let opt_vec = |d: &mut Dec, what: &'static str| -> Result<Option<Vec<u32>>, WireError> {
            let at = d.pos();
            match d.u8(what)? {
                0 => Ok(None),
                1 => Ok(Some(d.vec_u32(what)?)),
                _ => Err(WireError { offset: at, what }),
            }
        };
        let n = d.u32("mapping count")? as usize;
        let mut mappings = Vec::new();
        for _ in 0..n {
            let key = (dec_mapper(d)?, dec_pattern(d)?);
            mappings.push((key, opt_vec(d, "mapping entry")?));
        }
        let n = d.u32("comm count")? as usize;
        let mut comms = Vec::new();
        for _ in 0..n {
            let key = (dec_mapper(d)?, dec_pattern(d)?);
            comms.push((key, opt_vec(d, "comm entry")?));
        }
        let n = d.u32("sched count")? as usize;
        let mut scheds = Vec::new();
        for _ in 0..n {
            let key = dec_sched_key(d)?;
            let at = d.pos();
            let v = match d.u8("sched entry flag")? {
                0 => None,
                1 => Some(dec_schedule(d)?),
                _ => {
                    return Err(WireError {
                        offset: at,
                        what: "sched entry flag",
                    })
                }
            };
            scheds.push((key, v));
        }
        let n = d.u32("price count")? as usize;
        let mut prices = Vec::new();
        for _ in 0..n {
            let key = (dec_sched_key(d)?, dec_comm_key(d)?, d.u64("price bytes")?);
            prices.push((key, d.f64("price value")?));
        }
        Ok(ClusterState {
            cluster_text,
            cfg,
            state: CoreState {
                cores,
                mappings,
                comms,
                scheds,
                prices,
            },
        })
    }
}

// ---------------------------------------------------------------------------
// engine snapshot
// ---------------------------------------------------------------------------

impl EngineSnapshot {
    /// Encode at the current [`SNAP_VERSION`].
    pub fn encode(&self) -> Result<Vec<u8>, ReplayError> {
        self.encode_with_version(SNAP_VERSION)
    }

    /// Encode at an explicit version — the migration-fixture generator and
    /// the version-policy tests. V1 predates `meta`, so encoding a
    /// snapshot that carries metadata at V1 is a typed refusal rather than
    /// silent data loss.
    pub fn encode_with_version(&self, version: u32) -> Result<Vec<u8>, ReplayError> {
        if version == 0 || version > SNAP_VERSION {
            return Err(ReplayError::UnsupportedVersion(version));
        }
        if version < 2 && !self.meta.is_empty() {
            return Err(ReplayError::BadSnapshot {
                what: format!("metadata requires snapshot v2, asked to encode v{version}"),
            });
        }
        let mut body = Enc::new();
        body.u64(self.last_event_id);
        if version >= 2 {
            body.u32(self.meta.len() as u32);
            for (k, v) in &self.meta {
                body.str(k);
                body.str(v);
            }
        }
        let mut clusters: Vec<&(String, ClusterState)> = self.clusters.iter().collect();
        clusters.sort_by(|a, b| a.0.cmp(&b.0));
        body.u32(clusters.len() as u32);
        for (name, cs) in clusters {
            body.str(name);
            cs.encode(&mut body);
        }
        let body = body.into_bytes();
        let mut e = Enc::new();
        e.raw(SNAP_MAGIC);
        e.u32(version);
        e.raw(&body);
        e.u32(crc32(&body));
        Ok(e.into_bytes())
    }

    /// Decode any supported version, migrating forward to the current
    /// in-memory form.
    pub fn decode(bytes: &[u8]) -> Result<EngineSnapshot, ReplayError> {
        let wire = |e: WireError| ReplayError::BadSnapshot {
            what: e.to_string(),
        };
        let mut d = Dec::new(bytes);
        let magic = d.raw(8, "snapshot magic").map_err(wire)?;
        if magic != SNAP_MAGIC {
            return Err(ReplayError::BadSnapshot {
                what: "bad snapshot magic".into(),
            });
        }
        let version = d.u32("snapshot version").map_err(wire)?;
        if version == 0 || version > SNAP_VERSION {
            return Err(ReplayError::UnsupportedVersion(version));
        }
        if d.remaining() < 4 {
            return Err(ReplayError::BadSnapshot {
                what: "missing snapshot checksum".into(),
            });
        }
        let body = d.raw(d.remaining() - 4, "snapshot body").map_err(wire)?;
        let stored = d.u32("snapshot checksum").map_err(wire)?;
        if crc32(body) != stored {
            return Err(ReplayError::BadSnapshot {
                what: "snapshot checksum mismatch".into(),
            });
        }
        let mut d = Dec::new(body);
        let last_event_id = d.u64("last event id").map_err(wire)?;
        // V1 → V2 migration: the meta section did not exist; default empty.
        let mut meta = Vec::new();
        if version >= 2 {
            let n = d.u32("meta count").map_err(wire)? as usize;
            for _ in 0..n {
                let k = d.str("meta key").map_err(wire)?;
                let v = d.str("meta value").map_err(wire)?;
                meta.push((k, v));
            }
        }
        let n = d.u32("cluster count").map_err(wire)? as usize;
        let mut clusters = Vec::new();
        for _ in 0..n {
            let name = d.str("cluster name").map_err(wire)?;
            clusters.push((name, ClusterState::decode(&mut d).map_err(wire)?));
        }
        d.finish("snapshot trailing bytes").map_err(wire)?;
        Ok(EngineSnapshot {
            last_event_id,
            meta,
            clusters,
        })
    }

    /// Capture a whole engine worth of cores (sorted by name inside
    /// `encode`, so caller order does not matter).
    pub fn capture(
        last_event_id: u64,
        cores: &[(String, Arc<SessionCore>)],
    ) -> Result<EngineSnapshot, ReplayError> {
        let mut clusters = Vec::with_capacity(cores.len());
        for (name, core) in cores {
            clusters.push((name.clone(), ClusterState::capture(core)?));
        }
        Ok(EngineSnapshot {
            last_event_id,
            meta: Vec::new(),
            clusters,
        })
    }
}

/// Atomically write `snap` as `dir/snapshot.tsnap`: encode, write to a
/// temp file, fsync it, rename over the target, fsync the directory. A
/// crash at any point leaves either the old snapshot or the new one —
/// never a torn mix.
pub fn write_atomic(dir: &Path, snap: &EngineSnapshot) -> Result<u64, ReplayError> {
    let bytes = snap.encode()?;
    let target = dir.join(SNAP_FILE);
    let tmp = dir.join(format!("{SNAP_FILE}.tmp"));
    match write_atomic_inner(dir, &target, &tmp, &bytes) {
        Ok(()) => Ok(bytes.len() as u64),
        Err(e) => {
            // Any failure leaves at worst a stale tmp file; remove it so a
            // later snapshot (or boot) never sees leftovers. The target is
            // untouched until the rename, so the old snapshot survives.
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// The fallible core of [`write_atomic`], with chaos injection sites
/// (`snap.write`, `snap.fsync`, `snap.rename`) at each durability step.
fn write_atomic_inner(
    dir: &Path,
    target: &Path,
    tmp: &Path,
    bytes: &[u8],
) -> Result<(), ReplayError> {
    use std::io::Write;
    let mut f = std::fs::File::create(tmp).map_err(|e| ReplayError::io(tmp, e))?;
    match tarr_chaos::hit("snap.write") {
        Some(tarr_chaos::Action::Error(e)) => return Err(ReplayError::io(tmp, e)),
        Some(tarr_chaos::Action::Short(raw)) => {
            // Land a strict prefix of the snapshot, as a torn write would.
            let n = (raw as usize) % bytes.len().max(1);
            let _ = f.write_all(&bytes[..n]);
            return Err(ReplayError::io(
                tmp,
                std::io::Error::other("tarr-chaos: injected short write at snap.write"),
            ));
        }
        None => {}
    }
    f.write_all(bytes).map_err(|e| ReplayError::io(tmp, e))?;
    tarr_chaos::fail_io("snap.fsync").map_err(|e| ReplayError::io(tmp, e))?;
    f.sync_all().map_err(|e| ReplayError::io(tmp, e))?;
    drop(f);
    tarr_chaos::fail_io("snap.rename").map_err(|e| ReplayError::io(target, e))?;
    std::fs::rename(tmp, target).map_err(|e| ReplayError::io(target, e))?;
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Load `dir/snapshot.tsnap` if present.
pub fn load(dir: &Path) -> Result<Option<EngineSnapshot>, ReplayError> {
    let path = dir.join(SNAP_FILE);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(ReplayError::io(&path, e)),
    };
    Ok(Some(EngineSnapshot::decode(&bytes)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tarr_mapping::InitialMapping;
    use tarr_topo::Cluster;

    fn scheme(m: Mapper) -> tarr_core::Scheme {
        tarr_core::Scheme::Reordered {
            mapper: m,
            fix: tarr_mapping::OrderFix::InitComm,
        }
    }

    fn warm_core() -> Arc<SessionCore> {
        let cluster = Cluster::gpc(2);
        let core = SessionCore::from_layout(
            cluster,
            InitialMapping::BLOCK_BUNCH,
            16,
            SessionConfig::default(),
        );
        let core = Arc::new(core);
        let mut h = core.handle();
        // Warm a little of everything: mapping, comm, schedule, price.
        let _ = h.allgather_time(4096, scheme(Mapper::Hrstc));
        let _ = h.allgather_time(65536, scheme(Mapper::ScotchLike));
        let _ = h.allgather_time(4096, tarr_core::Scheme::Default);
        let _ = h.gather_time(1024, scheme(Mapper::Hrstc));
        core
    }

    #[test]
    fn snapshot_roundtrips_and_is_deterministic() {
        let core = warm_core();
        let snap = EngineSnapshot::capture(7, &[("gpc".into(), core)]).unwrap();
        let a = snap.encode().unwrap();
        let decoded = EngineSnapshot::decode(&a).unwrap();
        assert_eq!(decoded.last_event_id, 7);
        assert_eq!(decoded.clusters.len(), 1);
        let b = decoded.encode().unwrap();
        assert_eq!(a, b, "encode→decode→encode must be a fixed point");
    }

    #[test]
    fn two_identically_warmed_cores_snapshot_identically() {
        let a = EngineSnapshot::capture(1, &[("x".into(), warm_core())])
            .unwrap()
            .encode()
            .unwrap();
        let b = EngineSnapshot::capture(1, &[("x".into(), warm_core())])
            .unwrap()
            .encode()
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn restore_rebuilds_a_working_core() {
        let core = warm_core();
        let before = {
            let mut h = core.handle();
            let t = h.allgather_time(4096, scheme(Mapper::Hrstc));
            (core, t)
        };
        let snap = EngineSnapshot::capture(1, &[("gpc".into(), before.0.clone())]).unwrap();
        let bytes = snap.encode().unwrap();
        let restored = EngineSnapshot::decode(&bytes).unwrap().clusters[0]
            .1
            .restore()
            .unwrap();
        let restored = Arc::new(restored);
        let mut h = restored.handle();
        let t = h.allgather_time(4096, scheme(Mapper::Hrstc));
        assert_eq!(
            t.to_bits(),
            before.1.to_bits(),
            "restored price must be bit-identical"
        );
        // And it came from the cache, not a recompute.
        let stats = restored.cache_stats();
        assert_eq!(
            stats.misses(),
            0,
            "warm restore must not recompute: {stats:?}"
        );
    }

    #[test]
    fn v1_snapshots_migrate_forward() {
        let core = warm_core();
        let snap = EngineSnapshot::capture(3, &[("gpc".into(), core)]).unwrap();
        let v1 = snap.encode_with_version(1).unwrap();
        let decoded = EngineSnapshot::decode(&v1).unwrap();
        assert_eq!(decoded.last_event_id, 3);
        assert!(decoded.meta.is_empty());
        assert_eq!(decoded.clusters.len(), 1);
        decoded.clusters[0].1.restore().unwrap();
        // Re-encoding a migrated snapshot writes the current version.
        let v2 = decoded.encode().unwrap();
        assert_eq!(&v2[8..12], &SNAP_VERSION.to_le_bytes());
    }

    #[test]
    fn meta_cannot_be_downgraded_to_v1() {
        let mut snap = EngineSnapshot {
            last_event_id: 0,
            meta: Vec::new(),
            clusters: Vec::new(),
        };
        snap.meta.push(("k".into(), "v".into()));
        assert!(matches!(
            snap.encode_with_version(1),
            Err(ReplayError::BadSnapshot { .. })
        ));
    }

    #[test]
    fn future_version_refused() {
        let snap = EngineSnapshot {
            last_event_id: 0,
            meta: Vec::new(),
            clusters: Vec::new(),
        };
        let mut bytes = snap.encode().unwrap();
        bytes[8..12].copy_from_slice(&(SNAP_VERSION + 1).to_le_bytes());
        assert!(matches!(
            EngineSnapshot::decode(&bytes),
            Err(ReplayError::UnsupportedVersion(v)) if v == SNAP_VERSION + 1
        ));
    }

    #[test]
    fn corruption_is_typed() {
        let core = warm_core();
        let snap = EngineSnapshot::capture(1, &[("gpc".into(), core)]).unwrap();
        let bytes = snap.encode().unwrap();
        // Checksum catches a flipped body byte.
        let mut bad = bytes.clone();
        bad[40] ^= 0xFF;
        assert!(matches!(
            EngineSnapshot::decode(&bad),
            Err(ReplayError::BadSnapshot { .. })
        ));
        // Truncations are typed, never panics.
        for cut in 0..bytes.len().min(64) {
            assert!(EngineSnapshot::decode(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn atomic_write_and_load() {
        let dir = std::env::temp_dir().join(format!("tarr-replay-snap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert!(load(&dir).unwrap().is_none());
        let snap = EngineSnapshot::capture(5, &[("gpc".into(), warm_core())]).unwrap();
        let n = write_atomic(&dir, &snap).unwrap();
        assert!(n > 0);
        let loaded = load(&dir).unwrap().unwrap();
        assert_eq!(loaded.last_event_id, 5);
        assert_eq!(loaded.encode().unwrap(), snap.encode().unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
