//! Replaying a (snapshot, log) pair back into engine state.
//!
//! [`build_core`] and [`fault_core`] are the *single* code paths for
//! turning an [`IngestSpec`]/[`FaultSpec`] into session state — the live
//! engine calls them for real requests and replay calls them for recorded
//! ones, so there is no second implementation to drift. [`ReplayState`]
//! folds events in id order (skipping anything a snapshot already
//! reflects), and [`restore_dir`] is the whole boot story: load snapshot,
//! recover the WAL, replay the tail.

use crate::event::{Event, FaultSpec, IngestSource, IngestSpec};
use crate::log::{read_wal, recover_wal, WalTail, WAL_FILE};
use crate::snapshot::{self, EngineSnapshot};
use crate::ReplayError;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;
use tarr_core::{DegradationReport, Mapper, PatternKind, Scheme, SessionConfig, SessionCore};
use tarr_faults::FaultSet;
use tarr_mapping::OrderFix;

/// Build a fresh core from an ingest spec — exactly the semantics of the
/// serve `ingest` op (same defaults, same error texts where possible).
pub fn build_core(spec: &IngestSpec) -> Result<SessionCore, ReplayError> {
    let mut cfg = SessionConfig {
        backend: spec.backend.backend(),
        ..SessionConfig::default()
    };
    if let Some(seed) = spec.seed {
        cfg.seed = seed;
    }
    let layout = spec.layout.initial();
    let p = spec.p.map(|v| v as usize);
    match &spec.source {
        IngestSource::SnapshotText(text) => SessionCore::from_snapshot_text(text, layout, p, cfg)
            .map_err(|e| ReplayError::Apply(e.to_string())),
        IngestSource::GpcNodes(nodes) => {
            let cluster = tarr_topo::Cluster::gpc(*nodes as usize);
            let p = p.unwrap_or_else(|| cluster.total_cores());
            Ok(SessionCore::from_layout(cluster, layout, p, cfg))
        }
    }
}

/// Degrade a core with a seeded fault set — exactly the serve `fault` op.
pub fn fault_core(
    core: &SessionCore,
    fault: &FaultSpec,
) -> Result<(SessionCore, DegradationReport), ReplayError> {
    let set = FaultSet::random(core.cluster(), &fault.rates(), fault.seed);
    core.apply_faults(&set, &[])
        .map_err(|e| ReplayError::Apply(e.to_string()))
}

/// Engine state as replay reconstructs it: named cores plus the id of the
/// last event folded in.
#[derive(Default)]
pub struct ReplayState {
    /// Named cores, ordered by name.
    pub clusters: BTreeMap<String, Arc<SessionCore>>,
    /// Highest event id applied (0 = none).
    pub last_event_id: u64,
}

impl ReplayState {
    /// Seed from a snapshot: restore every cluster warm.
    pub fn from_snapshot(snap: &EngineSnapshot) -> Result<ReplayState, ReplayError> {
        let mut clusters = BTreeMap::new();
        for (name, cs) in &snap.clusters {
            clusters.insert(name.clone(), Arc::new(cs.restore()?));
        }
        Ok(ReplayState {
            clusters,
            last_event_id: snap.last_event_id,
        })
    }

    /// Fold one event in. Events at or below `last_event_id` are already
    /// reflected (the snapshot covers them) and are skipped; returns
    /// whether the event was applied.
    pub fn apply(&mut self, event_id: u64, event: &Event) -> Result<bool, ReplayError> {
        if event_id <= self.last_event_id {
            return Ok(false);
        }
        match event {
            Event::Ingest { cluster, spec } => {
                // `replace` was validated when the event was admitted; on
                // replay an existing entry is simply superseded either way.
                let core = build_core(spec)?;
                self.clusters.insert(cluster.clone(), Arc::new(core));
            }
            Event::Fault { cluster, fault } => {
                let core = self.clusters.get(cluster).ok_or_else(|| {
                    ReplayError::Apply(format!(
                        "fault event {event_id} names unknown cluster \"{cluster}\""
                    ))
                })?;
                let (degraded, _report) = fault_core(core, fault)?;
                self.clusters.insert(cluster.clone(), Arc::new(degraded));
            }
        }
        self.last_event_id = event_id;
        Ok(true)
    }
}

/// Everything [`restore_dir`] learned while booting.
pub struct Restore {
    /// The reconstructed state.
    pub state: ReplayState,
    /// Whether a snapshot file was present.
    pub snapshot_loaded: bool,
    /// Snapshot file size (0 if absent).
    pub snapshot_bytes: u64,
    /// WAL records applied on top of the snapshot.
    pub events_replayed: u64,
    /// WAL records skipped because the snapshot already covered them.
    pub events_skipped: u64,
    /// How the WAL tail looked on disk (before any recovery).
    pub tail: WalTail,
    /// Valid WAL length in bytes.
    pub wal_bytes: u64,
}

/// Boot engine state from a state directory: load `snapshot.tsnap` if
/// present, then replay the WAL tail. With `recover` set, a torn WAL tail
/// is physically truncated (the serve boot path); without it the torn
/// bytes are left untouched (the read-only inspection path).
pub fn restore_dir(dir: &Path, recover: bool) -> Result<Restore, ReplayError> {
    if recover {
        // A crash between the snapshot tmp write and its rename leaves a
        // stale `.tmp` behind; it was never the live snapshot, so boot
        // discards it rather than letting it accumulate.
        let _ = std::fs::remove_file(dir.join(format!("{}.tmp", snapshot::SNAP_FILE)));
    }
    let snap = snapshot::load(dir)?;
    let snapshot_loaded = snap.is_some();
    let snapshot_bytes = if snapshot_loaded {
        std::fs::metadata(dir.join(snapshot::SNAP_FILE))
            .map(|m| m.len())
            .unwrap_or(0)
    } else {
        0
    };
    let mut state = match &snap {
        Some(s) => ReplayState::from_snapshot(s)?,
        None => ReplayState::default(),
    };
    let wal_path = dir.join(WAL_FILE);
    let (records, tail, wal_bytes) = if recover {
        recover_wal(&wal_path)?
    } else {
        let (records, tail) = read_wal(&wal_path)?;
        let valid = match tail {
            WalTail::Clean => {
                if wal_path.exists() {
                    std::fs::metadata(&wal_path)
                        .map_err(|e| ReplayError::io(&wal_path, e))?
                        .len()
                } else {
                    0
                }
            }
            WalTail::Torn { valid_len, .. } => valid_len,
        };
        (records, tail, valid)
    };
    let mut replayed = 0;
    let mut skipped = 0;
    for r in &records {
        if state.apply(r.event_id, &r.event)? {
            replayed += 1;
        } else {
            skipped += 1;
        }
    }
    Ok(Restore {
        state,
        snapshot_loaded,
        snapshot_bytes,
        events_replayed: replayed,
        events_skipped: skipped,
        tail,
        wal_bytes,
    })
}

/// The cache-transparent probe suite differential checks compare engines
/// with. Every probe is a pure function of engine state (mappings,
/// reordered communicators, prices) — never an instantaneous cache
/// observation — so two engines that agree on all probes hold the same
/// durable state even if their caches were warmed differently. Floats are
/// rendered as IEEE-754 bit patterns: "equal" means bit-identical.
pub fn probe_suite(core: &Arc<SessionCore>) -> Vec<String> {
    let mut h = core.handle();
    let mut out = Vec::new();
    let pats = [
        (Mapper::Hrstc, PatternKind::Ring),
        (Mapper::ScotchLike, PatternKind::Ring),
        (Mapper::Greedy, PatternKind::Ring),
    ];
    for (m, p) in pats {
        let rendered = match h.mapping(m, p) {
            None => "unsupported".to_string(),
            Some(info) => info
                .mapping
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(","),
        };
        out.push(format!("map {m:?} {p:?} = {rendered}"));
    }
    let schemes: [(&str, Scheme); 3] = [
        ("default", Scheme::Default),
        (
            "hrstc/init_comm",
            Scheme::Reordered {
                mapper: Mapper::Hrstc,
                fix: OrderFix::InitComm,
            },
        ),
        (
            "scotch/in_place",
            Scheme::Reordered {
                mapper: Mapper::ScotchLike,
                fix: OrderFix::InPlace,
            },
        ),
    ];
    for bytes in [1024u64, 65536] {
        for (label, scheme) in schemes {
            let t = h.allgather_time(bytes, scheme);
            out.push(format!(
                "price allgather {bytes} {label} = {:016x}",
                t.to_bits()
            ));
        }
    }
    let t = h.gather_time(4096, schemes[1].1);
    out.push(format!(
        "price gather 4096 hrstc/init_comm = {:016x}",
        t.to_bits()
    ));
    let t = h.bcast_time(1024, schemes[2].1);
    out.push(format!(
        "price bcast 1024 scotch/in_place = {:016x}",
        t.to_bits()
    ));
    // Both allreduce algorithms require a power-of-two communicator; the
    // skip is a pure function of p, so both sides of a differential make
    // the same choice.
    if core.size().is_power_of_two() {
        let t = h.allreduce_time(65536, true, schemes[1].1);
        out.push(format!(
            "price allreduce 65536 hrstc/init_comm = {:016x}",
            t.to_bits()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{BackendKind, LayoutKind};
    use crate::log::WalWriter;
    use crate::snapshot::write_atomic;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("tarr-replay-state-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn gpc_ingest(cluster: &str, nodes: u64, seed: u64) -> Event {
        Event::Ingest {
            cluster: cluster.into(),
            spec: IngestSpec {
                source: IngestSource::GpcNodes(nodes),
                layout: LayoutKind::BlockBunch,
                p: None,
                seed: Some(seed),
                backend: BackendKind::Implicit,
                replace: false,
            },
        }
    }

    fn light_fault(cluster: &str, seed: u64) -> Event {
        Event::Fault {
            cluster: cluster.into(),
            fault: FaultSpec {
                seed,
                link_fail: 0.05,
                switch_fail: 0.0,
                node_drain: 0.0,
                core_drain: 0.0,
            },
        }
    }

    #[test]
    fn replayed_state_matches_directly_built_state() {
        // Build directly.
        let mut direct = ReplayState::default();
        direct.apply(1, &gpc_ingest("gpc", 2, 42)).unwrap();
        direct.apply(2, &light_fault("gpc", 7)).unwrap();
        // Persist as WAL, then replay from disk.
        let d = tmpdir("direct");
        let wal = d.join(WAL_FILE);
        let mut w = WalWriter::open_append(&wal).unwrap();
        w.append(1, 1, &gpc_ingest("gpc", 2, 42).encode()).unwrap();
        w.append(2, 2, &light_fault("gpc", 7).encode()).unwrap();
        let restored = restore_dir(&d, false).unwrap();
        assert!(!restored.snapshot_loaded);
        assert_eq!(restored.events_replayed, 2);
        assert_eq!(restored.tail, WalTail::Clean);
        assert_eq!(
            probe_suite(direct.clusters.get("gpc").unwrap()),
            probe_suite(restored.state.clusters.get("gpc").unwrap()),
        );
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn snapshot_plus_tail_equals_full_replay() {
        let d = tmpdir("tail");
        let wal = d.join(WAL_FILE);
        let mut w = WalWriter::open_append(&wal).unwrap();
        w.append(1, 1, &gpc_ingest("a", 2, 1).encode()).unwrap();
        w.append(2, 2, &gpc_ingest("b", 3, 2).encode()).unwrap();
        w.append(3, 3, &light_fault("a", 9).encode()).unwrap();
        // Snapshot reflecting events 1–2 only.
        let mut upto2 = ReplayState::default();
        upto2.apply(1, &gpc_ingest("a", 2, 1)).unwrap();
        upto2.apply(2, &gpc_ingest("b", 3, 2)).unwrap();
        let cores: Vec<_> = upto2
            .clusters
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        let snap = EngineSnapshot::capture(2, &cores).unwrap();
        write_atomic(&d, &snap).unwrap();
        // Boot: snapshot + replay of event 3 only.
        let restored = restore_dir(&d, true).unwrap();
        assert!(restored.snapshot_loaded);
        assert_eq!(restored.events_skipped, 2);
        assert_eq!(restored.events_replayed, 1);
        // Differential: full-log replay from genesis agrees on every probe.
        let mut genesis = ReplayState::default();
        for (records, _) in [read_wal(&wal).unwrap()] {
            for r in &records {
                genesis.apply(r.event_id, &r.event).unwrap();
            }
        }
        assert_eq!(
            genesis.clusters.keys().collect::<Vec<_>>(),
            restored.state.clusters.keys().collect::<Vec<_>>()
        );
        for (name, core) in &genesis.clusters {
            assert_eq!(
                probe_suite(core),
                probe_suite(restored.state.clusters.get(name).unwrap()),
                "probe divergence on {name}"
            );
        }
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn fault_on_unknown_cluster_is_typed() {
        let mut s = ReplayState::default();
        assert!(matches!(
            s.apply(1, &light_fault("nope", 1)),
            Err(ReplayError::Apply(_))
        ));
    }

    #[test]
    fn empty_dir_restores_empty_state() {
        let d = tmpdir("empty");
        let r = restore_dir(&d, true).unwrap();
        assert!(r.state.clusters.is_empty());
        assert_eq!(r.state.last_event_id, 0);
        assert!(!r.snapshot_loaded);
        let _ = std::fs::remove_dir_all(&d);
    }
}
