//! `tarr-replay` — inspect, verify, and differentially replay a
//! `tarr-serve` state directory.
//!
//! ```text
//! tarr-replay --state-dir DIR             # tolerant summary (default)
//! tarr-replay --state-dir DIR --verify    # strict: torn tail or corruption → exit 1
//! tarr-replay --state-dir DIR --diff      # snapshot-boot vs from-genesis replay
//! tarr-replay --state-dir DIR --dump      # print every log record
//! tarr-replay --check-snapshot FILE       # decode + restore a snapshot of any version
//! ```
//!
//! `--diff` is the determinism proof: it reconstructs engine state twice —
//! once the way a restarted daemon would (snapshot + log tail) and once
//! from the log alone, from genesis — and requires every cluster's
//! cache-transparent probe suite to match bit-for-bit. Exit status is the
//! contract: 0 = pass, 1 = mismatch/damage, 2 = usage error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use tarr_replay::{
    probe_suite, read_wal, restore_dir, EngineSnapshot, ReplayState, WalTail, SNAP_FILE, WAL_FILE,
};

struct Opts {
    state_dir: Option<PathBuf>,
    verify: bool,
    diff: bool,
    dump: bool,
    check_snapshot: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: tarr-replay --state-dir DIR [--verify|--diff|--dump]\n       tarr-replay --check-snapshot FILE"
    );
    std::process::exit(2);
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        state_dir: None,
        verify: false,
        diff: false,
        dump: false,
        check_snapshot: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--state-dir" => {
                opts.state_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())))
            }
            "--check-snapshot" => {
                opts.check_snapshot = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())))
            }
            "--verify" => opts.verify = true,
            "--diff" => opts.diff = true,
            "--dump" => opts.dump = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    if opts.state_dir.is_none() && opts.check_snapshot.is_none() {
        usage();
    }
    opts
}

fn describe_tail(tail: WalTail) -> String {
    match tail {
        WalTail::Clean => "clean".to_string(),
        WalTail::Torn { valid_len, dropped } => {
            format!("torn ({dropped} trailing bytes after offset {valid_len})")
        }
    }
}

fn check_snapshot(path: &Path) -> ExitCode {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("tarr-replay: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let version = if bytes.len() >= 12 {
        u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"))
    } else {
        0
    };
    let snap = match EngineSnapshot::decode(&bytes) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("tarr-replay: {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    println!(
        "snapshot {}: v{version}, last_event_id {}, {} cluster(s), {} meta key(s)",
        path.display(),
        snap.last_event_id,
        snap.clusters.len(),
        snap.meta.len()
    );
    for (name, cs) in &snap.clusters {
        match cs.restore() {
            Ok(core) => println!(
                "  {name}: {} ranks, {} cached mapping(s), {} schedule(s), {} price(s) — restores OK",
                core.size(),
                cs.state.mappings.len(),
                cs.state.scheds.len(),
                cs.state.prices.len()
            ),
            Err(e) => {
                eprintln!("  {name}: restore FAILED: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn run(opts: &Opts) -> Result<ExitCode, tarr_replay::ReplayError> {
    if let Some(path) = &opts.check_snapshot {
        return Ok(check_snapshot(path));
    }
    let dir = opts.state_dir.as_deref().expect("checked in parse_args");

    if opts.dump {
        let (records, tail) = read_wal(&dir.join(WAL_FILE))?;
        for r in &records {
            println!(
                "event {:>6}  req {:>6}  {:6}  {}",
                r.event_id,
                r.req_id,
                r.event.op(),
                r.event.cluster()
            );
        }
        println!("{} record(s), tail {}", records.len(), describe_tail(tail));
        return Ok(ExitCode::SUCCESS);
    }

    // Strict mode refuses to *recover*: the point of --verify is to fail
    // loudly on any damage, not to repair it.
    let restored = restore_dir(dir, false)?;
    println!(
        "state dir {}: snapshot {}, wal {} ({} replayed, {} skipped, tail {})",
        dir.display(),
        if restored.snapshot_loaded {
            format!("{} ({} bytes)", SNAP_FILE, restored.snapshot_bytes)
        } else {
            "absent".to_string()
        },
        WAL_FILE,
        restored.events_replayed,
        restored.events_skipped,
        describe_tail(restored.tail),
    );
    for (name, core) in &restored.state.clusters {
        println!(
            "  {name}: {} ranks on {} nodes",
            core.size(),
            core.cluster().num_nodes()
        );
    }

    if opts.verify {
        if let WalTail::Torn { .. } = restored.tail {
            eprintln!("tarr-replay: --verify: WAL tail is torn");
            return Ok(ExitCode::FAILURE);
        }
    }

    if opts.diff {
        if !restored.snapshot_loaded {
            println!("--diff: no snapshot present; snapshot-boot and genesis replay are trivially identical");
            return Ok(ExitCode::SUCCESS);
        }
        let (records, _) = read_wal(&dir.join(WAL_FILE))?;
        let mut genesis = ReplayState::default();
        let mut replayable = true;
        for r in &records {
            // A compacted log no longer reaches back to genesis: its
            // earliest record may fault a cluster only the snapshot knows.
            if let Err(e) = genesis.apply(r.event_id, &r.event) {
                println!("--diff: log alone cannot rebuild state ({e}); compacted log — skipping");
                replayable = false;
                break;
            }
        }
        if replayable {
            if genesis.clusters.len() != restored.state.clusters.len()
                || !genesis.clusters.keys().eq(restored.state.clusters.keys())
            {
                eprintln!("tarr-replay: --diff: cluster sets differ");
                return Ok(ExitCode::FAILURE);
            }
            for (name, core) in &genesis.clusters {
                let a = probe_suite(core);
                let b = probe_suite(restored.state.clusters.get(name).expect("same keys"));
                if a != b {
                    eprintln!("tarr-replay: --diff: probe divergence on cluster {name}");
                    for (x, y) in a.iter().zip(&b) {
                        if x != y {
                            eprintln!("  genesis : {x}");
                            eprintln!("  restored: {y}");
                        }
                    }
                    return Ok(ExitCode::FAILURE);
                }
                println!("  {name}: {} probes bit-identical", a.len());
            }
        }
    }

    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let opts = parse_args();
    match run(&opts) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("tarr-replay: {e}");
            ExitCode::FAILURE
        }
    }
}
