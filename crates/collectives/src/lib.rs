//! # tarr-collectives — collective algorithms as stage schedules
//!
//! Every algorithm the paper's evaluation exercises, generated as a
//! [`tarr_mpi::Schedule`]:
//!
//! * **Allgather**: recursive doubling, ring (with the §V-B in-place
//!   placement variant), Bruck (the paper's future-work extension), and the
//!   hierarchical three-phase composition (gather → leader exchange →
//!   broadcast) with linear or binomial intra-node phases;
//! * **Broadcast**: binomial tree, flat linear, scatter-allgather (the
//!   medium/large-message algorithm of Thakur et al. the paper cites);
//! * **Gather**: binomial tree, flat linear;
//! * **Allreduce** (future-work extension): recursive doubling and
//!   Rabenseifner's reduce-scatter + allgather.
//!
//! [`selection`] reproduces the MVAPICH-style algorithm choice (recursive
//! doubling below the 1 KiB eager threshold, ring above), and [`pattern`]
//! extracts the weighted process-topology graph a general-purpose mapper
//! (the paper's Scotch baseline) must build — an overhead the fine-tuned
//! heuristics avoid.
//!
//! ```
//! use tarr_collectives::allgather::recursive_doubling;
//! use tarr_mpi::FunctionalState;
//!
//! let sched = recursive_doubling(16);
//! assert_eq!(sched.stages.len(), 4);     // log2(16)
//! // Functionally execute it: every rank ends with all blocks in order.
//! let mut st = FunctionalState::init_allgather(16);
//! st.run(&sched).unwrap();
//! st.verify_allgather_identity().unwrap();
//! ```

pub mod allgather;
pub mod allreduce;
pub mod alltoall;
pub mod bcast;
pub mod gather;
pub mod pattern;
pub mod selection;

pub use allgather::{bruck, hierarchical, recursive_doubling, ring};
pub use allgather::{HierarchicalConfig, InterAlg, IntraPattern};
pub use pattern::{pattern_graph, pattern_graph_unweighted};
pub use selection::{select_allgather, AllgatherAlg, MVAPICH_RD_THRESHOLD};

/// `⌈log₂ p⌉` for `p ≥ 1`.
pub(crate) fn ceil_log2(p: u32) -> u32 {
    debug_assert!(p >= 1);
    32 - (p - 1).leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::ceil_log2;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(9), 4);
    }
}
