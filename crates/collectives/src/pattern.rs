//! Weighted process-topology (communication-pattern) graph extraction.
//!
//! A general-purpose mapper — the paper's Scotch baseline — consumes the
//! communication pattern as a weighted graph; building that graph is an
//! overhead the fine-tuned heuristics avoid because they derive the pattern
//! "in a closed-form fashion" from the algorithm itself (§V). This module
//! performs the build the general mapper is charged for.

use std::collections::HashMap;
use tarr_mpi::Schedule;

/// Undirected weighted communication graph over `p` ranks.
///
/// `adj[i]` lists `(j, bytes)` pairs with `i < j` edges stored on both
/// endpoints; weights accumulate the total bytes exchanged in both
/// directions across all stages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternGraph {
    /// Number of vertices (ranks).
    pub p: u32,
    /// Adjacency lists, sorted by neighbour.
    pub adj: Vec<Vec<(u32, u64)>>,
}

impl PatternGraph {
    /// Total weight of all edges.
    pub fn total_weight(&self) -> u64 {
        self.adj
            .iter()
            .flat_map(|n| n.iter())
            .map(|&(_, w)| w)
            .sum::<u64>()
            / 2
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(|n| n.len()).sum::<usize>() / 2
    }

    /// Weight between `a` and `b` (0 if not adjacent).
    pub fn weight(&self, a: u32, b: u32) -> u64 {
        self.adj[a as usize]
            .iter()
            .find(|&&(j, _)| j == b)
            .map(|&(_, w)| w)
            .unwrap_or(0)
    }
}

/// Build the **unweighted** pattern graph of a schedule: every communicating
/// pair gets weight 1, regardless of how much it exchanges. This is how a
/// user who skips edge weighting would feed a general mapper — stage volumes
/// (the information the paper's fine-tuned heuristics exploit) are lost,
/// which is decisive for recursive doubling where message sizes span three
/// orders of magnitude across stages.
pub fn pattern_graph_unweighted(schedule: &Schedule) -> PatternGraph {
    let mut g = pattern_graph(schedule, 0);
    for n in &mut g.adj {
        for (_, w) in n.iter_mut() {
            *w = 1;
        }
    }
    g
}

/// Build the weighted pattern graph of a schedule, resolving block payloads
/// with `block_bytes`.
pub fn pattern_graph(schedule: &Schedule, block_bytes: u64) -> PatternGraph {
    let p = schedule.p;
    let mut span = tarr_trace::span("collectives.pattern_graph").arg("p", p);
    let mut edges: HashMap<(u32, u32), u64> = HashMap::new();
    for stage in &schedule.stages {
        for op in &stage.ops {
            let (a, b) = if op.from.0 < op.to.0 {
                (op.from.0, op.to.0)
            } else {
                (op.to.0, op.from.0)
            };
            *edges.entry((a, b)).or_insert(0) += op.payload.bytes(block_bytes);
        }
    }
    let mut adj: Vec<Vec<(u32, u64)>> = vec![Vec::new(); p as usize];
    for (&(a, b), &w) in &edges {
        adj[a as usize].push((b, w));
        adj[b as usize].push((a, w));
    }
    for n in &mut adj {
        n.sort_unstable();
    }
    span.record("edges", edges.len());
    PatternGraph { p, adj }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allgather::{recursive_doubling, ring};

    #[test]
    fn ring_pattern_is_a_cycle() {
        let g = pattern_graph(&ring(8), 100);
        assert_eq!(g.num_edges(), 8);
        for i in 0..8u32 {
            // Each rank talks to exactly its two neighbours.
            assert_eq!(g.adj[i as usize].len(), 2);
            assert!(g.weight(i, (i + 1) % 8) > 0);
        }
        // Every edge carries 7 forwards of 100 bytes... in one direction.
        assert_eq!(g.weight(0, 1), 700);
    }

    #[test]
    fn rd_pattern_weights_follow_stage_volume() {
        let g = pattern_graph(&recursive_doubling(8), 1);
        // Stage 0 partner (XOR 1): 1 block each way = 2.
        assert_eq!(g.weight(0, 1), 2);
        // Stage 1 partner (XOR 2): 2 blocks each way = 4.
        assert_eq!(g.weight(0, 2), 4);
        // Stage 2 partner (XOR 4): 4 blocks each way = 8.
        assert_eq!(g.weight(0, 4), 8);
        // Non-partners are not adjacent.
        assert_eq!(g.weight(0, 3), 0);
    }

    #[test]
    fn total_weight_matches_schedule_bytes() {
        let sched = recursive_doubling(16);
        let g = pattern_graph(&sched, 10);
        assert_eq!(g.total_weight(), sched.total_bytes(10));
    }

    #[test]
    fn adjacency_is_symmetric() {
        let g = pattern_graph(&recursive_doubling(32), 3);
        for i in 0..32u32 {
            for &(j, w) in &g.adj[i as usize] {
                assert_eq!(g.weight(j, i), w);
            }
        }
    }
}
