//! Rabenseifner's allreduce: recursive-halving reduce-scatter followed by a
//! recursive-doubling allgather. Bandwidth-optimal for large vectors.

use tarr_mpi::{Schedule, SendOp, Stage};

/// Build Rabenseifner's allreduce schedule for a `vector_bytes`-byte vector.
///
/// Stage payloads use raw byte counts: the reduce-scatter halves the payload
/// every stage; the allgather doubles it back.
///
/// # Panics
/// Panics unless `p` is a power of two.
pub fn rabenseifner_allreduce(p: u32, vector_bytes: u64) -> Schedule {
    assert!(p.is_power_of_two(), "Rabenseifner needs a power-of-two p");
    let mut sched = Schedule::new(p);
    let log_p = p.trailing_zeros();

    // Reduce-scatter by recursive halving: stage s exchanges vector/2^(s+1)
    // with the partner at distance p/2^(s+1).
    for s in 0..log_p {
        let step = p >> (s + 1);
        let bytes = (vector_bytes >> (s + 1)).max(1);
        let mut ops = Vec::with_capacity(p as usize);
        for i in 0..p {
            ops.push(SendOp::raw(i, i ^ step, bytes));
        }
        sched.push(Stage::new(ops));
    }

    // Allgather by recursive doubling: stage s exchanges vector/2^(log_p - s)
    // with the partner at distance 2^s.
    for s in 0..log_p {
        let step = 1u32 << s;
        let bytes = (vector_bytes >> (log_p - s)).max(1);
        let mut ops = Vec::with_capacity(p as usize);
        for i in 0..p {
            ops.push(SendOp::raw(i, i ^ step, bytes));
        }
        sched.push(Stage::new(ops));
    }
    sched
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_structure() {
        let sched = rabenseifner_allreduce(8, 8192);
        assert_eq!(sched.stages.len(), 6); // 3 halving + 3 doubling
        sched.validate().unwrap();
        let sizes: Vec<u64> = sched
            .stages
            .iter()
            .map(|s| s.ops[0].payload.bytes(1))
            .collect();
        assert_eq!(sizes, vec![4096, 2048, 1024, 1024, 2048, 4096]);
    }

    #[test]
    fn moves_less_data_than_rd_for_large_vectors() {
        use super::super::rd_impl::rd_allreduce;
        let v = 1u64 << 20;
        let rab = rabenseifner_allreduce(16, v).total_bytes(1);
        let rd = rd_allreduce(16, v).total_bytes(1);
        assert!(rab < rd / 2, "rab {rab} rd {rd}");
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_rejected() {
        rabenseifner_allreduce(10, 64);
    }
}
