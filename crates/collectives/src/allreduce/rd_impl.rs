//! Recursive-doubling allreduce: every stage exchanges the **full** vector
//! with the XOR partner and reduces locally.

use tarr_mpi::{Schedule, SendOp, Stage};

/// Build the recursive-doubling allreduce schedule for a `vector_bytes`-byte
/// vector.
///
/// # Panics
/// Panics unless `p` is a power of two.
pub fn rd_allreduce(p: u32, vector_bytes: u64) -> Schedule {
    assert!(
        p.is_power_of_two(),
        "recursive doubling needs a power-of-two p"
    );
    let mut sched = Schedule::new(p);
    let mut s = 0u32;
    while (1u32 << s) < p {
        let step = 1u32 << s;
        let mut ops = Vec::with_capacity(p as usize);
        for i in 0..p {
            ops.push(SendOp::raw(i, i ^ step, vector_bytes));
        }
        sched.push(Stage::new(ops));
        s += 1;
    }
    sched
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_vector_every_stage() {
        let sched = rd_allreduce(8, 4096);
        assert_eq!(sched.stages.len(), 3);
        for stage in &sched.stages {
            assert_eq!(stage.ops.len(), 8);
            for op in &stage.ops {
                assert_eq!(op.payload.bytes(1), 4096);
            }
        }
        sched.validate().unwrap();
    }

    #[test]
    fn pattern_matches_allgather_rd() {
        use crate::allgather::recursive_doubling;
        let a = rd_allreduce(16, 1);
        let b = recursive_doubling(16);
        // Same (from, to) pairs stage by stage.
        for (sa, sb) in a.stages.iter().zip(&b.stages) {
            let pa: Vec<_> = sa.ops.iter().map(|o| (o.from, o.to)).collect();
            let pb: Vec<_> = sb.ops.iter().map(|o| (o.from, o.to)).collect();
            assert_eq!(pa, pb);
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_rejected() {
        rd_allreduce(12, 64);
    }
}
