//! Allreduce algorithms — the paper's future-work extension (§VII).
//!
//! Reduction contents are not tracked functionally (the framework verifies
//! allgather/broadcast semantics); these schedules exist for *timing*
//! studies: rank reordering applies to their communication patterns exactly
//! as to allgather (recursive-doubling allreduce shares RDMH's pattern;
//! Rabenseifner's allgather phase shares it too).

mod rabenseifner_impl;
mod rd_impl;

pub use rabenseifner_impl::rabenseifner_allreduce;
pub use rd_impl::rd_allreduce;
