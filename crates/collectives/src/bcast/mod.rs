//! Broadcast algorithms (final phase of the hierarchical allgather; also
//! `MPI_Bcast`, which the paper's BBMH heuristic covers).

mod binomial_impl;
mod linear_impl;
mod scatter_allgather_impl;

pub use binomial_impl::{binomial_bcast, binomial_children};
pub use linear_impl::linear_bcast;
pub use scatter_allgather_impl::{scatter_allgather_bcast, ScatterAllgatherInter};
