//! Binomial-tree broadcast.
//!
//! The halving binomial tree of §V-A.3: at stage `k` every rank that already
//! holds the payload sends it `p/2ᵏ⁺¹` ranks ahead. Message size is constant
//! across stages — the property that lets BBMH ignore message sizes and pick
//! a traversal order instead. The number of concurrent transmissions doubles
//! every stage, which is the rationale for BBMH's smaller-subtree-first
//! traversal (later stages are the contention-prone ones).

use crate::ceil_log2;
use tarr_mpi::{Schedule, SendOp, Stage};
use tarr_topo::Rank;

/// Build the binomial broadcast schedule: `bytes` from `root` to all ranks.
///
/// # Panics
/// Panics if `root ≥ p`.
pub fn binomial_bcast(p: u32, root: Rank, bytes: u64) -> Schedule {
    assert!(root.0 < p, "root out of range");
    let mut sched = Schedule::new(p);
    let levels = ceil_log2(p);
    for k in 0..levels {
        let step = 1u32 << (levels - 1 - k);
        let mut ops = Vec::new();
        let mut r = 0u32;
        while r + step < p {
            let from = (root.0 + r) % p;
            let to = (root.0 + r + step) % p;
            ops.push(SendOp::raw(from, to, bytes));
            r += 2 * step;
        }
        if !ops.is_empty() {
            sched.push(Stage::new(ops));
        }
    }
    sched
}

/// Children of relative rank `r` in the halving binomial tree over `p` ranks,
/// in the order the paper's Algorithm 4 enumerates them (`r + 1, r + 2,
/// r + 4, …` while the corresponding bit of `r` is clear).
///
/// Exposed so the BBMH mapping heuristic and the broadcast schedule are
/// provably talking about the same tree.
pub fn binomial_children(p: u32, r: u32) -> Vec<u32> {
    let mut children = Vec::new();
    let mut i = 1u32;
    while (r & i) == 0 && i < p {
        if r + i < p {
            children.push(r + i);
        }
        i <<= 1;
    }
    children
}

#[cfg(test)]
mod tests {
    use super::*;
    use tarr_mpi::FunctionalState;

    #[test]
    fn everyone_receives() {
        for p in 1u32..=20 {
            for root in [0, p / 2, p - 1] {
                let sched = binomial_bcast(p, Rank(root), 512);
                sched.validate().unwrap();
                let mut st = FunctionalState::init_raw(p as usize, Rank(root));
                st.run(&sched).unwrap();
                st.verify_bcast()
                    .unwrap_or_else(|e| panic!("p={p} root={root}: {e}"));
            }
        }
    }

    #[test]
    fn stage_count_is_ceil_log2() {
        assert_eq!(binomial_bcast(8, Rank(0), 1).stages.len(), 3);
        assert_eq!(binomial_bcast(9, Rank(0), 1).stages.len(), 4);
        assert_eq!(binomial_bcast(1, Rank(0), 1).stages.len(), 0);
    }

    #[test]
    fn transmissions_double_per_stage() {
        let sched = binomial_bcast(16, Rank(0), 1);
        let counts: Vec<usize> = sched.stages.iter().map(|s| s.ops.len()).collect();
        assert_eq!(counts, vec![1, 2, 4, 8]);
    }

    #[test]
    fn constant_message_size() {
        let sched = binomial_bcast(16, Rank(0), 4096);
        for stage in &sched.stages {
            for op in &stage.ops {
                assert_eq!(op.payload.bytes(999), 4096);
            }
        }
    }

    #[test]
    fn children_match_paper_rule() {
        // p = 8: 0 → {1, 2, 4}, 2 → {3}, 4 → {5, 6}, 6 → {7}, odd → {}.
        assert_eq!(binomial_children(8, 0), vec![1, 2, 4]);
        assert_eq!(binomial_children(8, 2), vec![3]);
        assert_eq!(binomial_children(8, 4), vec![5, 6]);
        assert_eq!(binomial_children(8, 6), vec![7]);
        assert!(binomial_children(8, 1).is_empty());
        assert!(binomial_children(8, 7).is_empty());
    }

    #[test]
    fn children_cover_tree_exactly_once() {
        for p in [4u32, 8, 16, 32] {
            let mut seen = vec![false; p as usize];
            seen[0] = true;
            let mut queue = vec![0u32];
            while let Some(r) = queue.pop() {
                for c in binomial_children(p, r) {
                    assert!(!seen[c as usize], "p={p}: {c} visited twice");
                    seen[c as usize] = true;
                    queue.push(c);
                }
            }
            assert!(seen.iter().all(|&x| x), "p={p}: tree incomplete");
        }
    }

    #[test]
    fn schedule_edges_equal_tree_edges() {
        // The stage schedule and the recursive children enumeration describe
        // the same tree.
        let p = 16u32;
        let sched = binomial_bcast(p, Rank(0), 1);
        let mut sched_edges: Vec<(u32, u32)> = sched
            .stages
            .iter()
            .flat_map(|s| s.ops.iter().map(|o| (o.from.0, o.to.0)))
            .collect();
        sched_edges.sort_unstable();
        let mut tree_edges: Vec<(u32, u32)> = (0..p)
            .flat_map(|r| binomial_children(p, r).into_iter().map(move |c| (r, c)))
            .collect();
        tree_edges.sort_unstable();
        assert_eq!(sched_edges, tree_edges);
    }
}
