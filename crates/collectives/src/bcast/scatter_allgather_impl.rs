//! Scatter-allgather broadcast (Thakur et al., cited by the paper as the
//! common medium/large-message `MPI_Bcast` algorithm).
//!
//! The message is cut into `p` chunks; a reverse-binomial scatter delivers
//! chunk `i` to rank `i`, then an allgather (recursive doubling or ring over
//! the chunks) reassembles the full message everywhere. The paper notes it
//! needs no dedicated mapping heuristic: the allgather phase is covered by
//! RDMH/RMH and the scatter phase by BGMH (a scatter is a time-reversed
//! gather).

use crate::allgather::{recursive_doubling, ring};
use crate::ceil_log2;
use tarr_mpi::{Payload, Schedule, SendOp, Stage};
use tarr_topo::Rank;

/// Allgather phase of the scatter-allgather broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScatterAllgatherInter {
    /// Recursive doubling (requires power-of-two `p`).
    RecursiveDoubling,
    /// Ring.
    Ring,
}

/// Build the scatter-allgather broadcast from rank 0.
///
/// Block `i` is the `i`-th chunk of the message (size = total/p, expressed
/// through the schedule's per-block size); rank 0 starts holding all chunks.
///
/// # Panics
/// Panics if `p` is not a power of two when recursive doubling is requested.
pub fn scatter_allgather_bcast(p: u32, inter: ScatterAllgatherInter) -> Schedule {
    let mut sched = Schedule::new(p);

    // Reverse-binomial scatter: holders pass the upper half of their chunk
    // range down the halving tree.
    let levels = ceil_log2(p);
    for k in 0..levels {
        let step = 1u32 << (levels - 1 - k);
        let mut ops = Vec::new();
        let mut r = 0u32;
        while r + step < p {
            let len = step.min(p - (r + step));
            ops.push(SendOp {
                from: Rank(r),
                to: Rank(r + step),
                payload: Payload::blocks(r + step, len),
            });
            r += 2 * step;
        }
        if !ops.is_empty() {
            sched.push(Stage::new(ops));
        }
    }

    let ag = match inter {
        ScatterAllgatherInter::RecursiveDoubling => recursive_doubling(p),
        ScatterAllgatherInter::Ring => ring(p),
    };
    sched.then(ag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tarr_mpi::FunctionalState;

    #[test]
    fn ring_variant_works_for_any_p() {
        for p in 1u32..=17 {
            let sched = scatter_allgather_bcast(p, ScatterAllgatherInter::Ring);
            sched.validate().unwrap();
            let mut st = FunctionalState::init_scatter_root(p as usize, Rank(0));
            st.run(&sched).unwrap();
            st.verify_allgather_identity()
                .unwrap_or_else(|e| panic!("p={p}: {e}"));
        }
    }

    #[test]
    fn rd_variant_works_for_powers_of_two() {
        for p in [1u32, 2, 4, 8, 16, 32] {
            let sched = scatter_allgather_bcast(p, ScatterAllgatherInter::RecursiveDoubling);
            sched.validate().unwrap();
            let mut st = FunctionalState::init_scatter_root(p as usize, Rank(0));
            st.run(&sched).unwrap();
            st.verify_allgather_identity()
                .unwrap_or_else(|e| panic!("p={p}: {e}"));
        }
    }

    #[test]
    fn scatter_phase_delivers_exactly_own_chunk() {
        // Run only the scatter stages: rank i must hold chunk i (and the
        // intermediate holders their subranges).
        let p = 8u32;
        let full = scatter_allgather_bcast(p, ScatterAllgatherInter::Ring);
        let scatter_stages = 3; // ceil_log2(8)
        let mut scatter = Schedule::new(p);
        for s in &full.stages[..scatter_stages] {
            scatter.push(s.clone());
        }
        let mut st = FunctionalState::init_scatter_root(p as usize, Rank(0));
        st.run(&scatter).unwrap();
        for i in 0..p {
            assert_eq!(
                st.buffer(Rank(i))[i as usize],
                Some(i),
                "rank {i} lacks its chunk"
            );
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rd_variant_rejects_non_power_of_two() {
        scatter_allgather_bcast(6, ScatterAllgatherInter::RecursiveDoubling);
    }
}
