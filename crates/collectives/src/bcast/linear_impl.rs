//! Flat (linear) broadcast: the root sends directly to every rank.

use tarr_mpi::{Schedule, SendOp, Stage};
use tarr_topo::Rank;

/// Build the linear broadcast schedule (single stage of `p − 1` sends from
/// the root).
///
/// # Panics
/// Panics if `root ≥ p`.
pub fn linear_bcast(p: u32, root: Rank, bytes: u64) -> Schedule {
    assert!(root.0 < p, "root out of range");
    let mut sched = Schedule::new(p);
    let mut ops = Vec::with_capacity(p as usize - 1);
    for i in 0..p {
        if i != root.0 {
            ops.push(SendOp::raw(root.0, i, bytes));
        }
    }
    if !ops.is_empty() {
        sched.push(Stage::new(ops));
    }
    sched
}

#[cfg(test)]
mod tests {
    use super::*;
    use tarr_mpi::FunctionalState;

    #[test]
    fn everyone_receives_in_one_stage() {
        for p in [1u32, 2, 9] {
            let sched = linear_bcast(p, Rank(0), 64);
            sched.validate().unwrap();
            assert!(sched.stages.len() <= 1);
            let mut st = FunctionalState::init_raw(p as usize, Rank(0));
            st.run(&sched).unwrap();
            st.verify_bcast().unwrap();
        }
    }

    #[test]
    fn all_sends_originate_at_root() {
        let sched = linear_bcast(5, Rank(2), 64);
        for op in &sched.stages[0].ops {
            assert_eq!(op.from, Rank(2));
        }
        assert_eq!(sched.stages[0].ops.len(), 4);
    }
}
