//! Gather algorithms (first phase of the hierarchical allgather; also
//! `MPI_Gather`, which the paper's BGMH heuristic covers).

mod binomial_impl;
mod chain_impl;
mod linear_impl;

pub use binomial_impl::binomial_gather;
pub use chain_impl::chain_gather;
pub use linear_impl::linear_gather;
