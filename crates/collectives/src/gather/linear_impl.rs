//! Flat (linear) gather: every rank sends its block directly to the root.
//!
//! The paper's hierarchical variants with a *linear* intra-node phase use
//! this pattern; there is deliberately no structure for a mapping heuristic
//! to exploit ("all the processes directly communicate with the root
//! process", §VI-A.2).

use tarr_mpi::{Payload, Schedule, SendOp, Stage};
use tarr_topo::Rank;

/// Build the linear gather schedule (single stage of `p − 1` direct sends).
///
/// # Panics
/// Panics if `root ≥ p`.
pub fn linear_gather(p: u32, root: Rank) -> Schedule {
    assert!(root.0 < p, "root out of range");
    let mut sched = Schedule::new(p);
    let mut ops = Vec::with_capacity(p as usize - 1);
    for i in 0..p {
        if i != root.0 {
            ops.push(SendOp {
                from: Rank(i),
                to: root,
                payload: Payload::blocks(i, 1),
            });
        }
    }
    if !ops.is_empty() {
        sched.push(Stage::new(ops));
    }
    sched
}

#[cfg(test)]
mod tests {
    use super::*;
    use tarr_mpi::FunctionalState;

    #[test]
    fn gathers_everything_in_one_stage() {
        for p in [1u32, 2, 7, 16] {
            let sched = linear_gather(p, Rank(0));
            sched.validate().unwrap();
            assert!(sched.stages.len() <= 1);
            let mut st = FunctionalState::init_allgather(p as usize);
            st.run(&sched).unwrap();
            let expected: Vec<u32> = (0..p).collect();
            st.verify_gather_at(Rank(0), &expected).unwrap();
        }
    }

    #[test]
    fn arbitrary_root() {
        let sched = linear_gather(6, Rank(4));
        let mut st = FunctionalState::init_allgather(6);
        st.run(&sched).unwrap();
        st.verify_gather_at(Rank(4), &[0, 1, 2, 3, 4, 5]).unwrap();
    }

    #[test]
    fn all_messages_target_root() {
        let sched = linear_gather(8, Rank(3));
        for op in &sched.stages[0].ops {
            assert_eq!(op.to, Rank(3));
            assert_ne!(op.from, Rank(3));
        }
        assert_eq!(sched.stages[0].ops.len(), 7);
    }
}
