//! Chain (store-and-forward ring) gather: blocks flow hop by hop towards
//! the root, each rank forwarding everything it has accumulated.
//!
//! The schedule is *deep and sparse* — `p − 1` single-message stages in
//! which every non-terminal rank appears exactly twice (once as receiver,
//! once as forwarder). That shape is the worst case for the full-reprice
//! refinement path (every proposal re-simulates all `p − 1` stages) and the
//! best case for the delta pricer (a swap touches at most four stages), so
//! it doubles as the refinement-throughput benchmark workload. It is also a
//! real algorithm: the chain is MPICH's long-message broadcast pipeline run
//! in reverse, without segmentation.

use tarr_mpi::{Payload, Schedule, SendOp, Stage};
use tarr_topo::Rank;

/// Build the chain gather schedule: relative rank `p − 1 − s` forwards its
/// accumulated suffix to relative rank `p − 2 − s` in stage `s`, so after
/// `p − 1` stages `root` holds every block in rank order.
///
/// # Panics
/// Panics if `root ≥ p`.
pub fn chain_gather(p: u32, root: Rank) -> Schedule {
    assert!(root.0 < p, "root out of range");
    let mut sched = Schedule::new(p);
    for s in 0..p.saturating_sub(1) {
        // Relative rank r holds the accumulated range [r, p) when it sends.
        let r = p - 1 - s;
        let from = (root.0 + r) % p;
        let to = (root.0 + r - 1) % p;
        sched.push(Stage::new(vec![SendOp {
            from: Rank(from),
            to: Rank(to),
            payload: Payload::blocks(from, p - r),
        }]));
    }
    sched
}

#[cfg(test)]
mod tests {
    use super::*;
    use tarr_mpi::FunctionalState;

    #[test]
    fn gathers_to_root_zero() {
        for p in 1u32..=16 {
            let sched = chain_gather(p, Rank(0));
            sched.validate().unwrap();
            assert_eq!(sched.stages.len(), p.saturating_sub(1) as usize);
            let mut st = FunctionalState::init_allgather(p as usize);
            st.run(&sched).unwrap();
            let expected: Vec<u32> = (0..p).collect();
            st.verify_gather_at(Rank(0), &expected)
                .unwrap_or_else(|e| panic!("p={p}: {e}"));
        }
    }

    #[test]
    fn gathers_to_nonzero_root() {
        for p in [5u32, 8, 12] {
            for root in 0..p {
                let sched = chain_gather(p, Rank(root));
                sched.validate().unwrap();
                let mut st = FunctionalState::init_allgather(p as usize);
                st.run(&sched).unwrap();
                let expected: Vec<u32> = (0..p).collect();
                st.verify_gather_at(Rank(root), &expected)
                    .unwrap_or_else(|e| panic!("p={p} root={root}: {e}"));
            }
        }
    }

    #[test]
    fn every_stage_is_one_growing_message() {
        let sched = chain_gather(8, Rank(0));
        for (s, stage) in sched.stages.iter().enumerate() {
            assert_eq!(stage.ops.len(), 1);
            assert_eq!(stage.ops[0].payload.bytes(1), s as u64 + 1);
        }
        let last = sched.stages.last().unwrap();
        assert_eq!(last.ops[0].from, Rank(1));
        assert_eq!(last.ops[0].to, Rank(0));
    }

    #[test]
    fn interior_ranks_touch_exactly_two_stages() {
        let sched = chain_gather(16, Rank(0));
        let mut appearances = [0u32; 16];
        for stage in &sched.stages {
            for op in &stage.ops {
                appearances[op.from.0 as usize] += 1;
                appearances[op.to.0 as usize] += 1;
            }
        }
        assert_eq!(appearances[0], 1);
        assert_eq!(appearances[15], 1);
        assert!(appearances[1..15].iter().all(|&n| n == 2));
    }

    #[test]
    #[should_panic(expected = "root out of range")]
    fn bad_root_rejected() {
        chain_gather(4, Rank(4));
    }
}
