//! Binomial-tree gather.
//!
//! The tree is the halving binomial tree of §V-A.4: the subtree of relative
//! rank `r` covers relative ranks `[r, r + 2ᵏ)`. Message size grows towards
//! the root — the property the paper's BGMH heuristic exploits by always
//! mapping the heaviest remaining edge first.

use crate::ceil_log2;
use tarr_mpi::{Payload, Schedule, SendOp, Stage};
use tarr_topo::Rank;

/// Build the binomial gather schedule: every rank's block ends up on `root`,
/// in rank order. Works for any `p ≥ 1` and any root.
///
/// # Panics
/// Panics if `root ≥ p`.
pub fn binomial_gather(p: u32, root: Rank) -> Schedule {
    assert!(root.0 < p, "root out of range");
    let mut sched = Schedule::new(p);
    let levels = ceil_log2(p);
    for k in 0..levels {
        let step = 1u32 << k;
        let mut ops = Vec::new();
        let mut r = step;
        while r < p {
            // Relative rank r sends its accumulated range [r, r+len) to
            // r - step.
            let len = step.min(p - r);
            let from = (root.0 + r) % p;
            let to = (root.0 + r - step) % p;
            ops.push(SendOp {
                from: Rank(from),
                to: Rank(to),
                payload: Payload::blocks(from, len),
            });
            r += 2 * step;
        }
        sched.push(Stage::new(ops));
    }
    sched
}

#[cfg(test)]
mod tests {
    use super::*;
    use tarr_mpi::FunctionalState;

    #[test]
    fn gathers_to_root_zero() {
        for p in 1u32..=20 {
            let sched = binomial_gather(p, Rank(0));
            sched.validate().unwrap();
            let mut st = FunctionalState::init_allgather(p as usize);
            st.run(&sched).unwrap();
            let expected: Vec<u32> = (0..p).collect();
            st.verify_gather_at(Rank(0), &expected)
                .unwrap_or_else(|e| panic!("p={p}: {e}"));
        }
    }

    #[test]
    fn gathers_to_nonzero_root() {
        for p in [5u32, 8, 12] {
            for root in 0..p {
                let sched = binomial_gather(p, Rank(root));
                sched.validate().unwrap();
                let mut st = FunctionalState::init_allgather(p as usize);
                st.run(&sched).unwrap();
                let expected: Vec<u32> = (0..p).collect();
                st.verify_gather_at(Rank(root), &expected)
                    .unwrap_or_else(|e| panic!("p={p} root={root}: {e}"));
            }
        }
    }

    #[test]
    fn stage_count_is_ceil_log2() {
        assert_eq!(binomial_gather(8, Rank(0)).stages.len(), 3);
        assert_eq!(binomial_gather(9, Rank(0)).stages.len(), 4);
        assert_eq!(binomial_gather(1, Rank(0)).stages.len(), 0);
    }

    #[test]
    fn message_sizes_grow_towards_root() {
        let sched = binomial_gather(16, Rank(0));
        let max_per_stage: Vec<u64> = sched
            .stages
            .iter()
            .map(|s| s.ops.iter().map(|o| o.payload.bytes(1)).max().unwrap())
            .collect();
        assert!(max_per_stage.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*max_per_stage.last().unwrap(), 8);
    }

    #[test]
    fn last_stage_is_single_heavy_edge() {
        let sched = binomial_gather(16, Rank(0));
        let last = sched.stages.last().unwrap();
        assert_eq!(last.ops.len(), 1);
        assert_eq!(last.ops[0].from, Rank(8));
        assert_eq!(last.ops[0].to, Rank(0));
    }

    #[test]
    #[should_panic(expected = "root out of range")]
    fn bad_root_rejected() {
        binomial_gather(4, Rank(4));
    }
}
