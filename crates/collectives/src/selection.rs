//! MVAPICH-style algorithm selection.
//!
//! The paper's baseline (MVAPICH2 2.1 on GPC) uses recursive doubling for
//! per-rank message sizes below 1 KiB and the ring above (§VI-A.1: "MVAPICH
//! uses recursive doubling in this range of message sizes", "MVAPICH uses the
//! ring algorithm in this range"). Non-power-of-two communicators fall back
//! to Bruck for small messages.

use crate::allgather::{bruck, recursive_doubling, ring};
use tarr_mpi::Schedule;

/// The library-internal switch point between recursive doubling and ring.
pub const MVAPICH_RD_THRESHOLD: u64 = 1024;

/// A non-hierarchical allgather algorithm choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllgatherAlg {
    /// Recursive doubling (power-of-two `p`, small messages).
    RecursiveDoubling,
    /// Ring (large messages).
    Ring,
    /// Bruck (non-power-of-two `p`, small messages).
    Bruck,
}

impl AllgatherAlg {
    /// Generate the schedule for `p` ranks.
    pub fn schedule(self, p: u32) -> Schedule {
        match self {
            AllgatherAlg::RecursiveDoubling => recursive_doubling(p),
            AllgatherAlg::Ring => ring(p),
            AllgatherAlg::Bruck => bruck(p),
        }
    }

    /// Short display name used by the harnesses.
    pub fn name(self) -> &'static str {
        match self {
            AllgatherAlg::RecursiveDoubling => "rd",
            AllgatherAlg::Ring => "ring",
            AllgatherAlg::Bruck => "bruck",
        }
    }
}

/// Choose the algorithm the way MVAPICH does, from the communicator size and
/// the per-rank message size.
pub fn select_allgather(p: u32, block_bytes: u64) -> AllgatherAlg {
    if block_bytes < MVAPICH_RD_THRESHOLD {
        if p.is_power_of_two() {
            AllgatherAlg::RecursiveDoubling
        } else {
            AllgatherAlg::Bruck
        }
    } else {
        AllgatherAlg::Ring
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_messages_use_rd_on_powers_of_two() {
        assert_eq!(select_allgather(4096, 512), AllgatherAlg::RecursiveDoubling);
        assert_eq!(
            select_allgather(4096, 1023),
            AllgatherAlg::RecursiveDoubling
        );
    }

    #[test]
    fn threshold_switches_to_ring() {
        assert_eq!(select_allgather(4096, 1024), AllgatherAlg::Ring);
        assert_eq!(select_allgather(4096, 1 << 18), AllgatherAlg::Ring);
    }

    #[test]
    fn non_power_of_two_small_uses_bruck() {
        assert_eq!(select_allgather(4095, 64), AllgatherAlg::Bruck);
        assert_eq!(select_allgather(4095, 4096), AllgatherAlg::Ring);
    }

    #[test]
    fn schedules_are_generated() {
        assert_eq!(AllgatherAlg::RecursiveDoubling.schedule(8).stages.len(), 3);
        assert_eq!(AllgatherAlg::Ring.schedule(8).stages.len(), 7);
        assert_eq!(AllgatherAlg::Bruck.schedule(6).stages.len(), 3);
    }
}
