//! Pairwise-exchange alltoall (related work context: the paper cites
//! Subramoni et al.'s alltoall scheduling as the network-aware treatment of
//! this pattern).
//!
//! Alltoall is the one major collective where **rank reordering cannot
//! help**: its communication graph is complete and uniform, so every
//! permutation of ranks produces the same traffic multiset. The test
//! `mapping_invariance` pins that fact — a useful negative result that
//! delimits the paper's technique (congestion *scheduling*, not mapping, is
//! the lever for alltoall).

use crate::ceil_log2;
use tarr_mpi::{Schedule, SendOp, Stage};

/// Build the pairwise-exchange alltoall schedule: `p − 1` stages; at stage
/// `s` rank `i` exchanges a personalized block with rank `i ⊕ s` (power-of-
/// two `p`) — the classic contention-balanced schedule.
///
/// Each op carries one `Raw` payload of `block_bytes` (the personalized
/// message for that peer).
///
/// # Panics
/// Panics unless `p` is a power of two.
pub fn pairwise_alltoall(p: u32, block_bytes: u64) -> Schedule {
    assert!(
        p.is_power_of_two(),
        "pairwise exchange needs a power-of-two p"
    );
    let mut sched = Schedule::new(p);
    for s in 1..p {
        let mut ops = Vec::with_capacity(p as usize);
        for i in 0..p {
            ops.push(SendOp::raw(i, i ^ s, block_bytes));
        }
        sched.push(Stage::new(ops));
    }
    sched
}

/// Bruck-style alltoall for small messages: `⌈log₂ p⌉` stages; stage `k`
/// sends all blocks whose destination's bit `k` (of `dst − src mod p`) is
/// set, to rank `i + 2ᵏ`. Moves more data (`p/2` blocks per stage) in
/// exchange for logarithmically few messages.
pub fn bruck_alltoall(p: u32, block_bytes: u64) -> Schedule {
    let mut sched = Schedule::new(p);
    let levels = ceil_log2(p);
    for k in 0..levels {
        let step = 1u32 << k;
        // Number of blocks with bit k set in their relative distance.
        let blocks: u64 = (0..p).filter(|d| d & step != 0).count() as u64;
        let mut ops = Vec::with_capacity(p as usize);
        for i in 0..p {
            ops.push(SendOp::raw(i, (i + step) % p, blocks * block_bytes));
        }
        sched.push(Stage::new(ops));
    }
    sched
}

#[cfg(test)]
mod tests {
    use super::*;
    use tarr_mpi::{time_schedule, Communicator};
    use tarr_netsim::{NetParams, StageModel};
    use tarr_topo::Cluster;

    #[test]
    fn pairwise_structure() {
        let sched = pairwise_alltoall(8, 100);
        assert_eq!(sched.stages.len(), 7);
        sched.validate().unwrap();
        for stage in &sched.stages {
            assert_eq!(stage.ops.len(), 8);
        }
        // Total traffic: every ordered pair exactly once.
        assert_eq!(sched.total_bytes(1), 8 * 7 * 100);
    }

    #[test]
    fn bruck_structure() {
        let sched = bruck_alltoall(8, 100);
        assert_eq!(sched.stages.len(), 3);
        sched.validate().unwrap();
        // Each stage moves p/2 blocks per rank.
        for stage in &sched.stages {
            for op in &stage.ops {
                assert_eq!(op.payload.bytes(1), 4 * 100);
            }
        }
    }

    /// The headline negative result: alltoall latency is invariant under
    /// rank permutations (complete uniform pattern ⇒ reordering cannot
    /// help), unlike every pattern the paper optimizes.
    #[test]
    fn mapping_invariance() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let cluster = Cluster::gpc(4);
        let comm = Communicator::new(cluster.cores().collect());
        let model = StageModel::new(&cluster, NetParams::default());
        let sched = pairwise_alltoall(32, 4096);
        let base = time_schedule(&sched, &comm, &model, 0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..5 {
            let mut m: Vec<u32> = (0..32).collect();
            m.shuffle(&mut rng);
            let t = time_schedule(&sched, &comm.reordered(&m), &model, 0);
            // Same multiset of stage traffic ⇒ same total (stages pair up
            // differently but the sum over the full exchange is identical
            // within a small factor; exact equality holds for the total
            // bytes, near-equality for the max-congestion sum).
            assert!(
                (t - base).abs() / base < 0.35,
                "alltoall should be ~mapping-invariant: {base} vs {t}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn pairwise_rejects_non_power_of_two() {
        pairwise_alltoall(6, 1);
    }
}
