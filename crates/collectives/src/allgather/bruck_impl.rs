//! Bruck allgather — the paper's future-work extension (§VII), and the
//! algorithm MPI libraries use for small messages at non-power-of-two sizes.
//!
//! `⌈log₂ p⌉` stages; at stage `k` rank `i` sends the first
//! `min(2ᵏ, p − 2ᵏ)` blocks of its accumulated run `{i, i+1, …}` to rank
//! `i − 2ᵏ (mod p)`. Blocks are stored at their absolute slots, so the final
//! local rotation of the classic formulation is unnecessary.

use tarr_mpi::{Schedule, SendOp, Stage};
use tarr_topo::Rank;

/// Build the Bruck allgather schedule for `p` ranks (any `p ≥ 1`).
pub fn bruck(p: u32) -> Schedule {
    let mut sched = Schedule::new(p);
    let mut k = 0u32;
    while (1u32 << k) < p {
        let step = 1u32 << k;
        let len = step.min(p - step);
        let mut ops = Vec::with_capacity(p as usize);
        for i in 0..p {
            let to = (i + p - step) % p;
            ops.push(SendOp {
                from: Rank(i),
                to: Rank(to),
                payload: tarr_mpi::Payload::blocks(i, len),
            });
        }
        sched.push(Stage::new(ops));
        k += 1;
    }
    sched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ceil_log2;
    use tarr_mpi::FunctionalState;

    #[test]
    fn stage_count_is_ceil_log2() {
        for p in [1u32, 2, 3, 5, 8, 12, 17, 64] {
            assert_eq!(bruck(p).stages.len() as u32, ceil_log2(p), "p={p}");
        }
    }

    #[test]
    fn correctness_for_any_p() {
        for p in 1u32..=33 {
            let sched = bruck(p);
            sched.validate().unwrap();
            let mut st = FunctionalState::init_allgather(p as usize);
            st.run(&sched).unwrap();
            st.verify_allgather_identity()
                .unwrap_or_else(|e| panic!("p={p}: {e}"));
        }
    }

    #[test]
    fn last_stage_is_clipped_for_non_power_of_two() {
        let sched = bruck(6);
        // Stages: step 1 (len 1), step 2 (len 2), step 4 (len 2 = 6-4).
        let lens: Vec<u64> = sched
            .stages
            .iter()
            .map(|s| s.ops[0].payload.bytes(1))
            .collect();
        assert_eq!(lens, vec![1, 2, 2]);
    }

    #[test]
    fn partners_decrease_by_powers_of_two() {
        let sched = bruck(8);
        for (k, stage) in sched.stages.iter().enumerate() {
            for op in &stage.ops {
                assert_eq!((op.from.0 + 8 - (1 << k)) % 8, op.to.0);
            }
        }
    }
}
