//! Recursive-doubling allgather (§II, Fig. 1 of the paper).
//!
//! `log₂ p` stages; at stage `s` rank `i` exchanges its accumulated window of
//! `2ˢ` blocks with rank `i ⊕ 2ˢ`. Message volume doubles every stage, which
//! is why the paper's RDMH heuristic prioritises the *last* stages when
//! placing ranks.

use tarr_mpi::{Schedule, SendOp, Stage};

/// Build the recursive-doubling allgather schedule for `p` ranks.
///
/// # Panics
/// Panics unless `p` is a power of two (the regime in which MPI libraries
/// use this algorithm, as the paper notes).
pub fn recursive_doubling(p: u32) -> Schedule {
    assert!(
        p.is_power_of_two(),
        "recursive doubling needs a power-of-two p"
    );
    let mut sched = Schedule::new(p);
    let mut s = 0u32;
    while (1u32 << s) < p {
        let step = 1u32 << s;
        let mut ops = Vec::with_capacity(p as usize);
        for i in 0..p {
            let partner = i ^ step;
            let start = (i >> s) << s;
            ops.push(SendOp::blocks(i, partner, start, step));
        }
        sched.push(Stage::new(ops));
        s += 1;
    }
    sched
}

#[cfg(test)]
mod tests {
    use super::*;
    use tarr_mpi::FunctionalState;

    #[test]
    fn stage_count_is_log2() {
        assert_eq!(recursive_doubling(1).stages.len(), 0);
        assert_eq!(recursive_doubling(8).stages.len(), 3);
        assert_eq!(recursive_doubling(64).stages.len(), 6);
    }

    #[test]
    fn correctness_for_powers_of_two() {
        for p in [1u32, 2, 4, 8, 16, 32, 128] {
            let sched = recursive_doubling(p);
            sched.validate().unwrap();
            let mut st = FunctionalState::init_allgather(p as usize);
            st.run(&sched).unwrap();
            st.verify_allgather_identity()
                .unwrap_or_else(|e| panic!("p={p}: {e}"));
        }
    }

    #[test]
    fn message_volume_doubles_per_stage() {
        let sched = recursive_doubling(16);
        for (s, stage) in sched.stages.iter().enumerate() {
            for op in &stage.ops {
                assert_eq!(op.payload.bytes(1), 1 << s);
            }
        }
    }

    #[test]
    fn partners_match_xor_pattern() {
        let sched = recursive_doubling(8);
        // Stage 2 (step 4): rank 0 exchanges with rank 4.
        let stage = &sched.stages[2];
        assert!(stage.ops.iter().any(|op| op.from.0 == 0 && op.to.0 == 4));
        assert!(stage.ops.iter().any(|op| op.from.0 == 4 && op.to.0 == 0));
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_rejected() {
        recursive_doubling(6);
    }
}
