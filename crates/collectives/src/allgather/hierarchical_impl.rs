//! Hierarchical (leader-based) allgather (§II).
//!
//! Three phases executed across node groups:
//!
//! 1. **gather** — every node's ranks gather their blocks onto the node
//!    leader (linear or binomial pattern);
//! 2. **leader exchange** — the leaders run an allgather (recursive doubling
//!    or ring) over the node-aggregated blocks;
//! 3. **broadcast** — each leader distributes the full vector to its node's
//!    ranks (linear or binomial pattern).
//!
//! Groups must be contiguous rank ranges — the regime in which MPI libraries
//! enable hierarchical collectives; the paper likewise notes "hierarchical
//! allgather is not supported with cyclic mapping".

use crate::ceil_log2;
use tarr_mpi::{Communicator, Payload, Schedule, SendOp, Stage};
use tarr_topo::{Cluster, Rank};

/// Intra-node gather/broadcast pattern (the `L`/`NL` suffixes of the paper's
/// Figs. 4 and 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntraPattern {
    /// All ranks talk directly to the leader.
    Linear,
    /// Binomial tree.
    Binomial,
}

/// Inter-leader allgather algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InterAlg {
    /// Recursive doubling (requires a power-of-two leader count).
    RecursiveDoubling,
    /// Ring.
    Ring,
}

/// Configuration of the hierarchical composition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HierarchicalConfig {
    /// Pattern of phases 1 and 3.
    pub intra: IntraPattern,
    /// Algorithm of phase 2.
    pub inter: InterAlg,
}

/// Derive contiguous `(start, len)` node groups from a communicator, or
/// `None` if any node's ranks are not a contiguous range (e.g. a cyclic
/// layout) — in which case hierarchical allgather is unsupported, as in the
/// paper.
pub fn groups_by_node(comm: &Communicator, cluster: &Cluster) -> Option<Vec<(u32, u32)>> {
    let mut groups: Vec<(u32, u32)> = Vec::new();
    let mut r = 0u32;
    let p = comm.size() as u32;
    while r < p {
        let node = cluster.node_of(comm.core_of(Rank(r)));
        let start = r;
        let mut len = 1u32;
        while r + len < p && cluster.node_of(comm.core_of(Rank(r + len))) == node {
            len += 1;
        }
        groups.push((start, len));
        r += len;
    }
    // Contiguity within the scan is by construction; reject if a node shows
    // up in two separate runs.
    let mut seen = std::collections::HashSet::new();
    for &(start, _) in &groups {
        let node = cluster.node_of(comm.core_of(Rank(start)));
        if !seen.insert(node) {
            return None;
        }
    }
    Some(groups)
}

/// Build the hierarchical allgather schedule.
///
/// `groups` are contiguous rank ranges `(start, len)`; the leader of each
/// group is its first rank.
///
/// # Panics
/// Panics if the groups do not partition `0..p` into contiguous ranges, or
/// if recursive doubling is requested with a non-power-of-two group count.
pub fn hierarchical(p: u32, groups: &[(u32, u32)], cfg: HierarchicalConfig) -> Schedule {
    // Validate the partition.
    let mut expect = 0u32;
    for &(start, len) in groups {
        assert_eq!(start, expect, "groups must be contiguous and ordered");
        assert!(len >= 1, "empty group");
        expect = start + len;
    }
    assert_eq!(expect, p, "groups must cover all ranks");

    let mut sched = Schedule::new(p);

    // ----- Phase 1: gather onto leaders -----
    match cfg.intra {
        IntraPattern::Linear => {
            let mut ops = Vec::new();
            for &(start, len) in groups {
                for j in 1..len {
                    ops.push(SendOp {
                        from: Rank(start + j),
                        to: Rank(start),
                        payload: Payload::blocks(start + j, 1),
                    });
                }
            }
            if !ops.is_empty() {
                sched.push(Stage::new(ops));
            }
        }
        IntraPattern::Binomial => {
            let levels = groups
                .iter()
                .map(|&(_, len)| ceil_log2(len))
                .max()
                .unwrap_or(0);
            for k in 0..levels {
                let step = 1u32 << k;
                let mut ops = Vec::new();
                for &(start, len) in groups {
                    let mut j = step;
                    while j < len {
                        let send_len = step.min(len - j);
                        ops.push(SendOp {
                            from: Rank(start + j),
                            to: Rank(start + j - step),
                            payload: Payload::blocks(start + j, send_len),
                        });
                        j += 2 * step;
                    }
                }
                if !ops.is_empty() {
                    sched.push(Stage::new(ops));
                }
            }
        }
    }

    // ----- Phase 2: leader exchange -----
    let g = groups.len() as u32;
    match cfg.inter {
        InterAlg::RecursiveDoubling => {
            assert!(
                g.is_power_of_two(),
                "recursive doubling needs a power-of-two leader count"
            );
            let mut s = 0u32;
            while (1u32 << s) < g {
                let step = 1u32 << s;
                let mut ops = Vec::new();
                for i in 0..g {
                    let partner = i ^ step;
                    let w0 = (i >> s) << s;
                    for w in w0..w0 + step {
                        let (gs, gl) = groups[w as usize];
                        ops.push(SendOp {
                            from: Rank(groups[i as usize].0),
                            to: Rank(groups[partner as usize].0),
                            payload: Payload::blocks(gs, gl),
                        });
                    }
                }
                sched.push(Stage::new(ops));
                s += 1;
            }
        }
        InterAlg::Ring => {
            for s in 1..g {
                let mut ops = Vec::new();
                for i in 0..g {
                    let w = (i + g - s + 1) % g;
                    let (gs, gl) = groups[w as usize];
                    ops.push(SendOp {
                        from: Rank(groups[i as usize].0),
                        to: Rank(groups[((i + 1) % g) as usize].0),
                        payload: Payload::blocks(gs, gl),
                    });
                }
                sched.push(Stage::new(ops));
            }
        }
    }

    // ----- Phase 3: broadcast the full vector inside each group -----
    match cfg.intra {
        IntraPattern::Linear => {
            let mut ops = Vec::new();
            for &(start, len) in groups {
                for j in 1..len {
                    ops.push(SendOp {
                        from: Rank(start),
                        to: Rank(start + j),
                        payload: Payload::blocks(0, p),
                    });
                }
            }
            if !ops.is_empty() {
                sched.push(Stage::new(ops));
            }
        }
        IntraPattern::Binomial => {
            let levels = groups
                .iter()
                .map(|&(_, len)| ceil_log2(len))
                .max()
                .unwrap_or(0);
            for k in 0..levels {
                let mut ops = Vec::new();
                for &(start, len) in groups {
                    let lv = ceil_log2(len);
                    // Align shorter groups to the *last* global stages so a
                    // group's own broadcast starts right after its leader has
                    // the data and uses consecutive stages.
                    if k < levels - lv {
                        continue;
                    }
                    let kk = k - (levels - lv);
                    let step = 1u32 << (lv - 1 - kk);
                    let mut r = 0u32;
                    while r + step < len {
                        ops.push(SendOp {
                            from: Rank(start + r),
                            to: Rank(start + r + step),
                            payload: Payload::blocks(0, p),
                        });
                        r += 2 * step;
                    }
                }
                if !ops.is_empty() {
                    sched.push(Stage::new(ops));
                }
            }
        }
    }

    sched
}

#[cfg(test)]
mod tests {
    use super::*;
    use tarr_mpi::FunctionalState;
    use tarr_topo::CoreId;

    fn uniform_groups(nodes: u32, per: u32) -> Vec<(u32, u32)> {
        (0..nodes).map(|n| (n * per, per)).collect()
    }

    fn check(p: u32, groups: &[(u32, u32)], cfg: HierarchicalConfig) {
        let sched = hierarchical(p, groups, cfg);
        sched.validate().unwrap();
        let mut st = FunctionalState::init_allgather(p as usize);
        st.run(&sched).unwrap();
        st.verify_allgather_identity()
            .unwrap_or_else(|e| panic!("p={p} cfg={cfg:?}: {e}"));
    }

    #[test]
    fn all_variants_are_correct() {
        for intra in [IntraPattern::Linear, IntraPattern::Binomial] {
            for inter in [InterAlg::RecursiveDoubling, InterAlg::Ring] {
                check(
                    32,
                    &uniform_groups(4, 8),
                    HierarchicalConfig { intra, inter },
                );
            }
        }
    }

    #[test]
    fn uneven_groups_with_ring() {
        let groups = vec![(0u32, 3u32), (3, 5), (8, 1), (9, 4)];
        check(
            13,
            &groups,
            HierarchicalConfig {
                intra: IntraPattern::Binomial,
                inter: InterAlg::Ring,
            },
        );
        check(
            13,
            &groups,
            HierarchicalConfig {
                intra: IntraPattern::Linear,
                inter: InterAlg::Ring,
            },
        );
    }

    #[test]
    fn single_group_degenerates_to_intra_only() {
        check(
            8,
            &[(0, 8)],
            HierarchicalConfig {
                intra: IntraPattern::Binomial,
                inter: InterAlg::Ring,
            },
        );
    }

    #[test]
    fn single_rank_groups_degenerate_to_flat() {
        check(
            8,
            &uniform_groups(8, 1),
            HierarchicalConfig {
                intra: IntraPattern::Linear,
                inter: InterAlg::RecursiveDoubling,
            },
        );
    }

    #[test]
    fn leader_exchange_only_involves_leaders() {
        let groups = uniform_groups(4, 8);
        let sched = hierarchical(
            32,
            &groups,
            HierarchicalConfig {
                intra: IntraPattern::Binomial,
                inter: InterAlg::Ring,
            },
        );
        let leaders: Vec<u32> = groups.iter().map(|&(s, _)| s).collect();
        // Phase 2 stages are those whose every op is leader-to-leader; there
        // must be exactly G−1 = 3 of them for the ring.
        let n_leader_stages = sched
            .stages
            .iter()
            .filter(|st| {
                st.ops
                    .iter()
                    .all(|op| leaders.contains(&op.from.0) && leaders.contains(&op.to.0))
                    && !st.ops.is_empty()
            })
            .count();
        assert!(n_leader_stages >= 3);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rd_leaders_must_be_power_of_two() {
        hierarchical(
            24,
            &uniform_groups(3, 8),
            HierarchicalConfig {
                intra: IntraPattern::Linear,
                inter: InterAlg::RecursiveDoubling,
            },
        );
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn non_contiguous_groups_rejected() {
        hierarchical(
            16,
            &[(8, 8), (0, 8)],
            HierarchicalConfig {
                intra: IntraPattern::Linear,
                inter: InterAlg::Ring,
            },
        );
    }

    #[test]
    fn groups_by_node_on_block_layout() {
        let cluster = Cluster::gpc(2);
        let comm = Communicator::new((0..16).map(CoreId::from_idx).collect());
        let groups = groups_by_node(&comm, &cluster).unwrap();
        assert_eq!(groups, vec![(0, 8), (8, 8)]);
    }

    #[test]
    fn groups_by_node_rejects_cyclic_layout() {
        let cluster = Cluster::gpc(2);
        // Ranks alternate between the two nodes.
        let cores: Vec<CoreId> = (0..8).flat_map(|i| [CoreId(i), CoreId(8 + i)]).collect();
        let comm = Communicator::new(cores);
        assert!(groups_by_node(&comm, &cluster).is_none());
    }
}
