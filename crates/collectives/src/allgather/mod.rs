//! Allgather algorithms.

mod bruck_impl;
mod hierarchical_impl;
mod rd_impl;
mod ring_impl;

pub use bruck_impl::bruck;
pub use hierarchical_impl::{
    groups_by_node, hierarchical, HierarchicalConfig, InterAlg, IntraPattern,
};
pub use rd_impl::recursive_doubling;
pub use ring_impl::{ring, ring_with_placement};
