//! Ring allgather (§II).
//!
//! `p − 1` stages; at stage `s` rank `i` forwards to rank `i + 1` the block
//! it received from rank `i − 1` in the previous stage (its own block at
//! stage 1). Every stage moves the same byte volume, and every rank talks to
//! one fixed neighbour — which is why the paper's RMH heuristic simply
//! chains consecutive ranks as close together as possible.

use tarr_mpi::{Payload, Schedule, SendOp, Stage};
use tarr_topo::Rank;

/// Build the ring allgather schedule for `p` ranks.
pub fn ring(p: u32) -> Schedule {
    ring_with_placement(p, None)
}

/// Ring allgather with an explicit block→slot placement.
///
/// `placement[b]` is the buffer slot where block `b` must be stored. This is
/// the paper's §V-B resolution for the reordered ring: incoming blocks are
/// stored directly at their correct final offset, so the reordered ring needs
/// neither the initial exchange nor the final shuffle. `None` is the identity
/// placement.
///
/// # Panics
/// Panics if `placement` is present and not a `p`-permutation.
pub fn ring_with_placement(p: u32, placement: Option<&[u32]>) -> Schedule {
    if let Some(pl) = placement {
        assert_eq!(pl.len(), p as usize, "placement length mismatch");
        let mut seen = vec![false; p as usize];
        for &s in pl {
            assert!(s < p && !seen[s as usize], "placement is not a permutation");
            seen[s as usize] = true;
        }
    }
    let slot = |b: u32| -> u32 {
        match placement {
            Some(pl) => pl[b as usize],
            None => b,
        }
    };

    let mut sched = Schedule::new(p);
    for s in 1..p {
        let mut ops = Vec::with_capacity(p as usize);
        for i in 0..p {
            // Block that rank i forwards at stage s.
            let b = (i + p - s + 1) % p;
            let to = (i + 1) % p;
            ops.push(SendOp {
                from: Rank(i),
                to: Rank(to),
                payload: Payload::Blocks {
                    src_slot: slot(b),
                    dst_slot: slot(b),
                    len: 1,
                },
            });
        }
        sched.push(Stage::new(ops));
    }
    sched
}

#[cfg(test)]
mod tests {
    use super::*;
    use tarr_mpi::FunctionalState;

    #[test]
    fn stage_count_is_p_minus_one() {
        assert_eq!(ring(1).stages.len(), 0);
        assert_eq!(ring(7).stages.len(), 6);
        assert_eq!(ring(16).stages.len(), 15);
    }

    #[test]
    fn correctness_for_any_p() {
        for p in [1u32, 2, 3, 5, 8, 13, 24] {
            let sched = ring(p);
            sched.validate().unwrap();
            let mut st = FunctionalState::init_allgather(p as usize);
            st.run(&sched).unwrap();
            st.verify_allgather_identity()
                .unwrap_or_else(|e| panic!("p={p}: {e}"));
        }
    }

    #[test]
    fn every_stage_moves_one_block_per_rank() {
        let sched = ring(9);
        for stage in &sched.stages {
            assert_eq!(stage.ops.len(), 9);
            for op in &stage.ops {
                assert_eq!(op.payload.bytes(7), 7);
                assert_eq!((op.from.0 + 1) % 9, op.to.0);
            }
        }
    }

    #[test]
    fn placement_stores_blocks_at_mapped_slots() {
        // Placement reverses the slots; rank r's own block r must start at
        // slot placement[r] and the run must deliver tag b to slot
        // placement[b] everywhere.
        let p = 6u32;
        let placement: Vec<u32> = (0..p).map(|b| (p - 1) - b).collect();
        let sched = ring_with_placement(p, Some(&placement));
        sched.validate().unwrap();
        let tags: Vec<u32> = (0..p).collect();
        let slots: Vec<u32> = (0..p as usize).map(|r| placement[r]).collect();
        let mut st = FunctionalState::init_allgather_with(p as usize, &tags, &slots);
        st.run(&sched).unwrap();
        // Expected: slot j holds the tag whose placement is j.
        let mut expected = vec![0u32; p as usize];
        for b in 0..p {
            expected[placement[b as usize] as usize] = b;
        }
        st.verify_allgather_tags(&expected).unwrap();
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn bad_placement_rejected() {
        ring_with_placement(4, Some(&[0, 0, 1, 2]));
    }
}
