//! Always-on RED metrics for the serving stack and their Prometheus
//! text-format exposition.
//!
//! Unlike the `serve.*` trace counters (gated on the tarr-trace recorder),
//! these live on plain atomics owned by the [`Engine`](crate::Engine) and
//! record unconditionally — an untraced production daemon still answers
//! the `metrics` op and the `--metrics` scrape with real numbers. Per op:
//! request and error counters plus two log2-bucket latency histograms,
//! queue-wait (admission → dispatch) and service (dispatch → reply). Per
//! cluster: request/error counters. Plus worker busy/configured and
//! queue-depth level gauges, mirrored into the `serve.workers.busy` /
//! `serve.queue.depth` trace gauges when the recorder is on.
//!
//! [`render_prometheus`](ServeMetrics::render_prometheus) writes the
//! standard text format (version 0.0.4) by hand — no client library, same
//! zero-dependency rule as the rest of the workspace: `# HELP`/`# TYPE`
//! headers, families in sorted order, histogram series with cumulative
//! log2 `le` buckets in seconds. [`check_prometheus`] is the matching
//! structural validator used by tests and the `serve-metrics-check` CI
//! binary.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, RwLock};
use std::time::Duration;

use tarr_trace::{bucket_bounds, HistSnapshot, Histogram};

/// The protocol ops metrics are broken down by, alphabetical so the
/// exposition is sorted by construction. Unknown/unparseable requests land
/// in `other`.
pub const OPS: [&str; 12] = [
    "compact", "debug", "fault", "ingest", "map", "metrics", "other", "price", "reorder",
    "shutdown", "snapshot", "stats",
];
const OTHER: usize = 6;

/// Per-connection protocol-error kinds (the `kind` label of
/// `tarr_serve_protocol_errors_total`), alphabetical so the exposition is
/// sorted by construction.
pub const PROTOCOL_ERROR_KINDS: [&str; 4] =
    ["bad_json", "bad_utf8", "idle_timeout", "line_too_long"];

/// Every family [`ServeMetrics::render_prometheus`] emits unconditionally
/// (per-cluster families only appear once a cluster has traffic, so they
/// are excluded). `serve-metrics-check` fails a scrape that is missing any
/// of these — a stale exposition breaks CI, not code review.
pub const REQUIRED_FAMILIES: [&str; 18] = [
    "tarr_serve_conn_rejected_total",
    "tarr_serve_connections",
    "tarr_serve_drain_seconds",
    "tarr_serve_errors_total",
    "tarr_serve_fsync_seconds",
    "tarr_serve_panics_total",
    "tarr_serve_protocol_errors_total",
    "tarr_serve_queue_depth",
    "tarr_serve_queue_wait_seconds",
    "tarr_serve_quota_rejected_total",
    "tarr_serve_requests_total",
    "tarr_serve_service_seconds",
    "tarr_serve_shed_total",
    "tarr_serve_snapshot_bytes",
    "tarr_serve_wal_bytes",
    "tarr_serve_wal_degraded",
    "tarr_serve_workers",
    "tarr_serve_workers_busy",
];

/// The `# TYPE`-declared families missing from a text exposition, out of
/// [`REQUIRED_FAMILIES`]. Empty = complete.
pub fn missing_families(text: &str) -> Vec<&'static str> {
    REQUIRED_FAMILIES
        .iter()
        .filter(|name| !text.contains(&format!("# TYPE {name} ")))
        .copied()
        .collect()
}

/// The index of `op` in [`OPS`] (`other` when unknown).
pub fn op_index(op: &str) -> usize {
    OPS.binary_search(&op).unwrap_or(OTHER)
}

struct OpMetrics {
    requests: AtomicU64,
    errors: AtomicU64,
    /// Admission → dispatch, ns.
    queue_wait: Histogram,
    /// Dispatch → reply, ns.
    service: Histogram,
}

impl OpMetrics {
    const fn new() -> Self {
        OpMetrics {
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            queue_wait: Histogram::new(),
            service: Histogram::new(),
        }
    }
}

#[derive(Default)]
struct ClusterMetrics {
    requests: AtomicU64,
    errors: AtomicU64,
}

/// Engine-owned RED metrics; see the module docs.
pub struct ServeMetrics {
    ops: [OpMetrics; OPS.len()],
    clusters: RwLock<BTreeMap<String, Arc<ClusterMetrics>>>,
    workers_busy: AtomicU64,
    workers: AtomicU64,
    queue_depth: AtomicU64,
    /// WAL append fdatasync latency, ns (persistence enabled only).
    fsync: Histogram,
    /// Current WAL file size in bytes (0 without persistence).
    wal_bytes: AtomicU64,
    /// Size of the last written/loaded snapshot in bytes (0 = none).
    snapshot_bytes: AtomicU64,
    /// Requests shed at admission because their deadline would be missed.
    shed: AtomicU64,
    /// Requests rejected by a per-client token-bucket quota.
    quota_rejected: AtomicU64,
    /// Connections refused at accept because the connection cap was hit.
    conn_rejected: AtomicU64,
    /// Live TCP connections being served.
    connections: AtomicU64,
    /// Per-kind protocol violations (see [`PROTOCOL_ERROR_KINDS`]).
    protocol_errors: [AtomicU64; PROTOCOL_ERROR_KINDS.len()],
    /// Request handlers that panicked (isolated into `internal_error`).
    panics: AtomicU64,
    /// Duration of the last graceful drain, f64 seconds as bits (0 = none).
    drain_seconds: AtomicU64,
    /// 1 while the WAL is refusing appends (last append failed), else 0.
    wal_degraded: AtomicU64,
    /// EWMA of per-request service time in ns (α = 1/8), the shedding
    /// estimator's cost model.
    ewma_service_ns: AtomicU64,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics {
            ops: [const { OpMetrics::new() }; OPS.len()],
            clusters: RwLock::new(BTreeMap::new()),
            workers_busy: AtomicU64::new(0),
            workers: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            fsync: Histogram::new(),
            wal_bytes: AtomicU64::new(0),
            snapshot_bytes: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            quota_rejected: AtomicU64::new(0),
            conn_rejected: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            protocol_errors: [const { AtomicU64::new(0) }; PROTOCOL_ERROR_KINDS.len()],
            panics: AtomicU64::new(0),
            drain_seconds: AtomicU64::new(0),
            wal_degraded: AtomicU64::new(0),
            ewma_service_ns: AtomicU64::new(0),
        }
    }
}

impl ServeMetrics {
    fn cluster(&self, name: &str) -> Arc<ClusterMetrics> {
        if let Some(c) = self.clusters.read().expect("metrics poisoned").get(name) {
            return c.clone();
        }
        self.clusters
            .write()
            .expect("metrics poisoned")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Count a dispatched request. Called at dispatch (not reply) so an
    /// in-flight `metrics` op is included in its own snapshot and the
    /// per-op totals always sum to the engine's `serve.request` total.
    pub(crate) fn begin(&self, op_idx: usize, cluster: Option<&str>) {
        self.ops[op_idx].requests.fetch_add(1, Relaxed);
        if let Some(name) = cluster {
            self.cluster(name).requests.fetch_add(1, Relaxed);
        }
    }

    /// Record a finished request's outcome and latency split.
    pub(crate) fn end(
        &self,
        op_idx: usize,
        cluster: Option<&str>,
        ok: bool,
        queue_wait: Duration,
        service: Duration,
    ) {
        let op = &self.ops[op_idx];
        if !ok {
            op.errors.fetch_add(1, Relaxed);
            if let Some(name) = cluster {
                self.cluster(name).errors.fetch_add(1, Relaxed);
            }
        }
        op.queue_wait.record_always(queue_wait.as_nanos() as u64);
        op.service.record_always(service.as_nanos() as u64);
        // EWMA with α = 1/8 on a relaxed load/store: races lose an update,
        // never corrupt the estimate — fine for an admission cost model.
        let sample = (service.as_nanos() as u64).max(1);
        let old = self.ewma_service_ns.load(Relaxed);
        let new = if old == 0 {
            sample
        } else {
            old - old / 8 + sample / 8
        };
        self.ewma_service_ns.store(new.max(1), Relaxed);
    }

    /// The shedding estimator's per-request cost in ns (≥ 1 once any
    /// request has completed; 0 on a fresh engine).
    pub fn estimated_service_ns(&self) -> u64 {
        self.ewma_service_ns.load(Relaxed)
    }

    /// Count a request shed at admission (deadline would be missed).
    pub(crate) fn add_shed(&self) {
        self.shed.fetch_add(1, Relaxed);
        tarr_trace::counter_add!("serve.shed", 1);
    }

    /// Count a request rejected by a client quota.
    pub(crate) fn add_quota_rejected(&self) {
        self.quota_rejected.fetch_add(1, Relaxed);
        tarr_trace::counter_add!("serve.quota_rejected", 1);
    }

    /// Count a connection refused at accept (connection cap).
    pub(crate) fn add_conn_rejected(&self) {
        self.conn_rejected.fetch_add(1, Relaxed);
        tarr_trace::counter_add!("serve.conn_rejected", 1);
    }

    /// A TCP connection opened (`true`) or closed (`false`).
    pub(crate) fn connection(&self, open: bool) {
        let now = if open {
            self.connections.fetch_add(1, Relaxed) + 1
        } else {
            self.connections.fetch_sub(1, Relaxed) - 1
        };
        tarr_trace::gauge("serve.connections").set(now as f64);
    }

    /// Count one protocol violation of `kind` (a [`PROTOCOL_ERROR_KINDS`]
    /// entry; anything else is ignored rather than panicking).
    pub(crate) fn add_protocol_error(&self, kind: &str) {
        if let Ok(i) = PROTOCOL_ERROR_KINDS.binary_search(&kind) {
            self.protocol_errors[i].fetch_add(1, Relaxed);
        }
        tarr_trace::counter_add!("serve.protocol_error", 1);
    }

    /// Count a request handler panic (isolated into `internal_error`).
    pub(crate) fn add_panic(&self) {
        self.panics.fetch_add(1, Relaxed);
        tarr_trace::counter_add!("serve.panic", 1);
    }

    /// Record the duration of a completed graceful drain.
    pub(crate) fn set_drain_seconds(&self, secs: f64) {
        self.drain_seconds.store(secs.to_bits(), Relaxed);
        tarr_trace::gauge("serve.drain_seconds").set(secs);
    }

    /// Flip the WAL-degraded gauge (1 = last append failed, mutations are
    /// being refused with `persist_io`; cleared by the next success).
    pub(crate) fn set_wal_degraded(&self, degraded: bool) {
        self.wal_degraded.store(u64::from(degraded), Relaxed);
        tarr_trace::gauge("serve.wal_degraded").set(f64::from(u8::from(degraded)));
    }

    /// Requests shed at admission so far.
    pub fn shed_total(&self) -> u64 {
        self.shed.load(Relaxed)
    }

    /// Quota rejections so far.
    pub fn quota_rejected_total(&self) -> u64 {
        self.quota_rejected.load(Relaxed)
    }

    /// Connection-cap rejections so far.
    pub fn conn_rejected_total(&self) -> u64 {
        self.conn_rejected.load(Relaxed)
    }

    /// Isolated handler panics so far.
    pub fn panics_total(&self) -> u64 {
        self.panics.load(Relaxed)
    }

    /// Whether the WAL is currently refusing appends.
    pub fn wal_degraded(&self) -> bool {
        self.wal_degraded.load(Relaxed) != 0
    }

    /// Duration of the last graceful drain in seconds (0 = none yet).
    pub fn drain_seconds(&self) -> f64 {
        f64::from_bits(self.drain_seconds.load(Relaxed))
    }

    /// A worker picked up (`true`) or finished (`false`) a request.
    pub(crate) fn worker_busy(&self, busy: bool) {
        let now = if busy {
            self.workers_busy.fetch_add(1, Relaxed) + 1
        } else {
            self.workers_busy.fetch_sub(1, Relaxed) - 1
        };
        tarr_trace::gauge("serve.workers.busy").set(now as f64);
    }

    /// Record the configured worker-pool size.
    pub(crate) fn set_workers(&self, n: u64) {
        self.workers.store(n, Relaxed);
    }

    /// Record the instantaneous admission-queue length.
    pub(crate) fn set_queue_depth(&self, n: u64) {
        self.queue_depth.store(n, Relaxed);
        tarr_trace::gauge("serve.queue.depth").set(n as f64);
    }

    /// Record one WAL-append fdatasync latency.
    pub(crate) fn record_fsync(&self, d: Duration) {
        self.fsync.record_always(d.as_nanos() as u64);
    }

    /// Record the WAL file size after an append/compact.
    pub(crate) fn set_wal_bytes(&self, bytes: u64) {
        self.wal_bytes.store(bytes, Relaxed);
    }

    /// Record the size of the last snapshot written (or loaded at boot).
    pub(crate) fn set_snapshot_bytes(&self, bytes: u64) {
        self.snapshot_bytes.store(bytes, Relaxed);
    }

    /// Snapshot of the WAL fsync-latency histogram (ns).
    pub fn fsync_snapshot(&self) -> HistSnapshot {
        self.fsync.snapshot()
    }

    /// Requests dispatched for `op` so far.
    pub fn op_requests(&self, op: &str) -> u64 {
        self.ops[op_index(op)].requests.load(Relaxed)
    }

    /// Sum of per-op request counters (equals the engine's request total).
    pub fn total_requests(&self) -> u64 {
        self.ops.iter().map(|o| o.requests.load(Relaxed)).sum()
    }

    /// Snapshot of `op`'s service-time histogram (ns).
    pub fn service_snapshot(&self, op: &str) -> HistSnapshot {
        self.ops[op_index(op)].service.snapshot()
    }

    /// Snapshot of `op`'s queue-wait histogram (ns).
    pub fn queue_wait_snapshot(&self, op: &str) -> HistSnapshot {
        self.ops[op_index(op)].queue_wait.snapshot()
    }

    /// Render the Prometheus text-format snapshot; see the module docs.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);
        let clusters: Vec<(String, u64, u64)> = self
            .clusters
            .read()
            .expect("metrics poisoned")
            .iter()
            .map(|(name, c)| {
                (
                    name.clone(),
                    c.requests.load(Relaxed),
                    c.errors.load(Relaxed),
                )
            })
            .collect();

        // Families in alphabetical order; per-op series in OPS order
        // (alphabetical); per-cluster series in BTreeMap (alphabetical)
        // order — the whole exposition is sorted by construction.
        out.push_str(
            "# HELP tarr_serve_cluster_errors_total Error replies by cluster.\n\
             # TYPE tarr_serve_cluster_errors_total counter\n",
        );
        for (name, _, errors) in &clusters {
            out.push_str(&format!(
                "tarr_serve_cluster_errors_total{{cluster=\"{name}\"}} {errors}\n"
            ));
        }
        out.push_str(
            "# HELP tarr_serve_cluster_requests_total Requests dispatched by cluster.\n\
             # TYPE tarr_serve_cluster_requests_total counter\n",
        );
        for (name, requests, _) in &clusters {
            out.push_str(&format!(
                "tarr_serve_cluster_requests_total{{cluster=\"{name}\"}} {requests}\n"
            ));
        }
        out.push_str(
            "# HELP tarr_serve_conn_rejected_total Connections refused at the connection cap.\n\
             # TYPE tarr_serve_conn_rejected_total counter\n",
        );
        out.push_str(&format!(
            "tarr_serve_conn_rejected_total {}\n",
            self.conn_rejected.load(Relaxed)
        ));
        out.push_str(
            "# HELP tarr_serve_connections Live TCP connections being served.\n\
             # TYPE tarr_serve_connections gauge\n",
        );
        out.push_str(&format!(
            "tarr_serve_connections {}\n",
            self.connections.load(Relaxed)
        ));
        out.push_str(
            "# HELP tarr_serve_drain_seconds Duration of the last graceful drain (0 = none).\n\
             # TYPE tarr_serve_drain_seconds gauge\n",
        );
        out.push_str(&format!(
            "tarr_serve_drain_seconds {}\n",
            fmt_f64(self.drain_seconds())
        ));
        out.push_str(
            "# HELP tarr_serve_errors_total Error replies by op.\n\
             # TYPE tarr_serve_errors_total counter\n",
        );
        for (i, op) in OPS.iter().enumerate() {
            out.push_str(&format!(
                "tarr_serve_errors_total{{op=\"{op}\"}} {}\n",
                self.ops[i].errors.load(Relaxed)
            ));
        }
        render_histogram_single(
            &mut out,
            "tarr_serve_fsync_seconds",
            "WAL append fdatasync latency (persistence enabled only).",
            self.fsync.snapshot(),
        );
        out.push_str(
            "# HELP tarr_serve_panics_total Request handlers that panicked (isolated).\n\
             # TYPE tarr_serve_panics_total counter\n",
        );
        out.push_str(&format!(
            "tarr_serve_panics_total {}\n",
            self.panics.load(Relaxed)
        ));
        out.push_str(
            "# HELP tarr_serve_protocol_errors_total Per-connection protocol violations by kind.\n\
             # TYPE tarr_serve_protocol_errors_total counter\n",
        );
        for (i, kind) in PROTOCOL_ERROR_KINDS.iter().enumerate() {
            out.push_str(&format!(
                "tarr_serve_protocol_errors_total{{kind=\"{kind}\"}} {}\n",
                self.protocol_errors[i].load(Relaxed)
            ));
        }
        out.push_str(
            "# HELP tarr_serve_queue_depth Requests waiting in the admission queue.\n\
             # TYPE tarr_serve_queue_depth gauge\n",
        );
        out.push_str(&format!(
            "tarr_serve_queue_depth {}\n",
            self.queue_depth.load(Relaxed)
        ));
        render_histogram_family(
            &mut out,
            "tarr_serve_queue_wait_seconds",
            "Admission-to-dispatch wait by op.",
            |i| self.ops[i].queue_wait.snapshot(),
        );
        out.push_str(
            "# HELP tarr_serve_quota_rejected_total Requests rejected by a client quota.\n\
             # TYPE tarr_serve_quota_rejected_total counter\n",
        );
        out.push_str(&format!(
            "tarr_serve_quota_rejected_total {}\n",
            self.quota_rejected.load(Relaxed)
        ));
        out.push_str(
            "# HELP tarr_serve_requests_total Requests dispatched by op.\n\
             # TYPE tarr_serve_requests_total counter\n",
        );
        for (i, op) in OPS.iter().enumerate() {
            out.push_str(&format!(
                "tarr_serve_requests_total{{op=\"{op}\"}} {}\n",
                self.ops[i].requests.load(Relaxed)
            ));
        }
        render_histogram_family(
            &mut out,
            "tarr_serve_service_seconds",
            "Dispatch-to-reply service time by op.",
            |i| self.ops[i].service.snapshot(),
        );
        out.push_str(
            "# HELP tarr_serve_shed_total Requests shed at admission (deadline would be missed).\n\
             # TYPE tarr_serve_shed_total counter\n",
        );
        out.push_str(&format!(
            "tarr_serve_shed_total {}\n",
            self.shed.load(Relaxed)
        ));
        out.push_str(
            "# HELP tarr_serve_snapshot_bytes Size of the last snapshot written or loaded.\n\
             # TYPE tarr_serve_snapshot_bytes gauge\n",
        );
        out.push_str(&format!(
            "tarr_serve_snapshot_bytes {}\n",
            self.snapshot_bytes.load(Relaxed)
        ));
        out.push_str(
            "# HELP tarr_serve_wal_bytes Current write-ahead-log file size.\n\
             # TYPE tarr_serve_wal_bytes gauge\n",
        );
        out.push_str(&format!(
            "tarr_serve_wal_bytes {}\n",
            self.wal_bytes.load(Relaxed)
        ));
        out.push_str(
            "# HELP tarr_serve_wal_degraded 1 while the WAL refuses appends (read-only mode).\n\
             # TYPE tarr_serve_wal_degraded gauge\n",
        );
        out.push_str(&format!(
            "tarr_serve_wal_degraded {}\n",
            self.wal_degraded.load(Relaxed)
        ));
        out.push_str(
            "# HELP tarr_serve_workers Configured worker-pool size.\n\
             # TYPE tarr_serve_workers gauge\n",
        );
        out.push_str(&format!(
            "tarr_serve_workers {}\n",
            self.workers.load(Relaxed)
        ));
        out.push_str(
            "# HELP tarr_serve_workers_busy Workers currently serving a request.\n\
             # TYPE tarr_serve_workers_busy gauge\n",
        );
        out.push_str(&format!(
            "tarr_serve_workers_busy {}\n",
            self.workers_busy.load(Relaxed)
        ));
        out
    }
}

/// Format a float the Prometheus text format accepts (plain decimal; the
/// default `Display` for f64 never emits exponents).
fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

fn render_histogram_family(
    out: &mut String,
    family: &str,
    help: &str,
    snap: impl Fn(usize) -> HistSnapshot,
) {
    out.push_str(&format!(
        "# HELP {family} {help}\n# TYPE {family} histogram\n"
    ));
    for (i, op) in OPS.iter().enumerate() {
        let h = snap(i);
        // Cumulative counts over the occupied range, upper bounds 2^k ns
        // rendered in seconds, then the mandatory +Inf bucket.
        let mut cum = 0u64;
        let mut iter = h.buckets.iter().peekable();
        let top = h.buckets.last().map_or(0, |&(k, _)| k);
        for k in 0..=top {
            if let Some(&&(bk, c)) = iter.peek() {
                if bk == k {
                    cum += c;
                    iter.next();
                }
            }
            let le = fmt_f64(bucket_bounds(k).1 as f64 / 1e9);
            out.push_str(&format!(
                "{family}_bucket{{op=\"{op}\",le=\"{le}\"}} {cum}\n"
            ));
        }
        out.push_str(&format!(
            "{family}_bucket{{op=\"{op}\",le=\"+Inf\"}} {}\n",
            h.count
        ));
        out.push_str(&format!("{family}_count{{op=\"{op}\"}} {}\n", h.count));
        out.push_str(&format!(
            "{family}_sum{{op=\"{op}\"}} {}\n",
            fmt_f64(h.sum as f64 / 1e9)
        ));
    }
}

/// Render a one-series (unlabelled) histogram family, same bucket scheme
/// as [`render_histogram_family`].
fn render_histogram_single(out: &mut String, family: &str, help: &str, h: HistSnapshot) {
    out.push_str(&format!(
        "# HELP {family} {help}\n# TYPE {family} histogram\n"
    ));
    let mut cum = 0u64;
    let mut iter = h.buckets.iter().peekable();
    let top = h.buckets.last().map_or(0, |&(k, _)| k);
    for k in 0..=top {
        if let Some(&&(bk, c)) = iter.peek() {
            if bk == k {
                cum += c;
                iter.next();
            }
        }
        let le = fmt_f64(bucket_bounds(k).1 as f64 / 1e9);
        out.push_str(&format!("{family}_bucket{{le=\"{le}\"}} {cum}\n"));
    }
    out.push_str(&format!("{family}_bucket{{le=\"+Inf\"}} {}\n", h.count));
    out.push_str(&format!("{family}_count {}\n", h.count));
    out.push_str(&format!("{family}_sum {}\n", fmt_f64(h.sum as f64 / 1e9)));
}

/// What [`check_prometheus`] saw in a valid exposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PromReport {
    /// Metric families declared with `# TYPE`.
    pub families: usize,
    /// Total series lines.
    pub series: usize,
    /// Sum of `tarr_serve_requests_total` across ops.
    pub requests_total: u64,
}

/// Structurally validate a Prometheus text exposition: every line is a
/// comment or `name{labels} value`; every series belongs to a `# TYPE`d
/// family; families appear in sorted order; series are unique; histogram
/// buckets are cumulative with ascending `le` ending at `+Inf`, and
/// `_count` matches the `+Inf` bucket. Returns the per-op request total
/// so callers can pin it against an expected request count.
pub fn check_prometheus(text: &str) -> Result<PromReport, String> {
    let mut families: Vec<(String, String)> = Vec::new(); // (name, type)
    let mut seen_series: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    // (family, labels-without-le) → [(le, cumulative count)]
    let mut hist_buckets: BTreeMap<(String, String), Vec<(f64, f64)>> = BTreeMap::new();
    let mut hist_counts: BTreeMap<(String, String), f64> = BTreeMap::new();
    let mut hist_sums: std::collections::BTreeSet<(String, String)> =
        std::collections::BTreeSet::new();
    let mut series = 0usize;
    let mut requests_total = 0u64;

    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts
                .next()
                .ok_or_else(|| format!("line {line_no}: TYPE without a name"))?;
            let kind = parts
                .next()
                .ok_or_else(|| format!("line {line_no}: TYPE without a kind"))?;
            if let Some((last, _)) = families.last() {
                if name <= last.as_str() {
                    return Err(format!(
                        "line {line_no}: family \"{name}\" out of order after \"{last}\""
                    ));
                }
            }
            families.push((name.to_string(), kind.to_string()));
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (series_name, labels, value) = parse_series_line(line, line_no)?;
        series += 1;
        let key = format!("{series_name}{{{labels}}}");
        if !seen_series.insert(key.clone()) {
            return Err(format!("line {line_no}: duplicate series {key}"));
        }
        let (family, kind) = families
            .iter()
            .rev()
            .find(|(f, k)| {
                if k == "histogram" {
                    series_name == format!("{f}_bucket")
                        || series_name == format!("{f}_count")
                        || series_name == format!("{f}_sum")
                } else {
                    &series_name == f
                }
            })
            .ok_or_else(|| format!("line {line_no}: series {series_name} has no TYPE family"))?;
        match kind.as_str() {
            "counter" | "gauge" => {
                if kind == "counter" && value < 0.0 {
                    return Err(format!("line {line_no}: negative counter"));
                }
                if family == "tarr_serve_requests_total" {
                    requests_total += value as u64;
                }
            }
            "histogram" => {
                let (le, rest_labels) = split_le(&labels);
                let hist_key = (family.clone(), rest_labels);
                if series_name.ends_with("_bucket") {
                    let le = le.ok_or_else(|| {
                        format!("line {line_no}: histogram bucket without \"le\"")
                    })?;
                    let le_val = if le == "+Inf" {
                        f64::INFINITY
                    } else {
                        le.parse::<f64>()
                            .map_err(|e| format!("line {line_no}: bad le \"{le}\": {e}"))?
                    };
                    hist_buckets
                        .entry(hist_key)
                        .or_default()
                        .push((le_val, value));
                } else if series_name.ends_with("_count") {
                    hist_counts.insert(hist_key, value);
                } else {
                    hist_sums.insert(hist_key);
                }
            }
            other => return Err(format!("line {line_no}: unknown family type \"{other}\"")),
        }
    }

    for ((family, labels), buckets) in &hist_buckets {
        for w in buckets.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(format!(
                    "{family}{{{labels}}}: le not ascending ({} then {})",
                    w[0].0, w[1].0
                ));
            }
            if w[1].1 < w[0].1 {
                return Err(format!(
                    "{family}{{{labels}}}: buckets not cumulative ({} then {})",
                    w[0].1, w[1].1
                ));
            }
        }
        let last = buckets.last().expect("nonempty bucket list");
        if last.0 != f64::INFINITY {
            return Err(format!("{family}{{{labels}}}: no +Inf bucket"));
        }
        match hist_counts.get(&(family.clone(), labels.clone())) {
            Some(&count) if count == last.1 => {}
            Some(&count) => {
                return Err(format!(
                    "{family}{{{labels}}}: _count {count} != +Inf bucket {}",
                    last.1
                ))
            }
            None => return Err(format!("{family}{{{labels}}}: missing _count")),
        }
        if !hist_sums.contains(&(family.clone(), labels.clone())) {
            return Err(format!("{family}{{{labels}}}: missing _sum"));
        }
    }

    Ok(PromReport {
        families: families.len(),
        series,
        requests_total,
    })
}

/// Split a series line into (name, label body, value).
fn parse_series_line(line: &str, line_no: usize) -> Result<(String, String, f64), String> {
    let (head, value) = line
        .rsplit_once(' ')
        .ok_or_else(|| format!("line {line_no}: no value on series line"))?;
    let value: f64 = value
        .parse()
        .map_err(|e| format!("line {line_no}: bad value: {e}"))?;
    let (name, labels) = match head.split_once('{') {
        None => (head, ""),
        Some((name, rest)) => (
            name,
            rest.strip_suffix('}')
                .ok_or_else(|| format!("line {line_no}: unclosed label set"))?,
        ),
    };
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    {
        return Err(format!("line {line_no}: bad metric name \"{name}\""));
    }
    Ok((name.to_string(), labels.to_string(), value))
}

/// Pull the `le` label out of a label body, returning (le, rest).
fn split_le(labels: &str) -> (Option<String>, String) {
    let mut le = None;
    let rest: Vec<&str> = labels
        .split(',')
        .filter(|part| {
            if let Some(v) = part.strip_prefix("le=\"") {
                le = Some(v.trim_end_matches('"').to_string());
                false
            } else {
                !part.is_empty()
            }
        })
        .collect();
    (le, rest.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_index_maps_known_and_unknown() {
        assert_eq!(OPS[op_index("price")], "price");
        assert_eq!(OPS[op_index("ingest")], "ingest");
        assert_eq!(OPS[op_index("frobnicate")], "other");
        assert_eq!(OPS[OTHER], "other");
        let mut sorted = OPS;
        sorted.sort_unstable();
        assert_eq!(sorted, OPS, "OPS must stay alphabetical (binary_search)");
    }

    #[test]
    fn empty_metrics_render_and_check() {
        let m = ServeMetrics::default();
        let text = m.render_prometheus();
        let r = check_prometheus(&text).unwrap();
        assert_eq!(r.requests_total, 0);
        assert!(r.families >= 7, "{r:?}");
    }

    #[test]
    fn recorded_requests_round_trip_through_the_exposition() {
        let m = ServeMetrics::default();
        for _ in 0..3 {
            m.begin(op_index("price"), Some("gpc"));
            m.end(
                op_index("price"),
                Some("gpc"),
                true,
                Duration::from_micros(5),
                Duration::from_millis(2),
            );
        }
        m.begin(op_index("map"), Some("gpc"));
        m.end(
            op_index("map"),
            Some("gpc"),
            false,
            Duration::ZERO,
            Duration::from_micros(80),
        );
        m.set_workers(4);
        let text = m.render_prometheus();
        let r = check_prometheus(&text).unwrap();
        assert_eq!(r.requests_total, 4);
        assert!(text.contains(r#"tarr_serve_requests_total{op="price"} 3"#));
        assert!(text.contains(r#"tarr_serve_errors_total{op="map"} 1"#));
        assert!(text.contains(r#"tarr_serve_cluster_requests_total{cluster="gpc"} 4"#));
        assert!(text.contains(r#"tarr_serve_cluster_errors_total{cluster="gpc"} 1"#));
        assert!(text.contains("tarr_serve_workers 4"));
        assert!(text.contains(r#"tarr_serve_service_seconds_count{op="price"} 3"#));
        let (p50, p95, p99) = m.service_snapshot("price").percentiles();
        assert!(
            p50 >= 1_000_000 && p50 <= p95 && p95 <= p99,
            "{p50} {p95} {p99}"
        );
    }

    #[test]
    fn overload_metrics_render_and_are_required() {
        let m = ServeMetrics::default();
        let text = m.render_prometheus();
        assert!(
            missing_families(&text).is_empty(),
            "fresh exposition must carry every required family: missing {:?}",
            missing_families(&text)
        );
        m.add_shed();
        m.add_quota_rejected();
        m.add_conn_rejected();
        m.connection(true);
        m.add_protocol_error("line_too_long");
        m.add_protocol_error("bad_utf8");
        m.add_protocol_error("not_a_kind"); // ignored, no panic
        m.add_panic();
        m.set_drain_seconds(0.25);
        m.set_wal_degraded(true);
        let text = m.render_prometheus();
        check_prometheus(&text).unwrap();
        assert!(text.contains("tarr_serve_shed_total 1"));
        assert!(text.contains("tarr_serve_quota_rejected_total 1"));
        assert!(text.contains("tarr_serve_conn_rejected_total 1"));
        assert!(text.contains("tarr_serve_connections 1"));
        assert!(text.contains(r#"tarr_serve_protocol_errors_total{kind="line_too_long"} 1"#));
        assert!(text.contains(r#"tarr_serve_protocol_errors_total{kind="bad_utf8"} 1"#));
        assert!(text.contains(r#"tarr_serve_protocol_errors_total{kind="bad_json"} 0"#));
        assert!(text.contains("tarr_serve_panics_total 1"));
        assert!(text.contains("tarr_serve_drain_seconds 0.25"));
        assert!(text.contains("tarr_serve_wal_degraded 1"));
        m.set_wal_degraded(false);
        assert!(!m.wal_degraded());
        // A truncated exposition is caught by the family check.
        let cut = text.replace("# TYPE tarr_serve_shed_total counter\n", "");
        assert_eq!(missing_families(&cut), vec!["tarr_serve_shed_total"]);
    }

    #[test]
    fn ewma_tracks_service_time() {
        let m = ServeMetrics::default();
        assert_eq!(m.estimated_service_ns(), 0);
        m.end(
            op_index("map"),
            None,
            true,
            Duration::ZERO,
            Duration::from_micros(100),
        );
        assert_eq!(m.estimated_service_ns(), 100_000);
        m.end(
            op_index("map"),
            None,
            true,
            Duration::ZERO,
            Duration::from_micros(900),
        );
        // 100_000 - 12_500 + 112_500 = 200_000
        assert_eq!(m.estimated_service_ns(), 200_000);
    }

    #[test]
    fn protocol_error_kinds_stay_sorted() {
        let mut sorted = PROTOCOL_ERROR_KINDS;
        sorted.sort_unstable();
        assert_eq!(sorted, PROTOCOL_ERROR_KINDS, "kinds use binary_search");
    }

    #[test]
    fn persistence_metrics_render() {
        let m = ServeMetrics::default();
        m.record_fsync(Duration::from_micros(120));
        m.set_wal_bytes(4096);
        m.set_snapshot_bytes(1 << 20);
        let text = m.render_prometheus();
        check_prometheus(&text).unwrap();
        assert!(text.contains("tarr_serve_wal_bytes 4096"));
        assert!(text.contains("tarr_serve_snapshot_bytes 1048576"));
        assert!(text.contains("tarr_serve_fsync_seconds_count 1"));
        assert_eq!(m.fsync_snapshot().count, 1);
    }

    #[test]
    fn checker_rejects_broken_expositions() {
        for (text, needle) in [
            ("tarr_no_family 1\n", "no TYPE family"),
            (
                "# TYPE b counter\n# TYPE a counter\na 1\nb 1\n",
                "out of order",
            ),
            ("# TYPE a counter\na 1\na 1\n", "duplicate"),
            (
                "# TYPE h histogram\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 1\n\
                 h_count 1\nh_sum 1\n",
                "not cumulative",
            ),
            (
                "# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_count 1\nh_sum 1\n",
                "no +Inf",
            ),
            (
                "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_count 1\nh_sum 1\n",
                "_count",
            ),
            ("# TYPE a counter\na nope\n", "bad value"),
        ] {
            let err = check_prometheus(text).unwrap_err();
            assert!(err.contains(needle), "{text:?} -> {err}");
        }
    }
}
