//! # tarr-serve — the topology-aware mapping service
//!
//! A long-running daemon over the shared-core session layer
//! ([`tarr_core::SessionCore`]): it holds many ingested clusters, answers
//! map / reorder / price / fault requests over a line-oriented JSON
//! protocol (stdin/stdout, or TCP with `--tcp`), and serves them
//! concurrently — N identical requests against one cluster share one
//! compute through the core's coalescing caches, and reply order always
//! equals request order regardless of worker count.
//!
//! ```text
//! $ tarr-serve --workers 8
//! {"id":1,"op":"ingest","cluster":"gpc","snapshot_path":"/tmp/gpc.snap"}
//! {"id":1,"ok":true,"op":"ingest","cluster":"gpc","ranks":64,"nodes":8,"cores":64}
//! {"id":2,"op":"price","cluster":"gpc","collective":"allgather","msg_bytes":65536,"mapper":"hrstc"}
//! {"id":2,"ok":true,"op":"price","seconds":0.000123}
//! ```
//!
//! Layering: [`protocol`] is the wire format (requests, replies, the JSON
//! writer over [`tarr_trace::json`]), [`engine`] is the op dispatcher over
//! the cluster map, [`server`] is the admission queue + worker pool +
//! ordered-output stage, [`metrics`] is the always-on RED metrics store
//! and its Prometheus text exposition (scraped via `--metrics` or the
//! `metrics` op).
//!
//! Observability: every admitted request gets a monotonic id, carried as
//! the `req_id` arg on every span it opens (request-scoped tracing via
//! [`tarr_trace::request_scope`]), so one `--trace-out` JSONL export
//! reconstructs each request's full span tree — `trace-analyze` does it
//! offline.

pub mod engine;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod shutdown;

pub use engine::{BootReport, Engine, EngineStats};
pub use metrics::{
    check_prometheus, missing_families, PromReport, ServeMetrics, PROTOCOL_ERROR_KINDS,
    REQUIRED_FAMILIES,
};
pub use server::{serve_lines, serve_metrics, serve_tcp, QuotaCfg, ServeOpts};
pub use shutdown::{install_sigterm, term_flag};
