//! The wire protocol: line-oriented JSON, one request object in, one reply
//! object out, reply order always matching request order.
//!
//! Requests are JSON objects with an `"op"` discriminant; every other field
//! is op-specific. Replies echo the request's `"id"` (when present) and
//! carry `"ok": true` plus result fields, or `"ok": false` plus `"error"`.
//! Reply contents are **deterministic** — pure functions of the daemon's
//! ingested state and the request — so a scripted session can be diffed
//! against a golden fixture regardless of worker count (no wall-clock
//! durations, no cache-luck flags ever appear in a reply). The exceptions
//! are the two observability ops:
//!
//! - `stats` — engine-global request/error/coalesce totals plus
//!   `cluster_caches`, a per-cluster hit/miss/coalesced breakdown of each
//!   shared-core cache (mapping/comm/sched/price). Which request lands a
//!   hit vs. a miss vs. a coalesced share depends on worker interleaving
//!   and cache luck, so the *totals* are stable for a scripted session but
//!   the breakdown is not.
//! - `metrics` — the Prometheus text snapshot of the RED metrics (per-op
//!   and per-cluster counters, queue-wait/service latency histograms);
//!   wall-clock durations by definition.
//!
//! Both are timing-dependent and engine-global (shared across every
//! connection), so neither may ever appear in a golden fixture.
//!
//! The parser is [`tarr_trace::json`] — the workspace's hand-rolled JSON —
//! and this module adds the writer side plus typed field accessors.

use tarr_core::{Mapper, PatternKind, Scheme};
use tarr_mapping::{InitialMapping, OrderFix};
use tarr_trace::json::{write_escaped, write_f64, Json};

/// Serialize a [`Json`] value, fields in insertion order, no whitespace.
pub fn write_json(out: &mut String, v: &Json) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => write_f64(out, *n),
        Json::Str(s) => write_escaped(out, s),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json(out, item);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_json(out, val);
            }
            out.push('}');
        }
    }
}

/// Serialize to an owned string.
pub fn to_string(v: &Json) -> String {
    let mut s = String::new();
    write_json(&mut s, v);
    s
}

/// Required string field.
pub fn need_str<'a>(req: &'a Json, key: &str) -> Result<&'a str, String> {
    req.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing or non-string \"{key}\""))
}

/// Required unsigned-integer field.
pub fn need_u64(req: &Json, key: &str) -> Result<u64, String> {
    req.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer \"{key}\""))
}

/// Optional unsigned-integer field.
pub fn opt_u64(req: &Json, key: &str) -> Result<Option<u64>, String> {
    match req.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("non-integer \"{key}\"")),
    }
}

/// Optional float field.
pub fn opt_f64(req: &Json, key: &str) -> Result<Option<f64>, String> {
    match req.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("non-number \"{key}\"")),
    }
}

/// Optional boolean field.
pub fn opt_bool(req: &Json, key: &str) -> Result<Option<bool>, String> {
    match req.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Bool(b)) => Ok(Some(*b)),
        Some(_) => Err(format!("non-boolean \"{key}\"")),
    }
}

/// Parse a mapper name as the protocol spells them.
pub fn parse_mapper(name: &str) -> Result<Mapper, String> {
    match name {
        "hrstc" => Ok(Mapper::Hrstc),
        "scotch" => Ok(Mapper::ScotchLike),
        "scotch_tuned" => Ok(Mapper::ScotchTuned),
        "greedy" => Ok(Mapper::Greedy),
        "mvapich" => Ok(Mapper::MvapichCyclic),
        other => Err(format!(
            "unknown mapper \"{other}\" (hrstc|scotch|scotch_tuned|greedy|mvapich)"
        )),
    }
}

/// Parse a §V-B order-fix name.
pub fn parse_fix(name: &str) -> Result<OrderFix, String> {
    match name {
        "init_comm" => Ok(OrderFix::InitComm),
        "end_shuffle" => Ok(OrderFix::EndShuffle),
        "in_place" => Ok(OrderFix::InPlace),
        other => Err(format!(
            "unknown fix \"{other}\" (init_comm|end_shuffle|in_place)"
        )),
    }
}

/// Parse a communication-pattern name (the flat patterns the protocol
/// exposes for `map`/`reorder`).
pub fn parse_pattern(name: &str) -> Result<PatternKind, String> {
    match name {
        "rd" => Ok(PatternKind::Rd),
        "ring" => Ok(PatternKind::Ring),
        "bruck" => Ok(PatternKind::Bruck),
        "bcast" => Ok(PatternKind::BinomialBcast),
        "gather" => Ok(PatternKind::BinomialGather),
        other => Err(format!(
            "unknown pattern \"{other}\" (rd|ring|bruck|bcast|gather)"
        )),
    }
}

/// Parse an initial-layout name.
pub fn parse_layout(name: &str) -> Result<InitialMapping, String> {
    match name {
        "block_bunch" => Ok(InitialMapping::BLOCK_BUNCH),
        "block_scatter" => Ok(InitialMapping::BLOCK_SCATTER),
        "cyclic_bunch" => Ok(InitialMapping::CYCLIC_BUNCH),
        "cyclic_scatter" => Ok(InitialMapping::CYCLIC_SCATTER),
        other => Err(format!(
            "unknown layout \"{other}\" (block_bunch|block_scatter|cyclic_bunch|cyclic_scatter)"
        )),
    }
}

/// The execution scheme of a `price` request: absent or `"default"` mapper
/// → [`Scheme::Default`]; otherwise the named mapper with the named fix
/// (default `init_comm`).
pub fn parse_scheme(req: &Json) -> Result<Scheme, String> {
    match req.get("mapper").and_then(Json::as_str) {
        None | Some("default") => Ok(Scheme::Default),
        Some(name) => {
            let mapper = parse_mapper(name)?;
            let fix = match req.get("fix").and_then(Json::as_str) {
                None => OrderFix::InitComm,
                Some(f) => parse_fix(f)?,
            };
            Ok(Scheme::Reordered { mapper, fix })
        }
    }
}

/// Build an ok reply: echoed id (when the request carried one), `ok: true`,
/// the op name, then `fields`.
pub fn ok_reply(req: &Json, op: &str, fields: Vec<(String, Json)>) -> Json {
    let mut obj = Vec::with_capacity(fields.len() + 3);
    if let Some(id) = req.get("id") {
        obj.push(("id".to_string(), id.clone()));
    }
    obj.push(("ok".to_string(), Json::Bool(true)));
    obj.push(("op".to_string(), Json::Str(op.to_string())));
    obj.extend(fields);
    Json::Obj(obj)
}

/// Build an error reply: echoed id, `ok: false`, the message.
pub fn err_reply(req: Option<&Json>, msg: &str) -> Json {
    let mut obj = Vec::with_capacity(3);
    if let Some(id) = req.and_then(|r| r.get("id")) {
        obj.push(("id".to_string(), id.clone()));
    }
    obj.push(("ok".to_string(), Json::Bool(false)));
    obj.push(("error".to_string(), Json::Str(msg.to_string())));
    Json::Obj(obj)
}

/// Build an error reply with a machine-readable `code` after the message.
/// Typed errors let scripted clients branch (e.g. `cluster_exists` →
/// retry with `"replace": true`) without string-matching the message.
pub fn err_reply_coded(req: Option<&Json>, code: &str, msg: &str) -> Json {
    let mut obj = Vec::with_capacity(4);
    if let Some(id) = req.and_then(|r| r.get("id")) {
        obj.push(("id".to_string(), id.clone()));
    }
    obj.push(("ok".to_string(), Json::Bool(false)));
    obj.push(("error".to_string(), Json::Str(msg.to_string())));
    obj.push(("code".to_string(), Json::Str(code.to_string())));
    Json::Obj(obj)
}

/// Build a coded error reply that also carries a `retry_after_ms` hint —
/// the admission-control rejections (`overloaded`, `quota_rejected`) tell
/// well-behaved clients when trying again might succeed.
pub fn err_reply_retry(req: Option<&Json>, code: &str, msg: &str, retry_after_ms: u64) -> Json {
    let Json::Obj(mut obj) = err_reply_coded(req, code, msg) else {
        unreachable!("err_reply_coded returns an object");
    };
    obj.push(("retry_after_ms".to_string(), num(retry_after_ms)));
    Json::Obj(obj)
}

/// A `u64` as a JSON number (everything the protocol counts is far below
/// 2^53).
pub fn num(v: u64) -> Json {
    Json::Num(v as f64)
}
