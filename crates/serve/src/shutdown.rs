//! Graceful-shutdown signal hookup, libc-free.
//!
//! The workspace's zero-dependency rule means no `signal-hook` or `libc`
//! crate, so SIGTERM is wired up with a two-line FFI declaration of
//! `signal(2)` and a handler that does the only thing an async-signal-safe
//! handler may do here: one relaxed atomic store. The serving loops poll
//! the flag (see [`crate::ServeOpts::shutdown`]) — on a TCP daemon the
//! 100 ms read-timeout tick picks it up promptly; a stdio session notices
//! at its next line boundary or EOF (blocking `read(2)` on a regular pipe
//! restarts after the handler runs, so a signal alone does not interrupt
//! it — closing stdin does).

use std::sync::atomic::{AtomicBool, Ordering};

static TERM: AtomicBool = AtomicBool::new(false);

extern "C" fn on_term(_sig: i32) {
    // Async-signal-safe by construction: a single atomic store, no
    // allocation, no locks, no formatting.
    TERM.store(true, Ordering::Relaxed);
}

/// Install a SIGTERM handler that flips (and returns) the process-wide
/// drain flag. Idempotent; on non-unix targets it installs nothing and
/// returns the (never-set) flag so callers stay portable.
pub fn install_sigterm() -> &'static AtomicBool {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_term);
        }
    }
    &TERM
}

/// The drain flag itself, for callers that want to poll without
/// (re)installing the handler.
pub fn term_flag() -> &'static AtomicBool {
    &TERM
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    #[test]
    fn sigterm_flips_the_flag() {
        let flag = install_sigterm();
        assert!(!flag.load(Ordering::Relaxed));
        extern "C" {
            fn kill(pid: i32, sig: i32) -> i32;
            fn getpid() -> i32;
        }
        unsafe {
            assert_eq!(kill(getpid(), 15), 0);
        }
        // Delivery is to this process; the handler runs before kill()
        // returns on Linux for a self-signal, but spin briefly to be safe.
        for _ in 0..1000 {
            if flag.load(Ordering::Relaxed) {
                break;
            }
            std::thread::yield_now();
        }
        assert!(flag.load(Ordering::Relaxed));
        // Reset for any other test that inspects the flag.
        flag.store(false, Ordering::Relaxed);
    }
}
