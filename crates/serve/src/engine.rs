//! The request engine: named clusters, each an `Arc`-shared
//! [`SessionCore`], with op dispatch and admission/coalesce accounting.
//!
//! Every request that touches a cluster runs on a fresh [`SessionHandle`] —
//! handles are a pointer plus counters, so per-request creation is free —
//! and all handles of one cluster share the core's sharded coalescing
//! caches. A `fault` op never mutates a core in place: it computes the
//! degraded core off to the side and swaps the `Arc` under a brief write
//! lock, so in-flight requests finish against the pre-fault topology. The
//! swap is conditional (`Arc::ptr_eq` against the snapshot it degraded,
//! retrying on mismatch), so concurrent faults/ingests on one cluster
//! cannot silently discard each other's acknowledged updates.
//!
//! Metrics: `serve.request` / `serve.error` count dispatches, and
//! `serve.coalesce` counts requests that reused shared-core state — a cache
//! hit or a share of another thread's in-flight compute. The same totals
//! are kept on plain atomics (readable via the `stats` op) so an untraced
//! daemon still reports them.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use tarr_core::{DistanceBackend, SessionConfig, SessionCore, SessionHandle};
use tarr_faults::{FaultRates, FaultSet};
use tarr_topo::Cluster;
use tarr_trace::json::{parse, Json};

use crate::metrics::{op_index, ServeMetrics};
use crate::protocol::{
    err_reply, need_str, need_u64, num, ok_reply, opt_bool, opt_f64, opt_u64, parse_layout,
    parse_mapper, parse_pattern, parse_scheme, to_string,
};

/// Monotonic request totals, also mirrored onto `serve.*` trace counters.
#[derive(Debug, Default)]
pub struct EngineStats {
    requests: AtomicU64,
    errors: AtomicU64,
    coalesce: AtomicU64,
}

impl EngineStats {
    /// Requests dispatched (including failed ones).
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Requests that failed with an error reply.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Requests that reused shared-core state (cache hit or in-flight
    /// share).
    pub fn coalesce(&self) -> u64 {
        self.coalesce.load(Ordering::Relaxed)
    }
}

/// The shared daemon state. See the module docs.
#[derive(Default)]
pub struct Engine {
    clusters: RwLock<HashMap<String, Arc<SessionCore>>>,
    stats: EngineStats,
    metrics: ServeMetrics,
    next_req: AtomicU64,
    /// Slow-request log threshold in ns over queue-wait + service; 0 = off.
    slow_ns: AtomicU64,
}

impl Engine {
    /// An engine with no clusters ingested.
    pub fn new() -> Self {
        Engine::default()
    }

    /// Request totals.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Always-on RED metrics (per-op/per-cluster counters + latency
    /// histograms), independent of the trace recorder.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// The next monotonic request id. Ids are engine-global, start at 1,
    /// and are assigned at admission so the id order matches arrival order.
    pub fn next_request_id(&self) -> u64 {
        self.next_req.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Log any request whose queue-wait + service time reaches `threshold`
    /// to stderr with its per-stage self-time breakdown. `None` disables;
    /// a zero threshold is clamped to 1 ns, i.e. it logs every request.
    pub fn set_slow_threshold(&self, threshold: Option<Duration>) {
        let ns = threshold.map_or(0, |d| (d.as_nanos() as u64).max(1));
        self.slow_ns.store(ns, Ordering::Relaxed);
    }

    /// The core currently serving `name`.
    pub fn core(&self, name: &str) -> Option<Arc<SessionCore>> {
        self.clusters
            .read()
            .expect("cluster map poisoned")
            .get(name)
            .cloned()
    }

    /// Process one raw request line into one serialized reply line,
    /// assigning it the next request id with zero queue-wait (the
    /// single-threaded / test entry point; the serve loop assigns ids at
    /// admission and calls [`Engine::handle_request`] directly).
    pub fn handle_line(&self, line: &str) -> String {
        self.handle_request(self.next_request_id(), Duration::ZERO, line)
    }

    /// Process one admitted request: `req_id` tags every span the request
    /// opens (via a [`tarr_trace::request_scope`]), `queue_wait` is the
    /// admission→dispatch delay measured by the caller, and RED metrics /
    /// the slow-request log are fed from the dispatch→reply service time
    /// measured here.
    pub fn handle_request(&self, req_id: u64, queue_wait: Duration, line: &str) -> String {
        let started = Instant::now();
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        tarr_trace::counter_add!("serve.request", 1);
        let slow_ns = self.slow_ns.load(Ordering::Relaxed);
        // A request scope costs two thread-local ops per span; only open
        // one when something (the recorder or the slow log) consumes it.
        let scope =
            (tarr_trace::enabled() || slow_ns > 0).then(|| tarr_trace::request_scope(req_id));
        let parsed = parse(line);
        let (op, cluster) = match &parsed {
            Ok(req) => (
                req.get("op").and_then(Json::as_str),
                req.get("cluster").and_then(Json::as_str),
            ),
            Err(_) => (None, None),
        };
        let op_idx = op_index(op.unwrap_or("other"));
        self.metrics.begin(op_idx, cluster);
        let reply = match &parsed {
            Err(e) => err_reply(None, &format!("bad request: {e}")),
            Ok(req) => {
                let mut sp = tarr_trace::span("serve.handle")
                    .arg("queue_wait_ns", queue_wait.as_nanos() as u64);
                if sp.is_recording() {
                    if let Some(op) = op {
                        sp = sp.arg("req_op", op);
                    }
                    if let Some(cluster) = cluster {
                        sp = sp.arg("cluster", cluster);
                    }
                }
                let _sp = sp;
                match self.dispatch(req) {
                    Ok(reply) => reply,
                    Err(msg) => err_reply(Some(req), &msg),
                }
            }
        };
        let ok = !matches!(reply.get("ok"), Some(Json::Bool(false)));
        if !ok {
            self.stats.errors.fetch_add(1, Ordering::Relaxed);
            tarr_trace::counter_add!("serve.error", 1);
        }
        let service = started.elapsed();
        self.metrics.end(op_idx, cluster, ok, queue_wait, service);
        if let Some(scope) = scope {
            if slow_ns > 0 && (queue_wait + service).as_nanos() as u64 >= slow_ns {
                let breakdown = scope.finish();
                let stages: Vec<String> = breakdown
                    .stages
                    .iter()
                    .take(6)
                    .map(|(name, ns)| format!("{name}={:?}", Duration::from_nanos(*ns)))
                    .collect();
                eprintln!(
                    "tarr-serve: slow request {req_id} op={} cluster={} queue_wait={queue_wait:?} \
                     service={service:?} stages: {}",
                    op.unwrap_or("other"),
                    cluster.unwrap_or("-"),
                    stages.join(" ")
                );
            }
            // Not slow: dropping the scope restores the previous request
            // without computing the breakdown.
        }
        to_string(&reply)
    }

    fn dispatch(&self, req: &Json) -> Result<Json, String> {
        let op = need_str(req, "op")?;
        match op {
            "ingest" => self.op_ingest(req),
            "map" => self.op_map(req),
            "reorder" => self.op_reorder(req),
            "price" => self.op_price(req),
            "fault" => self.op_fault(req),
            "stats" => Ok(self.op_stats(req)),
            "metrics" => Ok(self.op_metrics(req)),
            "shutdown" => Ok(ok_reply(req, "shutdown", Vec::new())),
            other => Err(format!(
                "unknown op \"{other}\" (ingest|map|reorder|price|fault|stats|metrics|shutdown)"
            )),
        }
    }

    /// A handle on the named cluster, or a client error.
    fn handle_for(&self, req: &Json) -> Result<SessionHandle, String> {
        let name = need_str(req, "cluster")?;
        let core = self
            .core(name)
            .ok_or_else(|| format!("unknown cluster \"{name}\" (ingest it first)"))?;
        Ok(core.handle())
    }

    /// Fold one finished request's handle accounting into the coalesce
    /// metric: any reuse of shared-core state counts once per request.
    fn settle(&self, h: &SessionHandle) {
        let s = h.cache_stats();
        let reused = s.mapping_hits + s.comm_hits + s.sched_hits + s.price_reused + h.coalesced();
        if reused > 0 {
            self.stats.coalesce.fetch_add(1, Ordering::Relaxed);
            tarr_trace::counter_add!("serve.coalesce", 1);
        }
    }

    fn op_ingest(&self, req: &Json) -> Result<Json, String> {
        let name = need_str(req, "cluster")?;
        let layout = match req.get("layout").and_then(Json::as_str) {
            None => tarr_mapping::InitialMapping::BLOCK_BUNCH,
            Some(l) => parse_layout(l)?,
        };
        let backend = match req.get("backend").and_then(Json::as_str) {
            None | Some("implicit") => DistanceBackend::Implicit,
            Some("dense") => DistanceBackend::Dense,
            Some(other) => return Err(format!("unknown backend \"{other}\" (dense|implicit)")),
        };
        let p = opt_u64(req, "p")?.map(|v| v as usize);
        let mut cfg = SessionConfig {
            backend,
            ..SessionConfig::default()
        };
        if let Some(seed) = opt_u64(req, "seed")? {
            cfg.seed = seed;
        }
        let _sp = tarr_trace::span("serve.ingest").arg("cluster", name.to_string());
        let core = if let Some(text) = req.get("snapshot").and_then(Json::as_str) {
            SessionCore::from_snapshot_text(text, layout, p, cfg).map_err(|e| e.to_string())?
        } else if let Some(path) = req.get("snapshot_path").and_then(Json::as_str) {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read snapshot {path}: {e}"))?;
            SessionCore::from_snapshot_text(&text, layout, p, cfg).map_err(|e| e.to_string())?
        } else if let Some(nodes) = opt_u64(req, "gpc_nodes")? {
            let cluster = Cluster::gpc(nodes as usize);
            let p = p.unwrap_or_else(|| cluster.total_cores());
            SessionCore::from_layout(cluster, layout, p, cfg)
        } else {
            return Err("ingest needs \"snapshot\", \"snapshot_path\" or \"gpc_nodes\"".into());
        };
        let fields = vec![
            ("cluster".to_string(), Json::Str(name.to_string())),
            ("ranks".to_string(), num(core.size() as u64)),
            ("nodes".to_string(), num(core.cluster().num_nodes() as u64)),
            (
                "cores".to_string(),
                num(core.cluster().total_cores() as u64),
            ),
        ];
        self.clusters
            .write()
            .expect("cluster map poisoned")
            .insert(name.to_string(), Arc::new(core));
        Ok(ok_reply(req, "ingest", fields))
    }

    fn op_map(&self, req: &Json) -> Result<Json, String> {
        let mut h = self.handle_for(req)?;
        let mapper = parse_mapper(need_str(req, "mapper")?)?;
        let pattern = parse_pattern(need_str(req, "pattern")?)?;
        let info = h
            .mapping(mapper, pattern)
            .ok_or("unsupported mapper/pattern for this cluster")?;
        let arr = info.mapping.iter().map(|&v| num(v as u64)).collect();
        self.settle(&h);
        Ok(ok_reply(
            req,
            "map",
            vec![("mapping".to_string(), Json::Arr(arr))],
        ))
    }

    fn op_reorder(&self, req: &Json) -> Result<Json, String> {
        let mut h = self.handle_for(req)?;
        let mapper = parse_mapper(need_str(req, "mapper")?)?;
        let pattern = parse_pattern(need_str(req, "pattern")?)?;
        let comm = h
            .reordered_comm(mapper, pattern)
            .ok_or("unsupported mapper/pattern for this cluster")?;
        let arr = comm.cores().iter().map(|c| num(c.0 as u64)).collect();
        self.settle(&h);
        Ok(ok_reply(
            req,
            "reorder",
            vec![("cores".to_string(), Json::Arr(arr))],
        ))
    }

    fn op_price(&self, req: &Json) -> Result<Json, String> {
        let mut h = self.handle_for(req)?;
        let scheme = parse_scheme(req)?;
        let msg = need_u64(req, "msg_bytes")?;
        let collective = need_str(req, "collective")?;
        let seconds = match collective {
            "allgather" => h.allgather_time(msg, scheme),
            "gather" => h.gather_time(msg, scheme),
            "bcast" => h.bcast_time(msg, scheme),
            "allreduce" => {
                let raben = opt_bool(req, "rabenseifner")?.unwrap_or(true);
                h.allreduce_time(msg, raben, scheme)
            }
            other => {
                return Err(format!(
                    "unknown collective \"{other}\" (allgather|gather|bcast|allreduce)"
                ))
            }
        };
        self.settle(&h);
        Ok(ok_reply(
            req,
            "price",
            vec![("seconds".to_string(), Json::Num(seconds))],
        ))
    }

    fn op_fault(&self, req: &Json) -> Result<Json, String> {
        let name = need_str(req, "cluster")?;
        let seed = need_u64(req, "seed")?;
        let rates = FaultRates {
            link_fail: opt_f64(req, "link_fail")?.unwrap_or(0.0),
            switch_fail: opt_f64(req, "switch_fail")?.unwrap_or(0.0),
            node_drain: opt_f64(req, "node_drain")?.unwrap_or(0.0),
            core_drain: opt_f64(req, "core_drain")?.unwrap_or(0.0),
        };
        let _sp = tarr_trace::span("serve.fault").arg("cluster", name.to_string());
        // The degraded core is minted off to the side from a snapshot Arc;
        // in-flight requests keep their pre-fault Arc. The swap only lands
        // if that snapshot is still the serving core — if a concurrent
        // fault/ingest replaced it meanwhile, retry against the new core so
        // neither request's acknowledged degradation is silently dropped.
        let report = loop {
            let core = self
                .core(name)
                .ok_or_else(|| format!("unknown cluster \"{name}\" (ingest it first)"))?;
            let set = FaultSet::random(core.cluster(), &rates, seed);
            let (degraded, report) = core.apply_faults(&set, &[]).map_err(|e| e.to_string())?;
            let mut map = self.clusters.write().expect("cluster map poisoned");
            if map.get(name).is_some_and(|cur| Arc::ptr_eq(cur, &core)) {
                map.insert(name.to_string(), Arc::new(degraded));
                break report;
            }
        };
        Ok(ok_reply(
            req,
            "fault",
            vec![
                (
                    "cables_removed".to_string(),
                    num(report.summary.cables_removed as u64),
                ),
                (
                    "switches_removed".to_string(),
                    num(report.summary.switches_removed as u64),
                ),
                (
                    "nodes_lost".to_string(),
                    num(report.summary.nodes_lost as u64),
                ),
                (
                    "cores_lost".to_string(),
                    num(report.summary.cores_lost as u64),
                ),
                (
                    "ranks_migrated".to_string(),
                    num(report.ranks_migrated as u64),
                ),
                (
                    "mappings_dropped".to_string(),
                    num(report.mappings_dropped as u64),
                ),
                (
                    "comms_dropped".to_string(),
                    num(report.comms_dropped as u64),
                ),
                (
                    "scheds_dropped".to_string(),
                    num(report.scheds_dropped as u64),
                ),
                ("scheds_kept".to_string(), num(report.scheds_kept as u64)),
            ],
        ))
    }

    /// The explicit exception to the protocol's determinism guarantee:
    /// these counters are engine-global (shared across every connection)
    /// and timing-dependent (coalesce depends on cache luck), so `stats`
    /// replies must never appear in golden fixtures.
    ///
    /// `cluster_caches` breaks the shared-core caches down per cluster and
    /// per cache family (mapping/comm/sched/price), each as
    /// hit/miss/coalesced — the serving-side view of
    /// [`SessionCore::cache_stats`].
    fn op_stats(&self, req: &Json) -> Json {
        let cores: Vec<(String, Arc<SessionCore>)> = {
            let map = self.clusters.read().expect("cluster map poisoned");
            let mut v: Vec<_> = map.iter().map(|(k, c)| (k.clone(), c.clone())).collect();
            v.sort_by(|a, b| a.0.cmp(&b.0));
            v
        };
        let snap = |s: &tarr_mpi::CacheSnapshot| {
            Json::Obj(vec![
                ("hit".to_string(), num(s.hits)),
                ("miss".to_string(), num(s.misses)),
                ("coalesced".to_string(), num(s.coalesced)),
            ])
        };
        let caches: Vec<(String, Json)> = cores
            .iter()
            .map(|(name, core)| {
                let s = core.cache_stats();
                (
                    name.clone(),
                    Json::Obj(vec![
                        ("mapping".to_string(), snap(&s.mappings)),
                        ("comm".to_string(), snap(&s.comms)),
                        ("sched".to_string(), snap(&s.scheds)),
                        ("price".to_string(), snap(&s.prices)),
                    ]),
                )
            })
            .collect();
        ok_reply(
            req,
            "stats",
            vec![
                ("clusters".to_string(), num(cores.len() as u64)),
                ("requests".to_string(), num(self.stats.requests())),
                ("errors".to_string(), num(self.stats.errors())),
                ("coalesce".to_string(), num(self.stats.coalesce())),
                ("cluster_caches".to_string(), Json::Obj(caches)),
            ],
        )
    }

    /// Prometheus text-format snapshot of the RED metrics, as the `text`
    /// field of an otherwise ordinary reply. Timing-dependent like `stats`:
    /// never put `metrics` replies in golden fixtures.
    fn op_metrics(&self, req: &Json) -> Json {
        ok_reply(
            req,
            "metrics",
            vec![(
                "text".to_string(),
                Json::Str(self.metrics.render_prometheus()),
            )],
        )
    }
}
