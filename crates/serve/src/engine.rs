//! The request engine: named clusters, each an `Arc`-shared
//! [`SessionCore`], with op dispatch and admission/coalesce accounting.
//!
//! Every request that touches a cluster runs on a fresh [`SessionHandle`] —
//! handles are a pointer plus counters, so per-request creation is free —
//! and all handles of one cluster share the core's sharded coalescing
//! caches. A `fault` op never mutates a core in place: it computes the
//! degraded core off to the side and swaps the `Arc` under a brief write
//! lock, so in-flight requests finish against the pre-fault topology. The
//! swap is conditional (`Arc::ptr_eq` against the snapshot it degraded,
//! retrying on mismatch), so concurrent faults/ingests on one cluster
//! cannot silently discard each other's acknowledged updates.
//!
//! Metrics: `serve.request` / `serve.error` count dispatches, and
//! `serve.coalesce` counts requests that reused shared-core state — a cache
//! hit or a share of another thread's in-flight compute. The same totals
//! are kept on plain atomics (readable via the `stats` op) so an untraced
//! daemon still reports them.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use tarr_core::{SessionCore, SessionHandle};
use tarr_replay::{
    build_core, fault_core, restore_dir, write_snapshot, BackendKind, EngineSnapshot, Event,
    FaultSpec, IngestSource, IngestSpec, LayoutKind, ReplayError, WalTail, WalWriter, WAL_FILE,
};
use tarr_trace::json::{parse, Json};

use crate::metrics::{op_index, ServeMetrics};
use crate::protocol::{
    err_reply, err_reply_coded, need_str, need_u64, num, ok_reply, opt_bool, opt_f64, opt_u64,
    parse_mapper, parse_pattern, parse_scheme, to_string,
};

/// Unwrap a replay-layer error into the op's message: `Apply` carries the
/// build/fault message verbatim, so protocol error texts are unchanged
/// from the pre-persistence engine.
fn unwrap_apply(e: ReplayError) -> String {
    match e {
        ReplayError::Apply(msg) => msg,
        other => other.to_string(),
    }
}

/// Monotonic request totals, also mirrored onto `serve.*` trace counters.
#[derive(Debug, Default)]
pub struct EngineStats {
    requests: AtomicU64,
    errors: AtomicU64,
    coalesce: AtomicU64,
}

impl EngineStats {
    /// Requests dispatched (including failed ones).
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Requests that failed with an error reply.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Requests that reused shared-core state (cache hit or in-flight
    /// share).
    pub fn coalesce(&self) -> u64 {
        self.coalesce.load(Ordering::Relaxed)
    }
}

/// An op failure: the message plus an optional machine-readable code
/// (rendered as the reply's `code` field). Plain `String` errors convert
/// into uncoded failures, so unchanged ops keep their `?` flow.
struct OpError {
    code: Option<&'static str>,
    msg: String,
}

impl OpError {
    fn coded(code: &'static str, msg: String) -> OpError {
        OpError {
            code: Some(code),
            msg,
        }
    }
}

impl From<String> for OpError {
    fn from(msg: String) -> OpError {
        OpError { code: None, msg }
    }
}

impl From<&str> for OpError {
    fn from(msg: &str) -> OpError {
        OpError {
            code: None,
            msg: msg.to_string(),
        }
    }
}

/// The WAL cursor: the open writer plus the id the next event gets.
struct WalState {
    writer: WalWriter,
    next_event: u64,
}

/// Persistence state, present only when the engine was booted with a
/// state directory.
struct Persist {
    dir: PathBuf,
    /// Locked second, always after the clusters lock (never the reverse).
    wal: Mutex<WalState>,
}

/// What [`Engine::with_state_dir`] found on disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BootReport {
    /// Whether `snapshot.tsnap` was present and loaded.
    pub snapshot_loaded: bool,
    /// Snapshot file size in bytes (0 if absent).
    pub snapshot_bytes: u64,
    /// WAL records replayed on top of the snapshot.
    pub events_replayed: u64,
    /// WAL records skipped because the snapshot already covered them.
    pub events_skipped: u64,
    /// Torn-tail bytes truncated during recovery (0 = the WAL was clean).
    pub recovered_bytes: u64,
    /// Clusters serving after boot.
    pub clusters: usize,
    /// The id the next logged event will get.
    pub next_event_id: u64,
}

/// The shared daemon state. See the module docs.
#[derive(Default)]
pub struct Engine {
    clusters: RwLock<HashMap<String, Arc<SessionCore>>>,
    stats: EngineStats,
    metrics: ServeMetrics,
    next_req: AtomicU64,
    /// Slow-request log threshold in ns over queue-wait + service; 0 = off.
    slow_ns: AtomicU64,
    /// WAL + snapshot state; `None` = the in-memory-only engine.
    persist: Option<Persist>,
    /// Token buckets by client identity (TCP peer IP, or "local" for
    /// stdio), shared across every connection of that client.
    quotas: Mutex<HashMap<String, Bucket>>,
}

/// One client's token bucket: fractional tokens plus the last refill time.
#[derive(Debug, Default)]
struct Bucket {
    tokens: f64,
    last: Option<Instant>,
    /// Whether the bucket has admitted its first request (fresh buckets
    /// start full at `burst`).
    primed: bool,
}

impl Engine {
    /// An engine with no clusters ingested.
    pub fn new() -> Self {
        Engine::default()
    }

    /// An engine booted from a state directory: load the latest snapshot,
    /// recover the WAL (truncating a torn tail — the unacknowledged
    /// record a crash left behind), replay the log tail, and keep the WAL
    /// open for appends. The directory is created if missing.
    pub fn with_state_dir(dir: &Path) -> Result<(Engine, BootReport), String> {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create state dir {}: {e}", dir.display()))?;
        let restore = restore_dir(dir, true).map_err(|e| e.to_string())?;
        let recovered_bytes = match restore.tail {
            WalTail::Clean => 0,
            WalTail::Torn { dropped, .. } => dropped,
        };
        let writer = WalWriter::open_at(&dir.join(WAL_FILE), restore.wal_bytes)
            .map_err(|e| e.to_string())?;
        let report = BootReport {
            snapshot_loaded: restore.snapshot_loaded,
            snapshot_bytes: restore.snapshot_bytes,
            events_replayed: restore.events_replayed,
            events_skipped: restore.events_skipped,
            recovered_bytes,
            clusters: restore.state.clusters.len(),
            next_event_id: restore.state.last_event_id + 1,
        };
        let mut engine = Engine {
            clusters: RwLock::new(restore.state.clusters.into_iter().collect()),
            ..Engine::default()
        };
        engine.metrics.set_wal_bytes(writer.bytes());
        engine.metrics.set_snapshot_bytes(restore.snapshot_bytes);
        engine.persist = Some(Persist {
            dir: dir.to_path_buf(),
            wal: Mutex::new(WalState {
                writer,
                next_event: report.next_event_id,
            }),
        });
        Ok((engine, report))
    }

    /// The state directory this engine persists to, if any.
    pub fn state_dir(&self) -> Option<&Path> {
        self.persist.as_ref().map(|p| p.dir.as_path())
    }

    /// Flush the WAL to disk. Every append already fsyncs before its reply
    /// is acknowledged; this is the explicit teardown barrier.
    pub fn flush(&self) -> Result<(), String> {
        if let Some(p) = &self.persist {
            p.wal
                .lock()
                .expect("wal poisoned")
                .writer
                .sync()
                .map_err(|e| e.to_string())?;
        }
        Ok(())
    }

    /// Append one mutation to the WAL and fsync it. Callers hold the
    /// clusters **write** lock (lock order: clusters → wal), so log order
    /// always matches apply order; logging *before* the map insert means a
    /// crash between the two replays the event at boot — never loses it.
    fn log_event(&self, req_id: u64, event: &Event) -> Result<(), OpError> {
        let Some(p) = &self.persist else {
            return Ok(());
        };
        let mut wal = p.wal.lock().expect("wal poisoned");
        let id = wal.next_event;
        let started = Instant::now();
        let bytes = wal
            .writer
            .append(id, req_id, &event.encode())
            .map_err(|e| {
                // The daemon stays up serving read-only ops; the gauge flags
                // the degradation until an append succeeds again.
                self.metrics.set_wal_degraded(true);
                OpError::coded("persist_io", format!("wal append failed: {e}"))
            })?;
        self.metrics.record_fsync(started.elapsed());
        self.metrics.set_wal_degraded(false);
        wal.next_event = id + 1;
        self.metrics.set_wal_bytes(bytes);
        Ok(())
    }

    /// Take one token from `client`'s bucket (capacity `burst`, refilling
    /// at `per_sec` tokens/second; fresh buckets start full). On rejection
    /// returns a `retry_after_ms` hint: the time until one token refills,
    /// or 0 when `per_sec` is 0 (the bucket never refills — test mode).
    pub fn quota_take(&self, client: &str, burst: u64, per_sec: f64) -> Result<(), u64> {
        let mut quotas = self.quotas.lock().expect("quotas poisoned");
        let b = quotas.entry(client.to_string()).or_default();
        if !b.primed {
            b.tokens = burst as f64;
            b.primed = true;
        }
        let now = Instant::now();
        if per_sec > 0.0 {
            if let Some(last) = b.last {
                b.tokens =
                    (b.tokens + now.duration_since(last).as_secs_f64() * per_sec).min(burst as f64);
            }
        }
        b.last = Some(now);
        if b.tokens >= 1.0 {
            b.tokens -= 1.0;
            Ok(())
        } else if per_sec > 0.0 {
            Err(((1.0 - b.tokens) / per_sec * 1000.0).ceil() as u64)
        } else {
            Err(0)
        }
    }

    /// Request totals.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Always-on RED metrics (per-op/per-cluster counters + latency
    /// histograms), independent of the trace recorder.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// The next monotonic request id. Ids are engine-global, start at 1,
    /// and are assigned at admission so the id order matches arrival order.
    pub fn next_request_id(&self) -> u64 {
        self.next_req.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Log any request whose queue-wait + service time reaches `threshold`
    /// to stderr with its per-stage self-time breakdown. `None` disables;
    /// a zero threshold is clamped to 1 ns, i.e. it logs every request.
    pub fn set_slow_threshold(&self, threshold: Option<Duration>) {
        let ns = threshold.map_or(0, |d| (d.as_nanos() as u64).max(1));
        self.slow_ns.store(ns, Ordering::Relaxed);
    }

    /// The core currently serving `name`.
    pub fn core(&self, name: &str) -> Option<Arc<SessionCore>> {
        self.clusters
            .read()
            .expect("cluster map poisoned")
            .get(name)
            .cloned()
    }

    /// Process one raw request line into one serialized reply line,
    /// assigning it the next request id with zero queue-wait (the
    /// single-threaded / test entry point; the serve loop assigns ids at
    /// admission and calls [`Engine::handle_request`] directly).
    pub fn handle_line(&self, line: &str) -> String {
        self.handle_request(self.next_request_id(), Duration::ZERO, line)
    }

    /// Process one admitted request: `req_id` tags every span the request
    /// opens (via a [`tarr_trace::request_scope`]), `queue_wait` is the
    /// admission→dispatch delay measured by the caller, and RED metrics /
    /// the slow-request log are fed from the dispatch→reply service time
    /// measured here.
    pub fn handle_request(&self, req_id: u64, queue_wait: Duration, line: &str) -> String {
        let started = Instant::now();
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        tarr_trace::counter_add!("serve.request", 1);
        let slow_ns = self.slow_ns.load(Ordering::Relaxed);
        // A request scope costs two thread-local ops per span; only open
        // one when something (the recorder or the slow log) consumes it.
        let scope =
            (tarr_trace::enabled() || slow_ns > 0).then(|| tarr_trace::request_scope(req_id));
        let parsed = parse(line);
        let (op, cluster) = match &parsed {
            Ok(req) => (
                req.get("op").and_then(Json::as_str),
                req.get("cluster").and_then(Json::as_str),
            ),
            Err(_) => (None, None),
        };
        let op_idx = op_index(op.unwrap_or("other"));
        self.metrics.begin(op_idx, cluster);
        let reply = match &parsed {
            Err(e) => err_reply(None, &format!("bad request: {e}")),
            Ok(req) => {
                let mut sp = tarr_trace::span("serve.handle")
                    .arg("queue_wait_ns", queue_wait.as_nanos() as u64);
                if sp.is_recording() {
                    if let Some(op) = op {
                        sp = sp.arg("req_op", op);
                    }
                    if let Some(cluster) = cluster {
                        sp = sp.arg("cluster", cluster);
                    }
                }
                let _sp = sp;
                // A panicking handler must cost its own request only: the
                // worker thread, the reorder buffer and every other
                // in-flight request survive, and the client gets a typed
                // `internal_error` instead of a dropped connection.
                let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    self.dispatch(req_id, req)
                }));
                match caught {
                    Ok(Ok(reply)) => reply,
                    Ok(Err(e)) => match e.code {
                        Some(code) => err_reply_coded(Some(req), code, &e.msg),
                        None => err_reply(Some(req), &e.msg),
                    },
                    Err(payload) => {
                        let what = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".to_string());
                        self.metrics.add_panic();
                        err_reply_coded(
                            Some(req),
                            "internal_error",
                            &format!("request handler panicked: {what}"),
                        )
                    }
                }
            }
        };
        let ok = !matches!(reply.get("ok"), Some(Json::Bool(false)));
        if !ok {
            self.stats.errors.fetch_add(1, Ordering::Relaxed);
            tarr_trace::counter_add!("serve.error", 1);
        }
        let service = started.elapsed();
        self.metrics.end(op_idx, cluster, ok, queue_wait, service);
        if let Some(scope) = scope {
            if slow_ns > 0 && (queue_wait + service).as_nanos() as u64 >= slow_ns {
                let breakdown = scope.finish();
                let stages: Vec<String> = breakdown
                    .stages
                    .iter()
                    .take(6)
                    .map(|(name, ns)| format!("{name}={:?}", Duration::from_nanos(*ns)))
                    .collect();
                eprintln!(
                    "tarr-serve: slow request {req_id} op={} cluster={} queue_wait={queue_wait:?} \
                     service={service:?} stages: {}",
                    op.unwrap_or("other"),
                    cluster.unwrap_or("-"),
                    stages.join(" ")
                );
            }
            // Not slow: dropping the scope restores the previous request
            // without computing the breakdown.
        }
        to_string(&reply)
    }

    fn dispatch(&self, req_id: u64, req: &Json) -> Result<Json, OpError> {
        let op = need_str(req, "op")?;
        match op {
            "ingest" => self.op_ingest(req_id, req),
            "map" => self.op_map(req).map_err(OpError::from),
            "reorder" => self.op_reorder(req).map_err(OpError::from),
            "price" => self.op_price(req).map_err(OpError::from),
            "fault" => self.op_fault(req_id, req),
            "snapshot" => self.op_snapshot(req),
            "compact" => self.op_compact(req),
            "stats" => Ok(self.op_stats(req)),
            "metrics" => Ok(self.op_metrics(req)),
            "debug" => self.op_debug(req),
            "shutdown" => Ok(ok_reply(req, "shutdown", Vec::new())),
            other => Err(format!(
                "unknown op \"{other}\" \
                 (ingest|map|reorder|price|fault|snapshot|compact|stats|metrics|debug|shutdown)"
            )
            .into()),
        }
    }

    /// A handle on the named cluster, or a client error.
    fn handle_for(&self, req: &Json) -> Result<SessionHandle, String> {
        let name = need_str(req, "cluster")?;
        let core = self
            .core(name)
            .ok_or_else(|| format!("unknown cluster \"{name}\" (ingest it first)"))?;
        Ok(core.handle())
    }

    /// Fold one finished request's handle accounting into the coalesce
    /// metric: any reuse of shared-core state counts once per request.
    fn settle(&self, h: &SessionHandle) {
        let s = h.cache_stats();
        let reused = s.mapping_hits + s.comm_hits + s.sched_hits + s.price_reused + h.coalesced();
        if reused > 0 {
            self.stats.coalesce.fetch_add(1, Ordering::Relaxed);
            tarr_trace::counter_add!("serve.coalesce", 1);
        }
    }

    /// The typed rejection for an un-authorised overwrite.
    fn cluster_exists(name: &str) -> OpError {
        OpError::coded(
            "cluster_exists",
            format!("cluster \"{name}\" already ingested (set \"replace\": true to overwrite)"),
        )
    }

    fn op_ingest(&self, req_id: u64, req: &Json) -> Result<Json, OpError> {
        let name = need_str(req, "cluster")?;
        let layout = match req.get("layout").and_then(Json::as_str) {
            None => LayoutKind::BlockBunch,
            Some(l) => LayoutKind::parse(l).ok_or_else(|| {
                format!(
                    "unknown layout \"{l}\" \
                     (block_bunch|block_scatter|cyclic_bunch|cyclic_scatter)"
                )
            })?,
        };
        let backend = match req.get("backend").and_then(Json::as_str) {
            None | Some("implicit") => BackendKind::Implicit,
            Some("dense") => BackendKind::Dense,
            Some(other) => {
                return Err(format!("unknown backend \"{other}\" (dense|implicit)").into())
            }
        };
        let replace = opt_bool(req, "replace")?.unwrap_or(false);
        // Cheap early rejection before any build work; rechecked under the
        // write lock so racing ingests cannot both pass.
        if !replace && self.core(name).is_some() {
            return Err(Self::cluster_exists(name));
        }
        // The WAL records the ingest *semantics* by value: a
        // `snapshot_path` is resolved to its text now, so replay never
        // depends on a file that may have changed or vanished.
        let source = if let Some(text) = req.get("snapshot").and_then(Json::as_str) {
            IngestSource::SnapshotText(text.to_string())
        } else if let Some(path) = req.get("snapshot_path").and_then(Json::as_str) {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read snapshot {path}: {e}"))?;
            IngestSource::SnapshotText(text)
        } else if let Some(nodes) = opt_u64(req, "gpc_nodes")? {
            IngestSource::GpcNodes(nodes)
        } else {
            return Err("ingest needs \"snapshot\", \"snapshot_path\" or \"gpc_nodes\"".into());
        };
        let spec = IngestSpec {
            source,
            layout,
            p: opt_u64(req, "p")?,
            seed: opt_u64(req, "seed")?,
            backend,
            replace,
        };
        let _sp = tarr_trace::span("serve.ingest").arg("cluster", name.to_string());
        let core = build_core(&spec).map_err(unwrap_apply)?;
        let fields = vec![
            ("cluster".to_string(), Json::Str(name.to_string())),
            ("ranks".to_string(), num(core.size() as u64)),
            ("nodes".to_string(), num(core.cluster().num_nodes() as u64)),
            (
                "cores".to_string(),
                num(core.cluster().total_cores() as u64),
            ),
        ];
        let event = Event::Ingest {
            cluster: name.to_string(),
            spec,
        };
        {
            let mut map = self.clusters.write().expect("cluster map poisoned");
            if !replace && map.contains_key(name) {
                return Err(Self::cluster_exists(name));
            }
            self.log_event(req_id, &event)?;
            map.insert(name.to_string(), Arc::new(core));
        }
        Ok(ok_reply(req, "ingest", fields))
    }

    fn op_map(&self, req: &Json) -> Result<Json, String> {
        let mut h = self.handle_for(req)?;
        let mapper = parse_mapper(need_str(req, "mapper")?)?;
        let pattern = parse_pattern(need_str(req, "pattern")?)?;
        let info = h
            .mapping(mapper, pattern)
            .ok_or("unsupported mapper/pattern for this cluster")?;
        let arr = info.mapping.iter().map(|&v| num(v as u64)).collect();
        self.settle(&h);
        Ok(ok_reply(
            req,
            "map",
            vec![("mapping".to_string(), Json::Arr(arr))],
        ))
    }

    fn op_reorder(&self, req: &Json) -> Result<Json, String> {
        let mut h = self.handle_for(req)?;
        let mapper = parse_mapper(need_str(req, "mapper")?)?;
        let pattern = parse_pattern(need_str(req, "pattern")?)?;
        let comm = h
            .reordered_comm(mapper, pattern)
            .ok_or("unsupported mapper/pattern for this cluster")?;
        let arr = comm.cores().iter().map(|c| num(c.0 as u64)).collect();
        self.settle(&h);
        Ok(ok_reply(
            req,
            "reorder",
            vec![("cores".to_string(), Json::Arr(arr))],
        ))
    }

    fn op_price(&self, req: &Json) -> Result<Json, String> {
        let mut h = self.handle_for(req)?;
        let scheme = parse_scheme(req)?;
        let msg = need_u64(req, "msg_bytes")?;
        let collective = need_str(req, "collective")?;
        let seconds = match collective {
            "allgather" => h.allgather_time(msg, scheme),
            "gather" => h.gather_time(msg, scheme),
            "bcast" => h.bcast_time(msg, scheme),
            "allreduce" => {
                let raben = opt_bool(req, "rabenseifner")?.unwrap_or(true);
                h.allreduce_time(msg, raben, scheme)
            }
            other => {
                return Err(format!(
                    "unknown collective \"{other}\" (allgather|gather|bcast|allreduce)"
                ))
            }
        };
        self.settle(&h);
        Ok(ok_reply(
            req,
            "price",
            vec![("seconds".to_string(), Json::Num(seconds))],
        ))
    }

    fn op_fault(&self, req_id: u64, req: &Json) -> Result<Json, OpError> {
        let name = need_str(req, "cluster")?;
        let fault = FaultSpec {
            seed: need_u64(req, "seed")?,
            link_fail: opt_f64(req, "link_fail")?.unwrap_or(0.0),
            switch_fail: opt_f64(req, "switch_fail")?.unwrap_or(0.0),
            node_drain: opt_f64(req, "node_drain")?.unwrap_or(0.0),
            core_drain: opt_f64(req, "core_drain")?.unwrap_or(0.0),
        };
        let _sp = tarr_trace::span("serve.fault").arg("cluster", name.to_string());
        let event = Event::Fault {
            cluster: name.to_string(),
            fault: fault.clone(),
        };
        // The degraded core is minted off to the side from a snapshot Arc;
        // in-flight requests keep their pre-fault Arc. The swap only lands
        // if that snapshot is still the serving core — if a concurrent
        // fault/ingest replaced it meanwhile, retry against the new core so
        // neither request's acknowledged degradation is silently dropped.
        // The WAL append happens inside the winning iteration, under the
        // write lock, so log order matches swap order exactly.
        let report = loop {
            let core = self
                .core(name)
                .ok_or_else(|| format!("unknown cluster \"{name}\" (ingest it first)"))?;
            let (degraded, report) = fault_core(&core, &fault).map_err(unwrap_apply)?;
            let mut map = self.clusters.write().expect("cluster map poisoned");
            if map.get(name).is_some_and(|cur| Arc::ptr_eq(cur, &core)) {
                self.log_event(req_id, &event)?;
                map.insert(name.to_string(), Arc::new(degraded));
                break report;
            }
        };
        Ok(ok_reply(
            req,
            "fault",
            vec![
                (
                    "cables_removed".to_string(),
                    num(report.summary.cables_removed as u64),
                ),
                (
                    "switches_removed".to_string(),
                    num(report.summary.switches_removed as u64),
                ),
                (
                    "nodes_lost".to_string(),
                    num(report.summary.nodes_lost as u64),
                ),
                (
                    "cores_lost".to_string(),
                    num(report.summary.cores_lost as u64),
                ),
                (
                    "ranks_migrated".to_string(),
                    num(report.ranks_migrated as u64),
                ),
                (
                    "mappings_dropped".to_string(),
                    num(report.mappings_dropped as u64),
                ),
                (
                    "comms_dropped".to_string(),
                    num(report.comms_dropped as u64),
                ),
                (
                    "scheds_dropped".to_string(),
                    num(report.scheds_dropped as u64),
                ),
                ("scheds_kept".to_string(), num(report.scheds_kept as u64)),
            ],
        ))
    }

    /// Capture the engine under the clusters read lock: the sorted cores
    /// plus the WAL position they are consistent with. Mutating ops hold
    /// the clusters **write** lock across their WAL append, so holding the
    /// read lock while reading the cursor guarantees the pair is coherent.
    fn snapshot_cut(&self, p: &Persist) -> (u64, Vec<(String, Arc<SessionCore>)>) {
        let map = self.clusters.read().expect("cluster map poisoned");
        let last_event_id = p.wal.lock().expect("wal poisoned").next_event - 1;
        let mut cores: Vec<_> = map.iter().map(|(k, c)| (k.clone(), c.clone())).collect();
        cores.sort_by(|a, b| a.0.cmp(&b.0));
        (last_event_id, cores)
    }

    fn no_state_dir() -> OpError {
        OpError::coded(
            "no_state_dir",
            "persistence is off (start tarr-serve with --state-dir)".to_string(),
        )
    }

    fn persist_error(e: ReplayError) -> OpError {
        match e {
            ReplayError::BadSnapshot { what } => {
                OpError::coded("persist_unsupported", format!("cannot snapshot: {what}"))
            }
            other => OpError::coded("persist_io", other.to_string()),
        }
    }

    /// Write a snapshot of the current state to the state directory. The
    /// encode and the atomic file write run off-lock: the cloned Arcs are
    /// immutable, and a concurrent mutation only advances the WAL past the
    /// recorded `last_event_id` — boot replays the difference.
    fn op_snapshot(&self, req: &Json) -> Result<Json, OpError> {
        let p = self.persist.as_ref().ok_or_else(Self::no_state_dir)?;
        let _sp = tarr_trace::span("serve.snapshot");
        let (last_event_id, cores) = self.snapshot_cut(p);
        let snap = EngineSnapshot::capture(last_event_id, &cores).map_err(Self::persist_error)?;
        let bytes = write_snapshot(&p.dir, &snap).map_err(Self::persist_error)?;
        self.metrics.set_snapshot_bytes(bytes);
        Ok(ok_reply(
            req,
            "snapshot",
            vec![
                ("clusters".to_string(), num(cores.len() as u64)),
                ("last_event_id".to_string(), num(last_event_id)),
                ("bytes".to_string(), num(bytes)),
            ],
        ))
    }

    /// Snapshot, then truncate the WAL back to its header. Unlike
    /// `snapshot`, the whole exchange holds the clusters read lock and the
    /// WAL cursor: a mutation sneaking between the snapshot and the
    /// truncation would be erased from both, so the pair must be atomic.
    /// (The serve loop additionally quiesces `compact` like any mutating
    /// op, making the hold uncontended in the daemon.)
    fn op_compact(&self, req: &Json) -> Result<Json, OpError> {
        let p = self.persist.as_ref().ok_or_else(Self::no_state_dir)?;
        let _sp = tarr_trace::span("serve.compact");
        let map = self.clusters.read().expect("cluster map poisoned");
        let mut wal = p.wal.lock().expect("wal poisoned");
        let last_event_id = wal.next_event - 1;
        let mut cores: Vec<_> = map.iter().map(|(k, c)| (k.clone(), c.clone())).collect();
        cores.sort_by(|a, b| a.0.cmp(&b.0));
        let snap = EngineSnapshot::capture(last_event_id, &cores).map_err(Self::persist_error)?;
        let bytes = write_snapshot(&p.dir, &snap).map_err(Self::persist_error)?;
        let wal_bytes = wal.writer.reset().map_err(Self::persist_error)?;
        drop(wal);
        drop(map);
        self.metrics.set_snapshot_bytes(bytes);
        self.metrics.set_wal_bytes(wal_bytes);
        Ok(ok_reply(
            req,
            "compact",
            vec![
                ("clusters".to_string(), num(cores.len() as u64)),
                ("last_event_id".to_string(), num(last_event_id)),
                ("snapshot_bytes".to_string(), num(bytes)),
                ("wal_bytes".to_string(), num(wal_bytes)),
            ],
        ))
    }

    /// The explicit exception to the protocol's determinism guarantee:
    /// these counters are engine-global (shared across every connection)
    /// and timing-dependent (coalesce depends on cache luck), so `stats`
    /// replies must never appear in golden fixtures.
    ///
    /// `cluster_caches` breaks the shared-core caches down per cluster and
    /// per cache family (mapping/comm/sched/price), each as
    /// hit/miss/coalesced — the serving-side view of
    /// [`SessionCore::cache_stats`].
    fn op_stats(&self, req: &Json) -> Json {
        let cores: Vec<(String, Arc<SessionCore>)> = {
            let map = self.clusters.read().expect("cluster map poisoned");
            let mut v: Vec<_> = map.iter().map(|(k, c)| (k.clone(), c.clone())).collect();
            v.sort_by(|a, b| a.0.cmp(&b.0));
            v
        };
        let snap = |s: &tarr_mpi::CacheSnapshot| {
            Json::Obj(vec![
                ("hit".to_string(), num(s.hits)),
                ("miss".to_string(), num(s.misses)),
                ("coalesced".to_string(), num(s.coalesced)),
            ])
        };
        let caches: Vec<(String, Json)> = cores
            .iter()
            .map(|(name, core)| {
                let s = core.cache_stats();
                (
                    name.clone(),
                    Json::Obj(vec![
                        ("mapping".to_string(), snap(&s.mappings)),
                        ("comm".to_string(), snap(&s.comms)),
                        ("sched".to_string(), snap(&s.scheds)),
                        ("price".to_string(), snap(&s.prices)),
                    ]),
                )
            })
            .collect();
        ok_reply(
            req,
            "stats",
            vec![
                ("clusters".to_string(), num(cores.len() as u64)),
                ("requests".to_string(), num(self.stats.requests())),
                ("errors".to_string(), num(self.stats.errors())),
                ("coalesce".to_string(), num(self.stats.coalesce())),
                ("cluster_caches".to_string(), Json::Obj(caches)),
            ],
        )
    }

    /// Prometheus text-format snapshot of the RED metrics, as the `text`
    /// field of an otherwise ordinary reply. Timing-dependent like `stats`:
    /// never put `metrics` replies in golden fixtures.
    fn op_metrics(&self, req: &Json) -> Json {
        ok_reply(
            req,
            "metrics",
            vec![(
                "text".to_string(),
                Json::Str(self.metrics.render_prometheus()),
            )],
        )
    }

    /// Test-only escape hatches for exercising the serving stack's fault
    /// paths from outside the process: `{"op":"debug","action":"panic"}`
    /// panics inside the worker (proving panic isolation),
    /// `"action":"sleep"` holds a worker for `ms` milliseconds (making
    /// load shedding deterministic in tests), `"action":"noop"` does
    /// nothing. Non-mutating; never state-dependent.
    fn op_debug(&self, req: &Json) -> Result<Json, OpError> {
        match need_str(req, "action")? {
            "panic" => panic!("debug op requested a panic"),
            "sleep" => {
                // Clamp so a stray request can't wedge a worker for long.
                let ms = opt_u64(req, "ms")?.unwrap_or(0).min(10_000);
                std::thread::sleep(std::time::Duration::from_millis(ms));
                Ok(ok_reply(req, "debug", vec![("ms".to_string(), num(ms))]))
            }
            "noop" => Ok(ok_reply(req, "debug", Vec::new())),
            other => Err(format!("unknown debug action \"{other}\" (panic|sleep|noop)").into()),
        }
    }
}
