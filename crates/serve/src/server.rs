//! The serving loop: a bounded admission queue, a `std::thread::scope`
//! worker pool, and an ordered-output stage that makes reply order equal
//! request order no matter how many workers race.
//!
//! The reader thread assigns each request line a sequence number and
//! enqueues it (blocking when the queue is at capacity — admission is
//! backpressure, not rejection, so a fast client cannot balloon memory).
//! Workers pop lines, run them through the [`Engine`], and hand
//! `(seq, reply)` to the reorder buffer, which writes replies strictly in
//! sequence order.
//!
//! Reply *order* alone is not enough: `ingest` and `fault` mutate the
//! engine, so a later request racing past one of them on another worker
//! could observe the wrong state (a `map` outrunning its `ingest` sees an
//! unknown cluster; a `price` outrunning a `fault` prices the pre-fault
//! topology). Mutating ops therefore act as barriers: the reader waits for
//! the queue to drain and every in-flight worker to finish, runs the
//! mutating op inline on its own thread, then resumes parallel dispatch.
//! Earlier requests see pre-op state, later ones see post-op state, and a
//! scripted session produces byte-identical output at any worker count —
//! the property the CI golden fixture pins.
//!
//! Metrics: `serve.admitted` counts enqueued requests and the
//! `serve.queue.depth` gauge tracks the instantaneous queue length.

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, BufRead, Write};
use std::net::TcpListener;
use std::sync::{Condvar, Mutex};

use tarr_trace::json::{parse, Json};

use crate::engine::Engine;

/// Worker-pool and admission configuration.
#[derive(Debug, Clone)]
pub struct ServeOpts {
    /// Worker threads processing requests (min 1).
    pub workers: usize,
    /// Admission-queue capacity; the reader blocks when it is full.
    pub queue_cap: usize,
}

impl Default for ServeOpts {
    fn default() -> Self {
        ServeOpts {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            queue_cap: 1024,
        }
    }
}

struct QueueState {
    items: VecDeque<(u64, String)>,
    /// Requests popped by a worker whose reply has not yet been delivered.
    in_flight: usize,
    closed: bool,
}

struct Queue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    /// Signalled on every dequeue and every completion: waiters are both
    /// the admitting reader (capacity) and `wait_idle` (quiescence).
    not_full: Condvar,
    cap: usize,
}

impl Queue {
    fn new(cap: usize) -> Self {
        Queue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                in_flight: 0,
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Blocking admission: waits for capacity, then enqueues.
    fn push(&self, seq: u64, line: String) {
        let mut st = self.state.lock().expect("queue poisoned");
        while st.items.len() >= self.cap {
            st = self.not_full.wait(st).expect("queue poisoned");
        }
        st.items.push_back((seq, line));
        tarr_trace::counter_add!("serve.admitted", 1);
        if tarr_trace::enabled() {
            tarr_trace::gauge("serve.queue.depth").set(st.items.len() as f64);
        }
        drop(st);
        self.not_empty.notify_one();
    }

    /// Blocking pop; `None` once the queue is closed and drained. A popped
    /// request counts as in-flight until the worker calls [`Queue::done`].
    fn pop(&self) -> Option<(u64, String)> {
        let mut st = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = st.items.pop_front() {
                st.in_flight += 1;
                if tarr_trace::enabled() {
                    tarr_trace::gauge("serve.queue.depth").set(st.items.len() as f64);
                }
                drop(st);
                self.not_full.notify_all();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).expect("queue poisoned");
        }
    }

    /// A worker finished (and delivered the reply for) a popped request.
    fn done(&self) {
        let mut st = self.state.lock().expect("queue poisoned");
        st.in_flight -= 1;
        drop(st);
        self.not_full.notify_all();
    }

    /// Block until every admitted request has been processed and delivered:
    /// the barrier before a state-mutating op runs.
    fn wait_idle(&self) {
        let mut st = self.state.lock().expect("queue poisoned");
        while !st.items.is_empty() || st.in_flight > 0 {
            st = self.not_full.wait(st).expect("queue poisoned");
        }
    }

    fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.not_empty.notify_all();
    }
}

/// The reorder buffer: workers deliver out of order, replies leave in
/// sequence order.
struct OrderedOut<W: Write> {
    state: Mutex<OutState<W>>,
}

struct OutState<W: Write> {
    next: u64,
    pending: BTreeMap<u64, String>,
    sink: W,
    error: Option<io::Error>,
}

impl<W: Write> OrderedOut<W> {
    fn new(sink: W) -> Self {
        OrderedOut {
            state: Mutex::new(OutState {
                next: 0,
                pending: BTreeMap::new(),
                sink,
                error: None,
            }),
        }
    }

    fn deliver(&self, seq: u64, reply: String) {
        let mut st = self.state.lock().expect("output poisoned");
        st.pending.insert(seq, reply);
        loop {
            let next = st.next;
            let Some(line) = st.pending.remove(&next) else {
                break;
            };
            st.next += 1;
            if st.error.is_none() {
                let r = writeln!(st.sink, "{line}").and_then(|()| st.sink.flush());
                if let Err(e) = r {
                    st.error = Some(e);
                }
            }
        }
    }

    fn finish(self) -> io::Result<u64> {
        let st = self.state.into_inner().expect("output poisoned");
        debug_assert!(st.pending.is_empty(), "replies left in the reorder buffer");
        match st.error {
            Some(e) => Err(e),
            None => Ok(st.next),
        }
    }
}

/// The request's `"op"` string, if the line parses to an object with one.
fn line_op(line: &str) -> Option<String> {
    parse(line)
        .ok()
        .as_ref()
        .and_then(|r| r.get("op"))
        .and_then(Json::as_str)
        .map(str::to_string)
}

/// Ops that mutate engine state and must not run concurrently with any
/// other request on the stream.
fn is_mutating(op: Option<&str>) -> bool {
    matches!(op, Some("ingest" | "fault"))
}

/// Serve one line-oriented stream: read requests from `input` until EOF or
/// a `shutdown` op, process them on `opts.workers` scoped threads, write
/// replies to `output` in request order. State-mutating ops (`ingest`,
/// `fault`) are barriers: the reader quiesces the pool and runs them
/// inline, so every request observes the engine state its stream position
/// implies. Returns the number of replies written.
pub fn serve_lines(
    engine: &Engine,
    input: impl BufRead,
    output: impl Write + Send,
    opts: &ServeOpts,
) -> io::Result<u64> {
    let queue = Queue::new(opts.queue_cap);
    let out = OrderedOut::new(output);
    std::thread::scope(|scope| {
        for _ in 0..opts.workers.max(1) {
            scope.spawn(|| {
                while let Some((seq, line)) = queue.pop() {
                    let reply = engine.handle_line(&line);
                    out.deliver(seq, reply);
                    queue.done();
                }
            });
        }
        let mut seq = 0u64;
        for line in input.lines() {
            let line = match line {
                Ok(l) => l,
                Err(_) => break,
            };
            if line.trim().is_empty() {
                continue;
            }
            let op = line_op(&line);
            let stop = matches!(op.as_deref(), Some("shutdown"));
            if is_mutating(op.as_deref()) {
                // Workers deliver before `done`, so once idle every earlier
                // reply has been written and this one flushes in sequence.
                queue.wait_idle();
                out.deliver(seq, engine.handle_line(&line));
            } else {
                queue.push(seq, line);
            }
            seq += 1;
            if stop {
                break;
            }
        }
        queue.close();
    });
    out.finish()
}

/// Serve TCP connections forever: each accepted connection runs its own
/// [`serve_lines`] loop on scoped threads against the shared engine, so
/// concurrent connections coalesce onto the same cluster cores. A
/// `shutdown` op ends its own connection only; the daemon runs until
/// killed.
pub fn serve_tcp(engine: &Engine, listener: TcpListener, opts: &ServeOpts) -> io::Result<()> {
    std::thread::scope(|scope| -> io::Result<()> {
        loop {
            let (stream, peer) = listener.accept()?;
            let opts = opts.clone();
            scope.spawn(move || {
                let reader = match stream.try_clone() {
                    Ok(s) => io::BufReader::new(s),
                    Err(e) => {
                        eprintln!("serve: {peer}: {e}");
                        return;
                    }
                };
                if let Err(e) = serve_lines(engine, reader, stream, &opts) {
                    eprintln!("serve: {peer}: {e}");
                }
            });
        }
    })
}
