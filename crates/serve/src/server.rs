//! The serving loop: a bounded admission queue, a `std::thread::scope`
//! worker pool, and an ordered-output stage that makes reply order equal
//! request order no matter how many workers race.
//!
//! The reader thread assigns each request line a sequence number and
//! enqueues it (blocking when the queue is at capacity — admission is
//! backpressure, not rejection, so a fast client cannot balloon memory).
//! Workers pop lines, run them through the [`Engine`], and hand
//! `(seq, reply)` to the reorder buffer, which writes replies strictly in
//! sequence order.
//!
//! Reply *order* alone is not enough: `ingest` and `fault` mutate the
//! engine, so a later request racing past one of them on another worker
//! could observe the wrong state (a `map` outrunning its `ingest` sees an
//! unknown cluster; a `price` outrunning a `fault` prices the pre-fault
//! topology). Mutating ops therefore act as barriers: the reader waits for
//! the queue to drain and every in-flight worker to finish, runs the
//! mutating op inline on its own thread, then resumes parallel dispatch.
//! Earlier requests see pre-op state, later ones see post-op state, and a
//! scripted session produces byte-identical output at any worker count —
//! the property the CI golden fixture pins.
//!
//! Observability: the reader assigns every request a monotonic id (from
//! [`Engine::next_request_id`]) and timestamps admission, so workers can
//! split queue-wait (admission → dispatch) from service time (dispatch →
//! reply) when they feed the engine's RED metrics. `serve.admitted` counts
//! enqueued requests, the `serve.queue.depth` gauge tracks the
//! instantaneous queue length, and `serve.workers.busy` tracks workers
//! currently inside a request. [`serve_metrics`] is the companion scrape
//! endpoint: a minimal HTTP/1.0 listener answering every request with the
//! engine's Prometheus text snapshot.

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, BufRead, Read, Write};
use std::net::TcpListener;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use tarr_trace::json::{parse, Json};

use crate::engine::Engine;
use crate::metrics::ServeMetrics;

/// Worker-pool and admission configuration.
#[derive(Debug, Clone)]
pub struct ServeOpts {
    /// Worker threads processing requests (min 1).
    pub workers: usize,
    /// Admission-queue capacity; the reader blocks when it is full.
    pub queue_cap: usize,
}

impl Default for ServeOpts {
    fn default() -> Self {
        ServeOpts {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            queue_cap: 1024,
        }
    }
}

/// One admitted request: output slot, request id, admission timestamp
/// (queue-wait starts here), raw line.
type Admitted = (u64, u64, Instant, String);

struct QueueState {
    items: VecDeque<Admitted>,
    /// Requests popped by a worker whose reply has not yet been delivered.
    in_flight: usize,
    closed: bool,
}

struct Queue<'a> {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    /// Signalled on every dequeue and every completion: waiters are both
    /// the admitting reader (capacity) and `wait_idle` (quiescence).
    not_full: Condvar,
    cap: usize,
    metrics: &'a ServeMetrics,
}

impl<'a> Queue<'a> {
    fn new(cap: usize, metrics: &'a ServeMetrics) -> Self {
        Queue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                in_flight: 0,
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap: cap.max(1),
            metrics,
        }
    }

    /// Blocking admission: waits for capacity, then enqueues.
    fn push(&self, seq: u64, req_id: u64, line: String) {
        let mut st = self.state.lock().expect("queue poisoned");
        while st.items.len() >= self.cap {
            st = self.not_full.wait(st).expect("queue poisoned");
        }
        st.items.push_back((seq, req_id, Instant::now(), line));
        tarr_trace::counter_add!("serve.admitted", 1);
        self.metrics.set_queue_depth(st.items.len() as u64);
        drop(st);
        self.not_empty.notify_one();
    }

    /// Blocking pop; `None` once the queue is closed and drained. A popped
    /// request counts as in-flight until the worker calls [`Queue::done`].
    fn pop(&self) -> Option<Admitted> {
        let mut st = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = st.items.pop_front() {
                st.in_flight += 1;
                self.metrics.set_queue_depth(st.items.len() as u64);
                drop(st);
                self.not_full.notify_all();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).expect("queue poisoned");
        }
    }

    /// A worker finished (and delivered the reply for) a popped request.
    fn done(&self) {
        let mut st = self.state.lock().expect("queue poisoned");
        st.in_flight -= 1;
        drop(st);
        self.not_full.notify_all();
    }

    /// Block until every admitted request has been processed and delivered:
    /// the barrier before a state-mutating op runs.
    fn wait_idle(&self) {
        let mut st = self.state.lock().expect("queue poisoned");
        while !st.items.is_empty() || st.in_flight > 0 {
            st = self.not_full.wait(st).expect("queue poisoned");
        }
    }

    fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.not_empty.notify_all();
    }
}

/// The reorder buffer: workers deliver out of order, replies leave in
/// sequence order.
struct OrderedOut<W: Write> {
    state: Mutex<OutState<W>>,
}

struct OutState<W: Write> {
    next: u64,
    pending: BTreeMap<u64, String>,
    sink: W,
    error: Option<io::Error>,
}

impl<W: Write> OrderedOut<W> {
    fn new(sink: W) -> Self {
        OrderedOut {
            state: Mutex::new(OutState {
                next: 0,
                pending: BTreeMap::new(),
                sink,
                error: None,
            }),
        }
    }

    fn deliver(&self, seq: u64, reply: String) {
        let mut st = self.state.lock().expect("output poisoned");
        st.pending.insert(seq, reply);
        loop {
            let next = st.next;
            let Some(line) = st.pending.remove(&next) else {
                break;
            };
            st.next += 1;
            if st.error.is_none() {
                let r = writeln!(st.sink, "{line}").and_then(|()| st.sink.flush());
                if let Err(e) = r {
                    st.error = Some(e);
                }
            }
        }
    }

    fn finish(self) -> io::Result<u64> {
        let st = self.state.into_inner().expect("output poisoned");
        debug_assert!(st.pending.is_empty(), "replies left in the reorder buffer");
        match st.error {
            Some(e) => Err(e),
            None => Ok(st.next),
        }
    }
}

/// The request's `"op"` string, if the line parses to an object with one.
fn line_op(line: &str) -> Option<String> {
    parse(line)
        .ok()
        .as_ref()
        .and_then(|r| r.get("op"))
        .and_then(Json::as_str)
        .map(str::to_string)
}

/// Ops that mutate engine state — or cut a consistent point-in-time view
/// of it (`snapshot`, `compact`) — and must not run concurrently with any
/// other request on the stream.
fn is_mutating(op: Option<&str>) -> bool {
    matches!(op, Some("ingest" | "fault" | "snapshot" | "compact"))
}

/// Serve one line-oriented stream: read requests from `input` until EOF or
/// a `shutdown` op, process them on `opts.workers` scoped threads, write
/// replies to `output` in request order. State-mutating ops (`ingest`,
/// `fault`) are barriers: the reader quiesces the pool and runs them
/// inline, so every request observes the engine state its stream position
/// implies. Returns the number of replies written.
pub fn serve_lines(
    engine: &Engine,
    input: impl BufRead,
    output: impl Write + Send,
    opts: &ServeOpts,
) -> io::Result<u64> {
    let metrics = engine.metrics();
    metrics.set_workers(opts.workers.max(1) as u64);
    let queue = Queue::new(opts.queue_cap, metrics);
    let out = OrderedOut::new(output);
    std::thread::scope(|scope| {
        for _ in 0..opts.workers.max(1) {
            scope.spawn(|| {
                while let Some((seq, req_id, admitted, line)) = queue.pop() {
                    let wait = admitted.elapsed();
                    metrics.worker_busy(true);
                    let reply = engine.handle_request(req_id, wait, &line);
                    metrics.worker_busy(false);
                    out.deliver(seq, reply);
                    queue.done();
                }
            });
        }
        let mut seq = 0u64;
        for line in input.lines() {
            let line = match line {
                Ok(l) => l,
                Err(_) => break,
            };
            if line.trim().is_empty() {
                continue;
            }
            // Ids are assigned here, at admission, so id order == arrival
            // order even when workers finish out of order.
            let req_id = engine.next_request_id();
            let op = line_op(&line);
            let stop = matches!(op.as_deref(), Some("shutdown"));
            if is_mutating(op.as_deref()) {
                // Workers deliver before `done`, so once idle every earlier
                // reply has been written and this one flushes in sequence.
                // Runs inline without queueing: queue-wait is zero by
                // construction (its wait shows up as barrier latency for
                // *later* requests, not this one).
                queue.wait_idle();
                out.deliver(seq, engine.handle_request(req_id, Duration::ZERO, &line));
            } else {
                queue.push(seq, req_id, line);
            }
            seq += 1;
            if stop {
                break;
            }
        }
        queue.close();
    });
    out.finish()
}

/// Serve the engine's Prometheus text snapshot over HTTP/1.0, forever: one
/// connection at a time (scrapes are rare and tiny), request head drained
/// and ignored, snapshot rendered per scrape. Pair with a
/// `TcpListener::bind` on the `--metrics` address.
pub fn serve_metrics(engine: &Engine, listener: TcpListener) -> io::Result<()> {
    loop {
        let (mut stream, _) = listener.accept()?;
        // Drain the request head (best-effort; a scrape that dawdles past
        // the timeout just gets its snapshot early).
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let mut head = [0u8; 4096];
        let mut seen = 0;
        while seen < head.len() {
            match stream.read(&mut head[seen..]) {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    seen += n;
                    if head[..seen].windows(4).any(|w| w == b"\r\n\r\n") {
                        break;
                    }
                }
            }
        }
        let body = engine.metrics().render_prometheus();
        let reply = format!(
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        let _ = stream.write_all(reply.as_bytes());
    }
}

/// Serve TCP connections forever: each accepted connection runs its own
/// [`serve_lines`] loop on scoped threads against the shared engine, so
/// concurrent connections coalesce onto the same cluster cores. A
/// `shutdown` op ends its own connection only; the daemon runs until
/// killed.
pub fn serve_tcp(engine: &Engine, listener: TcpListener, opts: &ServeOpts) -> io::Result<()> {
    std::thread::scope(|scope| -> io::Result<()> {
        loop {
            let (stream, peer) = listener.accept()?;
            let opts = opts.clone();
            scope.spawn(move || {
                let reader = match stream.try_clone() {
                    Ok(s) => io::BufReader::new(s),
                    Err(e) => {
                        eprintln!("serve: {peer}: {e}");
                        return;
                    }
                };
                if let Err(e) = serve_lines(engine, reader, stream, &opts) {
                    eprintln!("serve: {peer}: {e}");
                }
            });
        }
    })
}
