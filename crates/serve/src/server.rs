//! The serving loop: a bounded admission queue, a `std::thread::scope`
//! worker pool, and an ordered-output stage that makes reply order equal
//! request order no matter how many workers race.
//!
//! The reader thread assigns each request line a sequence number and
//! enqueues it (blocking when the queue is at capacity — admission is
//! backpressure, not rejection, so a fast client cannot balloon memory).
//! Workers pop lines, run them through the [`Engine`], and hand
//! `(seq, reply)` to the reorder buffer, which writes replies strictly in
//! sequence order.
//!
//! Reply *order* alone is not enough: `ingest` and `fault` mutate the
//! engine, so a later request racing past one of them on another worker
//! could observe the wrong state (a `map` outrunning its `ingest` sees an
//! unknown cluster; a `price` outrunning a `fault` prices the pre-fault
//! topology). Mutating ops therefore act as barriers: the reader waits for
//! the queue to drain and every in-flight worker to finish, runs the
//! mutating op inline on its own thread, then resumes parallel dispatch.
//! Earlier requests see pre-op state, later ones see post-op state, and a
//! scripted session produces byte-identical output at any worker count —
//! the property the CI golden fixture pins.
//!
//! On top of that base loop sits the overload hardening (all of it
//! configured through [`ServeOpts`], all off-by-default-compatible with
//! the original behaviour):
//!
//! - **Protocol limits** — request lines are read through a capped
//!   [`LineReader`]: a line longer than `max_line_bytes` is discarded (the
//!   client gets a typed `line_too_long` error, the connection survives),
//!   invalid UTF-8 gets `bad_utf8`, unparseable JSON counts as `bad_json`.
//!   Each connection has an error budget (`max_protocol_errors`); the
//!   violation that exhausts it gets code `error_budget` and the
//!   connection closes.
//! - **Deadline shedding** — a request carrying `deadline_ms` is refused
//!   at admission with a typed `overloaded` reply (plus `retry_after_ms`)
//!   when `pending × EWMA(service)` already exceeds the deadline. Requests
//!   without a deadline are never shed.
//! - **Client quotas** — an optional token bucket per client identity
//!   (TCP peer IP, `"local"` on stdio) refuses excess requests with
//!   `quota_rejected` + `retry_after_ms` before they cost a queue slot.
//! - **Idle reaping / timeouts** — connections silent past `idle_timeout`
//!   get a typed `idle_timeout` error and are closed; TCP reads poll on a
//!   short timeout so the reaper and the shutdown flag both get a chance
//!   to run even with no traffic.
//! - **Graceful drain** — when `opts.shutdown` (see
//!   [`crate::shutdown::install_sigterm`]) flips, the reader stops
//!   admitting, already-admitted requests finish and flush in order, and
//!   [`serve_lines`] returns normally; the drain duration lands in the
//!   `tarr_serve_drain_seconds` gauge.
//! - **Connection caps** — [`serve_tcp`] bounds concurrent connections;
//!   an accept over the cap gets a single `conn_rejected` error line and
//!   is dropped without spawning a thread.
//!
//! Observability: the reader assigns every request a monotonic id (from
//! [`Engine::next_request_id`]) and timestamps admission, so workers can
//! split queue-wait (admission → dispatch) from service time (dispatch →
//! reply) when they feed the engine's RED metrics. `serve.admitted` counts
//! enqueued requests, the `serve.queue.depth` gauge tracks the
//! instantaneous queue length, and `serve.workers.busy` tracks workers
//! currently inside a request. [`serve_metrics`] is the companion scrape
//! endpoint: a minimal HTTP/1.0 listener answering every request with the
//! engine's Prometheus text snapshot.

use std::cell::Cell;
use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use tarr_trace::json::{parse, Json};

use crate::engine::Engine;
use crate::metrics::ServeMetrics;
use crate::protocol::{err_reply_coded, err_reply_retry, to_string};

/// Per-client token-bucket quota: a client may burst `burst` requests,
/// refilled at `per_sec` tokens per second. `per_sec = 0` means the bucket
/// never refills — useful for deterministic tests (`burst` requests total,
/// then rejection with a `retry_after_ms` of 0).
#[derive(Debug, Clone, Copy)]
pub struct QuotaCfg {
    /// Bucket capacity (fresh clients start full).
    pub burst: u64,
    /// Refill rate in tokens per second (0 = never refill).
    pub per_sec: f64,
}

/// Worker-pool, admission, and hardening configuration.
#[derive(Debug, Clone)]
pub struct ServeOpts {
    /// Worker threads processing requests (min 1).
    pub workers: usize,
    /// Admission-queue capacity; the reader blocks when it is full.
    pub queue_cap: usize,
    /// Longest accepted request line in bytes; longer lines are discarded
    /// with a typed `line_too_long` error (min 1).
    pub max_line_bytes: usize,
    /// Protocol violations (oversized / bad-UTF-8 / unparseable lines)
    /// tolerated per connection before it is closed with `error_budget`.
    /// 0 = unlimited.
    pub max_protocol_errors: u64,
    /// Close a connection silent for this long (typed `idle_timeout`
    /// error). Only effective when reads time out and tick — i.e. over
    /// TCP; a blocking stdio read cannot be reaped.
    pub idle_timeout: Option<Duration>,
    /// TCP write timeout for reply delivery (stuck clients get a write
    /// error instead of wedging a connection thread forever).
    pub write_timeout: Option<Duration>,
    /// Concurrent TCP connections served; accepts beyond this are refused
    /// with a single `conn_rejected` error line (min 1).
    pub max_conns: usize,
    /// Per-client admission quota; `None` = unlimited.
    pub quota: Option<QuotaCfg>,
    /// Client identity for quota accounting: the TCP peer IP, or
    /// `"local"` for stdio sessions.
    pub client: String,
    /// Graceful-drain flag (typically from
    /// [`crate::shutdown::install_sigterm`]): when it reads `true` the
    /// reader stops admitting, drains in-flight work, and returns.
    pub shutdown: Option<&'static AtomicBool>,
}

impl Default for ServeOpts {
    fn default() -> Self {
        ServeOpts {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            queue_cap: 1024,
            max_line_bytes: 1 << 20,
            max_protocol_errors: 64,
            idle_timeout: None,
            write_timeout: None,
            max_conns: 64,
            quota: None,
            client: "local".to_string(),
            shutdown: None,
        }
    }
}

/// One admitted request: output slot, request id, admission timestamp
/// (queue-wait starts here), raw line.
type Admitted = (u64, u64, Instant, String);

struct QueueState {
    items: VecDeque<Admitted>,
    /// Requests popped by a worker whose reply has not yet been delivered.
    in_flight: usize,
    closed: bool,
}

struct Queue<'a> {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    /// Signalled on every dequeue and every completion: waiters are both
    /// the admitting reader (capacity) and `wait_idle` (quiescence).
    not_full: Condvar,
    cap: usize,
    metrics: &'a ServeMetrics,
}

impl<'a> Queue<'a> {
    fn new(cap: usize, metrics: &'a ServeMetrics) -> Self {
        Queue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                in_flight: 0,
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap: cap.max(1),
            metrics,
        }
    }

    /// Blocking admission: waits for capacity, then enqueues.
    fn push(&self, seq: u64, req_id: u64, line: String) {
        let mut st = self.state.lock().expect("queue poisoned");
        while st.items.len() >= self.cap {
            st = self.not_full.wait(st).expect("queue poisoned");
        }
        st.items.push_back((seq, req_id, Instant::now(), line));
        tarr_trace::counter_add!("serve.admitted", 1);
        self.metrics.set_queue_depth(st.items.len() as u64);
        drop(st);
        self.not_empty.notify_one();
    }

    /// Blocking pop; `None` once the queue is closed and drained. A popped
    /// request counts as in-flight until the worker calls [`Queue::done`].
    fn pop(&self) -> Option<Admitted> {
        let mut st = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = st.items.pop_front() {
                st.in_flight += 1;
                self.metrics.set_queue_depth(st.items.len() as u64);
                drop(st);
                self.not_full.notify_all();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).expect("queue poisoned");
        }
    }

    /// A worker finished (and delivered the reply for) a popped request.
    fn done(&self) {
        let mut st = self.state.lock().expect("queue poisoned");
        st.in_flight -= 1;
        drop(st);
        self.not_full.notify_all();
    }

    /// Block until every admitted request has been processed and delivered:
    /// the barrier before a state-mutating op runs.
    fn wait_idle(&self) {
        let mut st = self.state.lock().expect("queue poisoned");
        while !st.items.is_empty() || st.in_flight > 0 {
            st = self.not_full.wait(st).expect("queue poisoned");
        }
    }

    /// Instantaneous (queued, in-flight) load — the shedding estimator's
    /// view of the backlog.
    fn load(&self) -> (usize, usize) {
        let st = self.state.lock().expect("queue poisoned");
        (st.items.len(), st.in_flight)
    }

    fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.not_empty.notify_all();
    }
}

/// The reorder buffer: workers deliver out of order, replies leave in
/// sequence order.
struct OrderedOut<W: Write> {
    state: Mutex<OutState<W>>,
}

struct OutState<W: Write> {
    next: u64,
    pending: BTreeMap<u64, String>,
    sink: W,
    error: Option<io::Error>,
}

impl<W: Write> OrderedOut<W> {
    fn new(sink: W) -> Self {
        OrderedOut {
            state: Mutex::new(OutState {
                next: 0,
                pending: BTreeMap::new(),
                sink,
                error: None,
            }),
        }
    }

    fn deliver(&self, seq: u64, reply: String) {
        let mut st = self.state.lock().expect("output poisoned");
        st.pending.insert(seq, reply);
        loop {
            let next = st.next;
            let Some(line) = st.pending.remove(&next) else {
                break;
            };
            st.next += 1;
            if st.error.is_none() {
                let r = tarr_chaos::fail_io("conn.write")
                    .and_then(|()| writeln!(st.sink, "{line}"))
                    .and_then(|()| st.sink.flush());
                if let Err(e) = r {
                    st.error = Some(e);
                }
            }
        }
    }

    fn finish(self) -> io::Result<u64> {
        let st = self.state.into_inner().expect("output poisoned");
        debug_assert!(st.pending.is_empty(), "replies left in the reorder buffer");
        match st.error {
            Some(e) => Err(e),
            None => Ok(st.next),
        }
    }
}

/// Ops that mutate engine state — or cut a consistent point-in-time view
/// of it (`snapshot`, `compact`) — and must not run concurrently with any
/// other request on the stream.
fn is_mutating(op: Option<&str>) -> bool {
    matches!(op, Some("ingest" | "fault" | "snapshot" | "compact"))
}

/// One reader-side input event; see [`LineReader`].
enum LineEvent {
    /// A complete line (terminator stripped).
    Line(String),
    /// A line exceeded the length cap and was discarded up to its newline.
    TooLong,
    /// A complete line that was not valid UTF-8 (discarded).
    BadUtf8,
    /// The read timed out (`WouldBlock`/`TimedOut`): no data, but the
    /// caller gets a chance to check idle/shutdown state.
    Tick,
    /// End of stream (clean EOF or a fatal read error).
    Eof,
}

/// An incremental, length-capped line reader over a raw [`Read`].
///
/// Unlike `BufRead::lines`, it (a) bounds memory per line — an attacker
/// sending an endless unterminated line costs `max` bytes, not the heap —
/// (b) survives invalid UTF-8 without killing the stream, and (c) turns
/// read timeouts into [`LineEvent::Tick`]s so the serving loop can reap
/// idle connections and observe the shutdown flag while blocked.
struct LineReader<R: Read> {
    inner: R,
    /// The accumulated partial line (never grows past `max` + one chunk).
    buf: Vec<u8>,
    max: usize,
    /// Discarding an oversized line until its newline.
    overflow: bool,
    eof: bool,
}

impl<R: Read> LineReader<R> {
    fn new(inner: R, max: usize) -> Self {
        LineReader {
            inner,
            buf: Vec::new(),
            max: max.max(1),
            overflow: false,
            eof: false,
        }
    }

    /// Strip the terminator and classify a completed raw line.
    fn finish_line(&mut self, mut line: Vec<u8>) -> LineEvent {
        if line.last() == Some(&b'\n') {
            line.pop();
        }
        if line.last() == Some(&b'\r') {
            line.pop();
        }
        if self.overflow || line.len() > self.max {
            self.overflow = false;
            return LineEvent::TooLong;
        }
        match String::from_utf8(line) {
            Ok(s) => LineEvent::Line(s),
            Err(_) => LineEvent::BadUtf8,
        }
    }

    fn next_event(&mut self) -> LineEvent {
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=pos).collect();
                return self.finish_line(line);
            }
            // No complete line buffered: enforce the cap on the partial,
            // then (in overflow mode) drop what we have — it will never be
            // parsed, only skipped.
            if self.buf.len() > self.max {
                self.overflow = true;
            }
            if self.overflow {
                self.buf.clear();
            }
            if self.eof {
                if self.buf.is_empty() && !self.overflow {
                    return LineEvent::Eof;
                }
                // A trailing unterminated line still counts.
                let line = std::mem::take(&mut self.buf);
                return self.finish_line(line);
            }
            if tarr_chaos::fail_io("conn.read").is_err() {
                // Injected connection-read failure: same as the peer
                // vanishing mid-stream.
                self.eof = true;
                continue;
            }
            let mut chunk = [0u8; 8192];
            match self.inner.read(&mut chunk) {
                Ok(0) => self.eof = true,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return LineEvent::Tick;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => self.eof = true,
            }
        }
    }
}

/// Whether protocol error number `count` exhausts a budget of `max`
/// (0 = unlimited).
fn budget_hit(max: u64, count: u64) -> bool {
    max > 0 && count >= max
}

/// Serve one line-oriented stream: read requests from `input` until EOF, a
/// `shutdown` op, or a graceful-drain signal; process them on
/// `opts.workers` scoped threads; write replies to `output` in request
/// order. State-mutating ops (`ingest`, `fault`) are barriers: the reader
/// quiesces the pool and runs them inline, so every request observes the
/// engine state its stream position implies. Protocol violations, quota
/// rejections, and deadline sheds are answered with typed errors at the
/// violating request's position in the reply order (they consume a
/// sequence slot but never a worker). Returns the number of replies
/// written.
pub fn serve_lines(
    engine: &Engine,
    input: impl Read,
    output: impl Write + Send,
    opts: &ServeOpts,
) -> io::Result<u64> {
    let metrics = engine.metrics();
    metrics.set_workers(opts.workers.max(1) as u64);
    let queue = Queue::new(opts.queue_cap, metrics);
    let out = OrderedOut::new(output);
    // Set by the reader (scope's own thread) when the shutdown flag is
    // observed; read after the scope joins to time the drain.
    let drain_started: Cell<Option<Instant>> = Cell::new(None);
    std::thread::scope(|scope| {
        for _ in 0..opts.workers.max(1) {
            scope.spawn(|| {
                while let Some((seq, req_id, admitted, line)) = queue.pop() {
                    let wait = admitted.elapsed();
                    metrics.worker_busy(true);
                    let reply = engine.handle_request(req_id, wait, &line);
                    metrics.worker_busy(false);
                    out.deliver(seq, reply);
                    queue.done();
                }
            });
        }
        let mut reader = LineReader::new(input, opts.max_line_bytes);
        let mut seq = 0u64;
        let mut proto_errors = 0u64;
        let mut last_activity = Instant::now();
        'reader: loop {
            if opts
                .shutdown
                .is_some_and(|flag| flag.load(Ordering::Relaxed))
            {
                drain_started.set(Some(Instant::now()));
                break;
            }
            let event = reader.next_event();
            let line = match event {
                LineEvent::Eof => break,
                LineEvent::Tick => {
                    if let Some(idle) = opts.idle_timeout {
                        if last_activity.elapsed() >= idle {
                            metrics.add_protocol_error("idle_timeout");
                            out.deliver(
                                seq,
                                to_string(&err_reply_coded(
                                    None,
                                    "idle_timeout",
                                    "connection idle past the idle timeout; closing",
                                )),
                            );
                            break;
                        }
                    }
                    continue;
                }
                LineEvent::TooLong | LineEvent::BadUtf8 => {
                    last_activity = Instant::now();
                    let (kind, msg) = match event {
                        LineEvent::TooLong => (
                            "line_too_long",
                            "request line exceeds the configured maximum length",
                        ),
                        _ => ("bad_utf8", "request line is not valid UTF-8"),
                    };
                    proto_errors += 1;
                    metrics.add_protocol_error(kind);
                    let exhausted = budget_hit(opts.max_protocol_errors, proto_errors);
                    let (code, msg) = if exhausted {
                        (
                            "error_budget",
                            "protocol-error budget exhausted; closing connection",
                        )
                    } else {
                        (kind, msg)
                    };
                    out.deliver(seq, to_string(&err_reply_coded(None, code, msg)));
                    seq += 1;
                    if exhausted {
                        break 'reader;
                    }
                    continue;
                }
                LineEvent::Line(line) => {
                    last_activity = Instant::now();
                    line
                }
            };
            if line.trim().is_empty() {
                continue;
            }
            let parsed = parse(&line).ok();
            if parsed.is_none() {
                proto_errors += 1;
                metrics.add_protocol_error("bad_json");
                if budget_hit(opts.max_protocol_errors, proto_errors) {
                    out.deliver(
                        seq,
                        to_string(&err_reply_coded(
                            None,
                            "error_budget",
                            "protocol-error budget exhausted; closing connection",
                        )),
                    );
                    break;
                }
                // Below the budget the line still goes to the engine so
                // malformed requests keep their established parse-error
                // reply text.
            }
            let op = parsed
                .as_ref()
                .and_then(|r| r.get("op"))
                .and_then(Json::as_str);
            let stop = matches!(op, Some("shutdown"));
            // Admission control, cheapest first: quota (a constant-time
            // bucket probe), then the deadline shed estimate. Both answer
            // at this request's reply position without costing a worker.
            // `shutdown` is exempt — a throttled client may always leave.
            if let (Some(q), Some(req), false) = (&opts.quota, parsed.as_ref(), stop) {
                if let Err(retry_ms) = engine.quota_take(&opts.client, q.burst, q.per_sec) {
                    metrics.add_quota_rejected();
                    out.deliver(
                        seq,
                        to_string(&err_reply_retry(
                            Some(req),
                            "quota_rejected",
                            "per-client request quota exhausted",
                            retry_ms,
                        )),
                    );
                    seq += 1;
                    continue;
                }
            }
            if let Some(deadline_ms) = parsed
                .as_ref()
                .and_then(|r| r.get("deadline_ms"))
                .and_then(Json::as_u64)
            {
                let (queued, in_flight) = queue.load();
                let pending = (queued + in_flight) as u64;
                let est_ns = pending.saturating_mul(metrics.estimated_service_ns().max(1));
                if pending > 0 && est_ns > deadline_ms.saturating_mul(1_000_000) {
                    metrics.add_shed();
                    out.deliver(
                        seq,
                        to_string(&err_reply_retry(
                            parsed.as_ref(),
                            "overloaded",
                            "estimated queue wait exceeds deadline_ms; request shed",
                            est_ns.div_ceil(1_000_000).max(1),
                        )),
                    );
                    seq += 1;
                    continue;
                }
            }
            // Ids are assigned here, at admission, so id order == arrival
            // order even when workers finish out of order.
            let req_id = engine.next_request_id();
            if is_mutating(op) {
                // Workers deliver before `done`, so once idle every earlier
                // reply has been written and this one flushes in sequence.
                // Runs inline without queueing: queue-wait is zero by
                // construction (its wait shows up as barrier latency for
                // *later* requests, not this one).
                queue.wait_idle();
                out.deliver(seq, engine.handle_request(req_id, Duration::ZERO, &line));
            } else {
                queue.push(seq, req_id, line);
            }
            seq += 1;
            if stop {
                break;
            }
        }
        queue.close();
    });
    if let Some(t0) = drain_started.get() {
        metrics.set_drain_seconds(t0.elapsed().as_secs_f64());
    }
    out.finish()
}

/// Serve the engine's Prometheus text snapshot over HTTP/1.0, forever: one
/// connection at a time (scrapes are rare and tiny), request head drained
/// and ignored, snapshot rendered per scrape. Pair with a
/// `TcpListener::bind` on the `--metrics` address.
pub fn serve_metrics(engine: &Engine, listener: TcpListener) -> io::Result<()> {
    loop {
        let (mut stream, _) = listener.accept()?;
        // Drain the request head (best-effort; a scrape that dawdles past
        // the timeout just gets its snapshot early).
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let mut head = [0u8; 4096];
        let mut seen = 0;
        while seen < head.len() {
            match stream.read(&mut head[seen..]) {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    seen += n;
                    if head[..seen].windows(4).any(|w| w == b"\r\n\r\n") {
                        break;
                    }
                }
            }
        }
        let body = engine.metrics().render_prometheus();
        let reply = format!(
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        let _ = stream.write_all(reply.as_bytes());
    }
}

/// Serve TCP connections: each accepted connection runs its own
/// [`serve_lines`] loop on scoped threads against the shared engine, so
/// concurrent connections coalesce onto the same cluster cores. A
/// `shutdown` op ends its own connection only; the daemon runs until
/// killed — or, when `opts.shutdown` is set, until the flag flips, at
/// which point the listener stops accepting, every live connection drains,
/// and the call returns `Ok(())`.
pub fn serve_tcp(engine: &Engine, listener: TcpListener, opts: &ServeOpts) -> io::Result<()> {
    // Non-blocking accept so the loop can observe the shutdown flag; the
    // accepted sockets themselves are switched back to blocking reads with
    // a short timeout (the serving loop's Tick cadence).
    listener.set_nonblocking(true)?;
    let metrics = engine.metrics();
    let active = AtomicUsize::new(0);
    let active = &active;
    std::thread::scope(|scope| -> io::Result<()> {
        loop {
            if opts
                .shutdown
                .is_some_and(|flag| flag.load(Ordering::Relaxed))
            {
                // Stop accepting; the scope join below waits for every
                // connection thread to finish its own drain.
                return Ok(());
            }
            let (stream, peer) = match listener.accept() {
                Ok(conn) => conn,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                    continue;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if active.load(Ordering::Relaxed) >= opts.max_conns.max(1) {
                metrics.add_conn_rejected();
                let mut stream = stream;
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
                let reply = to_string(&err_reply_retry(
                    None,
                    "conn_rejected",
                    "connection limit reached; retry later",
                    CONN_RETRY_MS,
                ));
                let _ = writeln!(stream, "{reply}");
                continue;
            }
            active.fetch_add(1, Ordering::Relaxed);
            metrics.connection(true);
            let mut conn_opts = opts.clone();
            conn_opts.client = peer.ip().to_string();
            scope.spawn(move || {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(READ_TICK));
                if let Some(wt) = conn_opts.write_timeout {
                    let _ = stream.set_write_timeout(Some(wt));
                }
                match stream.try_clone() {
                    Ok(reader) => {
                        if let Err(e) = serve_lines(engine, reader, stream, &conn_opts) {
                            eprintln!("serve: {peer}: {e}");
                        }
                    }
                    Err(e) => eprintln!("serve: {peer}: {e}"),
                }
                metrics.connection(false);
                active.fetch_sub(1, Ordering::Relaxed);
            });
        }
    })
}

/// Accept-loop poll cadence while the listener has nothing to hand out.
const ACCEPT_POLL: Duration = Duration::from_millis(25);
/// Per-connection read timeout: the Tick cadence for idle reaping and
/// shutdown observation.
const READ_TICK: Duration = Duration::from_millis(100);
/// `retry_after_ms` hint on connection-cap rejections.
const CONN_RETRY_MS: u64 = 100;
