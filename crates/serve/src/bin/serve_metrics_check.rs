//! CI validator for a scraped `--metrics` Prometheus snapshot.
//!
//! ```text
//! serve-metrics-check FILE [--expect-requests N]
//! ```
//!
//! Exits nonzero unless the file is a structurally valid Prometheus text
//! exposition (see [`tarr_serve::check_prometheus`]) that carries every
//! family in [`tarr_serve::REQUIRED_FAMILIES`] — so an exposition that
//! silently drops a metric fails CI, not code review — and, when
//! `--expect-requests` is given, the per-op `tarr_serve_requests_total`
//! counters sum to exactly N (the pin that a scrape taken mid-session saw
//! every dispatched request).

use tarr_serve::{check_prometheus, missing_families};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut file: Option<String> = None;
    let mut expect_requests: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--expect-requests" => {
                i += 1;
                let v = args.get(i).unwrap_or_else(|| {
                    eprintln!("error: --expect-requests needs a value");
                    std::process::exit(2);
                });
                expect_requests = Some(v.parse().unwrap_or_else(|e| {
                    eprintln!("error: --expect-requests: {e}");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                eprintln!("usage: serve-metrics-check FILE [--expect-requests N]");
                std::process::exit(0);
            }
            other if file.is_none() && !other.starts_with('-') => file = Some(other.to_string()),
            other => {
                eprintln!("error: unexpected argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let Some(file) = file else {
        eprintln!("error: no metrics file given");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {file}: {e}");
            std::process::exit(2);
        }
    };
    let missing = missing_families(&text);
    if !missing.is_empty() {
        eprintln!("{file}: FAILED — missing required families: {missing:?}");
        std::process::exit(1);
    }
    match check_prometheus(&text) {
        Ok(r) => {
            if let Some(want) = expect_requests {
                if r.requests_total != want {
                    eprintln!(
                        "{file}: FAILED — tarr_serve_requests_total sums to {}, expected {want}",
                        r.requests_total
                    );
                    std::process::exit(1);
                }
            }
            println!(
                "{file}: OK — {} families, {} series, {} requests",
                r.families, r.series, r.requests_total
            );
        }
        Err(e) => {
            eprintln!("{file}: INVALID — {e}");
            std::process::exit(1);
        }
    }
}
