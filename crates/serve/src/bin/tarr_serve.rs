//! The `tarr-serve` daemon.
//!
//! ```text
//! tarr-serve [--workers N] [--queue-cap N] [--tcp ADDR] [--trace-out PATH]
//!            [--metrics ADDR] [--slow-ms N] [--state-dir DIR]
//! ```
//!
//! Without `--tcp`, requests are read line-by-line from stdin and replies
//! written to stdout in request order — stdout carries **only** reply JSON,
//! so the stream can be diffed against a fixture; status goes to stderr.
//! With `--tcp ADDR`, the daemon listens on ADDR and serves each
//! connection the same protocol (the process then runs until killed).
//!
//! `--trace-out PATH` enables the tarr-trace recorder and exports the
//! JSONL timeline (request-tagged spans, `serve.*` counters, queue-depth
//! and worker gauges) on exit. `--metrics ADDR` serves the Prometheus
//! text-format RED-metrics snapshot over HTTP on ADDR (always available —
//! no recorder needed). `--slow-ms N` logs any request whose queue-wait +
//! service time reaches N milliseconds to stderr with its request id, op,
//! cluster and per-stage self-times; `--slow-ms 0` logs every request.
//!
//! `--state-dir DIR` turns persistence on: the daemon boots from
//! `DIR/snapshot.tsnap` plus the `DIR/events.twal` write-ahead log
//! (recovering a torn tail left by a crash), then fsyncs every `ingest` /
//! `fault` to the WAL before acknowledging it. The `snapshot` and
//! `compact` ops write warm snapshots; a SIGKILL'd daemon restarted with
//! the same `--state-dir` resumes bit-identically.
//!
//! Overload hardening (see `DESIGN.md` §6e for the full runbook):
//! `--max-line-bytes`, `--max-protocol-errors`, `--idle-timeout-ms` and
//! `--write-timeout-ms` bound what one connection may cost;
//! `--max-conns` caps concurrent TCP connections; `--quota-burst` /
//! `--quota-rps` enable a per-client token-bucket quota. Requests carrying
//! `deadline_ms` are shed with a typed `overloaded` reply when the
//! estimated queue wait already exceeds them. SIGTERM drains gracefully:
//! admission stops, in-flight requests finish and flush in order, the WAL
//! is flushed, `--snapshot-on-drain` writes a final warm snapshot, and the
//! exit is clean with a drain report on stderr.
//!
//! Fault injection: the `TARR_CHAOS` environment variable arms the
//! tarr-chaos failpoints (`site=kind@n`, comma-separated; seeded by
//! `TARR_CHAOS_SEED`) across the WAL, snapshot, and connection IO paths —
//! the chaos CI job drives crash/IO-error matrices through the real
//! binary with it.

use std::io;
use std::net::TcpListener;
use std::process::ExitCode;
use std::time::Duration;

use tarr_serve::{serve_lines, serve_metrics, serve_tcp, Engine, QuotaCfg, ServeOpts};

struct Args {
    opts: ServeOpts,
    tcp: Option<String>,
    trace_out: Option<String>,
    metrics: Option<String>,
    slow_ms: Option<u64>,
    state_dir: Option<String>,
    snapshot_on_drain: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        opts: ServeOpts::default(),
        tcp: None,
        trace_out: None,
        metrics: None,
        slow_ms: None,
        state_dir: None,
        snapshot_on_drain: false,
    };
    let mut quota_burst: Option<u64> = None;
    let mut quota_rps: Option<f64> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match a.as_str() {
            "--workers" => {
                args.opts.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--queue-cap" => {
                args.opts.queue_cap = value("--queue-cap")?
                    .parse()
                    .map_err(|e| format!("--queue-cap: {e}"))?;
            }
            "--max-line-bytes" => {
                args.opts.max_line_bytes = value("--max-line-bytes")?
                    .parse()
                    .map_err(|e| format!("--max-line-bytes: {e}"))?;
            }
            "--max-protocol-errors" => {
                args.opts.max_protocol_errors = value("--max-protocol-errors")?
                    .parse()
                    .map_err(|e| format!("--max-protocol-errors: {e}"))?;
            }
            "--idle-timeout-ms" => {
                let ms: u64 = value("--idle-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--idle-timeout-ms: {e}"))?;
                args.opts.idle_timeout = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--write-timeout-ms" => {
                let ms: u64 = value("--write-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--write-timeout-ms: {e}"))?;
                args.opts.write_timeout = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--max-conns" => {
                args.opts.max_conns = value("--max-conns")?
                    .parse()
                    .map_err(|e| format!("--max-conns: {e}"))?;
            }
            "--quota-burst" => {
                quota_burst = Some(
                    value("--quota-burst")?
                        .parse()
                        .map_err(|e| format!("--quota-burst: {e}"))?,
                );
            }
            "--quota-rps" => {
                quota_rps = Some(
                    value("--quota-rps")?
                        .parse()
                        .map_err(|e| format!("--quota-rps: {e}"))?,
                );
            }
            "--snapshot-on-drain" => args.snapshot_on_drain = true,
            "--tcp" => args.tcp = Some(value("--tcp")?),
            "--trace-out" => args.trace_out = Some(value("--trace-out")?),
            "--metrics" => args.metrics = Some(value("--metrics")?),
            "--slow-ms" => {
                args.slow_ms = Some(
                    value("--slow-ms")?
                        .parse()
                        .map_err(|e| format!("--slow-ms: {e}"))?,
                );
            }
            "--state-dir" => args.state_dir = Some(value("--state-dir")?),
            "--help" | "-h" => {
                println!(
                    "tarr-serve [--workers N] [--queue-cap N] [--tcp ADDR] [--trace-out PATH] \
                     [--metrics ADDR] [--slow-ms N] [--state-dir DIR] [--max-line-bytes N] \
                     [--max-protocol-errors N] [--idle-timeout-ms N] [--write-timeout-ms N] \
                     [--max-conns N] [--quota-burst N] [--quota-rps F] [--snapshot-on-drain]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if quota_burst.is_some() || quota_rps.is_some() {
        args.opts.quota = Some(QuotaCfg {
            burst: quota_burst.unwrap_or(16),
            per_sec: quota_rps.unwrap_or(0.0),
        });
    }
    Ok(args)
}

fn main() -> ExitCode {
    let mut args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("tarr-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    match tarr_chaos::arm_from_env() {
        Ok(false) => {}
        Ok(true) => eprintln!(
            "tarr-serve: chaos armed: {}",
            std::env::var("TARR_CHAOS").unwrap_or_default()
        ),
        Err(e) => {
            eprintln!("tarr-serve: bad TARR_CHAOS spec: {e}");
            return ExitCode::FAILURE;
        }
    }
    // SIGTERM → graceful drain: stop admitting, finish in-flight work,
    // flush, snapshot (when asked), report, exit 0.
    let term = tarr_serve::install_sigterm();
    args.opts.shutdown = Some(term);
    if args.trace_out.is_some() {
        tarr_trace::set_enabled(true);
    }
    // Leaked so the metrics listener thread (which outlives the serve loop
    // scope) can borrow it for the process lifetime.
    let engine: &'static Engine =
        match &args.state_dir {
            None => Box::leak(Box::new(Engine::new())),
            Some(dir) => {
                match Engine::with_state_dir(std::path::Path::new(dir)) {
                    Ok((engine, boot)) => {
                        eprintln!(
                    "tarr-serve: state dir {dir}: snapshot {}({} bytes), {} events replayed, \
                     {} skipped, {} torn bytes recovered, {} clusters warm, next event {}",
                    if boot.snapshot_loaded { "loaded " } else { "absent " },
                    boot.snapshot_bytes,
                    boot.events_replayed,
                    boot.events_skipped,
                    boot.recovered_bytes,
                    boot.clusters,
                    boot.next_event_id
                );
                        Box::leak(Box::new(engine))
                    }
                    Err(e) => {
                        eprintln!("tarr-serve: cannot boot from state dir {dir}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
        };
    if let Some(ms) = args.slow_ms {
        engine.set_slow_threshold(Some(Duration::from_millis(ms)));
    }
    if let Some(addr) = &args.metrics {
        let listener = match TcpListener::bind(addr) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("tarr-serve: cannot bind metrics listener {addr}: {e}");
                return ExitCode::FAILURE;
            }
        };
        eprintln!("tarr-serve: metrics on http://{addr}/metrics");
        std::thread::spawn(move || {
            if let Err(e) = serve_metrics(engine, listener) {
                eprintln!("tarr-serve: metrics listener: {e}");
            }
        });
    }
    let result = match &args.tcp {
        Some(addr) => {
            let listener = match TcpListener::bind(addr) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("tarr-serve: cannot bind {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!(
                "tarr-serve: listening on {addr} ({} workers per connection)",
                args.opts.workers.max(1)
            );
            serve_tcp(engine, listener, &args.opts).map(|()| 0)
        }
        None => {
            let stdin = io::stdin();
            serve_lines(engine, stdin.lock(), io::stdout(), &args.opts)
        }
    };
    // Teardown order (shutdown op, EOF, and SIGTERM drain alike): flush
    // the WAL first so every acknowledged mutation is durable, then the
    // optional final snapshot, then export the complete trace, then
    // report. Replies were already flushed in sequence by the serve loop
    // before it returned.
    if let Err(e) = engine.flush() {
        eprintln!("tarr-serve: wal flush failed: {e}");
    }
    let drained = term.load(std::sync::atomic::Ordering::Relaxed);
    if drained && args.snapshot_on_drain && args.state_dir.is_some() {
        // Same code path as the `snapshot` op, driven as a synthetic
        // request so the reply shape (and its error taxonomy) match.
        let reply = engine.handle_request(
            engine.next_request_id(),
            Duration::ZERO,
            r#"{"op":"snapshot"}"#,
        );
        if reply.contains(r#""ok":true"#) {
            eprintln!("tarr-serve: drain snapshot written");
        } else {
            eprintln!("tarr-serve: drain snapshot failed: {reply}");
        }
    }
    if let Some(path) = &args.trace_out {
        tarr_trace::sample_metrics();
        match tarr_trace::export_jsonl(path) {
            Ok(()) => eprintln!("tarr-serve: trace written to {path}"),
            Err(e) => eprintln!("tarr-serve: trace export failed: {e}"),
        }
        tarr_trace::set_enabled(false);
    }
    match result {
        Ok(served) => {
            let s = engine.stats();
            if drained {
                eprintln!(
                    "tarr-serve: drained in {:.3}s (shed {}, quota_rejected {}, conn_rejected {})",
                    engine.metrics().drain_seconds(),
                    engine.metrics().shed_total(),
                    engine.metrics().quota_rejected_total(),
                    engine.metrics().conn_rejected_total(),
                );
            }
            eprintln!(
                "tarr-serve: served {served} requests ({} errors, {} coalesced)",
                s.errors(),
                s.coalesce()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("tarr-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
