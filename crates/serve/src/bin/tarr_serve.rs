//! The `tarr-serve` daemon.
//!
//! ```text
//! tarr-serve [--workers N] [--queue-cap N] [--tcp ADDR] [--trace-out PATH]
//!            [--metrics ADDR] [--slow-ms N] [--state-dir DIR]
//! ```
//!
//! Without `--tcp`, requests are read line-by-line from stdin and replies
//! written to stdout in request order — stdout carries **only** reply JSON,
//! so the stream can be diffed against a fixture; status goes to stderr.
//! With `--tcp ADDR`, the daemon listens on ADDR and serves each
//! connection the same protocol (the process then runs until killed).
//!
//! `--trace-out PATH` enables the tarr-trace recorder and exports the
//! JSONL timeline (request-tagged spans, `serve.*` counters, queue-depth
//! and worker gauges) on exit. `--metrics ADDR` serves the Prometheus
//! text-format RED-metrics snapshot over HTTP on ADDR (always available —
//! no recorder needed). `--slow-ms N` logs any request whose queue-wait +
//! service time reaches N milliseconds to stderr with its request id, op,
//! cluster and per-stage self-times; `--slow-ms 0` logs every request.
//!
//! `--state-dir DIR` turns persistence on: the daemon boots from
//! `DIR/snapshot.tsnap` plus the `DIR/events.twal` write-ahead log
//! (recovering a torn tail left by a crash), then fsyncs every `ingest` /
//! `fault` to the WAL before acknowledging it. The `snapshot` and
//! `compact` ops write warm snapshots; a SIGKILL'd daemon restarted with
//! the same `--state-dir` resumes bit-identically.

use std::io;
use std::net::TcpListener;
use std::process::ExitCode;
use std::time::Duration;

use tarr_serve::{serve_lines, serve_metrics, serve_tcp, Engine, ServeOpts};

struct Args {
    opts: ServeOpts,
    tcp: Option<String>,
    trace_out: Option<String>,
    metrics: Option<String>,
    slow_ms: Option<u64>,
    state_dir: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        opts: ServeOpts::default(),
        tcp: None,
        trace_out: None,
        metrics: None,
        slow_ms: None,
        state_dir: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match a.as_str() {
            "--workers" => {
                args.opts.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--queue-cap" => {
                args.opts.queue_cap = value("--queue-cap")?
                    .parse()
                    .map_err(|e| format!("--queue-cap: {e}"))?;
            }
            "--tcp" => args.tcp = Some(value("--tcp")?),
            "--trace-out" => args.trace_out = Some(value("--trace-out")?),
            "--metrics" => args.metrics = Some(value("--metrics")?),
            "--slow-ms" => {
                args.slow_ms = Some(
                    value("--slow-ms")?
                        .parse()
                        .map_err(|e| format!("--slow-ms: {e}"))?,
                );
            }
            "--state-dir" => args.state_dir = Some(value("--state-dir")?),
            "--help" | "-h" => {
                println!(
                    "tarr-serve [--workers N] [--queue-cap N] [--tcp ADDR] [--trace-out PATH] \
                     [--metrics ADDR] [--slow-ms N] [--state-dir DIR]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("tarr-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.trace_out.is_some() {
        tarr_trace::set_enabled(true);
    }
    // Leaked so the metrics listener thread (which outlives the serve loop
    // scope) can borrow it for the process lifetime.
    let engine: &'static Engine =
        match &args.state_dir {
            None => Box::leak(Box::new(Engine::new())),
            Some(dir) => {
                match Engine::with_state_dir(std::path::Path::new(dir)) {
                    Ok((engine, boot)) => {
                        eprintln!(
                    "tarr-serve: state dir {dir}: snapshot {}({} bytes), {} events replayed, \
                     {} skipped, {} torn bytes recovered, {} clusters warm, next event {}",
                    if boot.snapshot_loaded { "loaded " } else { "absent " },
                    boot.snapshot_bytes,
                    boot.events_replayed,
                    boot.events_skipped,
                    boot.recovered_bytes,
                    boot.clusters,
                    boot.next_event_id
                );
                        Box::leak(Box::new(engine))
                    }
                    Err(e) => {
                        eprintln!("tarr-serve: cannot boot from state dir {dir}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
        };
    if let Some(ms) = args.slow_ms {
        engine.set_slow_threshold(Some(Duration::from_millis(ms)));
    }
    if let Some(addr) = &args.metrics {
        let listener = match TcpListener::bind(addr) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("tarr-serve: cannot bind metrics listener {addr}: {e}");
                return ExitCode::FAILURE;
            }
        };
        eprintln!("tarr-serve: metrics on http://{addr}/metrics");
        std::thread::spawn(move || {
            if let Err(e) = serve_metrics(engine, listener) {
                eprintln!("tarr-serve: metrics listener: {e}");
            }
        });
    }
    let result = match &args.tcp {
        Some(addr) => {
            let listener = match TcpListener::bind(addr) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("tarr-serve: cannot bind {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!(
                "tarr-serve: listening on {addr} ({} workers per connection)",
                args.opts.workers.max(1)
            );
            serve_tcp(engine, listener, &args.opts).map(|()| 0)
        }
        None => {
            let stdin = io::stdin();
            serve_lines(engine, stdin.lock(), io::stdout(), &args.opts)
        }
    };
    // Teardown order (shutdown op and EOF alike): flush the WAL first so
    // every acknowledged mutation is durable, then export the complete
    // trace, then report. Replies were already flushed in sequence by the
    // serve loop before it returned.
    if let Err(e) = engine.flush() {
        eprintln!("tarr-serve: wal flush failed: {e}");
    }
    if let Some(path) = &args.trace_out {
        tarr_trace::sample_metrics();
        match tarr_trace::export_jsonl(path) {
            Ok(()) => eprintln!("tarr-serve: trace written to {path}"),
            Err(e) => eprintln!("tarr-serve: trace export failed: {e}"),
        }
        tarr_trace::set_enabled(false);
    }
    match result {
        Ok(served) => {
            let s = engine.stats();
            eprintln!(
                "tarr-serve: served {served} requests ({} errors, {} coalesced)",
                s.errors(),
                s.coalesce()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("tarr-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
