//! Overload & client-hardening behaviour of the serving stack: protocol
//! limits (line caps, UTF-8, error budgets), deadline shedding, per-client
//! quotas, panic isolation, idle reaping, connection caps, and graceful
//! SIGTERM drain through the real binary.

use std::io::{BufRead, BufReader, Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use tarr_serve::{serve_lines, serve_tcp, Engine, QuotaCfg, ServeOpts};
use tarr_trace::json::{parse, Json};

fn opts1() -> ServeOpts {
    ServeOpts {
        workers: 1,
        queue_cap: 16,
        ..Default::default()
    }
}

fn run(engine: &Engine, input: &[u8], opts: &ServeOpts) -> (u64, Vec<Json>) {
    let mut out = Vec::new();
    let served = serve_lines(engine, input, &mut out, opts).unwrap();
    let replies = String::from_utf8(out)
        .unwrap()
        .lines()
        .map(|l| parse(l).expect("every output line is reply JSON"))
        .collect();
    (served, replies)
}

fn code(reply: &Json) -> Option<&str> {
    reply.get("code").and_then(Json::as_str)
}

#[test]
fn quota_bucket_rejects_over_burst_with_retry_hint() {
    // per_sec = 0: the bucket never refills, so exactly `burst` requests
    // pass — deterministic regardless of timing.
    let engine = Engine::new();
    let opts = ServeOpts {
        quota: Some(QuotaCfg {
            burst: 2,
            per_sec: 0.0,
        }),
        ..opts1()
    };
    let script = [
        r#"{"id":1,"op":"ingest","cluster":"q","gpc_nodes":2}"#,
        r#"{"id":2,"op":"map","cluster":"q","mapper":"hrstc","pattern":"ring"}"#,
        r#"{"id":3,"op":"map","cluster":"q","mapper":"hrstc","pattern":"ring"}"#,
        r#"{"id":4,"op":"shutdown"}"#,
    ]
    .join("\n");
    let (served, replies) = run(&engine, script.as_bytes(), &opts);
    assert_eq!(served, 4);
    assert_eq!(replies[0].get("ok"), Some(&Json::Bool(true)));
    assert_eq!(replies[1].get("ok"), Some(&Json::Bool(true)));
    // Request 3 is over budget: typed rejection, answered in order, with
    // a retry hint (0 = the bucket never refills).
    assert_eq!(replies[2].get("ok"), Some(&Json::Bool(false)));
    assert_eq!(code(&replies[2]), Some("quota_rejected"));
    assert_eq!(replies[2].get("id").and_then(Json::as_u64), Some(3));
    assert_eq!(
        replies[2].get("retry_after_ms").and_then(Json::as_u64),
        Some(0)
    );
    // `shutdown` is quota-exempt: a throttled client may always leave.
    assert_eq!(replies[3].get("ok"), Some(&Json::Bool(true)));
    assert_eq!(engine.metrics().quota_rejected_total(), 1);
}

#[test]
fn quota_refills_over_time() {
    let engine = Engine::new();
    assert!(engine.quota_take("c", 1, 1000.0).is_ok());
    // Bucket drained; at 1000 tokens/sec it is back within a few ms.
    let retry = engine.quota_take("c", 1, 1000.0).unwrap_err();
    assert!(retry <= 1, "hint should be ~1ms, got {retry}");
    std::thread::sleep(Duration::from_millis(20));
    assert!(engine.quota_take("c", 1, 1000.0).is_ok());
    // Distinct clients get distinct buckets.
    assert!(engine.quota_take("other", 1, 0.0).is_ok());
}

#[test]
fn deadline_shedding_is_deterministic_under_backlog() {
    let engine = Engine::new();
    let script = [
        r#"{"id":1,"op":"ingest","cluster":"s","gpc_nodes":2}"#,
        // Holds the single worker long enough that the next line is read
        // while this one is still in flight.
        r#"{"id":2,"op":"debug","action":"sleep","ms":300}"#,
        // deadline_ms 0 with a nonzero backlog must shed.
        r#"{"id":3,"op":"map","cluster":"s","mapper":"hrstc","pattern":"ring","deadline_ms":0}"#,
        r#"{"id":4,"op":"shutdown"}"#,
    ]
    .join("\n");
    let (served, replies) = run(&engine, script.as_bytes(), &opts1());
    assert_eq!(served, 4);
    assert_eq!(replies[1].get("ok"), Some(&Json::Bool(true)), "{replies:?}");
    assert_eq!(replies[2].get("ok"), Some(&Json::Bool(false)));
    assert_eq!(code(&replies[2]), Some("overloaded"));
    assert!(replies[2].get("retry_after_ms").and_then(Json::as_u64) >= Some(1));
    assert_eq!(engine.metrics().shed_total(), 1);
}

#[test]
fn deadline_without_backlog_is_admitted() {
    let engine = Engine::new();
    let script = [
        r#"{"id":1,"op":"ingest","cluster":"d","gpc_nodes":2}"#,
        // An idle pool always admits, however tight the deadline.
        r#"{"id":2,"op":"map","cluster":"d","mapper":"hrstc","pattern":"ring","deadline_ms":0}"#,
        r#"{"id":3,"op":"shutdown"}"#,
    ]
    .join("\n");
    let (_, replies) = run(&engine, script.as_bytes(), &opts1());
    assert_eq!(replies[1].get("ok"), Some(&Json::Bool(true)), "{replies:?}");
    assert_eq!(engine.metrics().shed_total(), 0);
}

#[test]
fn oversized_lines_get_typed_errors_and_bounded_memory() {
    let engine = Engine::new();
    let opts = ServeOpts {
        max_line_bytes: 64,
        ..opts1()
    };
    let mut input = Vec::new();
    input.extend_from_slice(format!("{{\"id\":1,\"pad\":\"{}\"}}\n", "x".repeat(500)).as_bytes());
    input.extend_from_slice(b"{\"id\":2,\"op\":\"ingest\",\"cluster\":\"l\",\"gpc_nodes\":2}\n");
    input.extend_from_slice(b"{\"id\":3,\"op\":\"shutdown\"}\n");
    let (served, replies) = run(&engine, &input, &opts);
    assert_eq!(served, 3);
    assert_eq!(code(&replies[0]), Some("line_too_long"), "{replies:?}");
    // The connection survives: the next requests are served normally.
    assert_eq!(replies[1].get("ok"), Some(&Json::Bool(true)));
    assert_eq!(replies[2].get("ok"), Some(&Json::Bool(true)));
    let text = engine.metrics().render_prometheus();
    assert!(text.contains(r#"tarr_serve_protocol_errors_total{kind="line_too_long"} 1"#));
}

#[test]
fn invalid_utf8_gets_a_typed_error() {
    let engine = Engine::new();
    let mut input: Vec<u8> = Vec::new();
    input.extend_from_slice(b"{\"op\":\xff\xfe}\n");
    input.extend_from_slice(b"{\"id\":2,\"op\":\"shutdown\"}\n");
    let (served, replies) = run(&engine, &input, &opts1());
    assert_eq!(served, 2);
    assert_eq!(code(&replies[0]), Some("bad_utf8"));
    assert_eq!(replies[1].get("ok"), Some(&Json::Bool(true)));
}

#[test]
fn protocol_error_budget_closes_the_connection() {
    let engine = Engine::new();
    let opts = ServeOpts {
        max_protocol_errors: 2,
        ..opts1()
    };
    let script = "not json at all\nstill not json\n{\"id\":3,\"op\":\"stats\"}\n";
    let (served, replies) = run(&engine, script.as_bytes(), &opts);
    // First violation: the engine's established parse-error reply. Second:
    // the budget-exhausting `error_budget`, then the stream closes — the
    // valid request after it is never admitted.
    assert_eq!(served, 2, "{replies:?}");
    assert_eq!(replies[0].get("ok"), Some(&Json::Bool(false)));
    assert_eq!(code(&replies[1]), Some("error_budget"));
    let text = engine.metrics().render_prometheus();
    assert!(text.contains(r#"tarr_serve_protocol_errors_total{kind="bad_json"} 2"#));
}

#[test]
fn worker_panic_is_isolated_into_internal_error() {
    let engine = Engine::new();
    let script = [
        r#"{"id":1,"op":"ingest","cluster":"p","gpc_nodes":2}"#,
        r#"{"id":2,"op":"debug","action":"panic"}"#,
        r#"{"id":3,"op":"map","cluster":"p","mapper":"hrstc","pattern":"ring"}"#,
        r#"{"id":4,"op":"shutdown"}"#,
    ]
    .join("\n");
    let (served, replies) = run(&engine, script.as_bytes(), &opts1());
    assert_eq!(served, 4, "a panicking request costs itself only");
    assert_eq!(replies[1].get("ok"), Some(&Json::Bool(false)));
    assert_eq!(code(&replies[1]), Some("internal_error"));
    assert!(replies[1]
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("panicked"));
    // The worker, the engine, and later requests all survive.
    assert_eq!(replies[2].get("ok"), Some(&Json::Bool(true)));
    assert_eq!(engine.metrics().panics_total(), 1);
    assert!(engine
        .metrics()
        .render_prometheus()
        .contains("tarr_serve_panics_total 1"));
}

#[test]
fn debug_sleep_and_noop_reply_ok() {
    let engine = Engine::new();
    let reply = parse(&engine.handle_line(r#"{"op":"debug","action":"noop"}"#)).unwrap();
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)));
    let reply = parse(&engine.handle_line(r#"{"op":"debug","action":"sleep","ms":1}"#)).unwrap();
    assert_eq!(reply.get("ms").and_then(Json::as_u64), Some(1));
    let reply = parse(&engine.handle_line(r#"{"op":"debug","action":"warp"}"#)).unwrap();
    assert_eq!(reply.get("ok"), Some(&Json::Bool(false)));
}

#[test]
fn graceful_drain_answers_admitted_work_before_returning() {
    // A shutdown flag flipped mid-stream: everything admitted before the
    // flag is observed still gets its reply, then serve_lines returns and
    // records the drain duration.
    let engine = Engine::new();
    let flag: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
    flag.store(true, Ordering::Relaxed);
    let opts = ServeOpts {
        shutdown: Some(flag),
        ..opts1()
    };
    // The flag is checked before the first read: nothing is admitted.
    let (served, replies) = run(&engine, b"{\"id\":1,\"op\":\"stats\"}\n", &opts);
    assert_eq!(served, 0);
    assert!(replies.is_empty());
    assert!(engine.metrics().drain_seconds() >= 0.0);
    assert!(engine
        .metrics()
        .render_prometheus()
        .contains("tarr_serve_drain_seconds"));
}

#[test]
fn idle_connections_are_reaped_over_tcp() {
    let engine: &'static Engine = Box::leak(Box::new(Engine::new()));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        let _ = serve_tcp(
            engine,
            listener,
            &ServeOpts {
                idle_timeout: Some(Duration::from_millis(250)),
                ..opts1()
            },
        );
    });
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    writeln!(
        stream,
        r#"{{"id":1,"op":"ingest","cluster":"i","gpc_nodes":2}}"#
    )
    .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"ok\":true"), "{line}");
    // Now go silent: the reaper closes us with a typed error, then EOF.
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("idle_timeout"), "{line}");
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0, "EOF after reap");
}

#[test]
fn connection_cap_rejects_with_a_typed_line() {
    let engine: &'static Engine = Box::leak(Box::new(Engine::new()));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        let _ = serve_tcp(
            engine,
            listener,
            &ServeOpts {
                max_conns: 1,
                ..opts1()
            },
        );
    });
    // First connection occupies the only slot (prove it is being served).
    let mut first = std::net::TcpStream::connect(addr).unwrap();
    writeln!(first, r#"{{"id":1,"op":"stats"}}"#).unwrap();
    let mut reader = BufReader::new(first.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"ok\":true"), "{line}");
    // Second connection is refused with one typed line, then closed.
    let second = std::net::TcpStream::connect(addr).unwrap();
    let mut rejected = String::new();
    BufReader::new(second)
        .read_to_string(&mut rejected)
        .unwrap();
    let reply = parse(rejected.trim()).unwrap();
    assert_eq!(code(&reply), Some("conn_rejected"), "{rejected}");
    assert!(reply.get("retry_after_ms").and_then(Json::as_u64).is_some());
    assert_eq!(engine.metrics().conn_rejected_total(), 1);
    writeln!(first, r#"{{"op":"shutdown"}}"#).unwrap();
}

/// SIGTERM against the real binary (stdio session): the in-flight session
/// drains, acknowledged replies are all delivered, the exit is clean, and
/// the drain report lands on stderr.
#[test]
fn sigterm_drains_the_real_binary() {
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_tarr-serve"))
        .args(["--workers", "2"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let mut stdin = child.stdin.take().unwrap();
    stdin
        .write_all(b"{\"id\":1,\"op\":\"ingest\",\"cluster\":\"t\",\"gpc_nodes\":2}\n")
        .unwrap();
    stdin.flush().unwrap();
    // Give the request time to be served, then signal. `Child::kill` sends
    // SIGKILL, so shell out for a real SIGTERM.
    std::thread::sleep(Duration::from_millis(400));
    let killed = std::process::Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .unwrap();
    assert!(killed.success());
    std::thread::sleep(Duration::from_millis(100));
    drop(stdin); // EOF unblocks the stdio reader so it can see the flag
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "drain must exit 0: {out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout
            .lines()
            .any(|l| l.contains("\"id\":1") && l.contains("\"ok\":true")),
        "acknowledged reply must be delivered: {stdout}"
    );
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("drained in"), "drain report: {stderr}");
}
