//! Fuzzing the wire protocol: arbitrary bytes, adversarial nesting,
//! extreme numbers, and mid-rune truncation all flow through the real
//! serve loop (and once through a real TCP socket). The invariant is
//! uniform — every reply line is valid JSON, the loop never panics, and
//! the engine keeps serving afterwards.
//!
//! The vendored proptest has no string strategies, so inputs are built
//! from byte vectors and integer strategies.

use proptest::prelude::*;
use std::io::{BufRead, BufReader, Write};
use tarr_serve::{serve_lines, serve_tcp, Engine, ServeOpts};
use tarr_trace::json::{parse, Json};

/// Single worker keeps each proptest case's thread footprint small.
fn opts() -> ServeOpts {
    ServeOpts {
        workers: 1,
        queue_cap: 8,
        ..Default::default()
    }
}

/// Run `input` through the serve loop, return the reply lines after
/// asserting each one parses as JSON.
fn run_raw(engine: &Engine, input: &[u8]) -> Result<Vec<Json>, String> {
    let mut out = Vec::new();
    serve_lines(engine, input, &mut out, &opts()).map_err(|e| e.to_string())?;
    let text = String::from_utf8(out).map_err(|e| format!("non-UTF-8 reply bytes: {e}"))?;
    text.lines()
        .map(|line| parse(line).map_err(|e| format!("non-JSON reply line {line:?}: {e}")))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary bytes on the wire: the loop survives, every reply is
    /// JSON, and the engine still answers afterwards.
    #[test]
    fn raw_bytes_never_break_the_loop(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let engine = Engine::new();
        let replies = run_raw(&engine, &bytes);
        prop_assert!(replies.is_ok(), "{}", replies.unwrap_err());
        prop_assert!(
            engine.handle_line(r#"{"op":"stats"}"#).contains("\"ok\":true"),
            "engine must survive garbage input"
        );
    }

    /// Adversarial nesting up to 4096 levels: the parser's depth cap
    /// turns it into a typed parse error instead of a stack overflow
    /// (the test completing at all is the real assertion).
    #[test]
    fn deep_nesting_is_a_typed_error_not_a_stack_overflow(
        depth in 1usize..4096,
        braces in any::<bool>(),
    ) {
        let engine = Engine::new();
        let line = if braces { "{\"k\":".repeat(depth) } else { "[".repeat(depth) };
        let reply = parse(&engine.handle_line(&line)).unwrap();
        prop_assert_eq!(reply.get("ok"), Some(&Json::Bool(false)), "{:?}", reply);
    }

    /// Numbers far outside any sane range — up to ~60 digits — get a
    /// typed refusal, never a panic or a bogus acknowledgement.
    #[test]
    fn extreme_numbers_get_typed_replies(n in 1u64..u64::MAX, zeros in 0usize..40) {
        let engine = Engine::new();
        let line = format!(
            r#"{{"op":"ingest","cluster":"x","gpc_nodes":{n}{}}}"#,
            "0".repeat(zeros)
        );
        let reply = parse(&engine.handle_line(&line)).unwrap();
        // Either refused outright or (tiny n, zero padding) accepted —
        // but never a panic, and always well-formed JSON back.
        if reply.get("ok") == Some(&Json::Bool(true)) {
            prop_assert!(n.checked_mul(10u64.saturating_pow(zeros as u32)).is_some());
        }
        prop_assert!(
            engine.handle_line(r#"{"op":"stats"}"#).contains("\"ok\":true")
        );
    }

    /// A valid request truncated at every byte offset — including inside
    /// a multi-byte UTF-8 rune — never takes down the session: the next
    /// request on the same connection is still answered.
    #[test]
    fn truncated_requests_are_survivable(cut in 0usize..80) {
        const LINE: &str = r#"{"id":1,"op":"ingest","cluster":"tüv","gpc_nodes":2}"#;
        let bytes = LINE.as_bytes();
        let cut = cut.min(bytes.len());
        let mut input = bytes[..cut].to_vec();
        input.push(b'\n');
        input.extend_from_slice(b"{\"id\":2,\"op\":\"stats\"}\n");
        let engine = Engine::new();
        let replies = run_raw(&engine, &input).unwrap();
        // The truncated line yields one reply (typed error or, at full
        // length, success) unless it was cut to nothing; the follow-up
        // stats must always be answered.
        let last = replies.last().expect("stats reply");
        prop_assert_eq!(last.get("id").and_then(Json::as_u64), Some(2));
        prop_assert_eq!(last.get("ok"), Some(&Json::Bool(true)), "{:?}", last);
        prop_assert!(replies.len() == if cut == 0 { 1 } else { 2 });
    }
}

/// The same contract over a real socket: binary garbage and malformed
/// JSON get typed replies, the connection stays up for a valid request,
/// and the listener keeps accepting fresh connections afterwards.
#[test]
fn garbage_over_tcp_gets_typed_replies_and_the_listener_survives() {
    let engine: &'static Engine = Box::leak(Box::new(Engine::new()));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        let _ = serve_tcp(
            engine,
            listener,
            &ServeOpts {
                workers: 1,
                queue_cap: 8,
                max_protocol_errors: 8,
                ..Default::default()
            },
        );
    });

    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream.write_all(b"\xff\xfe\xfd\n").unwrap(); // invalid UTF-8
    stream.write_all(b"{\"op\": nope}\n").unwrap(); // invalid JSON
    stream
        .write_all(b"{\"id\":3,\"op\":\"stats\"}\n{\"id\":4,\"op\":\"shutdown\"}\n")
        .unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    let replies: Vec<Json> = reader
        .lines()
        .map(|l| parse(&l.unwrap()).expect("every reply is JSON"))
        .collect();
    assert_eq!(replies.len(), 4, "{replies:?}");
    assert_eq!(
        replies[0].get("code").and_then(Json::as_str),
        Some("bad_utf8")
    );
    assert_eq!(
        replies[1].get("ok"),
        Some(&Json::Bool(false)),
        "{:?}",
        replies[1]
    );
    assert_eq!(
        replies[2].get("ok"),
        Some(&Json::Bool(true)),
        "{:?}",
        replies[2]
    );
    assert_eq!(
        replies[3].get("op").and_then(Json::as_str),
        Some("shutdown")
    );

    // `shutdown` ended that connection only — the daemon still accepts.
    let mut fresh = std::net::TcpStream::connect(addr).unwrap();
    fresh.write_all(b"{\"id\":9,\"op\":\"stats\"}\n").unwrap();
    let mut line = String::new();
    BufReader::new(fresh).read_line(&mut line).unwrap();
    let reply = parse(&line).unwrap();
    assert_eq!(reply.get("id").and_then(Json::as_u64), Some(9));
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{line}");
}
