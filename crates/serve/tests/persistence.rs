//! End-to-end tests of the persistence layer: WAL-backed restart,
//! `replace`-gated ingest, `snapshot`/`compact` ops, torn-tail recovery,
//! and the teardown flush contract (trace + WAL complete after a
//! `shutdown` op).

use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

use tarr_serve::Engine;
use tarr_trace::json::{parse, Json};

/// A fresh scratch directory per test.
fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("tarr-serve-persist-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn reply(engine: &Engine, line: &str) -> Json {
    parse(&engine.handle_line(line)).expect("reply parses")
}

fn assert_ok(r: &Json) {
    assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r:?}");
}

const INGEST: &str = r#"{"id":1,"op":"ingest","cluster":"c1","gpc_nodes":2}"#;

#[test]
fn ingest_overwrite_needs_replace() {
    let engine = Engine::new();
    assert_ok(&reply(&engine, INGEST));
    // Same name again: typed rejection, state untouched.
    let before = engine.core("c1").unwrap();
    let r = reply(&engine, INGEST);
    assert_eq!(r.get("ok"), Some(&Json::Bool(false)), "{r:?}");
    assert_eq!(
        r.get("code").and_then(Json::as_str),
        Some("cluster_exists"),
        "{r:?}"
    );
    let msg = r.get("error").and_then(Json::as_str).unwrap();
    assert!(msg.contains("\"replace\": true"), "{msg}");
    assert!(
        std::sync::Arc::ptr_eq(&before, &engine.core("c1").unwrap()),
        "rejected overwrite must not touch the serving core"
    );
    // With the flag: a fresh (here larger) core replaces the binding.
    let r = reply(
        &engine,
        r#"{"id":3,"op":"ingest","cluster":"c1","gpc_nodes":4,"replace":true}"#,
    );
    assert_ok(&r);
    assert_eq!(engine.core("c1").unwrap().size(), 32);
}

#[test]
fn snapshot_without_state_dir_is_typed() {
    let engine = Engine::new();
    assert_ok(&reply(&engine, INGEST));
    for op in ["snapshot", "compact"] {
        let r = reply(&engine, &format!(r#"{{"op":"{op}"}}"#));
        assert_eq!(r.get("ok"), Some(&Json::Bool(false)), "{r:?}");
        assert_eq!(
            r.get("code").and_then(Json::as_str),
            Some("no_state_dir"),
            "{r:?}"
        );
    }
}

/// The cache-transparent probes both sides of a restart differential run.
fn probes(engine: &Engine) -> Vec<String> {
    [
        r#"{"op":"map","cluster":"c1","mapper":"hrstc","pattern":"ring"}"#,
        r#"{"op":"price","cluster":"c1","collective":"allgather","msg_bytes":65536,"mapper":"hrstc"}"#,
        r#"{"op":"price","cluster":"c1","collective":"allgather","msg_bytes":65536}"#,
        r#"{"op":"price","cluster":"c1","collective":"gather","msg_bytes":4096,"mapper":"scotch","fix":"in_place"}"#,
    ]
    .iter()
    .map(|l| engine.handle_line(l))
    .collect()
}

#[test]
fn restart_from_wal_is_bit_identical() {
    let d = tmpdir("wal-restart");
    let mutations = [
        INGEST,
        r#"{"id":2,"op":"fault","cluster":"c1","seed":7,"link_fail":0.05}"#,
    ];
    // Live engine: mutate, probe, drop without any explicit flush — every
    // acknowledged mutation is already fsync'd.
    let live = {
        let (engine, boot) = Engine::with_state_dir(&d).unwrap();
        assert_eq!(boot.clusters, 0);
        for m in &mutations {
            assert_ok(&reply(&engine, m));
        }
        probes(&engine)
    };
    // Restarted engine: boots from the WAL alone (no snapshot was taken).
    let (engine, boot) = Engine::with_state_dir(&d).unwrap();
    assert!(!boot.snapshot_loaded);
    assert_eq!(boot.events_replayed, 2);
    assert_eq!(boot.clusters, 1);
    assert_eq!(boot.next_event_id, 3);
    assert_eq!(probes(&engine), live, "probe divergence after restart");
    let _ = std::fs::remove_dir_all(&d);
}

#[test]
fn snapshot_then_compact_then_restart() {
    let d = tmpdir("snap-compact");
    let live = {
        let (engine, _) = Engine::with_state_dir(&d).unwrap();
        assert_ok(&reply(&engine, INGEST));
        // Warm the caches so the snapshot carries real state.
        let live = probes(&engine);
        let r = reply(&engine, r#"{"op":"snapshot"}"#);
        assert_ok(&r);
        assert_eq!(r.get("clusters").and_then(Json::as_u64), Some(1));
        assert_eq!(r.get("last_event_id").and_then(Json::as_u64), Some(1));
        assert!(d.join(tarr_replay::SNAP_FILE).exists());
        // A fault after the snapshot lands in the WAL tail...
        assert_ok(&reply(
            &engine,
            r#"{"op":"fault","cluster":"c1","seed":9,"link_fail":0.05}"#,
        ));
        // ...and compact folds it in and truncates the log.
        let r = reply(&engine, r#"{"op":"compact"}"#);
        assert_ok(&r);
        assert_eq!(r.get("last_event_id").and_then(Json::as_u64), Some(2));
        let wal_bytes = r.get("wal_bytes").and_then(Json::as_u64).unwrap();
        assert_eq!(wal_bytes, tarr_replay::WAL_MAGIC.len() as u64);
        drop(live);
        probes(&engine)
    };
    let (engine, boot) = Engine::with_state_dir(&d).unwrap();
    assert!(boot.snapshot_loaded);
    assert_eq!(boot.events_replayed, 0, "compact left nothing to replay");
    assert_eq!(boot.next_event_id, 3);
    assert_eq!(
        probes(&engine),
        live,
        "probe divergence after compacted restart"
    );
    let _ = std::fs::remove_dir_all(&d);
}

#[test]
fn torn_wal_tail_is_recovered_on_boot() {
    let d = tmpdir("torn");
    {
        let (engine, _) = Engine::with_state_dir(&d).unwrap();
        assert_ok(&reply(&engine, INGEST));
        assert_ok(&reply(
            &engine,
            r#"{"op":"fault","cluster":"c1","seed":3,"link_fail":0.05}"#,
        ));
    }
    // Simulate a crash mid-append: chop bytes off the last record.
    let wal = d.join(tarr_replay::WAL_FILE);
    let len = std::fs::metadata(&wal).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&wal).unwrap();
    f.set_len(len - 7).unwrap();
    drop(f);
    let (engine, boot) = Engine::with_state_dir(&d).unwrap();
    assert!(boot.recovered_bytes > 0, "{boot:?}");
    assert_eq!(
        boot.events_replayed, 1,
        "only the ingest survived: {boot:?}"
    );
    assert_eq!(boot.next_event_id, 2);
    // The torn fault was never acknowledged; the cluster serves pre-fault.
    assert_ok(&reply(
        &engine,
        r#"{"op":"map","cluster":"c1","mapper":"hrstc","pattern":"ring"}"#,
    ));
    let _ = std::fs::remove_dir_all(&d);
}

/// Spawn the real daemon reading stdin, with a state dir.
fn spawn_serve(dir: &std::path::Path, extra: &[&str]) -> Child {
    Command::new(env!("CARGO_BIN_EXE_tarr-serve"))
        .args(["--workers", "2", "--state-dir", dir.to_str().unwrap()])
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap()
}

#[test]
fn sigkill_and_restart_resumes_bit_identically() {
    // The in-binary version of the CI replay job: serve a scripted session
    // with --state-dir, SIGKILL the daemon mid-session (after the replies
    // to every mutation were read, i.e. acknowledged), restart from disk,
    // finish the session, and diff the concatenated replies against a
    // never-killed run. Everything after the kill point is
    // cache-transparent (map/price), so the reply streams must be
    // byte-identical.
    let part1 = [
        INGEST,
        r#"{"id":2,"op":"fault","cluster":"c1","seed":7,"link_fail":0.05}"#,
        r#"{"id":3,"op":"price","cluster":"c1","collective":"allgather","msg_bytes":65536,"mapper":"hrstc"}"#,
    ];
    let part2 = [
        r#"{"id":4,"op":"map","cluster":"c1","mapper":"hrstc","pattern":"ring"}"#,
        r#"{"id":5,"op":"price","cluster":"c1","collective":"allgather","msg_bytes":65536,"mapper":"hrstc"}"#,
        r#"{"id":6,"op":"price","cluster":"c1","collective":"gather","msg_bytes":4096}"#,
        r#"{"id":7,"op":"shutdown"}"#,
    ];

    // Reference: the whole session against one uninterrupted daemon.
    let d_ref = tmpdir("kill-ref");
    let mut child = spawn_serve(&d_ref, &[]);
    let mut stdin = child.stdin.take().unwrap();
    for l in part1.iter().chain(&part2) {
        writeln!(stdin, "{l}").unwrap();
    }
    drop(stdin);
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let reference = String::from_utf8(out.stdout).unwrap();
    assert_eq!(reference.lines().count(), part1.len() + part2.len());

    // Killed run: part 1, read its replies, SIGKILL, restart, part 2.
    let d = tmpdir("kill-run");
    let mut child = spawn_serve(&d, &[]);
    let mut stdin = child.stdin.take().unwrap();
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut killed = String::new();
    for l in &part1 {
        writeln!(stdin, "{l}").unwrap();
        let mut line = String::new();
        stdout.read_line(&mut line).unwrap();
        killed.push_str(&line);
    }
    child.kill().unwrap(); // SIGKILL: no teardown path runs
    child.wait().unwrap();

    let mut child = spawn_serve(&d, &[]);
    let mut stdin = child.stdin.take().unwrap();
    for l in &part2 {
        writeln!(stdin, "{l}").unwrap();
    }
    drop(stdin);
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    killed.push_str(&String::from_utf8(out.stdout).unwrap());

    assert_eq!(
        killed, reference,
        "kill+restart reply stream diverged from the uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&d_ref);
    let _ = std::fs::remove_dir_all(&d);
}

#[test]
fn shutdown_flushes_trace_and_wal() {
    // The teardown contract: after a `shutdown` op the process exits with
    // a complete, schema-valid trace file and a clean, fully-synced WAL.
    let d = tmpdir("teardown");
    let trace_path = d.join("trace.jsonl");
    let mut child = spawn_serve(&d, &["--trace-out", trace_path.to_str().unwrap()]);
    let mut stdin = child.stdin.take().unwrap();
    writeln!(stdin, "{INGEST}").unwrap();
    writeln!(
        stdin,
        r#"{{"id":2,"op":"fault","cluster":"c1","seed":7,"link_fail":0.05}}"#
    )
    .unwrap();
    writeln!(stdin, r#"{{"id":3,"op":"shutdown"}}"#).unwrap();
    // Deliberately no stdin close: the shutdown op alone must tear down.
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    drop(stdin);

    // Trace file: present and schema-valid, with the serve spans recorded.
    let trace = std::fs::read_to_string(&trace_path).unwrap();
    let exp = tarr_trace::Expectations {
        spans: vec![
            "serve.handle".into(),
            "serve.ingest".into(),
            "serve.fault".into(),
        ],
        counters: vec!["serve.request".into()],
        req_id_spans: vec!["serve.handle".into()],
        ..Default::default()
    };
    let report = tarr_trace::validate_jsonl(&trace, &exp).unwrap();
    assert!(report.spans >= 3, "{report:?}");

    // WAL: clean tail, both mutations present, decodable end to end.
    let (records, tail) = tarr_replay::read_wal(&d.join(tarr_replay::WAL_FILE)).unwrap();
    assert_eq!(tail, tarr_replay::WalTail::Clean);
    assert_eq!(records.len(), 2);
    assert_eq!(records[0].event.op(), "ingest");
    assert_eq!(records[1].event.op(), "fault");
    let _ = std::fs::remove_dir_all(&d);
}
