//! End-to-end tests of the serve stack: engine dispatch, protocol
//! round-trips, determinism of a scripted session at any worker count, and
//! agreement with a solo [`Session`] on the same cluster.

use std::io::{BufRead, BufReader, Write};
use tarr_core::{DistanceBackend, Mapper, PatternKind, Scheme, Session, SessionConfig};
use tarr_mapping::{InitialMapping, OrderFix};
use tarr_serve::{serve_lines, serve_tcp, Engine, ServeOpts};
use tarr_topo::Cluster;
use tarr_trace::json::{parse, Json};

const SCRIPT: &[&str] = &[
    r#"{"id":1,"op":"ingest","cluster":"c1","gpc_nodes":4}"#,
    r#"{"id":2,"op":"map","cluster":"c1","mapper":"hrstc","pattern":"ring"}"#,
    r#"{"id":3,"op":"price","cluster":"c1","collective":"allgather","msg_bytes":65536,"mapper":"hrstc","fix":"in_place"}"#,
    r#"{"id":4,"op":"price","cluster":"c1","collective":"allgather","msg_bytes":65536,"mapper":"hrstc","fix":"in_place"}"#,
    r#"{"id":5,"op":"price","cluster":"c1","collective":"allgather","msg_bytes":65536}"#,
    r#"{"id":6,"op":"reorder","cluster":"c1","mapper":"scotch","pattern":"rd"}"#,
    r#"{"id":7,"op":"fault","cluster":"c1","seed":7,"link_fail":0.02}"#,
    r#"{"id":8,"op":"map","cluster":"c1","mapper":"hrstc","pattern":"ring"}"#,
    r#"{"id":9,"op":"price","cluster":"c1","collective":"gather","msg_bytes":4096,"mapper":"greedy","fix":"end_shuffle"}"#,
];

fn run_script(engine: &Engine, lines: &[&str]) -> Vec<Json> {
    lines
        .iter()
        .map(|l| parse(&engine.handle_line(l)).expect("reply parses"))
        .collect()
}

fn field_f64(reply: &Json, key: &str) -> f64 {
    reply
        .get(key)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("reply lacks {key}: {reply:?}"))
}

#[test]
fn scripted_session_is_ok_and_deterministic() {
    let a = run_script(&Engine::new(), SCRIPT);
    let b = run_script(&Engine::new(), SCRIPT);
    assert_eq!(a, b, "two fresh engines must produce identical replies");
    for (i, reply) in a.iter().enumerate() {
        assert_eq!(
            reply.get("ok"),
            Some(&Json::Bool(true)),
            "request {i} failed: {reply:?}"
        );
        assert_eq!(reply.get("id").and_then(Json::as_u64), Some(i as u64 + 1));
    }
    // Warm repeat of the identical price request returns the identical
    // number.
    assert_eq!(
        field_f64(&a[2], "seconds").to_bits(),
        field_f64(&a[3], "seconds").to_bits()
    );
    // Reordering beats (or at worst ties) the default here.
    assert!(field_f64(&a[2], "seconds") <= field_f64(&a[4], "seconds"));
}

#[test]
fn engine_agrees_with_solo_session() {
    let engine = Engine::new();
    let replies = run_script(&engine, SCRIPT);

    // Mirror the script's pre-fault state with a solo session. The protocol
    // defaults: implicit backend, block-bunch layout, default seed.
    let cluster = Cluster::gpc(4);
    let p = cluster.total_cores();
    let mut solo = Session::from_layout(
        cluster,
        InitialMapping::BLOCK_BUNCH,
        p,
        SessionConfig {
            backend: DistanceBackend::Implicit,
            ..SessionConfig::default()
        },
    );
    let mapping: Vec<u64> = replies[1]
        .get("mapping")
        .and_then(Json::as_arr)
        .expect("map reply carries the mapping")
        .iter()
        .map(|v| v.as_u64().unwrap())
        .collect();
    let solo_mapping: Vec<u64> = solo
        .mapping(Mapper::Hrstc, PatternKind::Ring)
        .mapping
        .iter()
        .map(|&v| v as u64)
        .collect();
    assert_eq!(mapping, solo_mapping);

    let t = solo.allgather_time(65536, Scheme::hrstc(OrderFix::InPlace));
    assert_eq!(field_f64(&replies[2], "seconds").to_bits(), t.to_bits());
    let t = solo.allgather_time(65536, Scheme::Default);
    assert_eq!(field_f64(&replies[4], "seconds").to_bits(), t.to_bits());
}

#[test]
fn errors_are_typed_not_fatal() {
    let engine = Engine::new();
    for (line, needle) in [
        ("{not json", "bad request"),
        (r#"{"op":"frobnicate"}"#, "unknown op"),
        (
            r#"{"op":"map","cluster":"nope","mapper":"hrstc","pattern":"ring"}"#,
            "unknown cluster",
        ),
        (r#"{"op":"ingest","cluster":"x"}"#, "ingest needs"),
        (r#"{"op":"price","cluster":"nope"}"#, "unknown cluster"),
    ] {
        let reply = parse(&engine.handle_line(line)).unwrap();
        assert_eq!(reply.get("ok"), Some(&Json::Bool(false)), "line: {line}");
        let msg = reply.get("error").and_then(Json::as_str).unwrap();
        assert!(msg.contains(needle), "{msg:?} lacks {needle:?}");
    }
    assert_eq!(engine.stats().errors(), 5);
    // The engine still works after the error barrage.
    let ok = engine.handle_line(r#"{"op":"ingest","cluster":"x","gpc_nodes":2}"#);
    assert!(ok.contains("\"ok\":true"));
}

#[test]
fn worker_count_does_not_change_the_output_stream() {
    // The script interleaves mutating ops (ingest, fault) with requests
    // that depend on them, so any scheduling leak — a map outrunning its
    // ingest, a price outrunning a fault — shows up as a diff. Repeat the
    // parallel runs: the pre-barrier race was intermittent.
    let script = SCRIPT.join("\n");
    let run = |workers: usize| {
        let engine = Engine::new();
        let mut out = Vec::new();
        let served = serve_lines(
            &engine,
            script.as_bytes(),
            &mut out,
            &ServeOpts {
                workers,
                queue_cap: 4,
            },
        )
        .unwrap();
        assert_eq!(served, SCRIPT.len() as u64);
        String::from_utf8(out).unwrap()
    };
    let serial = run(1);
    for trial in 0..8 {
        assert_eq!(
            serial,
            run(8),
            "reply stream must be byte-identical at any worker count (trial {trial})"
        );
    }
}

#[test]
fn shutdown_stops_the_stream() {
    let engine = Engine::new();
    let script = [
        r#"{"id":1,"op":"ingest","cluster":"c1","gpc_nodes":2}"#,
        r#"{"id":2,"op":"shutdown"}"#,
        r#"{"id":3,"op":"stats"}"#,
    ]
    .join("\n");
    let mut out = Vec::new();
    let served = serve_lines(&engine, script.as_bytes(), &mut out, &ServeOpts::default()).unwrap();
    assert_eq!(served, 2, "the line after shutdown is never admitted");
    let text = String::from_utf8(out).unwrap();
    assert_eq!(text.lines().count(), 2);
    assert!(text.lines().nth(1).unwrap().contains("\"op\":\"shutdown\""));
}

#[test]
fn tcp_round_trip() {
    let engine: &'static Engine = Box::leak(Box::new(Engine::new()));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        let _ = serve_tcp(
            engine,
            listener,
            &ServeOpts {
                workers: 2,
                queue_cap: 16,
            },
        );
    });
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    let mut send = |line: &str| writeln!(stream, "{line}").unwrap();
    send(r#"{"id":1,"op":"ingest","cluster":"t","gpc_nodes":2}"#);
    send(
        r#"{"id":2,"op":"price","cluster":"t","collective":"bcast","msg_bytes":1024,"mapper":"hrstc"}"#,
    );
    send(r#"{"id":3,"op":"shutdown"}"#);
    let reader = BufReader::new(stream.try_clone().unwrap());
    let replies: Vec<String> = reader.lines().map(|l| l.unwrap()).collect();
    assert_eq!(replies.len(), 3);
    for (i, r) in replies.iter().enumerate() {
        let v = parse(r).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "reply {i}: {r}");
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(i as u64 + 1));
    }
}
