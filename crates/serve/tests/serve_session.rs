//! End-to-end tests of the serve stack: engine dispatch, protocol
//! round-trips, determinism of a scripted session at any worker count, and
//! agreement with a solo [`Session`] on the same cluster.

use std::io::{BufRead, BufReader, Read, Write};
use tarr_core::{DistanceBackend, Mapper, PatternKind, Scheme, Session, SessionConfig};
use tarr_mapping::{InitialMapping, OrderFix};
use tarr_serve::{check_prometheus, serve_lines, serve_metrics, serve_tcp, Engine, ServeOpts};
use tarr_topo::Cluster;
use tarr_trace::json::{parse, Json};

/// A repo-root fixture file (the same ones the CI serve job uses).
fn fixture(name: &str) -> String {
    let path = format!("{}/../../tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

const SCRIPT: &[&str] = &[
    r#"{"id":1,"op":"ingest","cluster":"c1","gpc_nodes":4}"#,
    r#"{"id":2,"op":"map","cluster":"c1","mapper":"hrstc","pattern":"ring"}"#,
    r#"{"id":3,"op":"price","cluster":"c1","collective":"allgather","msg_bytes":65536,"mapper":"hrstc","fix":"in_place"}"#,
    r#"{"id":4,"op":"price","cluster":"c1","collective":"allgather","msg_bytes":65536,"mapper":"hrstc","fix":"in_place"}"#,
    r#"{"id":5,"op":"price","cluster":"c1","collective":"allgather","msg_bytes":65536}"#,
    r#"{"id":6,"op":"reorder","cluster":"c1","mapper":"scotch","pattern":"rd"}"#,
    r#"{"id":7,"op":"fault","cluster":"c1","seed":7,"link_fail":0.02}"#,
    r#"{"id":8,"op":"map","cluster":"c1","mapper":"hrstc","pattern":"ring"}"#,
    r#"{"id":9,"op":"price","cluster":"c1","collective":"gather","msg_bytes":4096,"mapper":"greedy","fix":"end_shuffle"}"#,
];

fn run_script(engine: &Engine, lines: &[&str]) -> Vec<Json> {
    lines
        .iter()
        .map(|l| parse(&engine.handle_line(l)).expect("reply parses"))
        .collect()
}

fn field_f64(reply: &Json, key: &str) -> f64 {
    reply
        .get(key)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("reply lacks {key}: {reply:?}"))
}

#[test]
fn scripted_session_is_ok_and_deterministic() {
    let a = run_script(&Engine::new(), SCRIPT);
    let b = run_script(&Engine::new(), SCRIPT);
    assert_eq!(a, b, "two fresh engines must produce identical replies");
    for (i, reply) in a.iter().enumerate() {
        assert_eq!(
            reply.get("ok"),
            Some(&Json::Bool(true)),
            "request {i} failed: {reply:?}"
        );
        assert_eq!(reply.get("id").and_then(Json::as_u64), Some(i as u64 + 1));
    }
    // Warm repeat of the identical price request returns the identical
    // number.
    assert_eq!(
        field_f64(&a[2], "seconds").to_bits(),
        field_f64(&a[3], "seconds").to_bits()
    );
    // Reordering beats (or at worst ties) the default here.
    assert!(field_f64(&a[2], "seconds") <= field_f64(&a[4], "seconds"));
}

#[test]
fn engine_agrees_with_solo_session() {
    let engine = Engine::new();
    let replies = run_script(&engine, SCRIPT);

    // Mirror the script's pre-fault state with a solo session. The protocol
    // defaults: implicit backend, block-bunch layout, default seed.
    let cluster = Cluster::gpc(4);
    let p = cluster.total_cores();
    let mut solo = Session::from_layout(
        cluster,
        InitialMapping::BLOCK_BUNCH,
        p,
        SessionConfig {
            backend: DistanceBackend::Implicit,
            ..SessionConfig::default()
        },
    );
    let mapping: Vec<u64> = replies[1]
        .get("mapping")
        .and_then(Json::as_arr)
        .expect("map reply carries the mapping")
        .iter()
        .map(|v| v.as_u64().unwrap())
        .collect();
    let solo_mapping: Vec<u64> = solo
        .mapping(Mapper::Hrstc, PatternKind::Ring)
        .mapping
        .iter()
        .map(|&v| v as u64)
        .collect();
    assert_eq!(mapping, solo_mapping);

    let t = solo.allgather_time(65536, Scheme::hrstc(OrderFix::InPlace));
    assert_eq!(field_f64(&replies[2], "seconds").to_bits(), t.to_bits());
    let t = solo.allgather_time(65536, Scheme::Default);
    assert_eq!(field_f64(&replies[4], "seconds").to_bits(), t.to_bits());
}

#[test]
fn errors_are_typed_not_fatal() {
    let engine = Engine::new();
    for (line, needle) in [
        ("{not json", "bad request"),
        (r#"{"op":"frobnicate"}"#, "unknown op"),
        (
            r#"{"op":"map","cluster":"nope","mapper":"hrstc","pattern":"ring"}"#,
            "unknown cluster",
        ),
        (r#"{"op":"ingest","cluster":"x"}"#, "ingest needs"),
        (r#"{"op":"price","cluster":"nope"}"#, "unknown cluster"),
    ] {
        let reply = parse(&engine.handle_line(line)).unwrap();
        assert_eq!(reply.get("ok"), Some(&Json::Bool(false)), "line: {line}");
        let msg = reply.get("error").and_then(Json::as_str).unwrap();
        assert!(msg.contains(needle), "{msg:?} lacks {needle:?}");
    }
    assert_eq!(engine.stats().errors(), 5);
    // The engine still works after the error barrage.
    let ok = engine.handle_line(r#"{"op":"ingest","cluster":"x","gpc_nodes":2}"#);
    assert!(ok.contains("\"ok\":true"));
}

#[test]
fn worker_count_does_not_change_the_output_stream() {
    // The script interleaves mutating ops (ingest, fault) with requests
    // that depend on them, so any scheduling leak — a map outrunning its
    // ingest, a price outrunning a fault — shows up as a diff. Repeat the
    // parallel runs: the pre-barrier race was intermittent.
    let script = SCRIPT.join("\n");
    let run = |workers: usize| {
        let engine = Engine::new();
        let mut out = Vec::new();
        let served = serve_lines(
            &engine,
            script.as_bytes(),
            &mut out,
            &ServeOpts {
                workers,
                queue_cap: 4,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(served, SCRIPT.len() as u64);
        String::from_utf8(out).unwrap()
    };
    let serial = run(1);
    for trial in 0..8 {
        assert_eq!(
            serial,
            run(8),
            "reply stream must be byte-identical at any worker count (trial {trial})"
        );
    }
}

#[test]
fn shutdown_stops_the_stream() {
    let engine = Engine::new();
    let script = [
        r#"{"id":1,"op":"ingest","cluster":"c1","gpc_nodes":2}"#,
        r#"{"id":2,"op":"shutdown"}"#,
        r#"{"id":3,"op":"stats"}"#,
    ]
    .join("\n");
    let mut out = Vec::new();
    let served = serve_lines(&engine, script.as_bytes(), &mut out, &ServeOpts::default()).unwrap();
    assert_eq!(served, 2, "the line after shutdown is never admitted");
    let text = String::from_utf8(out).unwrap();
    assert_eq!(text.lines().count(), 2);
    assert!(text.lines().nth(1).unwrap().contains("\"op\":\"shutdown\""));
}

#[test]
fn golden_fixture_is_byte_identical_with_metrics_enabled() {
    // The CI golden fixture, run in-process: RED metrics record every
    // request (they are always on), and the reply stream must still be
    // byte-identical to the golden at any worker count — the proof that
    // observability never leaks into reply contents.
    let (snapshot, warnings) =
        tarr_ingest::ingest_snapshot(&fixture("gpc_node.xml"), &fixture("gpc_ib.txt")).unwrap();
    assert!(warnings.is_empty(), "{warnings:?}");
    let snap_path =
        std::env::temp_dir().join(format!("tarr_serve_golden_{}.snap", std::process::id()));
    std::fs::write(&snap_path, snapshot.to_text()).unwrap();
    let script = fixture("serve_session.txt").replace("/tmp/gpc.snap", snap_path.to_str().unwrap());
    let golden = fixture("serve_session.golden");
    for workers in [1, 8] {
        let engine = Engine::new();
        let mut out = Vec::new();
        let served = serve_lines(
            &engine,
            script.as_bytes(),
            &mut out,
            &ServeOpts {
                workers,
                queue_cap: 4,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(served, 12);
        assert_eq!(
            String::from_utf8(out).unwrap(),
            golden,
            "golden fixture diverged at {workers} worker(s)"
        );
        assert_eq!(engine.metrics().total_requests(), 12);
        let report = check_prometheus(&engine.metrics().render_prometheus()).unwrap();
        assert_eq!(report.requests_total, 12);
    }
    let _ = std::fs::remove_file(&snap_path);
}

#[test]
fn latency_histograms_count_every_admitted_request() {
    // Queue-wait and service histograms each get exactly one sample per
    // dispatched request, across all ops.
    let engine = Engine::new();
    let script = SCRIPT.join("\n");
    let mut out = Vec::new();
    let served = serve_lines(
        &engine,
        script.as_bytes(),
        &mut out,
        &ServeOpts {
            workers: 4,
            queue_cap: 4,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(served, SCRIPT.len() as u64);
    let m = engine.metrics();
    let wait: u64 = tarr_serve::metrics::OPS
        .iter()
        .map(|op| m.queue_wait_snapshot(op).count)
        .sum();
    let service: u64 = tarr_serve::metrics::OPS
        .iter()
        .map(|op| m.service_snapshot(op).count)
        .sum();
    assert_eq!(wait, served, "one queue-wait sample per request");
    assert_eq!(service, served, "one service sample per request");
    assert_eq!(m.total_requests(), served);
    // The inline-run mutating ops (ingest, fault) never queue: their
    // queue-wait is recorded as exactly zero, which the log2 histogram
    // keeps in its dedicated zero bucket.
    assert!(m.queue_wait_snapshot("ingest").max == 0);
    assert!(m.queue_wait_snapshot("fault").max == 0);
}

#[test]
fn metrics_op_renders_parseable_prometheus() {
    let engine = Engine::new();
    engine.handle_line(r#"{"op":"ingest","cluster":"m1","gpc_nodes":2}"#);
    engine.handle_line(
        r#"{"op":"price","cluster":"m1","collective":"bcast","msg_bytes":1024,"mapper":"hrstc"}"#,
    );
    engine.handle_line(r#"{"op":"frobnicate"}"#);
    let reply = parse(&engine.handle_line(r#"{"id":9,"op":"metrics"}"#)).unwrap();
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)));
    let text = reply.get("text").and_then(Json::as_str).unwrap();
    let report = check_prometheus(text).unwrap();
    // `begin` counts at dispatch, so the in-flight metrics request itself
    // is part of its own snapshot and the totals line up exactly.
    assert_eq!(report.requests_total, engine.stats().requests());
    assert!(text.contains(r#"tarr_serve_requests_total{op="price"} 1"#));
    assert!(text.contains(r#"tarr_serve_errors_total{op="other"} 1"#));
    assert!(text.contains(r#"tarr_serve_cluster_requests_total{cluster="m1"} 2"#));
}

#[test]
fn stats_breaks_caches_down_per_cluster() {
    let engine = Engine::new();
    engine.handle_line(r#"{"op":"ingest","cluster":"s1","gpc_nodes":2}"#);
    let price =
        r#"{"op":"price","cluster":"s1","collective":"bcast","msg_bytes":1024,"mapper":"hrstc"}"#;
    engine.handle_line(price);
    engine.handle_line(price); // warm repeat: guaranteed cache traffic
    let reply = parse(&engine.handle_line(r#"{"op":"stats"}"#)).unwrap();
    let caches = reply.get("cluster_caches").expect("cluster_caches field");
    let s1 = caches.get("s1").expect("per-cluster entry");
    let mut hits = 0;
    let mut misses = 0;
    for family in ["mapping", "comm", "sched", "price"] {
        let fam = s1.get(family).unwrap_or_else(|| panic!("{family} entry"));
        for outcome in ["hit", "miss", "coalesced"] {
            let v = fam.get(outcome).and_then(Json::as_u64);
            assert!(v.is_some(), "{family}.{outcome} missing: {reply:?}");
            match outcome {
                "hit" => hits += v.unwrap(),
                "miss" => misses += v.unwrap(),
                _ => {}
            }
        }
    }
    assert!(misses > 0, "first price must miss: {reply:?}");
    assert!(hits > 0, "warm repeat must hit: {reply:?}");
}

#[test]
fn metrics_endpoint_serves_http() {
    let engine: &'static Engine = Box::leak(Box::new(Engine::new()));
    engine.handle_line(r#"{"op":"ingest","cluster":"h1","gpc_nodes":2}"#);
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        let _ = serve_metrics(engine, listener);
    });
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
    assert!(head.starts_with("HTTP/1.0 200 OK"), "{head}");
    assert!(head.contains("text/plain"), "{head}");
    let report = check_prometheus(body).unwrap();
    assert_eq!(report.requests_total, engine.stats().requests());
}

#[test]
fn tcp_round_trip() {
    let engine: &'static Engine = Box::leak(Box::new(Engine::new()));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        let _ = serve_tcp(
            engine,
            listener,
            &ServeOpts {
                workers: 2,
                queue_cap: 16,
                ..Default::default()
            },
        );
    });
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    let mut send = |line: &str| writeln!(stream, "{line}").unwrap();
    send(r#"{"id":1,"op":"ingest","cluster":"t","gpc_nodes":2}"#);
    send(
        r#"{"id":2,"op":"price","cluster":"t","collective":"bcast","msg_bytes":1024,"mapper":"hrstc"}"#,
    );
    send(r#"{"id":3,"op":"shutdown"}"#);
    let reader = BufReader::new(stream.try_clone().unwrap());
    let replies: Vec<String> = reader.lines().map(|l| l.unwrap()).collect();
    assert_eq!(replies.len(), 3);
    for (i, r) in replies.iter().enumerate() {
        let v = parse(r).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "reply {i}: {r}");
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(i as u64 + 1));
    }
}

#[test]
fn slow_ms_zero_logs_every_request_to_stderr() {
    // --slow-ms 0 means "log every request" — the only threshold the test
    // can rely on, since warm requests finish in microseconds. Drives the
    // real binary so the stderr format is covered end to end.
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_tarr-serve"))
        .args(["--workers", "1", "--slow-ms", "0"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .and_then(|mut child| {
            child
                .stdin
                .take()
                .unwrap()
                .write_all(
                    concat!(
                        r#"{"id":1,"op":"ingest","cluster":"t","gpc_nodes":2}"#,
                        "\n",
                        r#"{"id":2,"op":"map","cluster":"t","mapper":"hrstc","pattern":"ring"}"#,
                        "\n",
                    )
                    .as_bytes(),
                )
                .unwrap();
            child.wait_with_output()
        })
        .unwrap();
    assert!(out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    let slow: Vec<&str> = stderr
        .lines()
        .filter(|l| l.contains("slow request"))
        .collect();
    assert_eq!(slow.len(), 2, "one log line per request:\n{stderr}");
    assert!(
        slow[0].contains("slow request 1 op=ingest cluster=t"),
        "{}",
        slow[0]
    );
    assert!(
        slow[1].contains("slow request 2 op=map cluster=t") && slow[1].contains("stages:"),
        "{}",
        slow[1]
    );
    // Stage self-times come from the request scope even with the recorder
    // off — the breakdown names the serve.handle stage at minimum.
    assert!(slow[1].contains("serve.handle="), "{}", slow[1]);
}
