//! Fault injection through the serving stack: WAL-degraded read-only mode,
//! connection IO failpoints, and the crash matrix — kill the real binary
//! at every persistence failpoint, restart from the same `--state-dir`,
//! resend what was never answered, and require the combined reply stream
//! to be byte-identical to an uninjected run.
//!
//! The chaos registry is process-global: every in-process arming test
//! serializes on [`CHAOS_LOCK`]. The crash matrix arms via the child's
//! `TARR_CHAOS` environment instead, so it needs no lock.

use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::Mutex;

use tarr_serve::{serve_lines, Engine, ServeOpts};
use tarr_trace::json::{parse, Json};

static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("tarr-chaos-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn code(reply: &Json) -> Option<&str> {
    reply.get("code").and_then(Json::as_str)
}

/// Satellite: a full WAL (ENOSPC on append) degrades the daemon to
/// read-only — mutations get typed `persist_io` replies, reads keep
/// working, the `tarr_serve_wal_degraded` gauge flips, and a recovered
/// disk clears it.
#[test]
fn wal_enospc_degrades_to_read_only_service() {
    let _g = CHAOS_LOCK.lock().unwrap();
    tarr_chaos::disarm_all();
    let dir = tmpdir("enospc");
    let (engine, _boot) = Engine::with_state_dir(&dir).unwrap();

    let ok = engine.handle_line(r#"{"op":"ingest","cluster":"a","gpc_nodes":2}"#);
    assert!(ok.contains("\"ok\":true"), "{ok}");
    assert!(!engine.metrics().wal_degraded());

    // Disk full: every append fails until disarmed (`@0` = every hit).
    tarr_chaos::arm_str("wal.append.write=enospc@0", 1).unwrap();
    let reply =
        parse(&engine.handle_line(r#"{"op":"ingest","cluster":"b","gpc_nodes":2}"#)).unwrap();
    assert_eq!(reply.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(code(&reply), Some("persist_io"), "{reply:?}");
    assert!(
        engine.metrics().wal_degraded(),
        "gauge flips on failed append"
    );
    assert!(engine
        .metrics()
        .render_prometheus()
        .contains("tarr_serve_wal_degraded 1"));

    // The daemon is alive and serving read-only ops against warm state.
    for line in [
        r#"{"op":"map","cluster":"a","mapper":"hrstc","pattern":"ring"}"#,
        r#"{"op":"price","cluster":"a","collective":"bcast","msg_bytes":1024}"#,
        r#"{"op":"stats"}"#,
    ] {
        let r = engine.handle_line(line);
        assert!(r.contains("\"ok\":true"), "read-only op must survive: {r}");
    }
    // The failed mutation was rolled back: cluster b does not exist.
    let r = engine.handle_line(r#"{"op":"map","cluster":"b","mapper":"hrstc","pattern":"ring"}"#);
    assert!(r.contains("unknown cluster"), "{r}");

    // Disk recovered: the next mutation succeeds and clears the gauge.
    tarr_chaos::disarm_all();
    let ok = engine.handle_line(r#"{"op":"ingest","cluster":"b","gpc_nodes":2}"#);
    assert!(ok.contains("\"ok\":true"), "{ok}");
    assert!(!engine.metrics().wal_degraded());
    assert!(engine
        .metrics()
        .render_prometheus()
        .contains("tarr_serve_wal_degraded 0"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// A failing connection read is indistinguishable from the peer hanging
/// up: the session ends cleanly after delivering what was admitted.
#[test]
fn conn_read_failure_ends_the_session_cleanly() {
    let _g = CHAOS_LOCK.lock().unwrap();
    tarr_chaos::disarm_all();
    let engine = Engine::new();
    tarr_chaos::arm_str("conn.read=err@2", 3).unwrap();
    let mut out = Vec::new();
    // One small read per line: the first line is served, the second read
    // hits the failpoint and the session drains.
    let input: &[u8] = b"{\"id\":1,\"op\":\"stats\"}\n{\"id\":2,\"op\":\"stats\"}\n";
    let served = serve_lines(
        &engine,
        OneByOne(input, 0),
        &mut out,
        &ServeOpts {
            workers: 1,
            queue_cap: 4,
            ..Default::default()
        },
    )
    .unwrap();
    tarr_chaos::disarm_all();
    assert_eq!(served, 1, "the admitted request is still answered");
    assert!(String::from_utf8(out).unwrap().contains("\"id\":1"));
}

/// A failing connection write surfaces as the serve loop's io::Result —
/// typed, not a panic, and the engine survives for other connections.
#[test]
fn conn_write_failure_is_a_typed_error() {
    let _g = CHAOS_LOCK.lock().unwrap();
    tarr_chaos::disarm_all();
    let engine = Engine::new();
    tarr_chaos::arm_str("conn.write=err@1", 3).unwrap();
    let mut out = Vec::new();
    let err = serve_lines(
        &engine,
        &b"{\"id\":1,\"op\":\"stats\"}\n"[..],
        &mut out,
        &ServeOpts::default(),
    )
    .unwrap_err();
    tarr_chaos::disarm_all();
    assert!(err.to_string().contains("tarr-chaos"), "{err}");
    // The engine is unharmed.
    assert!(engine
        .handle_line(r#"{"op":"stats"}"#)
        .contains("\"ok\":true"));
}

/// Reader adapter delivering one line per read call, so a `@n` one-shot
/// failpoint maps onto the n-th request line deterministically.
struct OneByOne<'a>(&'a [u8], usize);

impl std::io::Read for OneByOne<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let rest = &self.0[self.1..];
        if rest.is_empty() {
            return Ok(0);
        }
        let n = rest
            .iter()
            .position(|&b| b == b'\n')
            .map(|p| p + 1)
            .unwrap_or(rest.len())
            .min(buf.len());
        buf[..n].copy_from_slice(&rest[..n]);
        self.1 += n;
        Ok(n)
    }
}

/// The scripted session for the crash matrix. `replace: true` on every
/// ingest makes resending idempotent: if the crash landed after the WAL
/// append but before the acknowledgement, the replayed-and-resent ingest
/// returns the identical reply instead of `cluster_exists`. The snapshot
/// runs before any cache-warming op: snapshots capture warm mapper caches
/// by design, so a snapshot taken after `price` would report more bytes
/// in the reference run than after a cold crash-restart — the reply is
/// only byte-stable while the snapshot is a pure function of logged state.
const SESSION: &[&str] = &[
    r#"{"id":1,"op":"ingest","cluster":"a","gpc_nodes":2,"replace":true}"#,
    r#"{"id":2,"op":"snapshot"}"#,
    r#"{"id":3,"op":"price","cluster":"a","collective":"allgather","msg_bytes":65536,"mapper":"hrstc"}"#,
    r#"{"id":4,"op":"ingest","cluster":"b","gpc_nodes":4,"replace":true}"#,
    r#"{"id":5,"op":"map","cluster":"b","mapper":"scotch","pattern":"rd"}"#,
    r#"{"id":6,"op":"shutdown"}"#,
];

/// Run the binary over `lines` with `chaos` armed (None = clean), return
/// (stdout reply lines, exit success, stderr).
fn run_binary(
    dir: &std::path::Path,
    lines: &[&str],
    chaos: Option<&str>,
) -> (Vec<String>, bool, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_tarr-serve"));
    cmd.args(["--workers", "1", "--state-dir", dir.to_str().unwrap()])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    match chaos {
        Some(spec) => cmd.env("TARR_CHAOS", spec).env("TARR_CHAOS_SEED", "42"),
        None => cmd.env_remove("TARR_CHAOS"),
    };
    let mut child = cmd.spawn().unwrap();
    {
        let mut stdin = child.stdin.take().unwrap();
        for line in lines {
            // The child may abort mid-script; a broken pipe here is part
            // of the experiment, not a test failure.
            if writeln!(stdin, "{line}").is_err() {
                break;
            }
        }
    }
    let out = child.wait_with_output().unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    (
        stdout.lines().map(str::to_string).collect(),
        out.status.success(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Crash the binary at `site_spec`, restart clean from the same state
/// dir, resend everything unanswered, and require the combined reply
/// stream to equal the uninjected reference byte-for-byte.
fn crash_case(tag: &str, site_spec: &str) {
    let ref_dir = tmpdir(&format!("crash-{tag}-ref"));
    let (reference, ok, err) = run_binary(&ref_dir, SESSION, None);
    assert!(ok, "reference run must succeed: {err}");
    assert_eq!(reference.len(), SESSION.len(), "{reference:?}");

    let dir = tmpdir(&format!("crash-{tag}"));
    let (before, ok, err) = run_binary(&dir, SESSION, Some(site_spec));
    assert!(!ok, "the injected run must die: {err}");
    assert!(
        err.contains("tarr-chaos: fired"),
        "abort must be attributable to the failpoint: {err}"
    );
    assert!(
        before.len() < SESSION.len(),
        "crash must land mid-session: {before:?}"
    );
    // Every reply that did get out matches the reference prefix: nothing
    // acknowledged was wrong, nothing acknowledged is later contradicted.
    assert_eq!(before[..], reference[..before.len()], "{tag}: prefix");

    // The surviving state dir passes strict verification.
    let verify = Command::new(env!("CARGO_BIN_EXE_tarr-serve"))
        .args(["--workers", "1"])
        .arg("--state-dir")
        .arg(&dir)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .unwrap();
    assert!(verify.success(), "{tag}: post-crash boot must succeed");

    // Restart clean and resend the unanswered tail.
    let (after, ok, err) = run_binary(&dir, &SESSION[before.len()..], None);
    assert!(ok, "{tag}: restarted run must succeed: {err}");
    let mut combined = before;
    combined.extend(after);
    assert_eq!(
        combined, reference,
        "{tag}: crash + restart + resend must be byte-identical to the clean run"
    );
}

#[test]
fn crash_at_wal_append_write_is_recoverable() {
    // Second WAL append = the `ingest b` request (id 4).
    crash_case("wal-write", "wal.append.write=crash@2");
}

#[test]
fn crash_at_wal_append_fsync_is_recoverable() {
    // The frame is in the file but unacknowledged; boot replays it and the
    // idempotent resend returns the identical reply.
    crash_case("wal-fsync", "wal.append.fsync=crash@2");
}

#[test]
fn crash_at_snapshot_rename_is_recoverable() {
    // Dies inside the `snapshot` op: the old snapshot (none) stays live,
    // the stale tmp is discarded at boot, and the WAL alone rebuilds.
    crash_case("snap-rename", "snap.rename=crash@1");
}

#[test]
fn enospc_on_live_binary_yields_persist_io_and_exit_zero() {
    // IO-error (non-crash) injection through the real binary: the failed
    // mutation gets `persist_io`, everything else still works, and the
    // daemon exits cleanly.
    let dir = tmpdir("enospc-bin");
    let (lines, ok, err) = run_binary(&dir, SESSION, Some("wal.append.write=enospc@2"));
    assert!(ok, "IO errors must not kill the daemon: {err}");
    assert_eq!(lines.len(), SESSION.len());
    let ingest_b = parse(&lines[3]).unwrap();
    assert_eq!(ingest_b.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(code(&ingest_b), Some("persist_io"), "{lines:?}");
    // The dependent map fails typed (cluster b never existed)…
    assert!(lines[4].contains("unknown cluster"), "{lines:?}");
    // …and the acknowledged prefix survives a restart.
    let (replies, ok, _) = run_binary(
        &dir,
        &[
            r#"{"op":"price","cluster":"a","collective":"allgather","msg_bytes":65536,"mapper":"hrstc"}"#,
        ],
        None,
    );
    assert!(ok);
    assert_eq!(
        replies[0].replace("\"id\":1,", ""),
        lines[2].replace("\"id\":3,", ""),
        "replayed state prices identically"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
