//! N-body mini-application — the application benchmark substitute.
//!
//! The paper's application makes 358 `MPI_Allgather` calls at 1024 processes
//! (its identity is immaterial: it is used purely as an allgather-dominated
//! workload, §VI-B). The classic parallel N-body structure reproduces that
//! profile exactly: every iteration each rank computes forces for its local
//! bodies against all bodies, integrates, and allgathers the updated local
//! positions.
//!
//! Two layers:
//!
//! * [`NBodySystem`] — a real (small-scale) O(n²) gravity kernel used by the
//!   examples, so the public API is exercised on genuine data;
//! * [`AppConfig::simulate`] — the at-scale model: per-iteration compute time
//!   from the body counts and a flop rate, communication time from the
//!   [`Session`] under any [`Scheme`]; returns total/communication times for
//!   the Figs. 5–6 normalized-execution-time comparison.

use tarr_collectives::allgather::HierarchicalConfig;
use tarr_core::{Scheme, Session};

/// Bytes per body in the position exchange (x, y, z, mass as f32).
pub const BYTES_PER_BODY: u64 = 16;

/// At-scale application model.
#[derive(Debug, Clone)]
pub struct AppConfig {
    /// Number of iterations = number of `MPI_Allgather` calls (the paper's
    /// profile: 358 at 1024 processes).
    pub iterations: usize,
    /// Bodies owned by each rank.
    pub bodies_per_rank: usize,
    /// Sustained per-core compute rate, interaction evaluations per second.
    pub pair_rate: f64,
}

impl Default for AppConfig {
    fn default() -> Self {
        AppConfig {
            iterations: 358,
            bodies_per_rank: 256, // 4 KiB per-rank allgather message
            pair_rate: 4.0e9,
        }
    }
}

/// Timing report of one simulated application run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppReport {
    /// Total execution time, seconds.
    pub total: f64,
    /// Time spent in `MPI_Allgather`, seconds.
    pub comm: f64,
    /// Time spent computing, seconds.
    pub compute: f64,
}

impl AppReport {
    /// Fraction of the run spent communicating.
    pub fn comm_fraction(&self) -> f64 {
        self.comm / self.total
    }
}

impl AppConfig {
    /// Per-rank allgather message size in bytes.
    pub fn message_bytes(&self) -> u64 {
        self.bodies_per_rank as u64 * BYTES_PER_BODY
    }

    /// Per-iteration compute time: local bodies × all bodies interactions.
    pub fn compute_seconds(&self, p: usize) -> f64 {
        let total_bodies = (self.bodies_per_rank * p) as f64;
        self.bodies_per_rank as f64 * total_bodies / self.pair_rate
    }

    /// Simulate the application with the **non-hierarchical** allgather.
    pub fn simulate(&self, session: &mut Session, scheme: Scheme) -> AppReport {
        let per_call = session.allgather_time(self.message_bytes(), scheme);
        self.report(per_call, session.size())
    }

    /// Simulate the application with the **hierarchical** allgather; `None`
    /// when the configuration is unsupported for the session layout.
    pub fn simulate_hierarchical(
        &self,
        session: &mut Session,
        hcfg: HierarchicalConfig,
        scheme: Scheme,
    ) -> Option<AppReport> {
        let per_call = session.hierarchical_allgather_time(self.message_bytes(), hcfg, scheme)?;
        Some(self.report(per_call, session.size()))
    }

    fn report(&self, per_call: f64, p: usize) -> AppReport {
        let comm = per_call * self.iterations as f64;
        let compute = self.compute_seconds(p) * self.iterations as f64;
        AppReport {
            total: comm + compute,
            comm,
            compute,
        }
    }
}

/// A real, small-scale N-body system: the examples run this kernel with the
/// functional executor so the allgather output ordering actually matters.
#[derive(Debug, Clone)]
pub struct NBodySystem {
    /// Positions, 3 per body.
    pub pos: Vec<[f64; 3]>,
    /// Velocities, 3 per body.
    pub vel: Vec<[f64; 3]>,
    /// Masses.
    pub mass: Vec<f64>,
}

impl NBodySystem {
    /// A deterministic pseudo-random system of `n` bodies.
    pub fn new(n: usize, seed: u64) -> Self {
        // Small xorshift so the crate needs no RNG dependency here.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let pos = (0..n).map(|_| [next(), next(), next()]).collect();
        let vel = (0..n).map(|_| [0.0; 3]).collect();
        let mass = (0..n).map(|_| next().abs() + 0.1).collect();
        NBodySystem { pos, vel, mass }
    }

    /// Number of bodies.
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// Whether the system is empty.
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// Advance bodies `range` by one leapfrog step of size `dt` against the
    /// full system (the work rank owning `range` performs per iteration).
    /// Accelerations are computed against the pre-step position snapshot, as
    /// a distributed implementation (exchange, then integrate) would.
    pub fn step_range(&mut self, range: std::ops::Range<usize>, dt: f64) {
        const EPS2: f64 = 1e-4;
        let n = self.len();
        let accs: Vec<[f64; 3]> = range
            .clone()
            .map(|i| {
                let mut acc = [0.0f64; 3];
                let pi = self.pos[i];
                for j in 0..n {
                    if i == j {
                        continue;
                    }
                    let d = [
                        self.pos[j][0] - pi[0],
                        self.pos[j][1] - pi[1],
                        self.pos[j][2] - pi[2],
                    ];
                    let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2] + EPS2;
                    let inv_r3 = self.mass[j] / (r2 * r2.sqrt());
                    acc[0] += d[0] * inv_r3;
                    acc[1] += d[1] * inv_r3;
                    acc[2] += d[2] * inv_r3;
                }
                acc
            })
            .collect();
        for (i, acc) in range.zip(accs) {
            for (k, &a) in acc.iter().enumerate() {
                self.vel[i][k] += a * dt;
                self.pos[i][k] += self.vel[i][k] * dt;
            }
        }
    }

    /// Total momentum (conserved by the symmetric force law up to float
    /// error) — used by tests as a physics sanity check.
    pub fn momentum(&self) -> [f64; 3] {
        let mut m = [0.0f64; 3];
        for (v, &mass) in self.vel.iter().zip(&self.mass) {
            for k in 0..3 {
                m[k] += v[k] * mass;
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tarr_core::SessionConfig;
    use tarr_mapping::{InitialMapping, OrderFix};
    use tarr_topo::Cluster;

    #[test]
    fn default_profile_matches_paper() {
        let cfg = AppConfig::default();
        assert_eq!(cfg.iterations, 358);
        assert_eq!(cfg.message_bytes(), 4096);
    }

    #[test]
    fn report_accounting() {
        let cluster = Cluster::gpc(4);
        let mut s = Session::from_layout(
            cluster,
            InitialMapping::BLOCK_BUNCH,
            32,
            SessionConfig::default(),
        );
        let cfg = AppConfig::default();
        let r = cfg.simulate(&mut s, Scheme::Default);
        assert!(r.total > 0.0);
        assert!((r.total - (r.comm + r.compute)).abs() < 1e-12);
        assert!(r.comm_fraction() > 0.0 && r.comm_fraction() < 1.0);
    }

    #[test]
    fn reordering_reduces_app_time_on_cyclic() {
        let cluster = Cluster::gpc(8);
        let mut s = Session::from_layout(
            cluster,
            InitialMapping::CYCLIC_BUNCH,
            64,
            SessionConfig::default(),
        );
        let cfg = AppConfig::default();
        let base = cfg.simulate(&mut s, Scheme::Default);
        let reord = cfg.simulate(&mut s, Scheme::hrstc(OrderFix::InitComm));
        assert!(
            reord.total < base.total,
            "base {} reordered {}",
            base.total,
            reord.total
        );
        // Compute time is unaffected by reordering.
        assert_eq!(base.compute, reord.compute);
    }

    #[test]
    fn nbody_kernel_conserves_momentum_roughly() {
        let mut sys = NBodySystem::new(32, 7);
        let m0 = sys.momentum();
        for _ in 0..5 {
            sys.step_range(0..32, 1e-3);
        }
        let m1 = sys.momentum();
        for k in 0..3 {
            assert!((m1[k] - m0[k]).abs() < 1e-6, "axis {k}: {m0:?} -> {m1:?}");
        }
    }

    #[test]
    fn nbody_kernel_moves_bodies() {
        let mut sys = NBodySystem::new(8, 3);
        let p0 = sys.pos.clone();
        sys.step_range(0..8, 1e-2);
        assert!(sys.pos.iter().zip(&p0).any(|(a, b)| a != b));
    }

    #[test]
    fn partial_ranges_cover_system() {
        // Stepping range by range equals stepping everything when forces are
        // computed against a frozen snapshot… they are not (in-place update),
        // so just check both halves move.
        let mut sys = NBodySystem::new(16, 5);
        sys.step_range(0..8, 1e-2);
        sys.step_range(8..16, 1e-2);
        assert!(sys.vel.iter().all(|v| v.iter().any(|&x| x != 0.0)));
    }
}
