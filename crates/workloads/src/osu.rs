//! OSU-Micro-Benchmarks-style allgather latency sweep.
//!
//! The paper measures `MPI_Allgather` latency with the OSU suite for message
//! sizes from 1 B to 256 KiB at 4096 processes and reports the percentage
//! improvement of each reordering scheme over the MVAPICH default.

use tarr_collectives::allgather::HierarchicalConfig;
use tarr_core::{Scheme, Session};

/// A message-size sweep.
#[derive(Debug, Clone)]
pub struct OsuSweep {
    /// Per-rank message sizes in bytes.
    pub sizes: Vec<u64>,
}

impl OsuSweep {
    /// The paper's range: powers of two from 1 B to 256 KiB.
    pub fn paper_range() -> Self {
        OsuSweep {
            sizes: (0..=18).map(|i| 1u64 << i).collect(),
        }
    }

    /// A shorter range for quick runs and tests.
    pub fn short() -> Self {
        OsuSweep {
            sizes: vec![16, 256, 4096, 65536],
        }
    }

    /// Latency (seconds) of the non-hierarchical allgather at every size.
    pub fn run(&self, session: &mut Session, scheme: Scheme) -> Vec<(u64, f64)> {
        let _span = tarr_trace::span("workload.osu_sweep").arg("sizes", self.sizes.len());
        self.sizes
            .iter()
            .map(|&m| (m, session.allgather_time(m, scheme)))
            .collect()
    }

    /// Latency of the hierarchical allgather at every size; `None` entries
    /// appear when the configuration is unsupported for the session layout.
    pub fn run_hierarchical(
        &self,
        session: &mut Session,
        hcfg: HierarchicalConfig,
        scheme: Scheme,
    ) -> Vec<(u64, Option<f64>)> {
        let _span = tarr_trace::span("workload.osu_sweep")
            .arg("sizes", self.sizes.len())
            .arg("hierarchical", true);
        self.sizes
            .iter()
            .map(|&m| (m, session.hierarchical_allgather_time(m, hcfg, scheme)))
            .collect()
    }
}

/// Percentage improvement of `t` over `base` (positive = faster), as the
/// paper's figures report.
pub fn percent_improvement(base: f64, t: f64) -> f64 {
    100.0 * (base - t) / base
}

#[cfg(test)]
mod tests {
    use super::*;
    use tarr_core::SessionConfig;
    use tarr_mapping::{InitialMapping, OrderFix};
    use tarr_topo::Cluster;

    #[test]
    fn paper_range_covers_1b_to_256k() {
        let s = OsuSweep::paper_range();
        assert_eq!(*s.sizes.first().unwrap(), 1);
        assert_eq!(*s.sizes.last().unwrap(), 256 * 1024);
        assert_eq!(s.sizes.len(), 19);
    }

    #[test]
    fn sweep_is_monotone_in_size_for_default() {
        let cluster = Cluster::gpc(4);
        let mut session = Session::from_layout(
            cluster,
            InitialMapping::BLOCK_BUNCH,
            32,
            SessionConfig::default(),
        );
        let res = OsuSweep::paper_range().run(&mut session, Scheme::Default);
        // Latency grows with message size within each algorithm regime.
        for w in res.windows(2) {
            let ((s1, t1), (s2, t2)) = (w[0], w[1]);
            if (s1 < 1024) == (s2 < 1024) {
                assert!(t2 >= t1, "sizes {s1}->{s2}: {t1} -> {t2}");
            }
        }
    }

    #[test]
    fn improvement_sign_convention() {
        assert!(percent_improvement(2.0, 1.0) > 0.0);
        assert!(percent_improvement(1.0, 2.0) < 0.0);
        assert_eq!(percent_improvement(2.0, 2.0), 0.0);
    }

    #[test]
    fn hierarchical_sweep_reports_support() {
        use tarr_collectives::allgather::{HierarchicalConfig, InterAlg, IntraPattern};
        let hcfg = HierarchicalConfig {
            intra: IntraPattern::Binomial,
            inter: InterAlg::Ring,
        };
        let sweep = OsuSweep::short();
        // Block layout: supported at every size.
        let mut blk = Session::from_layout(
            Cluster::gpc(4),
            InitialMapping::BLOCK_BUNCH,
            32,
            SessionConfig::default(),
        );
        let res = sweep.run_hierarchical(&mut blk, hcfg, Scheme::Default);
        assert!(res.iter().all(|(_, t)| t.is_some()));
        // Cyclic layout: unsupported, every entry None.
        let mut cyc = Session::from_layout(
            Cluster::gpc(4),
            InitialMapping::CYCLIC_BUNCH,
            32,
            SessionConfig::default(),
        );
        let res = sweep.run_hierarchical(&mut cyc, hcfg, Scheme::Default);
        assert!(res.iter().all(|(_, t)| t.is_none()));
    }

    #[test]
    fn reordered_sweep_beats_default_on_cyclic() {
        let cluster = Cluster::gpc(8);
        let mut session = Session::from_layout(
            cluster,
            InitialMapping::CYCLIC_BUNCH,
            64,
            SessionConfig::default(),
        );
        let sweep = OsuSweep::short();
        let base = sweep.run(&mut session, Scheme::Default);
        let reord = sweep.run(&mut session, Scheme::hrstc(OrderFix::InitComm));
        // Ring region (≥1 KiB): large gains.
        for ((m, b), (_, r)) in base.iter().zip(&reord) {
            if *m >= 1024 {
                assert!(
                    percent_improvement(*b, *r) > 30.0,
                    "size {m}: base {b} reordered {r}"
                );
            }
        }
    }
}
