//! # tarr-workloads — benchmark workloads
//!
//! * [`osu`] — an OSU-Micro-Benchmarks-style `MPI_Allgather` latency sweep
//!   over message sizes (the workload of the paper's Figs. 3–4);
//! * [`nbody`] — an allgather-dominated N-body mini-application standing in
//!   for the paper's application benchmark (358 `MPI_Allgather` calls at
//!   1024 processes, Figs. 5–6), with a real small-scale force kernel for
//!   the examples and an analytic compute model for at-scale simulation.

pub mod nbody;
pub mod osu;

pub use nbody::{AppConfig, AppReport, NBodySystem};
pub use osu::{percent_improvement, OsuSweep};
