//! # tarr-netsim — network performance models
//!
//! Prices communication on the [`tarr_topo::Cluster`] model. Two models are
//! provided:
//!
//! * [`StageModel`] — an analytic LogGP-style model: a synchronized stage of
//!   point-to-point messages costs the maximum over messages of
//!   `overhead + Σ hop latencies + bytes · maxₕ(contention(h)/bandwidth(h))`.
//!   This is the model used by the figure harnesses at 4096 processes.
//! * [`FlowEngine`] — a discrete-event fluid-flow simulator in which active
//!   flows share every link max-min fairly and events fire at flow
//!   completions. It is used to validate the analytic model at small scale
//!   and by the asynchronous schedule executor in `tarr-mpi`.
//!
//! Channel constants ([`NetParams`]) are calibrated to published QDR
//! InfiniBand / QPI / shared-cache figures matching the paper's GPC platform.
//!
//! ```
//! use tarr_netsim::{Message, NetParams, StageModel};
//! use tarr_topo::{Cluster, CoreId};
//!
//! let cluster = Cluster::gpc(2);
//! let model = StageModel::new(&cluster, NetParams::default());
//! let local = model.stage_time(&[Message::new(CoreId(0), CoreId(1), 4096)]);
//! let remote = model.stage_time(&[Message::new(CoreId(0), CoreId(8), 4096)]);
//! assert!(local < remote);     // shared memory beats InfiniBand
//! ```

pub mod event;
pub mod fxhash;
pub mod memcpy;
pub mod message;
pub mod params;
pub mod stage;

pub use event::{fluid_stage_time, FlowEngine, FlowId, LinkIdx};
pub use fxhash::{fx_hash_one, FxHashMap, FxHasher};
pub use memcpy::MemcpyModel;
pub use message::Message;
pub use params::{ChannelParams, NetParams};
pub use stage::StageModel;
