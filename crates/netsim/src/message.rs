//! The unit of pricing: one point-to-point message between two cores.

use serde::{Deserialize, Serialize};
use tarr_topo::CoreId;

/// A point-to-point transfer to be priced by a network model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Message {
    /// Sending core.
    pub src: CoreId,
    /// Receiving core.
    pub dst: CoreId,
    /// Payload size in bytes.
    pub bytes: u64,
}

impl Message {
    /// Convenience constructor.
    pub fn new(src: CoreId, dst: CoreId, bytes: u64) -> Self {
        Message { src, dst, bytes }
    }

    /// Whether source and destination are the same core (a local copy).
    pub fn is_local(&self) -> bool {
        self.src == self.dst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_detection() {
        assert!(Message::new(CoreId(3), CoreId(3), 10).is_local());
        assert!(!Message::new(CoreId(3), CoreId(4), 10).is_local());
    }
}
