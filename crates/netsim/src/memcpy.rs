//! Cost model for local memory operations.
//!
//! Used for the *memory shuffling at the end* mechanism of §V-B (reordering
//! the allgather output buffer) and for any local buffer staging a schedule
//! performs.

use serde::{Deserialize, Serialize};

/// Linear cost model for a local copy: `latency + bytes / bandwidth`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemcpyModel {
    /// Fixed per-call cost (function call, loop setup), seconds.
    pub latency_s: f64,
    /// Copy bandwidth, bytes/second.
    pub bandwidth_bps: f64,
}

impl Default for MemcpyModel {
    fn default() -> Self {
        // Single-core copy bandwidth of a Nehalem-class socket.
        MemcpyModel {
            latency_s: 0.01e-6,
            bandwidth_bps: 4.0e9,
        }
    }
}

impl MemcpyModel {
    /// Time to copy `bytes` contiguous bytes.
    #[inline]
    pub fn copy_time(&self, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 / self.bandwidth_bps
    }

    /// Time to permute `blocks` blocks of `block_bytes` each (the endShfl
    /// operation): every block is copied once, with a per-block call cost —
    /// a scattered copy, cheaper per byte for large blocks.
    #[inline]
    pub fn shuffle_time(&self, blocks: usize, block_bytes: u64) -> f64 {
        blocks as f64 * self.copy_time(block_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_time_is_monotone_in_size() {
        let m = MemcpyModel::default();
        assert!(m.copy_time(1024) < m.copy_time(4096));
    }

    #[test]
    fn zero_bytes_costs_latency_only() {
        let m = MemcpyModel::default();
        assert_eq!(m.copy_time(0), m.latency_s);
    }

    #[test]
    fn shuffle_scales_with_block_count() {
        let m = MemcpyModel::default();
        let one = m.shuffle_time(1, 4096);
        let many = m.shuffle_time(64, 4096);
        assert!((many - 64.0 * one).abs() < 1e-12);
    }

    #[test]
    fn shuffle_of_small_blocks_is_latency_dominated() {
        let m = MemcpyModel::default();
        // 4096 one-byte blocks cost far more than one 4096-byte copy — this
        // is why endShfl is poor for small messages in the paper's Fig. 4.
        assert!(m.shuffle_time(4096, 1) > 10.0 * m.copy_time(4096));
    }
}
