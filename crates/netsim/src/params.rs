//! Calibrated channel constants.
//!
//! Values are representative of the paper's GPC platform (Intel Xeon E5540
//! nodes, Mellanox ConnectX QDR InfiniBand) and of published microbenchmark
//! numbers for such hardware. The *shape* of the results — who wins and where
//! crossovers fall — depends on the ratios between channels and on
//! contention, not on the absolute constants; all constants are nevertheless
//! configurable.

use crate::memcpy::MemcpyModel;
use serde::{Deserialize, Serialize};
use tarr_topo::{Hop, HopKind};

/// Latency/bandwidth pair of one channel class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelParams {
    /// One-way traversal latency contribution, seconds.
    pub latency_s: f64,
    /// Sustained bandwidth, bytes/second.
    pub bandwidth_bps: f64,
}

impl ChannelParams {
    /// Construct from microseconds and GB/s (10⁹ bytes/s), the units
    /// datasheets use.
    pub fn us_gbs(latency_us: f64, bandwidth_gbs: f64) -> Self {
        ChannelParams {
            latency_s: latency_us * 1e-6,
            bandwidth_bps: bandwidth_gbs * 1e9,
        }
    }
}

/// Full parameter set of the network model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetParams {
    /// Per-message software overhead (MPI stack), seconds.
    pub sw_overhead_s: f64,
    /// Intra-socket shared-memory channel.
    pub shm: ChannelParams,
    /// Inter-socket (QPI) link.
    pub qpi: ChannelParams,
    /// Node HCA link (each direction).
    pub hca: ChannelParams,
    /// Leaf↔line fabric link.
    pub leaf_link: ChannelParams,
    /// Line↔spine fabric link.
    pub spine_link: ChannelParams,
    /// One directed torus link (BlueGene-class fabrics).
    pub torus_link: ChannelParams,
    /// One directed switch-to-switch link of an ingested irregular fabric.
    pub switch_link: ChannelParams,
    /// Local memory copies (buffer shuffles, self-sends).
    pub memcpy: MemcpyModel,
    /// Per-link overrides for what-if studies and failure injection: a
    /// specific physical channel (e.g. one node's HCA, one leaf uplink) can
    /// be degraded or upgraded independently of its class. Checked before
    /// the per-kind defaults.
    pub link_overrides: Vec<(Hop, ChannelParams)>,
}

impl Default for NetParams {
    fn default() -> Self {
        NetParams {
            // MVAPICH2-era software overhead per message.
            sw_overhead_s: 0.4e-6,
            // Shared L3 / local DRAM: sub-microsecond latency, high bandwidth.
            shm: ChannelParams::us_gbs(0.3, 8.0),
            // QPI: slightly slower, and a shared ~5 GB/s per-direction link.
            qpi: ChannelParams::us_gbs(0.5, 5.0),
            // QDR InfiniBand HCA: ~1.3 µs end-to-end is split between the two
            // HCA hops and the switch hops below.
            hca: ChannelParams::us_gbs(0.55, 3.2),
            // Per-switch-hop store-and-forward latency ~0.1 µs; QDR 4x links.
            leaf_link: ChannelParams::us_gbs(0.1, 3.2),
            spine_link: ChannelParams::us_gbs(0.1, 3.2),
            // BG/P-class torus links: ~0.1 us per hop, ~1.7 GB/s per
            // direction (narrower than IB, but six of them per node).
            torus_link: ChannelParams::us_gbs(0.1, 1.7),
            // Irregular fabrics are ingested IB subnets, so a switch hop
            // costs the same as the ideal fat-tree's switch links.
            switch_link: ChannelParams::us_gbs(0.1, 3.2),
            memcpy: MemcpyModel::default(),
            link_overrides: Vec::new(),
        }
    }
}

impl NetParams {
    /// Channel parameters for a specific physical hop: the override if one
    /// is registered, the per-kind default otherwise.
    #[inline]
    pub fn channel_for(&self, hop: &Hop) -> ChannelParams {
        for (h, c) in &self.link_overrides {
            if h == hop {
                return *c;
            }
        }
        self.channel(hop.kind())
    }

    /// Degrade (or upgrade) one specific physical link.
    pub fn override_link(&mut self, hop: Hop, params: ChannelParams) {
        self.link_overrides.push((hop, params));
    }

    /// Channel parameters for a hop class.
    #[inline]
    pub fn channel(&self, kind: HopKind) -> ChannelParams {
        match kind {
            HopKind::Shm => self.shm,
            HopKind::Qpi => self.qpi,
            HopKind::HcaUp | HopKind::HcaDown => self.hca,
            HopKind::LeafUp | HopKind::LeafDown => self.leaf_link,
            HopKind::LineUp | HopKind::LineDown => self.spine_link,
            HopKind::TorusLink => self.torus_link,
            HopKind::SwitchLink => self.switch_link,
        }
    }

    /// Sanity-check the parameter set.
    pub fn validate(&self) -> Result<(), String> {
        let chans = [
            self.shm,
            self.qpi,
            self.hca,
            self.leaf_link,
            self.spine_link,
            self.torus_link,
            self.switch_link,
        ];
        for c in chans {
            let bw_ok = c.bandwidth_bps.is_finite() && c.bandwidth_bps > 0.0;
            if c.latency_s.is_nan() || c.latency_s < 0.0 || !bw_ok {
                return Err(format!("invalid channel parameters: {c:?}"));
            }
        }
        if self.sw_overhead_s.is_nan() || self.sw_overhead_s < 0.0 {
            return Err("negative software overhead".into());
        }
        for (h, c) in &self.link_overrides {
            let bw_ok = c.bandwidth_bps.is_finite() && c.bandwidth_bps > 0.0;
            if c.latency_s.is_nan() || c.latency_s < 0.0 || !bw_ok {
                return Err(format!("invalid override for {h:?}: {c:?}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_validate() {
        NetParams::default().validate().unwrap();
    }

    #[test]
    fn unit_conversion() {
        let c = ChannelParams::us_gbs(2.0, 3.0);
        assert!((c.latency_s - 2e-6).abs() < 1e-12);
        assert!((c.bandwidth_bps - 3e9).abs() < 1.0);
    }

    #[test]
    fn channel_lookup_covers_all_kinds() {
        let p = NetParams::default();
        for kind in [
            HopKind::Shm,
            HopKind::Qpi,
            HopKind::HcaUp,
            HopKind::HcaDown,
            HopKind::LeafUp,
            HopKind::LeafDown,
            HopKind::LineUp,
            HopKind::LineDown,
        ] {
            assert!(p.channel(kind).bandwidth_bps > 0.0);
        }
    }

    #[test]
    fn intra_node_is_faster_than_network() {
        let p = NetParams::default();
        assert!(p.shm.latency_s < p.hca.latency_s);
        assert!(p.shm.bandwidth_bps > p.hca.bandwidth_bps);
        assert!(p.qpi.latency_s < p.hca.latency_s);
    }

    #[test]
    fn invalid_params_rejected() {
        let mut p = NetParams::default();
        p.qpi.bandwidth_bps = 0.0;
        assert!(p.validate().is_err());
    }
}
