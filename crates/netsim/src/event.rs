//! Discrete-event fluid-flow simulator.
//!
//! Active flows share every link **max-min fairly** (progressive filling);
//! events fire when a flow's latency phase expires or its transfer drains.
//! Between events all rates are constant, so the simulation is exact for the
//! fluid model.
//!
//! The engine is deliberately policy-free: callers intern physical hops into
//! [`LinkIdx`]es, start flows, and pump [`FlowEngine::next_completions`] —
//! the asynchronous schedule executor in `tarr-mpi` builds rank-level
//! dependency handling on top.

use crate::message::Message;
use crate::params::NetParams;
use std::collections::HashMap;
use tarr_topo::{Cluster, Hop};

/// Index of an interned link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkIdx(pub usize);

/// Identifier of a flow, returned by [`FlowEngine::start_flow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowId(pub usize);

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    /// Pipeline-fill latency before bytes start moving.
    Latency {
        until: f64,
    },
    /// Bytes draining at the current max-min rate.
    Transferring {
        remaining: f64,
        rate: f64,
    },
    Done,
}

#[derive(Debug, Clone)]
struct Flow {
    path: Vec<LinkIdx>,
    bytes: f64,
    phase: Phase,
}

/// The fluid-flow engine.
#[derive(Debug, Default)]
pub struct FlowEngine {
    capacity: Vec<f64>,
    flows: Vec<Flow>,
    now: f64,
    /// Cumulative bytes injected per link (every flow charges its full byte
    /// count to every link on its path) — the congestion signal consumers
    /// like a contention-aware mapper read back via [`FlowEngine::top_links`].
    link_bytes: Vec<f64>,
    events: u64,
}

impl FlowEngine {
    /// An empty engine at time zero.
    pub fn new() -> Self {
        FlowEngine::default()
    }

    /// Current simulation time, seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Register a link with the given capacity (bytes/second).
    ///
    /// # Panics
    /// Panics if the capacity is not positive.
    pub fn add_link(&mut self, bandwidth_bps: f64) -> LinkIdx {
        assert!(bandwidth_bps > 0.0, "link capacity must be positive");
        self.capacity.push(bandwidth_bps);
        self.link_bytes.push(0.0);
        LinkIdx(self.capacity.len() - 1)
    }

    /// Number of flows not yet completed.
    pub fn active_flows(&self) -> usize {
        self.flows.iter().filter(|f| f.phase != Phase::Done).count()
    }

    /// Start a flow at the current time: it idles for `latency_s`, then
    /// drains `bytes` through `path` at the max-min fair rate.
    ///
    /// # Panics
    /// Panics if `path` is empty (local copies are not flows) or references
    /// an unknown link.
    pub fn start_flow(&mut self, path: Vec<LinkIdx>, bytes: u64, latency_s: f64) -> FlowId {
        assert!(!path.is_empty(), "a flow must traverse at least one link");
        for l in &path {
            assert!(l.0 < self.capacity.len(), "unknown link {l:?}");
        }
        let id = FlowId(self.flows.len());
        for l in &path {
            self.link_bytes[l.0] += bytes as f64;
        }
        self.flows.push(Flow {
            path,
            bytes: bytes as f64,
            phase: Phase::Latency {
                until: self.now + latency_s.max(0.0),
            },
        });
        id
    }

    /// Cumulative bytes injected per link, indexed by [`LinkIdx`].
    pub fn link_loads(&self) -> &[f64] {
        &self.link_bytes
    }

    /// The `k` most heavily loaded links, by cumulative injected bytes,
    /// heaviest first.
    pub fn top_links(&self, k: usize) -> Vec<(LinkIdx, f64)> {
        let mut loads: Vec<(LinkIdx, f64)> = self
            .link_bytes
            .iter()
            .enumerate()
            .filter(|(_, &b)| b > 0.0)
            .map(|(i, &b)| (LinkIdx(i), b))
            .collect();
        loads.sort_by(|a, b| b.1.total_cmp(&a.1));
        loads.truncate(k);
        loads
    }

    /// Flush engine statistics to the trace recorder: flow/event/link
    /// counters plus one `netsim.link_load` instant per top-4 congested
    /// link. No-op while tracing is disabled.
    pub fn trace_flush(&self) {
        if !tarr_trace::enabled() {
            return;
        }
        tarr_trace::counter_add!("netsim.flows", self.flows.len() as u64);
        tarr_trace::counter_add!("netsim.events", self.events);
        tarr_trace::counter_add!("netsim.links", self.capacity.len() as u64);
        for (rank, (l, bytes)) in self.top_links(4).into_iter().enumerate() {
            tarr_trace::instant("netsim.link_load")
                .arg("rank", rank)
                .arg("link", l.0)
                .arg("bytes", bytes)
                .emit();
        }
    }

    /// Advance to the next flow completion(s); returns the completion time
    /// and the completed flow ids (several if they tie). Returns `None` when
    /// no flows remain.
    pub fn next_completions(&mut self) -> Option<(f64, Vec<FlowId>)> {
        self.events += 1;
        // Rates may be stale if flows were started since the last event.
        self.recompute_rates();
        loop {
            let mut t_next = f64::INFINITY;
            for f in &self.flows {
                match f.phase {
                    Phase::Latency { until } => t_next = t_next.min(until),
                    Phase::Transferring { remaining, rate } => {
                        debug_assert!(rate > 0.0, "transferring flow with zero rate");
                        t_next = t_next.min(self.now + remaining / rate);
                    }
                    Phase::Done => {}
                }
            }
            if !t_next.is_finite() {
                return None;
            }

            let dt = (t_next - self.now).max(0.0);
            self.now = t_next;
            let eps = 1e-12;

            let mut completed = Vec::new();
            for (i, f) in self.flows.iter_mut().enumerate() {
                match &mut f.phase {
                    Phase::Latency { until } => {
                        if *until <= self.now + eps {
                            if f.bytes <= 0.0 {
                                f.phase = Phase::Done;
                                completed.push(FlowId(i));
                            } else {
                                f.phase = Phase::Transferring {
                                    remaining: f.bytes,
                                    rate: 0.0, // fixed by recompute_rates below
                                };
                            }
                        }
                    }
                    Phase::Transferring { remaining, rate } => {
                        *remaining -= *rate * dt;
                        if *remaining <= *rate * eps {
                            f.phase = Phase::Done;
                            completed.push(FlowId(i));
                        }
                    }
                    Phase::Done => {}
                }
            }

            self.recompute_rates();
            if !completed.is_empty() {
                return Some((self.now, completed));
            }
            // Only latency expiries happened — keep stepping.
        }
    }

    /// Recompute max-min fair rates over all transferring flows
    /// (progressive filling).
    fn recompute_rates(&mut self) {
        let nl = self.capacity.len();
        let mut residual = self.capacity.clone();
        let mut users: Vec<u32> = vec![0; nl];
        let mut unfixed: Vec<usize> = Vec::new();
        for (i, f) in self.flows.iter().enumerate() {
            if matches!(f.phase, Phase::Transferring { .. }) {
                unfixed.push(i);
                for l in &f.path {
                    users[l.0] += 1;
                }
            }
        }

        while !unfixed.is_empty() {
            // Bottleneck link: minimal fair share among used links.
            let mut best_link = usize::MAX;
            let mut best_share = f64::INFINITY;
            for (l, &u) in users.iter().enumerate() {
                if u > 0 {
                    let share = residual[l] / u as f64;
                    if share < best_share {
                        best_share = share;
                        best_link = l;
                    }
                }
            }
            debug_assert_ne!(best_link, usize::MAX);

            // Fix every unfixed flow through the bottleneck at that share.
            let mut still = Vec::with_capacity(unfixed.len());
            for &i in &unfixed {
                let through = self.flows[i].path.iter().any(|l| l.0 == best_link);
                if through {
                    if let Phase::Transferring { rate, .. } = &mut self.flows[i].phase {
                        *rate = best_share;
                    }
                    for l in &self.flows[i].path {
                        residual[l.0] = (residual[l.0] - best_share).max(0.0);
                        users[l.0] -= 1;
                    }
                } else {
                    still.push(i);
                }
            }
            debug_assert!(still.len() < unfixed.len(), "progressive filling stuck");
            unfixed = still;
        }
    }
}

/// Price one synchronized stage with the fluid model: all messages start at
/// t = 0 and the stage completes when the last flow drains. Local messages
/// are priced as memory copies (they do not contend with flows).
pub fn fluid_stage_time(cluster: &Cluster, params: &NetParams, msgs: &[Message]) -> f64 {
    let mut sim = FlowEngine::new();
    let mut interned: HashMap<Hop, LinkIdx> = HashMap::new();
    let mut worst_local = 0.0f64;

    for m in msgs {
        if m.is_local() {
            worst_local = worst_local.max(params.memcpy.copy_time(m.bytes));
            continue;
        }
        let hops = cluster.path(m.src, m.dst);
        let mut alpha = params.sw_overhead_s;
        let mut path = Vec::with_capacity(hops.len());
        for h in hops {
            let ch = params.channel_for(&h);
            alpha += ch.latency_s;
            let idx = *interned
                .entry(h)
                .or_insert_with(|| sim.add_link(ch.bandwidth_bps));
            path.push(idx);
        }
        sim.start_flow(path, m.bytes, alpha);
    }

    let mut end = 0.0f64;
    while let Some((t, _)) = sim.next_completions() {
        end = t;
    }
    sim.trace_flush();
    end.max(worst_local)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::StageModel;
    use tarr_topo::CoreId;

    #[test]
    fn single_flow_time_is_latency_plus_transfer() {
        let mut sim = FlowEngine::new();
        let l = sim.add_link(1e9);
        sim.start_flow(vec![l], 1_000_000, 1e-6);
        let (t, done) = sim.next_completions().unwrap();
        assert_eq!(done.len(), 1);
        // 1e-6 latency + 1e6 bytes / 1e9 B/s = 1.001 ms
        assert!((t - 1.001e-3).abs() < 1e-9, "t = {t}");
        assert!(sim.next_completions().is_none());
    }

    #[test]
    fn two_flows_share_a_link_fairly() {
        let mut sim = FlowEngine::new();
        let l = sim.add_link(1e9);
        sim.start_flow(vec![l], 1_000_000, 0.0);
        sim.start_flow(vec![l], 1_000_000, 0.0);
        let (t, done) = sim.next_completions().unwrap();
        // Both drain at 0.5 GB/s and tie at 2 ms.
        assert_eq!(done.len(), 2);
        assert!((t - 2.0e-3).abs() < 1e-9, "t = {t}");
    }

    #[test]
    fn short_flow_releases_bandwidth_to_long_flow() {
        let mut sim = FlowEngine::new();
        let l = sim.add_link(1e9);
        sim.start_flow(vec![l], 500_000, 0.0); // short
        sim.start_flow(vec![l], 1_500_000, 0.0); // long
        let (t1, d1) = sim.next_completions().unwrap();
        assert_eq!(d1, vec![FlowId(0)]);
        assert!((t1 - 1.0e-3).abs() < 1e-9); // 0.5 MB at 0.5 GB/s
        let (t2, d2) = sim.next_completions().unwrap();
        assert_eq!(d2, vec![FlowId(1)]);
        // Long flow: 0.5 MB in the first ms, remaining 1 MB at full rate.
        assert!((t2 - 2.0e-3).abs() < 1e-9, "t2 = {t2}");
    }

    #[test]
    fn bottleneck_is_max_min_fair() {
        // A uses links 1+2, B uses link 2, C uses link 1; both links 1 GB/s.
        // Max-min: everyone gets 0.5 GB/s.
        let mut sim = FlowEngine::new();
        let l1 = sim.add_link(1e9);
        let l2 = sim.add_link(1e9);
        sim.start_flow(vec![l1, l2], 500_000, 0.0);
        sim.start_flow(vec![l2], 500_000, 0.0);
        sim.start_flow(vec![l1], 500_000, 0.0);
        let (t, done) = sim.next_completions().unwrap();
        assert_eq!(done.len(), 3);
        assert!((t - 1.0e-3).abs() < 1e-9, "t = {t}");
    }

    #[test]
    fn unshared_flow_gets_leftover_bandwidth() {
        // A uses links 1+2 with B on link 1 and C on link 2 — A is limited to
        // 0.5 GB/s; B and C each get 0.5 GB/s; nothing is wasted.
        let mut sim = FlowEngine::new();
        let l1 = sim.add_link(1e9);
        let l2 = sim.add_link(2e9);
        sim.start_flow(vec![l1], 1_000_000, 0.0); // shares l1 with next
        sim.start_flow(vec![l1, l2], 1_000_000, 0.0); // bottlenecked on l1
        let (t1, d1) = sim.next_completions().unwrap();
        // Both drain l1 at 0.5 GB/s → tie at 2 ms (l2 has spare capacity).
        assert_eq!(d1.len(), 2);
        assert!((t1 - 2.0e-3).abs() < 1e-9, "t1 = {t1}");
    }

    #[test]
    fn zero_byte_flow_completes_after_latency() {
        let mut sim = FlowEngine::new();
        let l = sim.add_link(1e9);
        sim.start_flow(vec![l], 0, 5e-6);
        let (t, done) = sim.next_completions().unwrap();
        assert_eq!(done, vec![FlowId(0)]);
        assert!((t - 5e-6).abs() < 1e-12);
    }

    #[test]
    fn staggered_starts_are_supported() {
        let mut sim = FlowEngine::new();
        let l = sim.add_link(1e9);
        sim.start_flow(vec![l], 1_000_000, 0.0);
        let (t1, _) = sim.next_completions().unwrap();
        assert!((t1 - 1.0e-3).abs() < 1e-9);
        // Second flow starts at t1, runs alone at full rate.
        sim.start_flow(vec![l], 1_000_000, 0.0);
        let (t2, _) = sim.next_completions().unwrap();
        assert!((t2 - 2.0e-3).abs() < 1e-9, "t2 = {t2}");
    }

    #[test]
    fn fluid_and_analytic_agree_without_contention() {
        let c = Cluster::gpc(2);
        let params = NetParams::default();
        let msgs = [Message::new(CoreId(0), CoreId(8), 1 << 16)];
        let fluid = fluid_stage_time(&c, &params, &msgs);
        let analytic = StageModel::new(&c, params).stage_time(&msgs);
        assert!(
            (fluid - analytic).abs() / analytic < 1e-9,
            "fluid {fluid} analytic {analytic}"
        );
    }

    #[test]
    fn fluid_never_exceeds_analytic_under_contention() {
        // The analytic model charges the whole transfer at the bottleneck
        // share; the fluid model lets flows speed up as others finish, so it
        // is a lower bound (for equal-start stages).
        let c = Cluster::gpc(4);
        let params = NetParams::default();
        let msgs: Vec<Message> = (0..8)
            .map(|i| Message::new(CoreId(i), CoreId(8 + i), (1 + i as u64) << 14))
            .collect();
        let fluid = fluid_stage_time(&c, &params, &msgs);
        let analytic = StageModel::new(&c, params.clone()).stage_time(&msgs);
        assert!(
            fluid <= analytic * (1.0 + 1e-9),
            "fluid {fluid} analytic {analytic}"
        );
        // And they agree within 2× (same contention mechanisms).
        assert!(fluid > analytic / 2.0);
    }

    #[test]
    fn local_messages_do_not_contend() {
        let c = Cluster::gpc(1);
        let params = NetParams::default();
        let msgs = [Message::new(CoreId(0), CoreId(0), 1 << 20)];
        let t = fluid_stage_time(&c, &params, &msgs);
        assert_eq!(t, params.memcpy.copy_time(1 << 20));
    }

    #[test]
    #[should_panic(expected = "at least one link")]
    fn empty_path_rejected() {
        let mut sim = FlowEngine::new();
        sim.start_flow(vec![], 10, 0.0);
    }
}
