//! A minimal Fx-style hasher for the simulator hot paths.
//!
//! The per-stage pricing loops hash millions of small fixed-size keys (hop
//! identifiers, `(rank, rank)` endpoint pairs); the standard library's
//! SipHash is DoS-resistant but an order of magnitude slower than needed for
//! trusted, in-process keys. This is the classic Firefox/rustc "Fx" mix — a
//! wrapping multiply by a 64-bit constant with a rotate per word — which is
//! the common choice for compiler-style workloads (no untrusted input, small
//! keys, hashing on the critical path).

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the rustc-hash crate (π-derived).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The hasher state: one 64-bit accumulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(buf[0] as u64 | u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed by the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// Hash one `Hash` value with the Fx hasher (stand-alone fingerprinting).
#[inline]
pub fn fx_hash_one<T: std::hash::Hash>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(fx_hash_one(&(1u32, 2u32)), fx_hash_one(&(1u32, 2u32)));
        assert_ne!(fx_hash_one(&(1u32, 2u32)), fx_hash_one(&(2u32, 1u32)));
        assert_ne!(fx_hash_one(&0u64), fx_hash_one(&1u64));
    }

    #[test]
    fn map_works_as_drop_in() {
        let mut m: FxHashMap<(u32, u32), u64> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i.wrapping_mul(7)), i as u64);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&(13, 91)], 13);
    }

    #[test]
    fn byte_slices_hash_consistently() {
        let mut a = FxHasher::default();
        a.write(b"hello world, this is a test");
        let mut b = FxHasher::default();
        b.write(b"hello world, this is a test");
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(b"hello world, this is a tesu");
        assert_ne!(a.finish(), c.finish());
    }
}
