//! Analytic per-stage timing model.
//!
//! Collective algorithms are programs of synchronized stages; within a stage
//! all messages fly concurrently and the stage completes when the slowest
//! message lands (the algorithms in this workspace all have per-stage data
//! dependencies, so stage barriers are the faithful abstraction).
//!
//! Per message: `t = overhead + Σₕ α(h) + bytes · maxₕ (n(h) / β(h))` where
//! `n(h)` is the number of stage messages crossing hop `h` — the standard
//! max-congestion extension of the Hockney/LogGP model. The serialization
//! term uses the most contended hop of the path: on a blocking fat-tree this
//! is what produces the 5:1 uplink penalty that the paper's cyclic layouts
//! suffer from.

use crate::fxhash::FxHashMap;
use crate::message::Message;
use crate::params::NetParams;
use tarr_topo::{Cluster, Hop};

/// Analytic stage-timing model bound to a cluster and parameter set.
#[derive(Debug, Clone)]
pub struct StageModel<'a> {
    cluster: &'a Cluster,
    params: NetParams,
}

impl<'a> StageModel<'a> {
    /// Create a model over `cluster` with the given channel constants.
    ///
    /// # Panics
    /// Panics if the parameters are invalid.
    pub fn new(cluster: &'a Cluster, params: NetParams) -> Self {
        params.validate().expect("invalid network parameters");
        StageModel { cluster, params }
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &Cluster {
        self.cluster
    }

    /// The channel constants.
    pub fn params(&self) -> &NetParams {
        &self.params
    }

    /// Completion time (seconds) of one synchronized stage of messages.
    ///
    /// Messages with `src == dst` are priced as local copies. An empty stage
    /// costs nothing.
    pub fn stage_time(&self, msgs: &[Message]) -> f64 {
        tarr_trace::counter_add!("netsim.stage.calls", 1);
        tarr_trace::counter_add!("netsim.stage.msgs", msgs.len() as u64);
        if msgs.is_empty() {
            return 0.0;
        }

        // Count contention per physical hop across the stage. Paths live in
        // one flat buffer (two allocations per stage, not one per message —
        // this is the innermost loop of every figure sweep).
        let mut load: FxHashMap<Hop, u32> = FxHashMap::default();
        load.reserve(msgs.len() * 4);
        let mut hops_flat: Vec<Hop> = Vec::with_capacity(msgs.len() * 4);
        let mut ends: Vec<usize> = Vec::with_capacity(msgs.len());
        for m in msgs {
            if !m.is_local() {
                hops_flat.extend(self.cluster.path(m.src, m.dst));
            }
            ends.push(hops_flat.len());
        }
        for h in &hops_flat {
            *load.entry(*h).or_insert(0) += 1;
        }

        let mut worst = 0.0f64;
        let mut start = 0usize;
        for (m, &end) in msgs.iter().zip(&ends) {
            let path = &hops_flat[start..end];
            start = end;
            let t = if m.is_local() {
                self.params.memcpy.copy_time(m.bytes)
            } else {
                let mut alpha = self.params.sw_overhead_s;
                let mut inv_rate = 0.0f64; // seconds per byte on the bottleneck hop
                for h in path {
                    let ch = self.params.channel_for(h);
                    alpha += ch.latency_s;
                    let contended = load[h] as f64 / ch.bandwidth_bps;
                    if contended > inv_rate {
                        inv_rate = contended;
                    }
                }
                alpha + m.bytes as f64 * inv_rate
            };
            if t > worst {
                worst = t;
            }
        }
        worst
    }

    /// Total time of a sequence of synchronized stages.
    pub fn stages_time<I>(&self, stages: I) -> f64
    where
        I: IntoIterator,
        I::Item: AsRef<[Message]>,
    {
        stages
            .into_iter()
            .map(|s| self.stage_time(s.as_ref()))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tarr_topo::CoreId;

    fn model(cluster: &Cluster) -> StageModel<'_> {
        StageModel::new(cluster, NetParams::default())
    }

    #[test]
    fn empty_stage_is_free() {
        let c = Cluster::gpc(2);
        assert_eq!(model(&c).stage_time(&[]), 0.0);
    }

    #[test]
    fn intra_socket_beats_inter_node() {
        let c = Cluster::gpc(2);
        let m = model(&c);
        let local = m.stage_time(&[Message::new(CoreId(0), CoreId(1), 4096)]);
        let remote = m.stage_time(&[Message::new(CoreId(0), CoreId(8), 4096)]);
        assert!(local < remote, "local {local} remote {remote}");
    }

    #[test]
    fn cross_socket_between_intra_and_inter() {
        let c = Cluster::gpc(2);
        let m = model(&c);
        let same_socket = m.stage_time(&[Message::new(CoreId(0), CoreId(1), 65536)]);
        let cross_socket = m.stage_time(&[Message::new(CoreId(0), CoreId(4), 65536)]);
        let inter_node = m.stage_time(&[Message::new(CoreId(0), CoreId(8), 65536)]);
        assert!(same_socket < cross_socket);
        assert!(cross_socket < inter_node);
    }

    #[test]
    fn contention_slows_shared_links() {
        // Two nodes on the same leaf: node 0's HCA-up link is shared when two
        // cores of node 0 send to node 1 simultaneously.
        let c = Cluster::gpc(2);
        let m = model(&c);
        let bytes = 1 << 20;
        let solo = m.stage_time(&[Message::new(CoreId(0), CoreId(8), bytes)]);
        let duo = m.stage_time(&[
            Message::new(CoreId(0), CoreId(8), bytes),
            Message::new(CoreId(1), CoreId(9), bytes),
        ]);
        assert!(duo > 1.5 * solo, "solo {solo} duo {duo}");
    }

    #[test]
    fn disjoint_messages_do_not_interfere() {
        let c = Cluster::gpc(4);
        let m = model(&c);
        let bytes = 1 << 20;
        // node0→node1 and node2→node3 share no channel (same leaf, distinct
        // HCAs).
        let solo = m.stage_time(&[Message::new(CoreId(0), CoreId(8), bytes)]);
        let pair = m.stage_time(&[
            Message::new(CoreId(0), CoreId(8), bytes),
            Message::new(CoreId(16), CoreId(24), bytes),
        ]);
        assert!((pair - solo).abs() < 1e-12);
    }

    #[test]
    fn latency_dominates_small_messages() {
        let c = Cluster::gpc(2);
        let m = model(&c);
        let t1 = m.stage_time(&[Message::new(CoreId(0), CoreId(8), 1)]);
        let t2 = m.stage_time(&[Message::new(CoreId(0), CoreId(8), 64)]);
        // 64× the payload should cost well under 2× at 1-byte scale.
        assert!(t2 < 1.5 * t1);
    }

    #[test]
    fn bandwidth_dominates_large_messages() {
        let c = Cluster::gpc(2);
        let m = model(&c);
        let t1 = m.stage_time(&[Message::new(CoreId(0), CoreId(8), 1 << 20)]);
        let t2 = m.stage_time(&[Message::new(CoreId(0), CoreId(8), 1 << 21)]);
        assert!(t2 > 1.8 * t1 && t2 < 2.2 * t1);
    }

    #[test]
    fn local_message_priced_as_memcpy() {
        let c = Cluster::gpc(1);
        let m = model(&c);
        let t = m.stage_time(&[Message::new(CoreId(0), CoreId(0), 4096)]);
        assert_eq!(t, NetParams::default().memcpy.copy_time(4096));
    }

    #[test]
    fn stages_time_sums() {
        let c = Cluster::gpc(2);
        let m = model(&c);
        let s1 = vec![Message::new(CoreId(0), CoreId(1), 1024)];
        let s2 = vec![Message::new(CoreId(0), CoreId(8), 1024)];
        let total = m.stages_time([&s1[..], &s2[..]]);
        assert!((total - (m.stage_time(&s1) + m.stage_time(&s2))).abs() < 1e-15);
    }

    #[test]
    fn degraded_hca_slows_only_affected_flows() {
        // Failure injection: node 0's HCA drops to a tenth of its bandwidth;
        // flows out of node 0 slow ~10x, flows between other nodes are
        // untouched.
        let c = Cluster::gpc(4);
        let mut params = NetParams::default();
        let healthy = StageModel::new(&c, params.clone());
        let bytes = 1 << 20;
        let affected = [Message::new(CoreId(0), CoreId(8), bytes)];
        let unaffected = [Message::new(CoreId(16), CoreId(24), bytes)];
        let t_ok = healthy.stage_time(&affected);
        let t_other = healthy.stage_time(&unaffected);

        params.override_link(
            tarr_topo::Hop::HcaUp {
                node: tarr_topo::NodeId(0),
            },
            crate::params::ChannelParams::us_gbs(0.55, 0.32),
        );
        let degraded = StageModel::new(&c, params);
        assert!(
            degraded.stage_time(&affected) > 5.0 * t_ok,
            "degraded link must dominate"
        );
        assert!((degraded.stage_time(&unaffected) - t_other).abs() < 1e-15);
    }

    #[test]
    fn invalid_override_rejected() {
        let mut params = NetParams::default();
        params.override_link(
            tarr_topo::Hop::HcaUp {
                node: tarr_topo::NodeId(0),
            },
            crate::params::ChannelParams {
                latency_s: 0.0,
                bandwidth_bps: 0.0,
            },
        );
        assert!(params.validate().is_err());
    }

    #[test]
    fn uplink_blocking_penalizes_many_cross_leaf_flows() {
        // 60 nodes = 2 leaves. All 30 nodes of leaf 0 send to leaf 1:
        // 30 flows share 6 uplinks (5:1), vs 6 flows that fit 1:1.
        let c = Cluster::gpc(60);
        let m = model(&c);
        let bytes = 1 << 20;
        let mk = |n: usize| -> Vec<Message> {
            (0..n)
                .map(|i| {
                    Message::new(
                        c.core_id(tarr_topo::NodeId::from_idx(i), 0),
                        c.core_id(tarr_topo::NodeId::from_idx(30 + i), 0),
                        bytes,
                    )
                })
                .collect()
        };
        let light = m.stage_time(&mk(2));
        let heavy = m.stage_time(&mk(30));
        assert!(heavy > 2.0 * light, "light {light} heavy {heavy}");
    }
}
