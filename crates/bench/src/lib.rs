//! Shared plumbing for the figure-harness binaries.
//!
//! Every binary accepts `--procs N` (default 4096, the paper's scale) and
//! `--quick` (a 512-process smoke configuration for CI-sized runs); results
//! print as aligned tables with one row per message size and one column per
//! scheme, mirroring the series of the paper's figures. `--trace-out PATH`
//! (JSONL) and `--trace-chrome PATH` (Perfetto-loadable) enable the
//! tarr-trace recorder for the run and export it at exit.

pub mod scaled;

use tarr_core::{Scheme, Session, SessionConfig};
use tarr_mapping::{InitialMapping, OrderFix};
use tarr_topo::Cluster;

/// `--trace-out` / `--trace-chrome` plumbing shared by every harness,
/// including the scaled binaries with hand-rolled argument parsers.
#[derive(Debug, Clone, Default)]
pub struct TraceOpts {
    /// JSONL export path (`tarr-trace` line schema; see `trace-validate`).
    pub jsonl: Option<std::path::PathBuf>,
    /// Chrome trace-event export path (load in Perfetto / `about:tracing`).
    pub chrome: Option<std::path::PathBuf>,
}

impl TraceOpts {
    /// Whether any trace output was requested.
    pub fn active(&self) -> bool {
        self.jsonl.is_some() || self.chrome.is_some()
    }

    /// Enable the recorder iff an output path was requested. Call before the
    /// first session is built so distance-build spans are captured.
    pub fn init(&self) {
        if self.active() {
            tarr_trace::set_enabled(true);
        }
    }

    /// Export the requested formats, print the end-of-run metrics summary
    /// and disable the recorder. Export failures are reported, not fatal.
    pub fn finish(&self) {
        if !self.active() {
            return;
        }
        print!("{}", tarr_trace::summary_table());
        if let Some(p) = &self.jsonl {
            match tarr_trace::export_jsonl(p) {
                Ok(()) => eprintln!("trace: wrote {}", p.display()),
                Err(e) => eprintln!("trace: failed to write {}: {e}", p.display()),
            }
        }
        if let Some(p) = &self.chrome {
            match tarr_trace::export_chrome(p) {
                Ok(()) => eprintln!("trace: wrote {}", p.display()),
                Err(e) => eprintln!("trace: failed to write {}: {e}", p.display()),
            }
        }
        tarr_trace::set_enabled(false);
    }
}

/// Command-line options shared by the harnesses.
#[derive(Debug, Clone)]
pub struct HarnessOpts {
    /// Number of processes (whole nodes are allocated).
    pub procs: usize,
    /// Number of processes for the application figures (the paper uses 1024).
    pub app_procs: usize,
    /// Trace export configuration.
    pub trace: TraceOpts,
}

impl HarnessOpts {
    /// Parse `--procs N` / `--quick` from the process arguments; prints a
    /// usage message and exits with status 2 on invalid input.
    pub fn from_args() -> Self {
        fn usage(msg: &str) -> ! {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: [--procs N | --quick] [--trace-out PATH] [--trace-chrome PATH]   \
                 (N: positive multiple of 8, e.g. 4096)"
            );
            std::process::exit(2);
        }
        let mut procs = 4096usize;
        let mut app_procs = 1024usize;
        let mut trace = TraceOpts::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--procs" => {
                    let Some(n) = args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) else {
                        usage("--procs needs a number");
                    };
                    procs = n;
                    i += 1;
                }
                "--quick" => {
                    procs = 512;
                    app_procs = 256;
                }
                "--trace-out" => {
                    let Some(p) = args.get(i + 1) else {
                        usage("--trace-out needs a path");
                    };
                    trace.jsonl = Some(p.into());
                    i += 1;
                }
                "--trace-chrome" => {
                    let Some(p) = args.get(i + 1) else {
                        usage("--trace-chrome needs a path");
                    };
                    trace.chrome = Some(p.into());
                    i += 1;
                }
                other => usage(&format!("unknown argument {other}")),
            }
            i += 1;
        }
        if procs == 0 || !procs.is_multiple_of(8) {
            usage(&format!(
                "--procs {procs} is not a positive multiple of 8 (whole GPC nodes are allocated)"
            ));
        }
        if procs < 16 {
            app_procs = procs;
        }
        HarnessOpts {
            procs,
            app_procs,
            trace,
        }
    }

    /// A GPC cluster just large enough for `procs` processes.
    pub fn cluster_for(&self, procs: usize) -> Cluster {
        let nodes = procs.div_ceil(8);
        Cluster::gpc(nodes)
    }

    /// A fresh session for the given layout at microbenchmark scale.
    pub fn session(&self, layout: InitialMapping) -> Session {
        Session::from_layout(
            self.cluster_for(self.procs),
            layout,
            self.procs,
            SessionConfig::default(),
        )
    }

    /// A fresh session at application scale.
    pub fn app_session(&self, layout: InitialMapping) -> Session {
        Session::from_layout(
            self.cluster_for(self.app_procs),
            layout,
            self.app_procs,
            SessionConfig::default(),
        )
    }
}

/// A 16×16 switch mesh with diagonal chords, `nodes_per_switch` nodes per
/// switch and 8 cores per node — the irregular-fabric shape `tarr-ingest`
/// exists for, used by the incremental-repair benchmarks. Grid links carry
/// trunk 2; the diagonals carry trunk 1, so losing one diagonal cable
/// removes a whole edge and exercises the fault-local BFS repair. The
/// diagonals also give the graph odd cycles: rows equidistant from a failed
/// edge's endpoints provably keep their distances, so repair stays local
/// (on a bipartite fabric such as an exported fat tree, every edge loss
/// dirties every row).
///
/// Returns the cluster and the central diagonal's endpoints, the canonical
/// single-cable fault.
pub fn chorded_mesh_cluster(nodes_per_switch: usize) -> (Cluster, (u32, u32)) {
    use tarr_topo::{Fabric, IrregularConfig, IrregularFabric, NodeTopology};
    let side = 16u32;
    let mut links = Vec::new();
    for r in 0..side {
        for c in 0..side {
            let s = r * side + c;
            if c + 1 < side {
                links.push((s, s + 1, 2));
            }
            if r + 1 < side {
                links.push((s, s + side, 2));
            }
            if r + 1 < side && c + 1 < side {
                links.push((s, s + side + 1, 1));
            }
        }
    }
    let switches = (side * side) as usize;
    let nodes = switches * nodes_per_switch;
    let graph = IrregularConfig {
        switches,
        node_switch: (0..nodes).map(|n| (n / nodes_per_switch) as u32).collect(),
        links,
    };
    let fabric = IrregularFabric::new(graph).expect("mesh graph is valid");
    let cluster = Cluster::from_parts(NodeTopology::gpc(), Fabric::Irregular(fabric), nodes)
        .expect("mesh hosts every node");
    (cluster, (7 * side + 7, 8 * side + 8))
}

/// Load a `topo-ingest` cluster snapshot for a `--cluster PATH` harness
/// flag (`-` reads the snapshot from stdin, so `topo-ingest snapshot …`
/// pipes straight in); prints the typed error and exits with status 2 on
/// any failure.
pub fn load_cluster_snapshot(path: &str) -> Cluster {
    let text = if path == "-" {
        use std::io::Read;
        let mut buf = String::new();
        match std::io::stdin().read_to_string(&mut buf) {
            Ok(_) => buf,
            Err(e) => {
                eprintln!("error: --cluster -: {e}");
                std::process::exit(2);
            }
        }
    } else {
        match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: --cluster {path}: {e}");
                std::process::exit(2);
            }
        }
    };
    let cluster = tarr_ingest::ClusterSnapshot::parse(&text).and_then(|snap| snap.to_cluster());
    match cluster {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: --cluster {path}: {e}");
            std::process::exit(2);
        }
    }
}

/// The four reordered schemes of the paper's non-hierarchical figures, with
/// their legend labels.
pub fn fig3_schemes() -> Vec<(&'static str, Scheme)> {
    vec![
        ("Hrstc+initComm", Scheme::hrstc(OrderFix::InitComm)),
        ("Hrstc+endShfl", Scheme::hrstc(OrderFix::EndShuffle)),
        ("Scotch+initComm", Scheme::scotch(OrderFix::InitComm)),
        ("Scotch+endShfl", Scheme::scotch(OrderFix::EndShuffle)),
    ]
}

/// Human-readable message size ("512", "4K", "256K").
pub fn size_label(bytes: u64) -> String {
    if bytes >= 1024 && bytes.is_multiple_of(1024) {
        format!("{}K", bytes / 1024)
    } else {
        bytes.to_string()
    }
}

/// Print a header of scheme columns.
pub fn print_table_header(first: &str, cols: &[&str]) {
    print!("{first:>8}");
    for c in cols {
        print!("{c:>18}");
    }
    println!();
}

/// Print one row of percentage improvements.
pub fn print_improvement_row(size: u64, imps: &[Option<f64>]) {
    print!("{:>8}", size_label(size));
    for imp in imps {
        match imp {
            Some(v) => print!("{v:>17.1}%"),
            None => print!("{:>18}", "n/a"),
        }
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_labels() {
        assert_eq!(size_label(1), "1");
        assert_eq!(size_label(512), "512");
        assert_eq!(size_label(1024), "1K");
        assert_eq!(size_label(262144), "256K");
        assert_eq!(size_label(1500), "1500");
    }

    #[test]
    fn cluster_sizing_rounds_up() {
        let opts = HarnessOpts {
            procs: 20,
            app_procs: 16,
            trace: TraceOpts::default(),
        };
        assert_eq!(opts.cluster_for(20).num_nodes(), 3);
    }

    #[test]
    fn fig3_scheme_labels() {
        let s = fig3_schemes();
        assert_eq!(s.len(), 4);
        assert_eq!(s[0].0, "Hrstc+initComm");
    }
}
