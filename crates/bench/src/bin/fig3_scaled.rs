//! Fig. 3 extended past the dense-matrix ceiling: the full non-hierarchical
//! `Session` allgather surface at 65 536 processes.
//!
//! The dense `u16` distance matrix alone would need 8 GiB at this scale and
//! the materialized ring schedule another P² ops; the implicit-oracle
//! session backend ([`SessionConfig::implicit`]) plus the compiled
//! [`TimedSchedule`](tarr_mpi::TimedSchedule) pipeline (with its analytic
//! O(P) ring form) price both algorithm regions — recursive doubling below
//! 1 KiB, ring above — in O(P) memory. This harness sweeps Default and
//! Hrstc-reordered schemes across both regions, reports model latencies,
//! per-scheme wall-clock (cold = mapping + reorder + compile, warm = cached
//! re-price) and the process peak RSS, and **fails** if a full-scale run
//! exceeded 1 GiB.
//!
//! With `--cluster SNAPSHOT` (a `topo-ingest snapshot` file) the session is
//! built on the ingested cluster — fat-tree or irregular — instead of the
//! synthetic GPC model; `--procs` then defaults to the largest power of two
//! that fits the ingested core count.
//!
//! Run: `cargo run -p tarr-bench --release --bin fig3_scaled [--procs N | --quick]`

use std::time::Instant;

use tarr_bench::scaled::{bytes_label, peak_rss_bytes};
use tarr_bench::{load_cluster_snapshot, print_table_header, size_label, TraceOpts};
use tarr_core::{Scheme, Session, SessionConfig};
use tarr_mapping::{InitialMapping, OrderFix};
use tarr_topo::Cluster;
use tarr_workloads::percent_improvement;

const RSS_LIMIT: u64 = 1 << 30;

fn main() {
    let mut procs: Option<usize> = None;
    let mut cluster_path: Option<String> = None;
    let mut trace = TraceOpts::default();
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--procs" => {
                let Some(n) = args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) else {
                    eprintln!("error: --procs needs a number");
                    std::process::exit(2);
                };
                procs = Some(n);
                i += 1;
            }
            "--quick" => procs = Some(4096),
            "--cluster" => {
                let Some(p) = args.get(i + 1) else {
                    eprintln!("error: --cluster needs a snapshot path");
                    std::process::exit(2);
                };
                cluster_path = Some(p.clone());
                i += 1;
            }
            "--trace-out" => {
                let Some(p) = args.get(i + 1) else {
                    eprintln!("error: --trace-out needs a path");
                    std::process::exit(2);
                };
                trace.jsonl = Some(p.into());
                i += 1;
            }
            "--trace-chrome" => {
                let Some(p) = args.get(i + 1) else {
                    eprintln!("error: --trace-chrome needs a path");
                    std::process::exit(2);
                };
                trace.chrome = Some(p.into());
                i += 1;
            }
            other => {
                eprintln!("error: unknown argument {other}");
                eprintln!(
                    "usage: fig3_scaled [--procs N | --quick] [--cluster SNAPSHOT] \
                     [--trace-out PATH] [--trace-chrome PATH]   \
                     (N: power of two; multiple of 8 on the default GPC model)"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let cluster = cluster_path.as_deref().map(load_cluster_snapshot);
    let procs = match (procs, &cluster) {
        (Some(p), _) => p,
        (None, None) => 65536,
        // Largest power of two that fits the ingested cluster.
        (None, Some(c)) => {
            let mut p = 1usize;
            while p * 2 <= c.total_cores() {
                p *= 2;
            }
            p
        }
    };
    if !procs.is_power_of_two() {
        eprintln!("error: --procs {procs} must be a power of two (the RD region needs one)");
        std::process::exit(2);
    }
    match &cluster {
        None if !procs.is_multiple_of(8) => {
            eprintln!("error: --procs {procs} must be a multiple of 8 (whole GPC nodes)");
            std::process::exit(2);
        }
        Some(c) if procs > c.total_cores() => {
            eprintln!(
                "error: --procs {procs} exceeds the ingested cluster's {} cores",
                c.total_cores()
            );
            std::process::exit(2);
        }
        _ => {}
    }

    trace.init();
    println!("== Fig. 3 (scaled): end-to-end session allgather at {procs} processes ==");
    match (&cluster_path, &cluster) {
        (Some(path), Some(c)) => println!(
            "   ingested cluster {path} ({} nodes x {} cores), implicit oracle backend\n",
            c.num_nodes(),
            c.cores_per_node()
        ),
        _ => println!("   implicit oracle backend, cyclic-bunch layout, O(P) memory\n"),
    }

    let cluster = cluster.unwrap_or_else(|| Cluster::gpc(procs / 8));
    let t = Instant::now();
    let mut session = Session::from_layout(
        cluster,
        InitialMapping::CYCLIC_BUNCH,
        procs,
        SessionConfig::implicit(),
    );
    println!("session build: {:.3} s", t.elapsed().as_secs_f64());

    // Two sizes per algorithm region: RD below 1 KiB, ring above.
    let sizes: [u64; 4] = [64, 512, 65536, 262144];
    let schemes: [(&str, Scheme); 3] = [
        ("Default", Scheme::Default),
        ("Hrstc+initComm", Scheme::hrstc(OrderFix::InitComm)),
        ("Hrstc+endShfl", Scheme::hrstc(OrderFix::EndShuffle)),
    ];

    let mut series: Vec<Vec<(u64, f64)>> = Vec::new();
    for (name, scheme) in schemes {
        let t = Instant::now();
        let cold: Vec<(u64, f64)> = sizes
            .iter()
            .map(|&m| (m, session.allgather_time(m, scheme)))
            .collect();
        let cold_s = t.elapsed().as_secs_f64();
        // Stamp counter values between the cold and warm phases so the
        // exported series show cache misses concentrating in the cold sweep.
        tarr_trace::sample_metrics();
        let t = Instant::now();
        for &m in &sizes {
            let again = session.allgather_time(m, scheme);
            assert_eq!(again, cold.iter().find(|&&(s, _)| s == m).unwrap().1);
        }
        let warm_s = t.elapsed().as_secs_f64();
        println!("{name:>16}: cold sweep {cold_s:>8.3} s   warm sweep {warm_s:>8.3} s");
        series.push(cold);
    }

    // Per-stage traffic profile (classified once per unique compiled stage);
    // emits the bounded `session.traffic` instants the CI smoke validates.
    if trace.active() {
        for (_, scheme) in schemes {
            for &m in &sizes {
                let _ = session.allgather_traffic_stages(m, scheme);
            }
        }
    }

    println!("\nmodel latency (s), improvement over Default in brackets:");
    print_table_header("size", &schemes.iter().map(|&(n, _)| n).collect::<Vec<_>>());
    for (i, &size) in sizes.iter().enumerate() {
        let base = series[0][i].1;
        print!("{:>8}", size_label(size));
        for s in &series {
            let t = s[i].1;
            if std::ptr::eq(s, &series[0]) {
                print!("{t:>18.6}");
            } else {
                print!("{:>10.6} ({:>+4.1}%)", t, percent_improvement(base, t));
            }
        }
        println!();
    }

    match peak_rss_bytes() {
        Some(rss) => {
            let verdict = if rss < RSS_LIMIT { "OK" } else { "EXCEEDED" };
            println!(
                "\npeak RSS: {} (limit {} at full scale: {verdict})",
                bytes_label(rss),
                bytes_label(RSS_LIMIT),
            );
            assert!(
                procs < 65536 || rss < RSS_LIMIT,
                "peak RSS {} exceeds the 1 GiB acceptance bound at P = {procs}",
                bytes_label(rss)
            );
        }
        None => println!("\npeak RSS: unavailable (no /proc/self/status)"),
    }
    trace.finish();
}
