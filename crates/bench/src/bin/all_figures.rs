//! Run every figure harness in sequence — the full evaluation of the paper.
//!
//! Run: `cargo run -p tarr-bench --release --bin all_figures [--procs N | --quick]`

use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    for bin in ["fig3", "fig4", "fig5", "fig6", "fig7", "ablations"] {
        println!("\n################ {bin} ################");
        let status = Command::new(exe_dir.join(bin))
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
}
