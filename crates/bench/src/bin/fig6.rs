//! Fig. 6 — application execution time (normalized to the default), with the
//! **hierarchical** allgather, 1024 processes.
//!
//! Panels: (a) block-bunch non-linear, (b) block-scatter non-linear,
//! (c) block-bunch linear, (d) block-scatter linear. The paper reports ≈1.0
//! everywhere except ≈0.9 for (b), and no improvement with linear intra
//! phases.
//!
//! Run: `cargo run -p tarr-bench --release --bin fig6 [--quick]`

use tarr_bench::HarnessOpts;
use tarr_collectives::allgather::{HierarchicalConfig, InterAlg, IntraPattern};
use tarr_collectives::MVAPICH_RD_THRESHOLD;
use tarr_core::Scheme;
use tarr_mapping::{InitialMapping, OrderFix};
use tarr_workloads::AppConfig;

fn main() {
    let opts = HarnessOpts::from_args();
    let app = AppConfig::default();
    let inter = if app.message_bytes() < MVAPICH_RD_THRESHOLD {
        InterAlg::RecursiveDoubling
    } else {
        InterAlg::Ring
    };
    println!(
        "Fig. 6 — normalized application execution time (hierarchical), {} processes",
        opts.app_procs
    );
    println!(
        "{:>8}{:>16}{:>12}{:>12}{:>12}{:>12}",
        "panel", "initial mapping", "intra", "default", "Hrstc", "Scotch"
    );

    let panels = [
        ("(a)", InitialMapping::BLOCK_BUNCH, IntraPattern::Binomial),
        ("(b)", InitialMapping::BLOCK_SCATTER, IntraPattern::Binomial),
        ("(c)", InitialMapping::BLOCK_BUNCH, IntraPattern::Linear),
        ("(d)", InitialMapping::BLOCK_SCATTER, IntraPattern::Linear),
    ];

    for (panel, layout, intra) in panels {
        let hcfg = HierarchicalConfig { intra, inter };
        let mut session = opts.app_session(layout);
        let base = app
            .simulate_hierarchical(&mut session, hcfg, Scheme::Default)
            .expect("block layouts support hierarchical allgather");
        let hrstc = app
            .simulate_hierarchical(&mut session, hcfg, Scheme::hrstc(OrderFix::InitComm))
            .unwrap();
        let scotch = app
            .simulate_hierarchical(&mut session, hcfg, Scheme::scotch(OrderFix::InitComm))
            .unwrap();
        println!(
            "{:>8}{:>16}{:>12}{:>12.3}{:>12.3}{:>12.3}",
            panel,
            layout.name(),
            match intra {
                IntraPattern::Binomial => "non-linear",
                IntraPattern::Linear => "linear",
            },
            1.0,
            hrstc.total / base.total,
            scotch.total / base.total,
        );
    }
}
