//! Fig. 7 — overheads of topology-aware rank reordering at 1024, 2048 and
//! 4096 processes.
//!
//! * (a) the one-time physical-distance extraction overhead: the calibrated
//!   on-system cost model (hwloc + IB tools probing; ≈3.3 s at 4096 with
//!   linear scaling) plus, for reference, the *real measured* wall-clock of
//!   building our distance matrix;
//! * (b) the per-pattern mapping overhead (real, measured): the fine-tuned
//!   heuristics (average of RDMH/RMH/BBMH/BGMH) versus the Scotch-like
//!   mapper *including* the process-topology-graph build it requires.
//!
//! Run: `cargo run -p tarr-bench --release --bin fig7 [--quick]`

use std::time::Instant;
use tarr_bench::HarnessOpts;
use tarr_core::{Mapper, PatternKind, Session, SessionConfig};
use tarr_mapping::{bbmh, bgmh, rdmh, rmh, InitialMapping};

fn main() {
    let opts = HarnessOpts::from_args();
    opts.trace.init();
    let sizes: Vec<usize> = if opts.procs <= 512 {
        vec![128, 256, 512]
    } else {
        vec![1024, 2048, 4096]
    };

    println!("Fig. 7(a) — one-time distance extraction overhead");
    println!(
        "{:>8}  {:>22}  {:>26}",
        "procs", "modelled on-system (s)", "measured matrix build (s)"
    );
    let mut sessions: Vec<(usize, Session)> = Vec::new();
    for &p in &sizes {
        let cluster = opts.cluster_for(p);
        let s = Session::from_layout(
            cluster,
            InitialMapping::BLOCK_BUNCH,
            p,
            SessionConfig::default(),
        );
        println!(
            "{:>8}  {:>22.3}  {:>26.4}",
            p,
            s.extraction_model_seconds(),
            s.dist_build_time().as_secs_f64()
        );
        sessions.push((p, s));
    }

    println!("\nFig. 7(b) — mapping algorithm overhead (measured, seconds)");
    println!(
        "{:>8}  {:>14}  {:>14}  {:>18}",
        "procs", "heuristics avg", "Scotch-like", "(graph build part)"
    );
    for (p, session) in &mut sessions {
        // Average the four heuristics' wall-clock, as the paper does
        // ("our heuristics have almost the same amount of overhead").
        let d = session.distance_matrix().clone();
        let t0 = Instant::now();
        let _ = rdmh(&d, 0);
        let _ = rmh(&d, 0);
        let _ = bbmh(&d, 0);
        let _ = bgmh(&d, 0);
        let heuristic_avg = t0.elapsed().as_secs_f64() / 4.0;

        let info = session
            .mapping(Mapper::ScotchLike, PatternKind::Ring)
            .clone();
        println!(
            "{:>8}  {:>14.4}  {:>14.4}  {:>18.4}",
            p,
            heuristic_avg,
            (info.compute + info.graph_build).as_secs_f64(),
            info.graph_build.as_secs_f64()
        );
    }
    opts.trace.finish();
}
