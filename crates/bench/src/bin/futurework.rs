//! The paper's §VII future-work agenda, evaluated:
//!
//! 1. **Bruck allgather** with the BKMH heuristic (non-power-of-two jobs);
//! 2. **MPI_Allreduce** (recursive doubling and Rabenseifner) under RDMH
//!    reordering;
//! 3. **Many-core intra-node topologies** — BBMH/BGMH on 64-core nodes
//!    (4 sockets × 16 cores with L2 groups), where the paper expected its
//!    intra-node heuristics to matter more.
//!
//! Run: `cargo run -p tarr-bench --release --bin futurework [--quick]`

use tarr_bench::HarnessOpts;
use tarr_core::{Scheme, Session, SessionConfig};
use tarr_mapping::{InitialMapping, OrderFix};
use tarr_topo::{Cluster, ClusterConfig, FatTreeConfig, NodeTopology, Rank};
use tarr_workloads::percent_improvement;

fn main() {
    let opts = HarnessOpts::from_args();
    bruck_with_bkmh(&opts);
    allreduce_reordering(&opts);
    manycore_nodes();
    adaptive_runtime(&opts);
    congestion_refinement();
}

/// §VII future work: the adaptive runtime picks per message size whether the
/// reordered communicator is worth using.
fn adaptive_runtime(opts: &HarnessOpts) {
    use tarr_core::Mapper;
    println!("\n== Future work 4: adaptive scheme selection (block-bunch) ==");
    let mut s = opts.session(InitialMapping::BLOCK_BUNCH);
    println!("{:>8}  {:>12}  {:>12}", "size", "chosen", "latency");
    for msg in [64u64, 512, 4096, 65536] {
        let (scheme, t) = s.adaptive_allgather(msg, Mapper::Hrstc, OrderFix::InitComm, 0.02);
        let label = match scheme {
            Scheme::Default => "default",
            Scheme::Reordered { .. } => "reordered",
        };
        println!("{:>8}  {:>12}  {:>10.1}us", msg, label, t * 1e6);
    }
}

/// Beyond the paper: congestion-aware refinement on top of the heuristics
/// (the authors' follow-up PTRAM direction). Demonstrated on the case where
/// a distance-optimal mapping is contention-poor: BGMH on a multi-node
/// standalone gather.
fn congestion_refinement() {
    use tarr_core::congestion_refine;
    use tarr_mpi::{time_schedule, Communicator};
    use tarr_netsim::{NetParams, StageModel};
    use tarr_topo::{Cluster, DistanceConfig, DistanceMatrix};

    println!("\n== Future work 5: congestion-aware refinement (binomial gather, 64 procs) ==");
    let cluster = Cluster::gpc(8);
    let p = cluster.total_cores();
    let cores = InitialMapping::BLOCK_BUNCH.layout(&cluster, p);
    let comm = Communicator::new(cores.clone());
    let d = DistanceMatrix::build(&cluster, &cores, &DistanceConfig::default());
    let sched = tarr_collectives::gather::binomial_gather(p as u32, Rank(0));
    let params = NetParams::default();
    let model = StageModel::new(&cluster, params.clone());
    let bytes = 8192u64;

    let ident: Vec<u32> = (0..p as u32).collect();
    let t_ident = time_schedule(&sched, &comm.reordered(&ident), &model, bytes);
    let bgmh_m = tarr_mapping::bgmh(&d, 0);
    let t_bgmh = time_schedule(&sched, &comm.reordered(&bgmh_m), &model, bytes);
    let (_, t_refined) = congestion_refine(&cluster, &comm, &sched, bytes, &params, bgmh_m, 800, 7);
    println!("identity mapping:         {:.1} us", t_ident * 1e6);
    println!(
        "BGMH (distance-optimal):  {:.1} us  (contention-blind)",
        t_bgmh * 1e6
    );
    println!("BGMH + refinement:        {:.1} us", t_refined * 1e6);
}

fn bruck_with_bkmh(opts: &HarnessOpts) {
    // A non-power-of-two job: drop one node from the requested size.
    let nodes = opts.procs / 8 - 1;
    let cluster = Cluster::gpc(nodes);
    let p = nodes * 8;
    println!("== Future work 1: Bruck allgather + BKMH ({p} processes, cyclic-bunch) ==");
    let mut s = Session::from_layout(
        cluster,
        InitialMapping::CYCLIC_BUNCH,
        p,
        SessionConfig::default(),
    );
    println!(
        "{:>8}  {:>12}  {:>12}  {:>12}",
        "size", "default", "BKMH", "improvement"
    );
    for msg in [16u64, 128, 512] {
        // Below 1 KiB and non-power-of-two: selection picks Bruck.
        let b = s.allgather_time(msg, Scheme::Default);
        let r = s.allgather_time(msg, Scheme::hrstc(OrderFix::InitComm));
        println!(
            "{:>8}  {:>10.1}us  {:>10.1}us  {:>11.1}%",
            msg,
            b * 1e6,
            r * 1e6,
            percent_improvement(b, r)
        );
    }
}

fn allreduce_reordering(opts: &HarnessOpts) {
    println!("\n== Future work 2: MPI_Allreduce under RDMH reordering (block-bunch) ==");
    let mut s = opts.session(InitialMapping::BLOCK_BUNCH);
    println!(
        "{:>10}  {:>14}  {:>12}  {:>12}  {:>12}",
        "vector", "algorithm", "default", "reordered", "improvement"
    );
    for bytes in [4096u64, 262144] {
        for (name, rab) in [("rec-doubling", false), ("rabenseifner", true)] {
            let b = s.allreduce_time(bytes, rab, Scheme::Default);
            let r = s.allreduce_time(bytes, rab, Scheme::hrstc(OrderFix::InitComm));
            println!(
                "{:>10}  {:>14}  {:>10.2}ms  {:>10.2}ms  {:>11.1}%",
                bytes,
                name,
                b * 1e3,
                r * 1e3,
                percent_improvement(b, r)
            );
        }
    }
}

fn manycore_nodes() {
    println!("\n== Future work 3: many-core nodes (4×16 cores, L2 groups of 4) ==");
    let cluster = Cluster::new(ClusterConfig {
        node: NodeTopology::manycore(),
        fabric: FatTreeConfig::gpc(),
        num_nodes: 16,
    });
    let p = cluster.total_cores();
    println!("single-job intra-heavy study, {p} processes, cyclic-scatter layout");
    let mut s = Session::from_layout(
        cluster,
        InitialMapping::CYCLIC_SCATTER,
        p,
        SessionConfig::default(),
    );
    println!(
        "{:>8}  {:>12}  {:>12}  {:>12}",
        "size", "default", "Hrstc", "improvement"
    );
    for msg in [512u64, 16384, 262144] {
        let b = s.allgather_time(msg, Scheme::Default);
        let r = s.allgather_time(msg, Scheme::hrstc(OrderFix::InitComm));
        println!(
            "{:>8}  {:>10.2}ms  {:>10.2}ms  {:>11.1}%",
            msg,
            b * 1e3,
            r * 1e3,
            percent_improvement(b, r)
        );
    }
}
