//! Fig. 3 — microbenchmark improvements of the **non-hierarchical**
//! topology-aware allgather, four initial mappings, 4096 processes.
//!
//! For every initial mapping and message size, prints the percentage latency
//! improvement of each reordering scheme over the MVAPICH-like default
//! (recursive doubling below 1 KiB, ring above). The MVAPICH built-in
//! block→cyclic reorder is included as an extra baseline column.
//!
//! The four panels are independent sessions, so they are computed on one
//! thread each (`std::thread::scope`) and printed in figure order once all
//! have joined — the output is byte-identical to the sequential harness.
//!
//! Run: `cargo run -p tarr-bench --release --bin fig3 [--procs N | --quick]`

use tarr_bench::{fig3_schemes, print_improvement_row, print_table_header, HarnessOpts};
use tarr_core::{Mapper, Scheme};
use tarr_mapping::{InitialMapping, OrderFix};
use tarr_workloads::{percent_improvement, OsuSweep};

/// One figure panel: per message size, the improvement of every scheme
/// column over the default (`None` where the baseline doesn't apply).
fn compute_panel(
    opts: &HarnessOpts,
    sweep: &OsuSweep,
    layout: InitialMapping,
) -> Vec<(u64, Vec<Option<f64>>)> {
    let mut session = opts.session(layout);
    let base = sweep.run(&mut session, Scheme::Default);
    let mut series: Vec<Vec<(u64, f64)>> = fig3_schemes()
        .iter()
        .map(|&(_, s)| sweep.run(&mut session, s))
        .collect();
    series.push(sweep.run(
        &mut session,
        Scheme::Reordered {
            mapper: Mapper::MvapichCyclic,
            fix: OrderFix::InitComm,
        },
    ));

    base.iter()
        .enumerate()
        .map(|(i, &(size, b))| {
            let mut imps: Vec<Option<f64>> = series
                .iter()
                .map(|s| Some(percent_improvement(b, s[i].1)))
                .collect();
            // MVAPICH only applies its block→cyclic reorder to recursive
            // doubling (the sub-1 KiB regime).
            if size >= tarr_collectives::MVAPICH_RD_THRESHOLD {
                *imps.last_mut().unwrap() = None;
            }
            (size, imps)
        })
        .collect()
}

fn main() {
    let opts = HarnessOpts::from_args();
    opts.trace.init();
    let sweep = OsuSweep::paper_range();
    println!(
        "Fig. 3 — non-hierarchical topology-aware allgather, {} processes",
        opts.procs
    );

    let (opts, sweep) = (&opts, &sweep);
    let panels: Vec<Vec<(u64, Vec<Option<f64>>)>> = std::thread::scope(|s| {
        let handles: Vec<_> = InitialMapping::ALL
            .into_iter()
            .map(|layout| s.spawn(move || compute_panel(opts, sweep, layout)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for ((panel, layout), rows) in ["(a)", "(b)", "(c)", "(d)"]
        .iter()
        .zip(InitialMapping::ALL)
        .zip(panels)
    {
        println!("\nFig. 3{panel} initial mapping: {}", layout.name());
        let mut cols: Vec<&str> = fig3_schemes().iter().map(|&(n, _)| n).collect();
        cols.push("MvCyclic");
        print_table_header("size", &cols);
        for (size, imps) in rows {
            print_improvement_row(size, &imps);
        }
    }
    opts.trace.finish();
}
