//! Fig. 3 — microbenchmark improvements of the **non-hierarchical**
//! topology-aware allgather, four initial mappings, 4096 processes.
//!
//! For every initial mapping and message size, prints the percentage latency
//! improvement of each reordering scheme over the MVAPICH-like default
//! (recursive doubling below 1 KiB, ring above). The MVAPICH built-in
//! block→cyclic reorder is included as an extra baseline column.
//!
//! Run: `cargo run -p tarr-bench --release --bin fig3 [--procs N | --quick]`

use tarr_bench::{fig3_schemes, print_improvement_row, print_table_header, HarnessOpts};
use tarr_core::{Mapper, Scheme};
use tarr_mapping::{InitialMapping, OrderFix};
use tarr_workloads::{percent_improvement, OsuSweep};

fn main() {
    let opts = HarnessOpts::from_args();
    let sweep = OsuSweep::paper_range();
    println!(
        "Fig. 3 — non-hierarchical topology-aware allgather, {} processes",
        opts.procs
    );

    for (panel, layout) in ["(a)", "(b)", "(c)", "(d)"].iter().zip(InitialMapping::ALL) {
        println!("\nFig. 3{panel} initial mapping: {}", layout.name());
        let mut session = opts.session(layout);

        let schemes = fig3_schemes();
        let mut cols: Vec<&str> = schemes.iter().map(|(n, _)| *n).collect();
        cols.push("MvCyclic");
        print_table_header("size", &cols);

        let base = sweep.run(&mut session, Scheme::Default);
        let mut series: Vec<Vec<(u64, f64)>> = schemes
            .iter()
            .map(|&(_, s)| sweep.run(&mut session, s))
            .collect();
        series.push(sweep.run(
            &mut session,
            Scheme::Reordered {
                mapper: Mapper::MvapichCyclic,
                fix: OrderFix::InitComm,
            },
        ));

        for (i, &(size, b)) in base.iter().enumerate() {
            let mut imps: Vec<Option<f64>> = series
                .iter()
                .map(|s| Some(percent_improvement(b, s[i].1)))
                .collect();
            // MVAPICH only applies its block→cyclic reorder to recursive
            // doubling (the sub-1 KiB regime).
            if size >= tarr_collectives::MVAPICH_RD_THRESHOLD {
                *imps.last_mut().unwrap() = None;
            }
            print_improvement_row(size, &imps);
        }
    }
}
