//! Fig. 7 extended past the dense-matrix ceiling: mapping overhead of the
//! fine-tuned heuristics at 4 Ki – 64 Ki processes, through the implicit
//! distance oracle and the bucketed free-slot index (O(P) memory).
//!
//! Default sizes stop at 16 384; `--large` adds the 65 536-process row
//! (8192 GPC nodes — a dense matrix would need 8 GiB there). A dense ==
//! bucketed cross-check at 512 processes runs first, so every printed row
//! comes from a pipeline whose outputs were just verified bit-identical to
//! the reference at dense-feasible scale.
//!
//! With `--cluster SNAPSHOT` (a `topo-ingest snapshot` file) every row runs
//! on the ingested cluster — fat-tree or irregular — instead of the
//! synthetic GPC model; sizes that exceed the ingested core count are
//! skipped.
//!
//! usage: fig7_scaled [--large] [--seed N] [--cluster SNAPSHOT]
//!                    [--trace-out PATH] [--trace-chrome PATH]

use tarr_bench::scaled::{run_report, run_report_on};
use tarr_bench::{load_cluster_snapshot, TraceOpts};

fn main() {
    let mut sizes = vec![4096usize, 16384];
    let mut seed = 42u64;
    let mut cluster_path: Option<String> = None;
    let mut trace = TraceOpts::default();
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--large" => sizes.push(65536),
            "--seed" => {
                let Some(n) = args.get(i + 1).and_then(|s| s.parse::<u64>().ok()) else {
                    eprintln!("error: --seed needs a number");
                    std::process::exit(2);
                };
                seed = n;
                i += 1;
            }
            "--cluster" => {
                let Some(p) = args.get(i + 1) else {
                    eprintln!("error: --cluster needs a snapshot path");
                    std::process::exit(2);
                };
                cluster_path = Some(p.clone());
                i += 1;
            }
            "--trace-out" => {
                let Some(p) = args.get(i + 1) else {
                    eprintln!("error: --trace-out needs a path");
                    std::process::exit(2);
                };
                trace.jsonl = Some(p.into());
                i += 1;
            }
            "--trace-chrome" => {
                let Some(p) = args.get(i + 1) else {
                    eprintln!("error: --trace-chrome needs a path");
                    std::process::exit(2);
                };
                trace.chrome = Some(p.into());
                i += 1;
            }
            other => {
                eprintln!("error: unknown argument {other}");
                eprintln!(
                    "usage: fig7_scaled [--large] [--seed N] [--cluster SNAPSHOT] \
                     [--trace-out PATH] [--trace-chrome PATH]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    trace.init();
    println!("== Fig. 7 (scaled): mapping overhead via implicit oracle + bucketed index ==\n");
    match cluster_path {
        Some(path) => {
            let cluster = load_cluster_snapshot(&path);
            println!(
                "cluster: {} ({} nodes x {} cores)\n",
                path,
                cluster.num_nodes(),
                cluster.cores_per_node()
            );
            run_report_on(&cluster, &sizes, seed);
        }
        None => run_report(&sizes, seed),
    }
    trace.finish();
}
