//! Seeded fault sweeps: how much latency a degraded fabric costs, and
//! whether topology-aware reordering still pays on it.
//!
//! For each process count and link-failure rate the harness draws seeded
//! random [`FaultSet`]s, applies them to a live [`Session`] with
//! [`Session::apply_faults`] (keyed cache invalidation + remap on the
//! degraded oracle), and prices every heuristic's use case before and after:
//!
//! * RDMH — recursive-doubling allgather, 512 B;
//! * RMH — ring allgather, 64 KiB (in-place fix);
//! * BBMH — binomial broadcast, 4 KiB;
//! * BGMH — binomial gather, 4 KiB;
//! * BKMH — Bruck allgather, 256 B, priced on a second session at P − 8
//!   ranks (Bruck is the non-power-of-two algorithm).
//!
//! Fault sets that partition the fabric are counted and skipped — the typed
//! [`FaultError::PartitionedFabric`] rejection *is* the correct behaviour.
//! After every surviving application the harness re-derives each heuristic's
//! mapping on the degraded fabric and asserts it is still a bijection.
//!
//! `--incremental` switches to the re-convergence benchmark instead: a
//! single-cable fault on a chorded-mesh session (65,536 ranks by default,
//! 4,096 under `--quick`) is applied to warm caches and timed end to end,
//! reporting how much of the distance and pricing state the fault-local
//! repair reused; a delta-priced `congestion_refine` climb is then pinned
//! against the full-reprice reference in the same (traced) process, so
//! `--trace-out` captures both `fault.repair.*` and
//! `refine.delta.stages_repriced`.
//!
//! Run: `cargo run -p tarr-bench --release --bin fault_sweep
//!       [--quick] [--incremental] [--procs N] [--link-fail R] [--seed S]
//!       [--cluster PATH|-] [--trace-out PATH] [--trace-chrome PATH]`

use tarr_bench::{chorded_mesh_cluster, load_cluster_snapshot, size_label, TraceOpts};
use tarr_collectives::gather::chain_gather;
use tarr_core::{refine, Mapper, PatternKind, ProbePoint, Scheme, Session, SessionConfig};
use tarr_faults::{FaultError, FaultRates, FaultSet};
use tarr_mapping::{is_permutation, InitialMapping, OrderFix};
use tarr_mpi::Communicator;
use tarr_netsim::NetParams;
use tarr_topo::{Cluster, CoreId, Rank};

/// One heuristic's use case: label, probe size, reordered scheme, and the
/// (mapper, pattern) whose mapping must stay bijective on the degraded
/// fabric. `bruck` marks the P − 8 companion session.
struct UseCase {
    label: &'static str,
    msg_bytes: u64,
    probe: fn(u64, Scheme) -> ProbePoint,
    scheme: Scheme,
    pattern: PatternKind,
    bruck: bool,
}

fn use_cases() -> Vec<UseCase> {
    vec![
        UseCase {
            label: "RDMH",
            msg_bytes: 512,
            probe: ProbePoint::allgather,
            scheme: Scheme::hrstc(OrderFix::InitComm),
            pattern: PatternKind::Rd,
            bruck: false,
        },
        UseCase {
            label: "RMH",
            msg_bytes: 64 * 1024,
            probe: ProbePoint::allgather,
            scheme: Scheme::hrstc(OrderFix::InPlace),
            pattern: PatternKind::Ring,
            bruck: false,
        },
        UseCase {
            label: "BBMH",
            msg_bytes: 4096,
            probe: ProbePoint::bcast,
            scheme: Scheme::hrstc(OrderFix::InPlace),
            pattern: PatternKind::BinomialBcast,
            bruck: false,
        },
        UseCase {
            label: "BGMH",
            msg_bytes: 4096,
            probe: ProbePoint::gather,
            scheme: Scheme::hrstc(OrderFix::InitComm),
            pattern: PatternKind::BinomialGather,
            bruck: false,
        },
        UseCase {
            label: "BKMH",
            msg_bytes: 256,
            probe: ProbePoint::allgather,
            scheme: Scheme::hrstc(OrderFix::InitComm),
            pattern: PatternKind::Bruck,
            bruck: true,
        },
    ]
}

/// Accumulated sweep results for one (P, rate) cell.
#[derive(Default)]
struct Cell {
    applied: usize,
    partitioned: usize,
    cables_removed: usize,
    /// Per use case: Σ default slowdown, Σ reordered improvement over the
    /// degraded Default (%), both over applied seeds.
    default_slowdown: Vec<f64>,
    reorder_improvement: Vec<f64>,
}

/// One seed's contribution to a cell, computed on a worker thread and
/// folded into the cell serially.
enum SeedOutcome {
    /// All use cases priced; per-case contributions in `cases` order.
    Applied {
        cables_removed: usize,
        default_slowdown: Vec<f64>,
        reorder_improvement: Vec<f64>,
    },
    /// The fault set partitioned the fabric — counted, not an error. The
    /// partial contributions of use cases priced before the partition was
    /// detected are kept, exactly as the serial loop folded them.
    Partitioned {
        default_slowdown: Vec<f64>,
        reorder_improvement: Vec<f64>,
    },
    /// A fault application failed for a reason that should abort the sweep.
    Fatal(String),
}

/// Apply one seeded fault set to every use case and price it: the body of
/// the seed loop, pulled out so seeds can run on worker threads. Pure —
/// all output and accumulation happen at the serial fold.
fn eval_seed(
    make_cluster: &(dyn Fn() -> Cluster + Sync),
    base: &Cluster,
    p: usize,
    rate: f64,
    seed: u64,
    cases: &[UseCase],
) -> SeedOutcome {
    let set = FaultSet::random(base, &FaultRates::links(rate), seed);
    let mut default_slowdown = Vec::with_capacity(cases.len());
    let mut reorder_improvement = Vec::with_capacity(cases.len());
    for case in cases {
        let ranks = if case.bruck { p - 8 } else { p };
        let mut session = Session::from_layout(
            make_cluster(),
            InitialMapping::CYCLIC_BUNCH,
            ranks,
            SessionConfig::implicit(),
        );
        let probes = [
            (case.probe)(case.msg_bytes, Scheme::Default),
            (case.probe)(case.msg_bytes, case.scheme),
        ];
        let report = match session.apply_faults(&set, &probes) {
            Ok(r) => r,
            Err(FaultError::PartitionedFabric { .. }) => {
                return SeedOutcome::Partitioned {
                    default_slowdown,
                    reorder_improvement,
                }
            }
            Err(e) => return SeedOutcome::Fatal(format!("seed {seed:#x} rate {rate}: {e}")),
        };
        // Link failures never kill cores: nobody migrates, and the mapping
        // recomputed on the degraded oracle must still be a bijection of
        // the surviving job.
        assert_eq!(report.ranks_migrated, 0, "link faults drained a core");
        let m = &session.mapping(Mapper::Hrstc, case.pattern).mapping;
        assert!(
            is_permutation(m),
            "{} mapping not bijective at rate {rate} seed {seed:#x}",
            case.label
        );
        let [default, reordered] = &report.probes[..] else {
            unreachable!("two probes per case");
        };
        default_slowdown.push(default.slowdown());
        reorder_improvement.push(100.0 * (default.after - reordered.after) / default.after);
    }
    SeedOutcome::Applied {
        cables_removed: set
            .failed_cables
            .iter()
            .map(|&(_, _, n)| n as usize)
            .sum::<usize>(),
        default_slowdown,
        reorder_improvement,
    }
}

/// `--incremental`: one-cable re-convergence on a warm chorded-mesh
/// session, plus a delta-vs-reference refinement pin, in one traced run.
fn run_incremental(ranks: usize, trace: &TraceOpts) {
    // 256 mesh switches x 8 cores per node: ranks come in whole switches.
    if ranks == 0 || !ranks.is_multiple_of(2048) {
        eprintln!("error: --incremental needs --procs as a multiple of 2048");
        std::process::exit(2);
    }
    trace.init();
    println!("== incremental re-convergence: 1 cable on a {ranks}-rank chorded-mesh session ==");
    let (cluster, (sw_a, sw_b)) = chorded_mesh_cluster(ranks / 2048);
    let mut session = Session::from_layout(
        cluster,
        InitialMapping::CYCLIC_BUNCH,
        ranks,
        SessionConfig::implicit(),
    );
    // Warm the schedule and price caches: the timed region is pure
    // re-convergence, not first-touch compilation.
    session.allgather_time(64 * 1024, Scheme::Default);
    session.allgather_time(512, Scheme::Default);
    let probes = [
        ProbePoint::allgather(64 * 1024, Scheme::Default),
        ProbePoint::allgather(512, Scheme::Default),
    ];
    let set = FaultSet {
        failed_cables: vec![(sw_a, sw_b, 1)],
        ..FaultSet::default()
    };
    let t = std::time::Instant::now();
    let report = match session.apply_faults(&set, &probes) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: incremental fault failed to apply: {e}");
            std::process::exit(1);
        }
    };
    let apply_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(report.summary.cables_removed, 1, "one cable requested");
    assert_eq!(report.ranks_migrated, 0, "a cable fault drains no cores");
    assert!(
        report.summary.dist_rows_rebuilt > 0,
        "edge removal must rebuild the BFS trees that crossed it"
    );
    assert!(
        report.summary.dist_rows_reused > 0,
        "a single mesh cable must not dirty every BFS row"
    );
    println!(
        "   re-converged in {apply_ms:.2} ms: BFS rows {} rebuilt / {} reused, \
         price stages {} repriced / {} reused, {} price entries dropped",
        report.summary.dist_rows_rebuilt,
        report.summary.dist_rows_reused,
        report.price_stages_repriced,
        report.price_stages_reused,
        report.price_entries_dropped,
    );
    for p in &report.probes {
        println!(
            "   probe {}: {:.6e} -> {:.6e} ({:.4}x)",
            size_label(p.probe.msg_bytes),
            p.before,
            p.after,
            p.slowdown()
        );
    }

    // Delta-priced refinement pinned against the full-reprice reference in
    // the same process, so one traced run captures the refine counters next
    // to the repair counters.
    let rp = 512usize;
    let rcluster = Cluster::gpc(rp / 8);
    let cpn = rcluster.cores_per_node();
    let nodes = rcluster.total_cores() / cpn;
    let comm = Communicator::new(
        (0..rp)
            .map(|r| CoreId::from_idx((r % nodes) * cpn + (r / nodes) % cpn))
            .collect(),
    );
    let sched = chain_gather(rp as u32, Rank(0));
    let params = NetParams::default();
    let ident: Vec<u32> = (0..rp as u32).collect();
    let t = std::time::Instant::now();
    let (m_delta, t_delta) = refine::congestion_refine(
        &rcluster,
        &comm,
        &sched,
        4096,
        &params,
        ident.clone(),
        300,
        7,
    );
    let delta_s = t.elapsed().as_secs_f64();
    let t = std::time::Instant::now();
    let (m_ref, t_ref) = refine::reference::congestion_refine(
        &rcluster, &comm, &sched, 4096, &params, ident, 300, 7,
    );
    let ref_s = t.elapsed().as_secs_f64();
    assert_eq!(m_delta, m_ref, "delta refinement diverged from reference");
    assert_eq!(
        t_delta.to_bits(),
        t_ref.to_bits(),
        "delta refinement time diverged from reference"
    );
    println!(
        "   refine pin (P={rp}, chain gather, 300 proposals): delta {:.2} ms vs \
         reference {:.2} ms, bit-identical result",
        delta_s * 1e3,
        ref_s * 1e3
    );
    trace.finish();
}

fn main() {
    let mut quick = false;
    let mut incremental = false;
    let mut procs_override: Option<usize> = None;
    let mut rate_override: Option<f64> = None;
    let mut base_seed: u64 = 0x5eed;
    let mut cluster_path: Option<String> = None;
    let mut trace = TraceOpts::default();
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--incremental" => incremental = true,
            "--procs" => {
                let Some(n) = args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) else {
                    eprintln!("error: --procs needs a number");
                    std::process::exit(2);
                };
                procs_override = Some(n);
                i += 1;
            }
            "--link-fail" => {
                let Some(r) = args.get(i + 1).and_then(|s| s.parse::<f64>().ok()) else {
                    eprintln!("error: --link-fail needs a rate in (0, 1)");
                    std::process::exit(2);
                };
                if !(r > 0.0 && r < 1.0) {
                    eprintln!("error: --link-fail {r} must be in (0, 1)");
                    std::process::exit(2);
                }
                rate_override = Some(r);
                i += 1;
            }
            "--seed" => {
                let Some(s) = args.get(i + 1).and_then(|s| s.parse::<u64>().ok()) else {
                    eprintln!("error: --seed needs a number");
                    std::process::exit(2);
                };
                base_seed = s;
                i += 1;
            }
            "--cluster" => {
                let Some(p) = args.get(i + 1) else {
                    eprintln!("error: --cluster needs a snapshot path (or - for stdin)");
                    std::process::exit(2);
                };
                cluster_path = Some(p.clone());
                i += 1;
            }
            "--trace-out" => {
                let Some(p) = args.get(i + 1) else {
                    eprintln!("error: --trace-out needs a path");
                    std::process::exit(2);
                };
                trace.jsonl = Some(p.into());
                i += 1;
            }
            "--trace-chrome" => {
                let Some(p) = args.get(i + 1) else {
                    eprintln!("error: --trace-chrome needs a path");
                    std::process::exit(2);
                };
                trace.chrome = Some(p.into());
                i += 1;
            }
            other => {
                eprintln!("error: unknown argument {other}");
                eprintln!(
                    "usage: fault_sweep [--quick] [--incremental] [--procs N] [--link-fail R] [--seed S] \
                     [--cluster PATH|-] [--trace-out PATH] [--trace-chrome PATH]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if incremental {
        let ranks = procs_override.unwrap_or(if quick { 4096 } else { 65_536 });
        run_incremental(ranks, &trace);
        return;
    }

    let ingested = cluster_path.as_deref().map(load_cluster_snapshot);

    let proc_counts: Vec<usize> = match (procs_override, &ingested) {
        (Some(n), _) => vec![n],
        (None, Some(c)) => {
            // Largest power of two the ingested cluster hosts.
            let mut p = 1usize;
            while p * 2 <= c.total_cores() {
                p *= 2;
            }
            vec![p]
        }
        (None, None) if quick => vec![512],
        (None, None) => vec![512, 4096],
    };
    let rates: Vec<f64> = match rate_override {
        Some(r) => vec![r],
        None => vec![0.001, 0.005, 0.01, 0.02, 0.05],
    };
    let seeds_per_cell: u64 = if quick { 1 } else { 3 };
    let cases = use_cases();

    trace.init();
    println!("== fault sweep: seeded link failures, remap-on-degradation sessions ==");
    println!(
        "   rates {rates:?}, {} seed(s) per cell, base seed {base_seed:#x}\n",
        seeds_per_cell
    );

    for &p in &proc_counts {
        if p < 16 || !p.is_power_of_two() {
            eprintln!("error: process count {p} must be a power of two >= 16");
            std::process::exit(2);
        }
        let make_cluster = || match &ingested {
            Some(c) => c.clone(),
            None => Cluster::gpc(p / 8),
        };
        let base = make_cluster();
        if p > base.total_cores() {
            eprintln!(
                "error: {p} processes exceed the cluster's {} cores",
                base.total_cores()
            );
            std::process::exit(2);
        }
        println!(
            "-- P = {p} on {} nodes x {} cores --",
            base.num_nodes(),
            base.cores_per_node()
        );

        // Every (rate, seed) task is independent: dispatch them onto scoped
        // worker threads, then fold the outcomes serially in (rate, seed)
        // order. The fold performs the same f64 additions in the same order
        // as the old serial loop, so every printed number is bit-identical
        // at any worker count.
        let tasks: Vec<(usize, f64, u64)> = rates
            .iter()
            .enumerate()
            .flat_map(|(ri, &rate)| {
                (0..seeds_per_cell).map(move |s| {
                    let seed = base_seed
                        .wrapping_add((p as u64) << 32)
                        .wrapping_add((ri as u64) << 16)
                        .wrapping_add(s);
                    (ri, rate, seed)
                })
            })
            .collect();
        let outcomes: Vec<std::sync::Mutex<Option<SeedOutcome>>> =
            tasks.iter().map(|_| std::sync::Mutex::new(None)).collect();
        let next = std::sync::atomic::AtomicUsize::new(0);
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(tasks.len())
            .max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(&(_, rate, seed)) = tasks.get(i) else {
                        break;
                    };
                    let out = eval_seed(&make_cluster, &base, p, rate, seed, &cases);
                    *outcomes[i].lock().expect("outcome slot poisoned") = Some(out);
                });
            }
        });

        let mut cells: Vec<Cell> = Vec::new();
        let mut it = outcomes.iter();
        for _ in 0..rates.len() {
            let mut cell = Cell {
                default_slowdown: vec![0.0; cases.len()],
                reorder_improvement: vec![0.0; cases.len()],
                ..Cell::default()
            };
            for _ in 0..seeds_per_cell {
                let slot = it.next().expect("one outcome per task");
                let out = slot
                    .lock()
                    .expect("outcome slot poisoned")
                    .take()
                    .expect("worker filled every slot");
                match out {
                    SeedOutcome::Applied {
                        cables_removed,
                        default_slowdown,
                        reorder_improvement,
                    } => {
                        cell.applied += 1;
                        cell.cables_removed += cables_removed;
                        for ci in 0..cases.len() {
                            cell.default_slowdown[ci] += default_slowdown[ci];
                            cell.reorder_improvement[ci] += reorder_improvement[ci];
                        }
                    }
                    SeedOutcome::Partitioned {
                        default_slowdown,
                        reorder_improvement,
                    } => {
                        cell.partitioned += 1;
                        for (ci, v) in default_slowdown.into_iter().enumerate() {
                            cell.default_slowdown[ci] += v;
                        }
                        for (ci, v) in reorder_improvement.into_iter().enumerate() {
                            cell.reorder_improvement[ci] += v;
                        }
                    }
                    SeedOutcome::Fatal(msg) => {
                        eprintln!("error: {msg}");
                        std::process::exit(1);
                    }
                }
            }
            cells.push(cell);
        }

        // Default's post-fault slowdown (degraded / pristine), per use case.
        print!("{:>8}{:>6}{:>8}", "rate", "part", "cables");
        for c in &cases {
            print!("{:>16}", format!("{}@{}", c.label, size_label(c.msg_bytes)));
        }
        println!("      (Default slowdown x)");
        for (ri, cell) in cells.iter().enumerate() {
            print!(
                "{:>7.1}%{:>6}{:>8.1}",
                rates[ri] * 100.0,
                cell.partitioned,
                cell.cables_removed as f64 / cell.applied.max(1) as f64
            );
            for ci in 0..cases.len() {
                if cell.applied == 0 {
                    print!("{:>16}", "n/a");
                } else {
                    print!("{:>16.4}", cell.default_slowdown[ci] / cell.applied as f64);
                }
            }
            println!();
        }
        // Reordering's win over Default, both on the degraded fabric.
        println!(
            "\n{:>22}(heuristic improvement over Default on the degraded fabric, %)",
            ""
        );
        for (ri, cell) in cells.iter().enumerate() {
            print!(
                "{:>7.1}%{:>6}{:>8.1}",
                rates[ri] * 100.0,
                cell.partitioned,
                cell.cables_removed as f64 / cell.applied.max(1) as f64
            );
            for ci in 0..cases.len() {
                if cell.applied == 0 {
                    print!("{:>16}", "n/a");
                } else {
                    print!(
                        "{:>15.1}%",
                        cell.reorder_improvement[ci] / cell.applied as f64
                    );
                }
            }
            println!();
        }
        println!();
    }
    println!("every surviving configuration produced a valid bijective mapping");
    trace.finish();
}
