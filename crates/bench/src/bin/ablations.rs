//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! 1. **BBMH traversal order** — smaller-subtrees-first (the paper's §V-A.3
//!    proposal) vs larger-subtrees-first (the Subramoni et al. alternative),
//!    on the simulated binomial broadcast latency.
//! 2. **RDMH reference-update cadence** — update the reference core after 2
//!    mapped processes (the paper's Algorithm 2) vs 1 / 4 / 8.
//! 3. **Hierarchical intra-node mapping** — subtree-contiguous BBMH (our
//!    default; serves both binomial phases) vs the paper's literal BGMH.
//! 4. **Scotch variants** — the paper-default reconstruction vs a well-driven
//!    (weighted, cluster-coherent) DRB mapper.
//! 5. **Model fidelity** — synchronized-stage analytic model vs asynchronous
//!    fluid-flow simulation, small scale.
//!
//! Run: `cargo run -p tarr-bench --release --bin ablations [--quick]`

use tarr_bench::HarnessOpts;
use tarr_collectives::allgather::{
    recursive_doubling, ring, HierarchicalConfig, InterAlg, IntraPattern,
};
use tarr_collectives::bcast::binomial_bcast;
use tarr_core::hier::HierMapper;
use tarr_core::{Mapper, Scheme, Session, SessionConfig};
use tarr_mapping::rdmh::rdmh_with_cadence;
use tarr_mapping::{bbmh_with_order, init_comm_schedule, InitialMapping, OrderFix, TraversalOrder};
use tarr_mpi::{time_schedule, time_schedule_async};
use tarr_netsim::{NetParams, StageModel};
use tarr_topo::Rank;

fn main() {
    let opts = HarnessOpts::from_args();

    ablate_bbmh_order(&opts);
    ablate_rdmh_cadence(&opts);
    ablate_intra_mapping(&opts);
    ablate_scotch_variant(&opts);
    ablate_model_fidelity();
    ablate_stage_profile(&opts);
}

/// Simulated binomial-bcast latency under the two BBMH traversal orders.
fn ablate_bbmh_order(opts: &HarnessOpts) {
    println!("\n== Ablation 1: BBMH traversal order (binomial bcast, cyclic-scatter) ==");
    let session = opts.session(InitialMapping::CYCLIC_SCATTER);
    let p = session.size() as u32;
    let d = session.distance_matrix().clone();
    let model = StageModel::new(session.cluster(), NetParams::default());
    println!(
        "{:>8}  {:>12}  {:>14}  {:>14}",
        "bytes", "default", "smaller-first", "larger-first"
    );
    for bytes in [512u64, 8192, 131072] {
        let sched = binomial_bcast(p, Rank(0), bytes);
        let base = time_schedule(&sched, session.comm(), &model, bytes);
        let mut times = Vec::new();
        for order in [TraversalOrder::SmallerFirst, TraversalOrder::LargerFirst] {
            let m = bbmh_with_order(&d, 0, order);
            let comm2 = session.comm().reordered(&m);
            times.push(time_schedule(&sched, &comm2, &model, bytes));
        }
        println!(
            "{:>8}  {:>12.6}  {:>14.6}  {:>14.6}",
            bytes, base, times[0], times[1]
        );
    }
}

/// Simulated RD allgather latency under different reference-update cadences.
fn ablate_rdmh_cadence(opts: &HarnessOpts) {
    println!("\n== Ablation 2: RDMH reference-update cadence (RD allgather, block-bunch) ==");
    let session = opts.session(InitialMapping::BLOCK_BUNCH);
    let p = session.size() as u32;
    let d = session.distance_matrix().clone();
    let model = StageModel::new(session.cluster(), NetParams::default());
    let bytes = 512u64;
    let sched = recursive_doubling(p);
    let base = time_schedule(&sched, session.comm(), &model, bytes);
    println!("default (no reorder): {base:.6} s at {bytes} B");
    for cadence in [1u32, 2, 4, 8] {
        let m = rdmh_with_cadence(&d, 0, cadence);
        let comm2 = session.comm().reordered(&m);
        let full = init_comm_schedule(&m).then(sched.clone());
        let t = time_schedule(&full, &comm2, &model, bytes);
        let star = if cadence == 2 { "  <- paper" } else { "" };
        println!("cadence {cadence}: {t:.6} s{star}");
    }
}

/// Hierarchical intra-node mapping: BBMH (default) vs the paper's BGMH.
fn ablate_intra_mapping(opts: &HarnessOpts) {
    println!("\n== Ablation 3: hierarchical intra-node mapping (block-scatter, NL) ==");
    let hcfg = HierarchicalConfig {
        intra: IntraPattern::Binomial,
        inter: InterAlg::Ring,
    };
    let groups_session = opts.session(InitialMapping::BLOCK_SCATTER);
    let d = groups_session.distance_matrix().clone();
    let cpn = groups_session.cluster().cores_per_node() as u32;
    let g = groups_session.size() as u32 / cpn;
    let groups: Vec<(u32, u32)> = (0..g).map(|i| (i * cpn, cpn)).collect();
    let model = StageModel::new(groups_session.cluster(), NetParams::default());
    let p = groups_session.size() as u32;
    let bytes = 16384u64;
    let sched = tarr_collectives::hierarchical(p, &groups, hcfg);
    let base = time_schedule(&sched, groups_session.comm(), &model, bytes);
    println!("default: {base:.6} s at {bytes} B");
    for (name, hm) in [
        ("BBMH intra (ours)", HierMapper::Heuristic),
        ("BGMH intra (paper literal)", HierMapper::HeuristicBgmhIntra),
    ] {
        let m = tarr_core::hierarchical_mapping(&d, &groups, hcfg.inter, hcfg.intra, hm, 0)
            .expect("supported");
        let comm2 = groups_session.comm().reordered(&m);
        let new_groups = tarr_core::hier::reordered_groups(&groups, &m);
        let sched2 = tarr_collectives::hierarchical(p, &new_groups, hcfg);
        let t = time_schedule(&sched2, &comm2, &model, bytes);
        println!("{name}: {t:.6} s ({:+.1}%)", 100.0 * (base - t) / base);
    }
}

/// Scotch paper-default reconstruction vs well-driven DRB.
fn ablate_scotch_variant(opts: &HarnessOpts) {
    println!("\n== Ablation 4: Scotch variants (ring allgather, 64 KiB) ==");
    println!(
        "{:>16}  {:>10}  {:>12}  {:>12}  {:>12}",
        "layout", "default", "Scotch", "ScotchTuned", "Hrstc"
    );
    for layout in [InitialMapping::BLOCK_BUNCH, InitialMapping::CYCLIC_BUNCH] {
        let mut session = opts.session(layout);
        let bytes = 65536;
        let base = session.allgather_time(bytes, Scheme::Default);
        let row: Vec<f64> = [Mapper::ScotchLike, Mapper::ScotchTuned, Mapper::Hrstc]
            .iter()
            .map(|&mapper| {
                session.allgather_time(
                    bytes,
                    Scheme::Reordered {
                        mapper,
                        fix: OrderFix::InitComm,
                    },
                )
            })
            .collect();
        println!(
            "{:>16}  {:>10.6}  {:>12.6}  {:>12.6}  {:>12.6}",
            layout.name(),
            base,
            row[0],
            row[1],
            row[2]
        );
    }
}

/// Per-stage latency profile of recursive doubling before/after RDMH: the
/// heuristic's whole point is collapsing the late, heavy stages.
fn ablate_stage_profile(opts: &HarnessOpts) {
    use tarr_mapping::rdmh;
    use tarr_mpi::time_schedule_profile;
    println!("\n== Ablation 6: RD per-stage latency before/after RDMH (block-bunch, 512 B) ==");
    let session = opts.session(InitialMapping::BLOCK_BUNCH);
    let p = session.size() as u32;
    let d = session.distance_matrix().clone();
    let model = StageModel::new(session.cluster(), NetParams::default());
    let sched = recursive_doubling(p);
    let before = time_schedule_profile(&sched, session.comm(), &model, 512);
    let m = rdmh(&d, 0);
    let after = time_schedule_profile(&sched, &session.comm().reordered(&m), &model, 512);
    println!(
        "{:>6}  {:>14}  {:>14}",
        "stage", "default (us)", "RDMH (us)"
    );
    for (i, (b, a)) in before.iter().zip(&after).enumerate() {
        println!("{:>6}  {:>14.1}  {:>14.1}", i, b * 1e6, a * 1e6);
    }
    println!(
        "{:>6}  {:>14.1}  {:>14.1}",
        "total",
        before.iter().sum::<f64>() * 1e6,
        after.iter().sum::<f64>() * 1e6
    );
}

/// Synchronized analytic stages vs asynchronous fluid flows (small scale).
fn ablate_model_fidelity() {
    println!("\n== Ablation 5: analytic stage model vs fluid event simulation ==");
    let cluster = tarr_topo::Cluster::gpc(8);
    let session = Session::from_layout(
        cluster,
        InitialMapping::BLOCK_BUNCH,
        64,
        SessionConfig::default(),
    );
    let params = NetParams::default();
    let model = StageModel::new(session.cluster(), params.clone());
    println!(
        "{:>8}  {:>8}  {:>12}  {:>12}  {:>8}",
        "alg", "bytes", "analytic", "fluid-async", "ratio"
    );
    for bytes in [512u64, 65536] {
        for (name, sched) in [("rd", recursive_doubling(64)), ("ring", ring(64))] {
            let sync = time_schedule(&sched, session.comm(), &model, bytes);
            let asyn =
                time_schedule_async(&sched, session.comm(), session.cluster(), &params, bytes);
            println!(
                "{:>8}  {:>8}  {:>12.6}  {:>12.6}  {:>8.3}",
                name,
                bytes,
                sync,
                asyn,
                asyn / sync
            );
        }
    }
}
