//! Fig. 5 — application execution time (normalized to the default), with the
//! **non-hierarchical** allgather, 1024 processes, four initial mappings.
//!
//! The application is the allgather-dominated N-body mini-app (358
//! `MPI_Allgather` calls, 4 KiB per-rank messages — the ring regime, like
//! the paper's application run). Values below 1.0 are speedups; the paper
//! reports ≈1.0 for block-bunch, ≈0.9 for block-scatter, ≈0.7 for the cyclic
//! mappings, and a ≈2× slowdown for Scotch.
//!
//! Run: `cargo run -p tarr-bench --release --bin fig5 [--quick]`

use tarr_bench::HarnessOpts;
use tarr_core::Scheme;
use tarr_mapping::{InitialMapping, OrderFix};
use tarr_workloads::AppConfig;

fn main() {
    let opts = HarnessOpts::from_args();
    let app = AppConfig::default();
    println!(
        "Fig. 5 — normalized application execution time (non-hierarchical), {} processes, {} allgather calls of {} B",
        opts.app_procs,
        app.iterations,
        app.message_bytes()
    );
    println!(
        "{:>16}{:>12}{:>12}{:>12}{:>14}",
        "initial mapping", "default", "Hrstc", "Scotch", "comm share"
    );

    for layout in InitialMapping::ALL {
        let mut session = opts.app_session(layout);
        let base = app.simulate(&mut session, Scheme::Default);
        // The paper uses initComm only at application level (it won the
        // microbenchmark comparison).
        let hrstc = app.simulate(&mut session, Scheme::hrstc(OrderFix::InitComm));
        let scotch = app.simulate(&mut session, Scheme::scotch(OrderFix::InitComm));
        println!(
            "{:>16}{:>12.3}{:>12.3}{:>12.3}{:>13.1}%",
            layout.name(),
            1.0,
            hrstc.total / base.total,
            scotch.total / base.total,
            100.0 * base.comm_fraction()
        );
    }
}
