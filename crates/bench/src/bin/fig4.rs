//! Fig. 4 — microbenchmark improvements of the **hierarchical**
//! topology-aware allgather, block-bunch / block-scatter initial mappings,
//! 4096 processes.
//!
//! Panels (a)/(b): non-linear (binomial) intra-node gather/broadcast phases;
//! panels (c)/(d): linear intra-node phases. The inter-leader algorithm
//! follows the MVAPICH size switch (recursive doubling below 1 KiB, ring
//! above), matching the paper's observation that the ring regime shows no
//! headroom under a block mapping.
//!
//! Run: `cargo run -p tarr-bench --release --bin fig4 [--procs N | --quick]`

use tarr_bench::{fig3_schemes, print_improvement_row, print_table_header, HarnessOpts};
use tarr_collectives::allgather::{HierarchicalConfig, InterAlg, IntraPattern};
use tarr_collectives::MVAPICH_RD_THRESHOLD;
use tarr_core::Scheme;
use tarr_mapping::InitialMapping;
use tarr_workloads::{percent_improvement, OsuSweep};

fn hcfg_for(intra: IntraPattern, msg: u64) -> HierarchicalConfig {
    let inter = if msg < MVAPICH_RD_THRESHOLD {
        InterAlg::RecursiveDoubling
    } else {
        InterAlg::Ring
    };
    HierarchicalConfig { intra, inter }
}

fn main() {
    let opts = HarnessOpts::from_args();
    let sweep = OsuSweep::paper_range();
    println!(
        "Fig. 4 — hierarchical topology-aware allgather, {} processes",
        opts.procs
    );

    let panels = [
        (
            "(a)",
            InitialMapping::BLOCK_BUNCH,
            IntraPattern::Binomial,
            "non-linear",
        ),
        (
            "(b)",
            InitialMapping::BLOCK_SCATTER,
            IntraPattern::Binomial,
            "non-linear",
        ),
        (
            "(c)",
            InitialMapping::BLOCK_BUNCH,
            IntraPattern::Linear,
            "linear",
        ),
        (
            "(d)",
            InitialMapping::BLOCK_SCATTER,
            IntraPattern::Linear,
            "linear",
        ),
    ];

    for (panel, layout, intra, label) in panels {
        println!("\nFig. 4{panel} {}, {label} intra phases", layout.name());
        let mut session = opts.session(layout);

        let schemes = fig3_schemes();
        let cols: Vec<&str> = schemes.iter().map(|(n, _)| *n).collect();
        print_table_header("size", &cols);

        for &msg in &sweep.sizes {
            let hcfg = hcfg_for(intra, msg);
            let base = session
                .hierarchical_allgather_time(msg, hcfg, Scheme::Default)
                .expect("block layouts support hierarchical allgather");
            let imps: Vec<Option<f64>> = schemes
                .iter()
                .map(|&(_, s)| {
                    session
                        .hierarchical_allgather_time(msg, hcfg, s)
                        .map(|t| percent_improvement(base, t))
                })
                .collect();
            print_improvement_row(msg, &imps);
        }
    }
}
