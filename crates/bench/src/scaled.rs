//! Large-scale mapping-overhead harness (Fig. 7 past the dense-matrix
//! ceiling).
//!
//! The dense `DistanceMatrix` needs `P² · 2` bytes — 32 MiB at 4096
//! processes but 8 GiB at 65 536 — which is what used to cap the mapping
//! pipeline around 4096 ranks. The implicit oracle plus the bucketed
//! free-slot index run the same heuristics bit-identically in O(P) memory,
//! so the fine-tuned heuristics scale to full-system process counts. This
//! module measures exactly that claim and prints one row per size.

use std::time::Instant;

use tarr_mapping::{is_permutation, rdmh_bucketed, rmh_bucketed, InitialMapping};
use tarr_topo::{
    Cluster, DistanceConfig, DistanceMatrix, DistanceOracle, ImplicitDistance, SlotPath,
};

/// Per-size measurements from one large-scale run.
#[derive(Debug, Clone)]
pub struct ScaledRow {
    /// Process count.
    pub procs: usize,
    /// Seconds to build the implicit oracle (paths + line-peer table).
    pub build_s: f64,
    /// Seconds for one `rmh_bucketed` mapping.
    pub rmh_s: f64,
    /// Seconds for one `rdmh_bucketed` mapping.
    pub rdmh_s: f64,
    /// Approximate resident bytes of the implicit oracle.
    pub implicit_bytes: u64,
    /// Bytes a dense `u16` matrix would need at this size (`P² · 2`).
    pub dense_bytes: u64,
}

/// Approximate heap footprint of the implicit oracle: per-slot path + core
/// id, plus the line-peer table.
fn implicit_footprint(o: &ImplicitDistance) -> u64 {
    let per_slot = (std::mem::size_of::<SlotPath>() + std::mem::size_of::<u32>()) as u64;
    let slots = o.len() as u64;
    let peers: u64 = (0..o
        .cluster()
        .fabric()
        .as_fattree()
        .map_or(0, |f| f.num_leaves()))
        .map(|l| o.line_peers(l as u32).len() as u64 * 4)
        .sum();
    slots * per_slot + peers
}

/// Run RMH + RDMH through the bucketed pipeline at `procs` processes on a
/// block-layout GPC cluster and measure build and mapping wall-clock.
pub fn measure_scaled(procs: usize, seed: u64) -> ScaledRow {
    assert!(
        procs.is_multiple_of(8) && procs.is_power_of_two(),
        "scaled harness sizes must be power-of-two multiples of 8 (whole GPC \
         nodes, RDMH needs a power of two)"
    );
    measure_scaled_on(&Cluster::gpc(procs / 8), procs, seed)
}

/// [`measure_scaled`] on an explicit cluster — the `--cluster <snapshot>`
/// path, where the fabric may be ingested (fat-tree or irregular) rather
/// than the synthetic GPC model.
pub fn measure_scaled_on(cluster: &Cluster, procs: usize, seed: u64) -> ScaledRow {
    assert!(
        procs.is_power_of_two(),
        "scaled harness sizes must be powers of two (RDMH needs one)"
    );
    assert!(
        procs <= cluster.total_cores(),
        "{procs} processes exceed the cluster's {} cores",
        cluster.total_cores()
    );
    let cores = InitialMapping::BLOCK_BUNCH.layout(cluster, procs);

    let t = Instant::now();
    let oracle = ImplicitDistance::build(cluster, &cores, &DistanceConfig::default());
    let build_s = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let m_rmh = rmh_bucketed(&oracle, seed);
    let rmh_s = t.elapsed().as_secs_f64();
    assert!(is_permutation(&m_rmh), "rmh produced a non-permutation");

    let t = Instant::now();
    let m_rdmh = rdmh_bucketed(&oracle, seed);
    let rdmh_s = t.elapsed().as_secs_f64();
    assert!(is_permutation(&m_rdmh), "rdmh produced a non-permutation");

    ScaledRow {
        procs,
        build_s,
        rmh_s,
        rdmh_s,
        implicit_bytes: implicit_footprint(&oracle),
        dense_bytes: (procs as u64) * (procs as u64) * 2,
    }
}

/// Cross-check at a dense-feasible size: the bucketed pipeline must produce
/// exactly the dense reference mapping. Panics on divergence.
pub fn cross_check(procs: usize, seed: u64) {
    cross_check_on(&Cluster::gpc(procs / 8), procs, seed)
}

/// [`cross_check`] on an explicit (possibly ingested) cluster.
pub fn cross_check_on(cluster: &Cluster, procs: usize, seed: u64) {
    let cores = InitialMapping::BLOCK_BUNCH.layout(cluster, procs);
    let cfg = DistanceConfig::default();
    let dense = DistanceMatrix::build(cluster, &cores, &cfg);
    let implicit = ImplicitDistance::build(cluster, &cores, &cfg);
    assert_eq!(
        tarr_mapping::rmh(&dense, seed),
        rmh_bucketed(&implicit, seed),
        "rmh: dense and bucketed mappings diverged at P = {procs}"
    );
    assert_eq!(
        tarr_mapping::rdmh(&dense, seed),
        rdmh_bucketed(&implicit, seed),
        "rdmh: dense and bucketed mappings diverged at P = {procs}"
    );
}

/// Peak resident-set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` where procfs is unavailable.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib * 1024)
}

/// Human-readable byte count.
pub fn bytes_label(b: u64) -> String {
    const KIB: u64 = 1024;
    const MIB: u64 = KIB * 1024;
    const GIB: u64 = MIB * 1024;
    if b >= GIB {
        format!("{:.1} GiB", b as f64 / GIB as f64)
    } else if b >= MIB {
        format!("{:.1} MiB", b as f64 / MIB as f64)
    } else if b >= KIB {
        format!("{:.1} KiB", b as f64 / KIB as f64)
    } else {
        format!("{b} B")
    }
}

fn print_rows(rows: impl Iterator<Item = ScaledRow>) {
    println!(
        "{:>8} {:>11} {:>11} {:>11} {:>14} {:>14}",
        "procs", "build(ms)", "rmh(ms)", "rdmh(ms)", "oracle mem", "dense would be"
    );
    for row in rows {
        println!(
            "{:>8} {:>11.3} {:>11.3} {:>11.3} {:>14} {:>14}",
            row.procs,
            row.build_s * 1e3,
            row.rmh_s * 1e3,
            row.rdmh_s * 1e3,
            bytes_label(row.implicit_bytes),
            bytes_label(row.dense_bytes),
        );
    }
}

/// Run the full report: cross-check, then one measured row per size, each
/// on a GPC cluster just large enough for that row.
pub fn run_report(sizes: &[usize], seed: u64) {
    println!("cross-check: dense == bucketed at P = 512 (seed {seed}) ...");
    cross_check(512, seed);
    println!("cross-check: OK\n");
    print_rows(sizes.iter().map(|&p| measure_scaled(p, seed)));
}

/// [`run_report`] against one fixed (ingested) cluster: sizes that don't
/// fit are skipped with a note, and the dense cross-check runs at the
/// largest power of two ≤ min(512, total cores).
pub fn run_report_on(cluster: &Cluster, sizes: &[usize], seed: u64) {
    let total = cluster.total_cores();
    let mut cc = 1usize;
    while cc * 2 <= total.min(512) {
        cc *= 2;
    }
    println!("cross-check: dense == bucketed at P = {cc} (seed {seed}) ...");
    cross_check_on(cluster, cc, seed);
    println!("cross-check: OK\n");
    for &p in sizes {
        if p > total {
            println!("(skipping {p} processes: cluster has only {total} cores)");
        }
    }
    print_rows(
        sizes
            .iter()
            .filter(|&&p| p <= total)
            .map(|&p| measure_scaled_on(cluster, p, seed)),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_small_size() {
        let row = measure_scaled(256, 0);
        assert_eq!(row.procs, 256);
        assert_eq!(row.dense_bytes, 256 * 256 * 2);
        assert!(row.implicit_bytes < row.dense_bytes);
    }

    #[test]
    fn cross_check_small() {
        cross_check(64, 3);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_rejected() {
        measure_scaled(24, 0);
    }

    #[test]
    fn byte_labels() {
        assert_eq!(bytes_label(512), "512 B");
        assert_eq!(bytes_label(2048), "2.0 KiB");
        assert_eq!(bytes_label(32 * 1024 * 1024), "32.0 MiB");
        assert_eq!(bytes_label(8 * 1024 * 1024 * 1024), "8.0 GiB");
    }
}
