//! Criterion companion to Fig. 7(b): wall-clock cost of each mapping
//! algorithm (the paper's key overhead claim — fine-tuned heuristics are
//! orders of magnitude cheaper than a general mapper, with better scaling).

use criterion::{criterion_group, BenchmarkId, Criterion};
use tarr_collectives::allgather::{recursive_doubling, ring};
use tarr_collectives::{pattern_graph, pattern_graph_unweighted};
use tarr_mapping::{
    bbmh, bgmh, greedy_map, rdmh, rdmh_bucketed, rmh, rmh_bucketed, scotch_like_map_with,
    InitialMapping, ScotchVariant,
};
use tarr_topo::{Cluster, DistanceConfig, DistanceMatrix, ImplicitDistance};

fn matrix(p: usize) -> DistanceMatrix {
    let cluster = Cluster::gpc(p / 8);
    let cores = InitialMapping::BLOCK_BUNCH.layout(&cluster, p);
    DistanceMatrix::build(&cluster, &cores, &DistanceConfig::default())
}

fn implicit(p: usize) -> ImplicitDistance {
    let cluster = Cluster::gpc(p / 8);
    let cores = InitialMapping::BLOCK_BUNCH.layout(&cluster, p);
    ImplicitDistance::build(&cluster, &cores, &DistanceConfig::default())
}

fn bench_heuristics(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7b/heuristics");
    group.sample_size(10);
    for p in [256usize, 1024] {
        let d = matrix(p);
        group.bench_with_input(BenchmarkId::new("rdmh", p), &d, |b, d| {
            b.iter(|| rdmh(d, 0))
        });
        group.bench_with_input(BenchmarkId::new("rmh", p), &d, |b, d| b.iter(|| rmh(d, 0)));
        group.bench_with_input(BenchmarkId::new("bbmh", p), &d, |b, d| {
            b.iter(|| bbmh(d, 0))
        });
        group.bench_with_input(BenchmarkId::new("bgmh", p), &d, |b, d| {
            b.iter(|| bgmh(d, 0))
        });
    }
    group.finish();
}

fn bench_general_mappers(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7b/general");
    group.sample_size(10);
    for p in [256usize, 1024] {
        let d = matrix(p);
        // Include the pattern-graph build, as the paper charges it to the
        // general mappers.
        group.bench_with_input(BenchmarkId::new("scotch_default", p), &d, |b, d| {
            b.iter(|| {
                let g = pattern_graph_unweighted(&ring(d.len() as u32));
                scotch_like_map_with(&g, d, 0, ScotchVariant::PaperDefault)
            })
        });
        group.bench_with_input(BenchmarkId::new("scotch_tuned", p), &d, |b, d| {
            b.iter(|| {
                let g = pattern_graph(&ring(d.len() as u32), 1);
                scotch_like_map_with(&g, d, 0, ScotchVariant::Tuned)
            })
        });
        group.bench_with_input(BenchmarkId::new("greedy", p), &d, |b, d| {
            b.iter(|| {
                let g = pattern_graph(&recursive_doubling(d.len() as u32), 1);
                greedy_map(&g, d)
            })
        });
    }
    group.finish();
}

fn bench_bucketed(c: &mut Criterion) {
    // The scaled pipeline: same heuristics through the implicit oracle and
    // the bucketed free-slot index. Sizes the dense path cannot reach are
    // exercised by `--large` (and the fig7_scaled binary) instead of the
    // timing loop, which would rebuild oracles per sample.
    let mut group = c.benchmark_group("fig7b/bucketed");
    group.sample_size(10);
    for p in [1024usize, 4096] {
        let o = implicit(p);
        group.bench_with_input(BenchmarkId::new("rmh_bucketed", p), &o, |b, o| {
            b.iter(|| rmh_bucketed(o, 0))
        });
        group.bench_with_input(BenchmarkId::new("rdmh_bucketed", p), &o, |b, o| {
            b.iter(|| rdmh_bucketed(o, 0))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_heuristics,
    bench_general_mappers,
    bench_bucketed
);

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // `--trace-out PATH`: one traced pass of the scaled report instead of
    // the criterion loops — criterion rejects unknown flags, and a traced
    // timing loop would record thousands of identical spans.
    if let Some(i) = args.iter().position(|a| a == "--trace-out") {
        let Some(path) = args.get(i + 1) else {
            eprintln!("error: --trace-out needs a path");
            std::process::exit(2);
        };
        tarr_trace::set_enabled(true);
        tarr_bench::scaled::run_report(&[4096], 42);
        print!("{}", tarr_trace::summary_table());
        match tarr_trace::export_jsonl(path) {
            Ok(()) => eprintln!("trace: wrote {path}"),
            Err(e) => {
                eprintln!("trace: failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    // `--large`: skip the criterion loops and run the 65 536-process
    // harness (one timed pass per heuristic; a timing loop at that scale
    // would take minutes for no extra information).
    if args.iter().any(|a| a == "--large") {
        tarr_bench::scaled::run_report(&[65536], 42);
        return;
    }
    benches();
}
