//! Benchmarks of schedule generation and functional execution — the
//! substrate cost of regenerating every figure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tarr_collectives::allgather::{
    bruck, hierarchical, recursive_doubling, ring, HierarchicalConfig, InterAlg, IntraPattern,
};
use tarr_mpi::FunctionalState;

fn bench_schedule_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("collectives/generate");
    group.sample_size(20);
    for p in [1024u32, 4096] {
        group.bench_with_input(BenchmarkId::new("rd", p), &p, |b, &p| {
            b.iter(|| recursive_doubling(p))
        });
        group.bench_with_input(BenchmarkId::new("ring", p), &p, |b, &p| b.iter(|| ring(p)));
        group.bench_with_input(BenchmarkId::new("bruck", p), &p, |b, &p| {
            b.iter(|| bruck(p))
        });
        group.bench_with_input(BenchmarkId::new("hierarchical", p), &p, |b, &p| {
            let groups: Vec<(u32, u32)> = (0..p / 8).map(|g| (g * 8, 8)).collect();
            let cfg = HierarchicalConfig {
                intra: IntraPattern::Binomial,
                inter: InterAlg::Ring,
            };
            b.iter(|| hierarchical(p, &groups, cfg))
        });
    }
    group.finish();
}

fn bench_functional_exec(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpi/functional_exec");
    group.sample_size(10);
    for p in [128u32, 512] {
        let sched = recursive_doubling(p);
        group.bench_with_input(BenchmarkId::new("rd", p), &sched, |b, sched| {
            b.iter(|| {
                let mut st = FunctionalState::init_allgather(p as usize);
                st.run(sched).unwrap();
                st.verify_allgather_identity().unwrap();
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schedule_generation, bench_functional_exec);
criterion_main!(benches);
