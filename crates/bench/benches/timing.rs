//! Before/after benchmark of the schedule-pricing hot path.
//!
//! The "before" is the pre-compilation executor, kept verbatim as
//! `tarr_mpi::timing::reference`: every call re-merges all P−1 stages of the
//! 4096-rank ring and re-hashes them into a memo table. The "after" is the
//! [`TimedSchedule`] pipeline this series introduced, measured in the three
//! shapes it is actually used:
//!
//! * `compiled_cold` — `time_schedule`, i.e. compile + price in one call
//!   (what a one-shot caller pays);
//! * `compiled_reuse` — pricing an already-compiled schedule at a new
//!   message size (what `Session` sweeps and `congestion_refine` pay per
//!   evaluation);
//! * `analytic_ring` — `TimedSchedule::ring_allgather(p)` + price (what
//!   `Session` actually executes for the ring region, never materializing
//!   the O(P²)-op dense ring schedule).
//!
//! Every variant is asserted bit-identical to the reference before anything
//! is timed. A full (unfiltered) `cargo bench --bench timing` run finishes
//! by re-measuring the same quantities directly and writing the
//! machine-readable summary to `BENCH_timing.json` at the workspace root,
//! including the tarr-trace instrumentation overhead on the compiled
//! pricing sweep (asserted under 2% with the recorder enabled).

use std::time::Instant;

use criterion::{criterion_group, Criterion};
use tarr_collectives::allgather::ring;
use tarr_collectives::gather::{binomial_gather, chain_gather};
use tarr_core::{refine, ProbePoint, Scheme, Session, SessionConfig};
use tarr_faults::FaultSet;
use tarr_mapping::InitialMapping;
use tarr_mpi::{time_schedule, timing, Communicator, DeltaPricer, Schedule, TimedSchedule};
use tarr_netsim::{NetParams, StageModel};
use tarr_topo::{Cluster, CoreId, Rank};

const P: u32 = 4096;
const MSG: u64 = 65536;

struct Fixture {
    cluster: Cluster,
    comm: Communicator,
    sched: Schedule,
}

impl Fixture {
    fn new() -> Self {
        let cluster = Cluster::gpc((P / 8) as usize);
        let comm = Communicator::new((0..P as usize).map(CoreId::from_idx).collect());
        let sched = ring(P);
        Fixture {
            cluster,
            comm,
            sched,
        }
    }

    fn model(&self) -> StageModel<'_> {
        StageModel::new(&self.cluster, NetParams::default())
    }
}

fn bench_ring4096(c: &mut Criterion) {
    let f = Fixture::new();
    let model = f.model();
    let ts = TimedSchedule::compile(&f.sched);

    // Equal output, bit-exact, before any timing.
    let want = timing::reference::time_schedule(&f.sched, &f.comm, &model, MSG);
    assert_eq!(want, time_schedule(&f.sched, &f.comm, &model, MSG));
    assert_eq!(want, ts.time(&f.comm, &model, MSG));
    assert_eq!(
        want,
        TimedSchedule::ring_allgather(P).time(&f.comm, &model, MSG)
    );

    let mut group = c.benchmark_group("timing/ring4096");
    group.sample_size(10);
    group.bench_function("reference", |b| {
        b.iter(|| timing::reference::time_schedule(&f.sched, &f.comm, &model, MSG))
    });
    group.bench_function("compiled_cold", |b| {
        b.iter(|| time_schedule(&f.sched, &f.comm, &model, MSG))
    });
    group.bench_function("compiled_reuse", |b| {
        b.iter(|| ts.time(&f.comm, &model, MSG))
    });
    group.bench_function("analytic_ring", |b| {
        b.iter(|| TimedSchedule::ring_allgather(P).time(&f.comm, &model, MSG))
    });
    group.finish();
}

/// A deliberately scattered cyclic layout, so refinement proposals have
/// distance and contention left to trade.
fn cyclic_comm(cluster: &Cluster, p: usize) -> Communicator {
    let cpn = cluster.cores_per_node();
    let nodes = cluster.total_cores() / cpn;
    let cores: Vec<CoreId> = (0..p)
        .map(|r| CoreId::from_idx((r % nodes) * cpn + (r / nodes) % cpn))
        .collect();
    Communicator::new(cores)
}

fn bench_refine4096(c: &mut Criterion) {
    let f = Fixture::new();
    let model = f.model();
    let comm = cyclic_comm(&f.cluster, P as usize);
    let sched = chain_gather(P, Rank(0));
    let ts = TimedSchedule::compile(&sched);
    let mut pricer = DeltaPricer::new(&ts, &comm, &model, 4096);

    let mut group = c.benchmark_group("timing/refine4096");
    group.sample_size(10);
    // What the pre-delta refinement loop paid per proposal: a full re-price
    // of every unique stage.
    group.bench_function("full_reprice", |b| b.iter(|| ts.time(&comm, &model, 4096)));
    // What the delta pricer pays: re-simulate the stages the swapped ranks
    // touch (at most four on the chain), restore on revert.
    group.bench_function("delta_propose_revert", |b| {
        b.iter(|| {
            let t = pricer.propose_swap(1003, 2957, &model, 4096);
            pricer.revert();
            t
        })
    });
    group.finish();
}

/// Best (minimum) wall-clock seconds of `reps` runs of `work` — the
/// noise-robust estimator for comparing two configurations of a
/// sub-millisecond region: the minimum is the run least disturbed by
/// scheduling and frequency noise, so the delta between configurations
/// stops going negative when the true difference is under the noise floor.
fn best_secs(reps: usize, mut work: impl FnMut() -> f64) -> f64 {
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            let out = work();
            let dt = t.elapsed().as_secs_f64();
            assert!(out.is_finite());
            dt
        })
        .fold(f64::INFINITY, f64::min)
}

/// Median wall-clock seconds of `reps` runs of `work`.
fn median_secs(reps: usize, mut work: impl FnMut() -> f64) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            let out = work();
            let dt = t.elapsed().as_secs_f64();
            assert!(out.is_finite());
            dt
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

/// Refinement throughput: reference (full re-price per proposal) vs the
/// delta pricer, on the two gather shapes that bracket the stage-sparsity
/// spectrum. Returns the `"refine"` JSON object.
fn refine_summary() -> String {
    let cluster = Cluster::gpc((P / 8) as usize);
    let comm = cyclic_comm(&cluster, P as usize);
    let params = NetParams::default();
    let mut entries = Vec::new();
    // (schedule, reference proposals, delta proposals): counts sized so each
    // measured call runs tens of milliseconds or more.
    for (name, sched, props_ref, props_delta) in [
        ("chain", chain_gather(P, Rank(0)), 200usize, 5000usize),
        ("binomial", binomial_gather(P, Rank(0)), 200, 1000),
    ] {
        // Bit-identical climbs at an equal proposal budget before timing.
        let ident: Vec<u32> = (0..P).collect();
        let (m_delta, t_delta) = refine::congestion_refine(
            &cluster,
            &comm,
            &sched,
            4096,
            &params,
            ident.clone(),
            60,
            11,
        );
        let (m_ref, t_ref) = refine::reference::congestion_refine(
            &cluster,
            &comm,
            &sched,
            4096,
            &params,
            ident.clone(),
            60,
            11,
        );
        assert_eq!(m_delta, m_ref, "{name}: refined mapping diverged");
        assert_eq!(t_delta.to_bits(), t_ref.to_bits(), "{name}: time diverged");

        let ref_s = median_secs(3, || {
            refine::reference::congestion_refine(
                &cluster,
                &comm,
                &sched,
                4096,
                &params,
                ident.clone(),
                props_ref,
                1,
            )
            .1
        });
        let delta_s = median_secs(3, || {
            refine::congestion_refine(
                &cluster,
                &comm,
                &sched,
                4096,
                &params,
                ident.clone(),
                props_delta,
                1,
            )
            .1
        });
        let ref_us = ref_s / props_ref as f64 * 1e6;
        let delta_us = delta_s / props_delta as f64 * 1e6;
        let speedup = ref_us / delta_us;
        if name == "chain" {
            assert!(
                speedup >= 10.0,
                "delta refinement speedup {speedup:.1}x on the chain gather \
                 is below the 10x acceptance bound \
                 (reference {ref_us:.1} us/proposal, delta {delta_us:.2})",
            );
        }
        entries.push(format!(
            r#"    "{name}": {{
      "stages": {stages},
      "reference_us_per_proposal": {ref_us:.2},
      "delta_us_per_proposal": {delta_us:.3},
      "speedup": {speedup:.1}
    }}"#,
            stages = sched.stages.len(),
        ));
    }
    format!(
        "{{\n    \"p\": {P},\n    \"equal_output\": true,\n{}\n  }}",
        entries.join(",\n")
    )
}

/// One-cable re-convergence on a 65,536-rank session over the GPC fabric
/// exported as an irregular switch graph (so the fault-local BFS repair
/// path engages). Returns the `"fault_repair"` JSON object.
fn fault_summary() -> String {
    let ranks = 65_536usize;
    // 256 switches x 32 nodes x 8 cores = 65,536 ranks; the central
    // diagonal is a trunk-1 cable, so one failed cable removes a whole edge
    // and the fault-local BFS repair must rebuild the trees that crossed it.
    let (cluster, (sw_a, sw_b)) = tarr_bench::chorded_mesh_cluster(32);
    let switches = cluster.fabric().to_switch_graph().switches;
    let mut session = Session::from_layout(
        cluster,
        InitialMapping::CYCLIC_BUNCH,
        ranks,
        SessionConfig::implicit(),
    );
    // Warm the compiled-schedule and stage-price caches: the timed region
    // below is pure re-convergence, not first-touch compilation. The 512 B
    // probe compiles to recursive doubling, whose 17 unique stages give the
    // stage-selective re-pricer survivors to keep.
    session.allgather_time(MSG, Scheme::Default);
    session.allgather_time(512, Scheme::Default);
    let probes = [
        ProbePoint::allgather(MSG, Scheme::Default),
        ProbePoint::allgather(512, Scheme::Default),
    ];
    let set = FaultSet {
        failed_cables: vec![(sw_a, sw_b, 1)],
        ..FaultSet::default()
    };
    let t = Instant::now();
    let report = session
        .apply_faults(&set, &probes)
        .expect("one leaf uplink cannot partition the GPC fabric");
    let apply_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(report.summary.cables_removed, 1);
    assert!(
        report.summary.dist_rows_rebuilt > 0,
        "edge removal must dirty rows"
    );
    assert!(
        report.summary.dist_rows_reused > 0,
        "a single cable must not dirty every BFS row"
    );
    assert!(
        apply_ms < 1000.0,
        "one-cable re-convergence took {apply_ms:.1} ms at {ranks} ranks"
    );

    // Contrast: tear the session down and rebuild it cold on the degraded
    // cluster, re-pricing the same probes from nothing.
    let degraded = session.cluster().clone();
    let cores = session.comm().cores().to_vec();
    let t = Instant::now();
    let mut cold = Session::new(degraded, cores, SessionConfig::implicit());
    let cold_big = cold.allgather_time(MSG, Scheme::Default);
    let cold_small = cold.allgather_time(512, Scheme::Default);
    let cold_ms = t.elapsed().as_secs_f64() * 1e3;
    for (cold_t, warm_t) in [
        (cold_big, session.allgather_time(MSG, Scheme::Default)),
        (cold_small, session.allgather_time(512, Scheme::Default)),
    ] {
        assert_eq!(
            cold_t.to_bits(),
            warm_t.to_bits(),
            "incremental re-convergence diverged from the cold rebuild"
        );
    }

    format!(
        r#"{{
    "p": {ranks},
    "switches": {switches},
    "cables_removed": 1,
    "apply_ms": {apply_ms:.2},
    "cold_rebuild_ms": {cold_ms:.2},
    "dist_rows_rebuilt": {rows_rebuilt},
    "dist_rows_reused": {rows_reused},
    "price_stages_repriced": {repriced},
    "price_stages_reused": {reused},
    "equal_output": true
  }}"#,
        rows_rebuilt = report.summary.dist_rows_rebuilt,
        rows_reused = report.summary.dist_rows_reused,
        repriced = report.price_stages_repriced,
        reused = report.price_stages_reused,
    )
}

/// Direct before/after measurement, written as `BENCH_timing.json`.
fn write_summary() {
    let f = Fixture::new();
    let model = f.model();
    // The figure-harness sweep shape: one schedule priced at every message
    // size of the paper's x-axis.
    let sweep: [u64; 8] = [1, 64, 512, 4096, 16384, 65536, 131072, 262144];

    // Equal output across the full sweep first.
    let ts = TimedSchedule::compile(&f.sched);
    for &m in &sweep {
        let want = timing::reference::time_schedule(&f.sched, &f.comm, &model, m);
        assert_eq!(want, ts.time(&f.comm, &model, m));
        assert_eq!(
            want,
            TimedSchedule::ring_allgather(P).time(&f.comm, &model, m)
        );
    }

    let reference_s = median_secs(5, || {
        timing::reference::time_schedule(&f.sched, &f.comm, &model, MSG)
    });
    let cold_s = median_secs(5, || time_schedule(&f.sched, &f.comm, &model, MSG));
    let reuse_s = median_secs(25, || ts.time(&f.comm, &model, MSG));
    let analytic_s = median_secs(25, || {
        TimedSchedule::ring_allgather(P).time(&f.comm, &model, MSG)
    });
    let sweep_ref_s = median_secs(3, || {
        sweep
            .iter()
            .map(|&m| timing::reference::time_schedule(&f.sched, &f.comm, &model, m))
            .sum()
    });
    let sweep_new_s = median_secs(3, || {
        let ts = TimedSchedule::compile(&f.sched);
        sweep.iter().map(|&m| ts.time(&f.comm, &model, m)).sum()
    });

    // Instrumentation overhead on the pricing hot path: the full sweep over
    // the pre-compiled schedule, with the tarr-trace recorder off (one
    // relaxed atomic load per site) and on (spans + counters buffered).
    // Measured last so the enabled phase cannot pollute the numbers above.
    // Best-of-N per configuration: the true overhead is near the timer
    // noise floor, and a median of interleaved runs can come out *negative*
    // (the −0.22% a previous run of this file recorded). The minimum of
    // each configuration is its least-disturbed run, and the reported delta
    // clamps at zero — "no measurable overhead" rather than a nonsense
    // negative cost.
    let trace_off_s = best_secs(50, || {
        sweep
            .iter()
            .map(|&m| ts.time(&f.comm, &model, m))
            .sum::<f64>()
    });
    tarr_trace::set_enabled(true);
    let trace_on_s = best_secs(50, || {
        sweep
            .iter()
            .map(|&m| ts.time(&f.comm, &model, m))
            .sum::<f64>()
    });
    tarr_trace::set_enabled(false);
    tarr_trace::reset();
    let trace_overhead_raw_pct = (trace_on_s / trace_off_s - 1.0) * 100.0;
    let trace_overhead_pct = trace_overhead_raw_pct.max(0.0);
    assert!(
        trace_overhead_pct < 2.0,
        "tracing overhead {trace_overhead_pct:.2}% on the compiled pricing \
         sweep exceeds the 2% acceptance bound \
         (off {:.4} ms, on {:.4} ms)",
        trace_off_s * 1e3,
        trace_on_s * 1e3,
    );

    let refine_json = refine_summary();
    let fault_json = fault_summary();

    let json = format!(
        r#"{{
  "benchmark": "time_schedule on the {p}-rank ring allgather ({stages} stages, {ops} ops), GPC cluster, 64 KiB blocks",
  "equal_output": true,
  "reference_ms": {ref_ms:.3},
  "compiled_cold_ms": {cold_ms:.3},
  "compiled_reuse_ms": {reuse_ms:.4},
  "analytic_ring_ms": {analytic_ms:.4},
  "speedup_cold": {s_cold:.2},
  "speedup_reuse": {s_reuse:.1},
  "speedup_analytic": {s_analytic:.1},
  "sweep": {{
    "sizes": {n_sizes},
    "reference_ms": {sw_ref:.3},
    "compiled_ms": {sw_new:.3},
    "speedup": {sw_speedup:.2}
  }},
  "trace_overhead": {{
    "disabled_ms": {tr_off:.4},
    "enabled_ms": {tr_on:.4},
    "overhead_pct": {tr_pct:.2},
    "overhead_raw_pct": {tr_raw:.2}
  }},
  "refine": {refine_json},
  "fault_repair": {fault_json}
}}
"#,
        p = P,
        stages = f.sched.stages.len(),
        ops = f.sched.num_ops(),
        ref_ms = reference_s * 1e3,
        cold_ms = cold_s * 1e3,
        reuse_ms = reuse_s * 1e3,
        analytic_ms = analytic_s * 1e3,
        s_cold = reference_s / cold_s,
        s_reuse = reference_s / reuse_s,
        s_analytic = reference_s / analytic_s,
        n_sizes = sweep.len(),
        sw_ref = sweep_ref_s * 1e3,
        sw_new = sweep_new_s * 1e3,
        sw_speedup = sweep_ref_s / sweep_new_s,
        tr_off = trace_off_s * 1e3,
        tr_on = trace_on_s * 1e3,
        tr_pct = trace_overhead_pct,
        tr_raw = trace_overhead_raw_pct,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_timing.json");
    std::fs::write(path, &json).expect("write BENCH_timing.json");
    println!("wrote {path}");
    print!("{json}");
}

criterion_group!(benches, bench_ring4096, bench_refine4096);

fn main() {
    // A benchmark-name filter (`cargo bench -- reference`) or test mode
    // (`cargo test --benches`) skips the summary: a partial or smoke run
    // should not overwrite the committed numbers.
    let mut full_run = true;
    let mut summary_only = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--test" => full_run = false,
            "--summary-only" => summary_only = true,
            s if s.starts_with('-') => {}
            _ => full_run = false,
        }
    }
    if summary_only {
        // Developer shortcut: regenerate BENCH_timing.json without the
        // criterion passes.
        write_summary();
        return;
    }
    benches();
    if full_run {
        write_summary();
    }
}
