//! Before/after benchmark of the schedule-pricing hot path.
//!
//! The "before" is the pre-compilation executor, kept verbatim as
//! `tarr_mpi::timing::reference`: every call re-merges all P−1 stages of the
//! 4096-rank ring and re-hashes them into a memo table. The "after" is the
//! [`TimedSchedule`] pipeline this series introduced, measured in the three
//! shapes it is actually used:
//!
//! * `compiled_cold` — `time_schedule`, i.e. compile + price in one call
//!   (what a one-shot caller pays);
//! * `compiled_reuse` — pricing an already-compiled schedule at a new
//!   message size (what `Session` sweeps and `congestion_refine` pay per
//!   evaluation);
//! * `analytic_ring` — `TimedSchedule::ring_allgather(p)` + price (what
//!   `Session` actually executes for the ring region, never materializing
//!   the O(P²)-op dense ring schedule).
//!
//! Every variant is asserted bit-identical to the reference before anything
//! is timed. A full (unfiltered) `cargo bench --bench timing` run finishes
//! by re-measuring the same quantities directly and writing the
//! machine-readable summary to `BENCH_timing.json` at the workspace root,
//! including the tarr-trace instrumentation overhead on the compiled
//! pricing sweep (asserted under 2% with the recorder enabled).

use std::time::Instant;

use criterion::{criterion_group, Criterion};
use tarr_collectives::allgather::ring;
use tarr_mpi::{time_schedule, timing, Communicator, Schedule, TimedSchedule};
use tarr_netsim::{NetParams, StageModel};
use tarr_topo::{Cluster, CoreId};

const P: u32 = 4096;
const MSG: u64 = 65536;

struct Fixture {
    cluster: Cluster,
    comm: Communicator,
    sched: Schedule,
}

impl Fixture {
    fn new() -> Self {
        let cluster = Cluster::gpc((P / 8) as usize);
        let comm = Communicator::new((0..P as usize).map(CoreId::from_idx).collect());
        let sched = ring(P);
        Fixture {
            cluster,
            comm,
            sched,
        }
    }

    fn model(&self) -> StageModel<'_> {
        StageModel::new(&self.cluster, NetParams::default())
    }
}

fn bench_ring4096(c: &mut Criterion) {
    let f = Fixture::new();
    let model = f.model();
    let ts = TimedSchedule::compile(&f.sched);

    // Equal output, bit-exact, before any timing.
    let want = timing::reference::time_schedule(&f.sched, &f.comm, &model, MSG);
    assert_eq!(want, time_schedule(&f.sched, &f.comm, &model, MSG));
    assert_eq!(want, ts.time(&f.comm, &model, MSG));
    assert_eq!(
        want,
        TimedSchedule::ring_allgather(P).time(&f.comm, &model, MSG)
    );

    let mut group = c.benchmark_group("timing/ring4096");
    group.sample_size(10);
    group.bench_function("reference", |b| {
        b.iter(|| timing::reference::time_schedule(&f.sched, &f.comm, &model, MSG))
    });
    group.bench_function("compiled_cold", |b| {
        b.iter(|| time_schedule(&f.sched, &f.comm, &model, MSG))
    });
    group.bench_function("compiled_reuse", |b| {
        b.iter(|| ts.time(&f.comm, &model, MSG))
    });
    group.bench_function("analytic_ring", |b| {
        b.iter(|| TimedSchedule::ring_allgather(P).time(&f.comm, &model, MSG))
    });
    group.finish();
}

/// Median wall-clock seconds of `reps` runs of `work`.
fn median_secs(reps: usize, mut work: impl FnMut() -> f64) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            let out = work();
            let dt = t.elapsed().as_secs_f64();
            assert!(out.is_finite());
            dt
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

/// Direct before/after measurement, written as `BENCH_timing.json`.
fn write_summary() {
    let f = Fixture::new();
    let model = f.model();
    // The figure-harness sweep shape: one schedule priced at every message
    // size of the paper's x-axis.
    let sweep: [u64; 8] = [1, 64, 512, 4096, 16384, 65536, 131072, 262144];

    // Equal output across the full sweep first.
    let ts = TimedSchedule::compile(&f.sched);
    for &m in &sweep {
        let want = timing::reference::time_schedule(&f.sched, &f.comm, &model, m);
        assert_eq!(want, ts.time(&f.comm, &model, m));
        assert_eq!(
            want,
            TimedSchedule::ring_allgather(P).time(&f.comm, &model, m)
        );
    }

    let reference_s = median_secs(5, || {
        timing::reference::time_schedule(&f.sched, &f.comm, &model, MSG)
    });
    let cold_s = median_secs(5, || time_schedule(&f.sched, &f.comm, &model, MSG));
    let reuse_s = median_secs(25, || ts.time(&f.comm, &model, MSG));
    let analytic_s = median_secs(25, || {
        TimedSchedule::ring_allgather(P).time(&f.comm, &model, MSG)
    });
    let sweep_ref_s = median_secs(3, || {
        sweep
            .iter()
            .map(|&m| timing::reference::time_schedule(&f.sched, &f.comm, &model, m))
            .sum()
    });
    let sweep_new_s = median_secs(3, || {
        let ts = TimedSchedule::compile(&f.sched);
        sweep.iter().map(|&m| ts.time(&f.comm, &model, m)).sum()
    });

    // Instrumentation overhead on the pricing hot path: the full sweep over
    // the pre-compiled schedule, with the tarr-trace recorder off (one
    // relaxed atomic load per site) and on (spans + counters buffered).
    // Measured last so the enabled phase cannot pollute the numbers above.
    let trace_off_s = median_secs(25, || {
        sweep
            .iter()
            .map(|&m| ts.time(&f.comm, &model, m))
            .sum::<f64>()
    });
    tarr_trace::set_enabled(true);
    let trace_on_s = median_secs(25, || {
        sweep
            .iter()
            .map(|&m| ts.time(&f.comm, &model, m))
            .sum::<f64>()
    });
    tarr_trace::set_enabled(false);
    tarr_trace::reset();
    let trace_overhead_pct = (trace_on_s / trace_off_s - 1.0) * 100.0;
    assert!(
        trace_overhead_pct < 2.0,
        "tracing overhead {trace_overhead_pct:.2}% on the compiled pricing \
         sweep exceeds the 2% acceptance bound \
         (off {:.4} ms, on {:.4} ms)",
        trace_off_s * 1e3,
        trace_on_s * 1e3,
    );

    let json = format!(
        r#"{{
  "benchmark": "time_schedule on the {p}-rank ring allgather ({stages} stages, {ops} ops), GPC cluster, 64 KiB blocks",
  "equal_output": true,
  "reference_ms": {ref_ms:.3},
  "compiled_cold_ms": {cold_ms:.3},
  "compiled_reuse_ms": {reuse_ms:.4},
  "analytic_ring_ms": {analytic_ms:.4},
  "speedup_cold": {s_cold:.2},
  "speedup_reuse": {s_reuse:.1},
  "speedup_analytic": {s_analytic:.1},
  "sweep": {{
    "sizes": {n_sizes},
    "reference_ms": {sw_ref:.3},
    "compiled_ms": {sw_new:.3},
    "speedup": {sw_speedup:.2}
  }},
  "trace_overhead": {{
    "disabled_ms": {tr_off:.4},
    "enabled_ms": {tr_on:.4},
    "overhead_pct": {tr_pct:.2}
  }}
}}
"#,
        p = P,
        stages = f.sched.stages.len(),
        ops = f.sched.num_ops(),
        ref_ms = reference_s * 1e3,
        cold_ms = cold_s * 1e3,
        reuse_ms = reuse_s * 1e3,
        analytic_ms = analytic_s * 1e3,
        s_cold = reference_s / cold_s,
        s_reuse = reference_s / reuse_s,
        s_analytic = reference_s / analytic_s,
        n_sizes = sweep.len(),
        sw_ref = sweep_ref_s * 1e3,
        sw_new = sweep_new_s * 1e3,
        sw_speedup = sweep_ref_s / sweep_new_s,
        tr_off = trace_off_s * 1e3,
        tr_on = trace_on_s * 1e3,
        tr_pct = trace_overhead_pct,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_timing.json");
    std::fs::write(path, &json).expect("write BENCH_timing.json");
    println!("wrote {path}");
    print!("{json}");
}

criterion_group!(benches, bench_ring4096);

fn main() {
    // A benchmark-name filter (`cargo bench -- reference`) or test mode
    // (`cargo test --benches`) skips the summary: a partial or smoke run
    // should not overwrite the committed numbers.
    let mut full_run = true;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--test" => full_run = false,
            s if s.starts_with('-') => {}
            _ => full_run = false,
        }
    }
    benches();
    if full_run {
        write_summary();
    }
}
