//! End-to-end benchmarks of the figure-harness inner loop: one topology-aware
//! allgather evaluation through the public `Session` API (mapping is cached,
//! so the steady-state cost is schedule generation + stage pricing — the
//! operation Figs. 3–6 execute hundreds of times).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tarr_collectives::allgather::{HierarchicalConfig, InterAlg, IntraPattern};
use tarr_core::{Scheme, Session, SessionConfig};
use tarr_mapping::{InitialMapping, OrderFix};
use tarr_topo::Cluster;

fn session(p: usize) -> Session {
    Session::from_layout(
        Cluster::gpc(p / 8),
        InitialMapping::CYCLIC_BUNCH,
        p,
        SessionConfig::default(),
    )
}

fn bench_allgather_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("session/allgather_time");
    group.sample_size(10);
    for p in [512usize, 1024] {
        let mut s = session(p);
        // Warm the mapping caches so the benchmark measures steady state.
        let _ = s.allgather_time(512, Scheme::hrstc(OrderFix::InitComm));
        let _ = s.allgather_time(65536, Scheme::hrstc(OrderFix::InitComm));
        group.bench_with_input(BenchmarkId::new("rd_512B", p), &(), |b, _| {
            b.iter(|| s.allgather_time(512, Scheme::hrstc(OrderFix::InitComm)))
        });
        group.bench_with_input(BenchmarkId::new("ring_64K", p), &(), |b, _| {
            b.iter(|| s.allgather_time(65536, Scheme::hrstc(OrderFix::InitComm)))
        });
    }
    group.finish();
}

fn bench_hierarchical_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("session/hierarchical_time");
    group.sample_size(10);
    let mut s = Session::from_layout(
        Cluster::gpc(64),
        InitialMapping::BLOCK_SCATTER,
        512,
        SessionConfig::default(),
    );
    let hcfg = HierarchicalConfig {
        intra: IntraPattern::Binomial,
        inter: InterAlg::Ring,
    };
    let _ = s.hierarchical_allgather_time(16384, hcfg, Scheme::hrstc(OrderFix::InitComm));
    group.bench_function("nl_ring_16K_p512", |b| {
        b.iter(|| s.hierarchical_allgather_time(16384, hcfg, Scheme::hrstc(OrderFix::InitComm)))
    });
    group.finish();
}

criterion_group!(benches, bench_allgather_time, bench_hierarchical_time);
criterion_main!(benches);
