//! Benchmarks of the network-model substrate: distance-matrix construction
//! (the measured part of Fig. 7a) and stage pricing (the inner loop of every
//! figure harness).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tarr_mapping::InitialMapping;
use tarr_netsim::{fluid_stage_time, Message, NetParams, StageModel};
use tarr_topo::{Cluster, CoreId, DistanceConfig, DistanceMatrix};

fn bench_distance_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7a/matrix_build");
    group.sample_size(10);
    for p in [512usize, 2048] {
        let cluster = Cluster::gpc(p / 8);
        let cores = InitialMapping::BLOCK_BUNCH.layout(&cluster, p);
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, _| {
            b.iter(|| DistanceMatrix::build(&cluster, &cores, &DistanceConfig::default()))
        });
    }
    group.finish();
}

fn cross_node_stage(cluster: &Cluster, n: usize, bytes: u64) -> Vec<Message> {
    let half = cluster.num_nodes() / 2;
    (0..n)
        .map(|i| {
            let src = cluster.core_id(tarr_topo::NodeId::from_idx(i % half), i % 8);
            let dst = cluster.core_id(tarr_topo::NodeId::from_idx(half + i % half), (i + 3) % 8);
            Message::new(src, dst, bytes)
        })
        .collect()
}

fn bench_stage_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("netsim/stage_time");
    group.sample_size(20);
    let cluster = Cluster::gpc(512);
    let model = StageModel::new(&cluster, NetParams::default());
    for n in [1024usize, 4096] {
        let msgs = cross_node_stage(&cluster, n, 65536);
        group.bench_with_input(BenchmarkId::from_parameter(n), &msgs, |b, msgs| {
            b.iter(|| model.stage_time(msgs))
        });
    }
    group.finish();
}

fn bench_fluid_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("netsim/fluid_stage_time");
    group.sample_size(10);
    let cluster = Cluster::gpc(32);
    let params = NetParams::default();
    for n in [64usize, 256] {
        let msgs = cross_node_stage(&cluster, n, 65536);
        group.bench_with_input(BenchmarkId::from_parameter(n), &msgs, |b, msgs| {
            b.iter(|| fluid_stage_time(&cluster, &params, msgs))
        });
    }
    group.finish();
}

fn bench_routing(c: &mut Criterion) {
    let cluster = Cluster::gpc(512);
    let pairs: Vec<(CoreId, CoreId)> = (0..1024)
        .map(|i| (CoreId(i * 3 % 4096), CoreId((i * 7 + 11) % 4096)))
        .collect();
    c.bench_function("topo/path_1024_pairs", |b| {
        b.iter(|| {
            pairs
                .iter()
                .map(|&(a, bb)| cluster.path(a, bb).len())
                .sum::<usize>()
        })
    });
}

criterion_group!(
    benches,
    bench_distance_matrix,
    bench_stage_model,
    bench_fluid_sim,
    bench_routing
);
criterion_main!(benches);
