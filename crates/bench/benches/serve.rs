//! serve_bench — throughput of the serving stack versus worker count, and
//! the cold-coalesce guarantee of the shared-core caches.
//!
//! Two measurements, recorded in `BENCH_serve.json`:
//!
//! 1. **Warm throughput.** One engine with a GPC cluster ingested and every
//!    cache warmed, then the same mixed request script (map / reorder /
//!    price across collectives, sizes and schemes) is replayed through
//!    [`serve_lines`] at 1, 2, 4 and 8 workers. Requests/s per
//!    configuration, best of `REPS` replays. The ≥4× scaling assertion
//!    only fires when the host actually has ≥8 hardware threads — on a
//!    smaller runner the honest numbers are still recorded, plus the
//!    parallelism they were measured at.
//!
//! 2. **Cold coalesce.** A fresh engine, N threads released by a barrier
//!    onto the *identical* expensive cold request. The core's sharded
//!    once-cells guarantee the mapping is computed exactly once and the
//!    other N−1 requests share it (as cache hits or in-flight coalesces)
//!    — asserted unconditionally, on any host.
//!
//! 3. **Warm latency percentiles.** The sweep's engine keeps per-op RED
//!    latency histograms; p50/p95/p99 service times for map / reorder /
//!    price are summarized from the log2 buckets into the JSON.
//!
//! 4. **Recorder overhead.** The same warm serial replay with the
//!    tarr-trace recorder off vs. on (request scopes, `serve.handle` spans,
//!    counters), best-of-N and clamped at zero like `benches/timing.rs` —
//!    asserted < 2% on any host.
//!
//! `cargo bench --bench serve` regenerates the JSON; `--test` runs a smoke
//! pass without overwriting the committed numbers.

use std::io;
use std::sync::Barrier;
use std::time::Instant;

use tarr_serve::{serve_lines, Engine, ServeOpts};

/// Ops whose warm service-time percentiles land in the JSON.
const LATENCY_OPS: [&str; 3] = ["map", "reorder", "price"];
/// Replays per timing point of the recorder-overhead measurement.
const OVERHEAD_REPS: usize = 50;

/// Worker counts swept by the throughput measurement.
const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];
/// Threads hammering the identical cold request.
const COLD_THREADS: usize = 8;

/// The mixed request script replayed by every throughput configuration:
/// mapping and reorder lookups plus prices across collectives, message
/// sizes and schemes. All against one cluster, all deterministic.
fn request_mix(cluster: &str) -> Vec<String> {
    let mut v = Vec::new();
    for (mapper, pattern) in [("hrstc", "ring"), ("scotch", "rd"), ("greedy", "ring")] {
        v.push(format!(
            r#"{{"op":"map","cluster":"{cluster}","mapper":"{mapper}","pattern":"{pattern}"}}"#
        ));
        v.push(format!(
            r#"{{"op":"reorder","cluster":"{cluster}","mapper":"{mapper}","pattern":"{pattern}"}}"#
        ));
    }
    for msg in [1024u64, 65536, 1048576] {
        v.push(format!(
            r#"{{"op":"price","cluster":"{cluster}","collective":"allgather","msg_bytes":{msg}}}"#
        ));
        for (mapper, fix) in [
            ("hrstc", "in_place"),
            ("scotch", "init_comm"),
            ("greedy", "end_shuffle"),
        ] {
            v.push(format!(
                r#"{{"op":"price","cluster":"{cluster}","collective":"allgather","msg_bytes":{msg},"mapper":"{mapper}","fix":"{fix}"}}"#
            ));
        }
    }
    v.push(format!(
        r#"{{"op":"price","cluster":"{cluster}","collective":"gather","msg_bytes":4096,"mapper":"hrstc"}}"#
    ));
    v.push(format!(
        r#"{{"op":"price","cluster":"{cluster}","collective":"bcast","msg_bytes":1024,"mapper":"scotch"}}"#
    ));
    v.push(format!(
        r#"{{"op":"price","cluster":"{cluster}","collective":"allreduce","msg_bytes":65536,"mapper":"hrstc","fix":"in_place"}}"#
    ));
    v
}

struct ThroughputPoint {
    workers: usize,
    requests_per_s: f64,
}

/// Replay `script` through [`serve_lines`] and return requests/s, best of
/// `reps` replays (minimum wall time — the replay least disturbed by
/// scheduling noise).
fn measure_rps(engine: &Engine, script: &str, workers: usize, reps: usize) -> f64 {
    let requests = script.lines().count() as u64;
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let opts = ServeOpts {
            workers,
            queue_cap: 1024,
            ..Default::default()
        };
        let t = Instant::now();
        let served = serve_lines(engine, script.as_bytes(), io::sink(), &opts)
            .expect("serve_lines on an in-memory stream cannot fail");
        let dt = t.elapsed().as_secs_f64();
        assert_eq!(served, requests, "every scripted request must be served");
        best = best.min(dt);
    }
    requests as f64 / best
}

/// Warm-throughput sweep: ingest, warm every cache with one serial replay,
/// then measure each worker count against the identical warm engine. The
/// engine is returned too: its RED histograms hold the warm service times
/// of every replayed request, the source of the latency percentiles.
fn throughput_sweep(
    gpc_nodes: usize,
    passes: usize,
    reps: usize,
) -> (Vec<ThroughputPoint>, Engine) {
    let engine = Engine::new();
    let ingest = format!(r#"{{"op":"ingest","cluster":"w","gpc_nodes":{gpc_nodes}}}"#);
    let reply = engine.handle_line(&ingest);
    assert!(reply.contains("\"ok\":true"), "ingest failed: {reply}");
    let mix = request_mix("w");
    for line in &mix {
        let reply = engine.handle_line(line);
        assert!(reply.contains("\"ok\":true"), "warm-up failed: {reply}");
    }
    let one_pass = mix.join("\n");
    let mut script = String::with_capacity((one_pass.len() + 1) * passes);
    for _ in 0..passes {
        script.push_str(&one_pass);
        script.push('\n');
    }
    let sweep = WORKER_SWEEP
        .iter()
        .map(|&workers| ThroughputPoint {
            workers,
            requests_per_s: measure_rps(&engine, &script, workers, reps),
        })
        .collect();
    (sweep, engine)
}

/// Per-op warm p50/p95/p99 service times from the engine's RED histograms,
/// as JSON object lines for the report.
fn latency_summary(engine: &Engine) -> Vec<String> {
    LATENCY_OPS
        .iter()
        .map(|op| {
            let snap = engine.metrics().service_snapshot(op);
            let (p50, p95, p99) = snap.percentiles();
            println!(
                "{op:>8}: count {:>7}, p50 {:>8} ns, p95 {:>8} ns, p99 {:>8} ns",
                snap.count, p50, p95, p99
            );
            format!(
                r#"    "{op}": {{"count": {}, "p50_ns": {p50}, "p95_ns": {p95}, "p99_ns": {p99}}}"#,
                snap.count
            )
        })
        .collect()
}

/// Recorder-on vs. recorder-off wall time of the warm serial serve loop,
/// min-of-N per side with the recorder reset between replays (so the event
/// buffer never saturates and every replay pays full recording cost).
/// Returns (off seconds, on seconds, clamped overhead %).
fn serve_trace_overhead(gpc_nodes: usize, passes: usize) -> (f64, f64, f64) {
    let engine = Engine::new();
    let ingest = format!(r#"{{"op":"ingest","cluster":"t","gpc_nodes":{gpc_nodes}}}"#);
    assert!(engine.handle_line(&ingest).contains("\"ok\":true"));
    let mix = request_mix("t");
    for line in &mix {
        assert!(engine.handle_line(line).contains("\"ok\":true"));
    }
    let one_pass = mix.join("\n");
    let mut script = String::with_capacity((one_pass.len() + 1) * passes);
    for _ in 0..passes {
        script.push_str(&one_pass);
        script.push('\n');
    }
    let opts = ServeOpts {
        workers: 1,
        queue_cap: 1024,
        ..Default::default()
    };
    // Replays run as interleaved off/on pairs and the overhead is the best
    // *paired* ratio: adjacent replays see the same host state, so drift
    // (thermal, background load, scheduler mood) cancels within a pair,
    // and the minimum over pairs is the ratio least disturbed by noise —
    // the paired analogue of timing.rs's best-of-N. Clamped at zero.
    let mut off = f64::INFINITY;
    let mut on = f64::INFINITY;
    let mut ratio = f64::INFINITY;
    let replay = |enabled: bool| {
        tarr_trace::set_enabled(enabled);
        tarr_trace::reset();
        let t = Instant::now();
        serve_lines(&engine, script.as_bytes(), io::sink(), &opts)
            .expect("serve_lines on an in-memory stream cannot fail");
        t.elapsed().as_secs_f64()
    };
    for _ in 0..OVERHEAD_REPS {
        let o = replay(false);
        let n = replay(true);
        off = off.min(o);
        on = on.min(n);
        ratio = ratio.min(n / o);
    }
    tarr_trace::set_enabled(false);
    tarr_trace::reset();
    let pct = ((ratio - 1.0) * 100.0).max(0.0);
    (off, on, pct)
}

struct ColdOutcome {
    threads: usize,
    misses: u64,
    hits: u64,
    coalesced: u64,
}

/// N threads, one barrier, one identical expensive cold request each.
/// Returns the core's mapping-cache accounting: exactly one compute, the
/// rest shared.
fn cold_coalesce(gpc_nodes: usize, threads: usize) -> ColdOutcome {
    let engine = Engine::new();
    let ingest = format!(r#"{{"op":"ingest","cluster":"cold","gpc_nodes":{gpc_nodes}}}"#);
    assert!(engine.handle_line(&ingest).contains("\"ok\":true"));
    let req = r#"{"op":"map","cluster":"cold","mapper":"hrstc","pattern":"ring"}"#;
    let barrier = Barrier::new(threads);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                barrier.wait();
                let reply = engine.handle_line(req);
                assert!(reply.contains("\"ok\":true"), "cold map failed: {reply}");
            });
        }
    });
    let snap = engine
        .core("cold")
        .expect("cluster was ingested")
        .cache_stats()
        .mappings;
    ColdOutcome {
        threads,
        misses: snap.misses,
        hits: snap.hits,
        coalesced: snap.coalesced,
    }
}

fn run(gpc_nodes: usize, passes: usize, reps: usize, write_json: bool) {
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let (sweep, warm_engine) = throughput_sweep(gpc_nodes, passes, reps);
    for pt in &sweep {
        println!(
            "workers {}: {:>10.0} requests/s",
            pt.workers, pt.requests_per_s
        );
    }
    let rps1 = sweep[0].requests_per_s;
    let rps8 = sweep.last().expect("sweep is nonempty").requests_per_s;
    let speedup = rps8 / rps1;
    let speedup_asserted = parallelism >= 8;
    if speedup_asserted {
        assert!(
            speedup >= 4.0,
            "8-worker throughput must be ≥4× the 1-worker throughput on an \
             8-way host, got {speedup:.2}× ({rps8:.0} vs {rps1:.0} req/s)"
        );
    } else {
        println!(
            "speedup 8v1 = {speedup:.2}× (assertion skipped: only \
             {parallelism} hardware threads)"
        );
    }

    let cold = cold_coalesce(gpc_nodes, COLD_THREADS);
    let shared = cold.hits + cold.coalesced;
    assert_eq!(
        cold.misses, 1,
        "the identical cold request must be computed exactly once"
    );
    assert!(
        shared >= cold.threads as u64 - 1,
        "{} cold requests must produce ≥{} shared lookups, got {shared} \
         ({} hits + {} coalesced)",
        cold.threads,
        cold.threads - 1,
        cold.hits,
        cold.coalesced,
    );
    println!(
        "cold coalesce: {} threads → 1 compute, {} hits, {} coalesced",
        cold.threads, cold.hits, cold.coalesced
    );

    let latency_json = latency_summary(&warm_engine);

    // Overhead is measured at the golden-fixture cluster scale (64 GPC
    // nodes, 512 ranks) in every mode: the ratio is only meaningful
    // against production-sized requests, and a fixed configuration keeps
    // the smoke pass asserting the same bound as the full run.
    let (tr_off, tr_on, tr_pct) = serve_trace_overhead(64, 20);
    println!(
        "serve trace overhead: off {:.3} ms, on {:.3} ms → {tr_pct:.2}%",
        tr_off * 1e3,
        tr_on * 1e3
    );
    assert!(
        tr_pct < 2.0,
        "recorder-on serve-loop overhead {tr_pct:.2}% exceeds the 2% \
         acceptance bound (off {:.4} ms, on {:.4} ms)",
        tr_off * 1e3,
        tr_on * 1e3,
    );

    if !write_json {
        return;
    }
    let throughput_json: Vec<String> = sweep
        .iter()
        .map(|pt| {
            format!(
                r#"    {{"workers": {}, "requests_per_s": {:.0}}}"#,
                pt.workers, pt.requests_per_s
            )
        })
        .collect();
    let json = format!(
        r#"{{
  "benchmark": "tarr-serve warm mixed workload (map/reorder/price) through serve_lines, GPC cluster with {gpc_nodes} nodes",
  "requests_per_pass": {per_pass},
  "passes": {passes},
  "host_parallelism": {parallelism},
  "throughput": [
{throughput}
  ],
  "speedup_8v1": {speedup:.2},
  "speedup_asserted": {speedup_asserted},
  "latency_ns": {{
{latency}
  }},
  "serve_trace_overhead_pct": {tr_pct:.2},
  "cold_coalesce": {{
    "threads": {cold_threads},
    "computes": {misses},
    "hits": {hits},
    "coalesced": {coalesced},
    "required_shared": {required}
  }}
}}
"#,
        per_pass = request_mix("w").len(),
        throughput = throughput_json.join(",\n"),
        latency = latency_json.join(",\n"),
        cold_threads = cold.threads,
        misses = cold.misses,
        hits = cold.hits,
        coalesced = cold.coalesced,
        required = cold.threads - 1,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, &json).expect("write BENCH_serve.json");
    println!("wrote {path}");
    print!("{json}");
}

fn main() {
    // `cargo test --benches` / a name filter runs the smoke pass and leaves
    // the committed numbers alone.
    let mut full_run = true;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--test" => full_run = false,
            s if s.starts_with('-') => {}
            _ => full_run = false,
        }
    }
    if full_run {
        run(16, 200, 3, true);
    } else {
        run(4, 2, 1, false);
    }
}
