//! replay_bench — cold boot vs. warm snapshot restore of a mapping-service
//! session, recorded in `BENCH_replay.json`.
//!
//! The persistence claim behind `tarr-serve --state-dir` is that restoring
//! a session from a snapshot is much cheaper than rebuilding it: a cold
//! boot re-ingests the cluster, recompiles every schedule and re-prices
//! every collective, while a warm restore decodes the serialized caches
//! and answers the same probes as hits.
//!
//! The measurement, at the acceptance scale of p = 65,536 ranks (8,192
//! GPC nodes, 8 ranks each):
//!
//! 1. **Cold boot.** `build_core` from the ingest spec, then a scale-safe
//!    probe set: the HRSTC ring mapping plus prices across collectives,
//!    sizes and schemes. Every path is O(P)-memory (bucketed fine-tuned
//!    heuristics over the implicit oracle, analytically compiled
//!    schedules) — the O(P²) baseline mappers (`scotch`, `greedy`) that
//!    the small-scale differential `probe_suite` also covers are exactly
//!    what a 65,536-rank session cannot afford, cold *or* warm, so they
//!    are not part of the session being measured. This is the work a
//!    restarted daemon without a state dir repeats from scratch.
//! 2. **Snapshot.** `EngineSnapshot::capture` + `encode` of the warmed
//!    core — the bytes `tarr-serve`'s `snapshot` op writes to disk.
//! 3. **Warm restore.** `decode` + `ClusterState::restore` + the same
//!    probes, best of `WARM_REPS`. The probe answers must be
//!    **bit-identical** to the cold run's (floats compare as IEEE-754 bit
//!    patterns) — a restore that is fast but wrong counts for nothing.
//!
//! The full run asserts warm restore ≥ 10× faster than cold boot and
//! regenerates the JSON; `--test` (or any filter argument, as passed by
//! `cargo test --benches`) runs a small smoke cluster, asserts only
//! bit-identity, and leaves the committed numbers alone.

use std::sync::Arc;
use std::time::Instant;

use tarr_collectives::allgather::{HierarchicalConfig, InterAlg, IntraPattern};
use tarr_core::{Mapper, PatternKind, Scheme, SessionCore};
use tarr_mapping::OrderFix;
use tarr_replay::{
    BackendKind, ClusterState, EngineSnapshot, IngestSource, IngestSpec, LayoutKind,
};

/// Acceptance scale: 8,192 GPC nodes x 8 ranks = 65,536 ranks.
const FULL_NODES: u64 = 8192;
/// Smoke scale for `--test`: 64 nodes = 512 ranks.
const SMOKE_NODES: u64 = 64;
/// Warm restores per run; the best (minimum) time is recorded.
const WARM_REPS: usize = 3;

fn spec(nodes: u64) -> IngestSpec {
    IngestSpec {
        source: IngestSource::GpcNodes(nodes),
        layout: LayoutKind::BlockBunch,
        p: None,
        seed: Some(42),
        backend: BackendKind::Implicit,
        replace: false,
    }
}

/// Message sizes of the pricing sweep, the paper's 1 KiB – 16 MiB range.
const SIZES: [u64; 8] = [
    1 << 10,
    1 << 12,
    1 << 14,
    1 << 16,
    1 << 18,
    1 << 20,
    1 << 22,
    1 << 24,
];

/// The session's work set: HRSTC mappings for all five communication
/// patterns plus a full message-size pricing sweep over the cache-backed
/// collectives — flat allgather, hierarchical allgather and gather across
/// schemes — what a mapping service that has answered a realistic mix of
/// requests actually holds. Scale-safe at 65,536 ranks (bucketed mappers,
/// compiled schedules), warms every cache kind the snapshot serializes
/// (mapping, communicator, schedule, price), and renders floats as bit
/// patterns so "equal" means bit-identical. `bcast`/`allreduce` are
/// deliberately absent: their schedules carry the byte count and are
/// size-dependent, hence uncacheable by design (same as the solo
/// session) — they cost the same warm or cold and measure nothing about
/// restore.
fn probes(core: &Arc<SessionCore>) -> Vec<String> {
    let mut h = core.handle();
    let mut out = Vec::new();
    let patterns = [
        ("rd", PatternKind::Rd),
        ("ring", PatternKind::Ring),
        ("bruck", PatternKind::Bruck),
        ("bbcast", PatternKind::BinomialBcast),
        ("bgather", PatternKind::BinomialGather),
    ];
    for (label, pat) in patterns {
        let info = h.mapping(Mapper::Hrstc, pat).expect("hrstc mapping");
        out.push(format!(
            "map hrstc {label} = {}",
            info.mapping
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(",")
        ));
    }
    let schemes: [(&str, Scheme); 3] = [
        ("default", Scheme::Default),
        (
            "hrstc/init_comm",
            Scheme::Reordered {
                mapper: Mapper::Hrstc,
                fix: OrderFix::InitComm,
            },
        ),
        (
            "hrstc/in_place",
            Scheme::Reordered {
                mapper: Mapper::Hrstc,
                fix: OrderFix::InPlace,
            },
        ),
    ];
    let hcfgs = [
        (
            "rd/binomial",
            HierarchicalConfig {
                inter: InterAlg::RecursiveDoubling,
                intra: IntraPattern::Binomial,
            },
        ),
        (
            "ring/binomial",
            HierarchicalConfig {
                inter: InterAlg::Ring,
                intra: IntraPattern::Binomial,
            },
        ),
        (
            "ring/linear",
            HierarchicalConfig {
                inter: InterAlg::Ring,
                intra: IntraPattern::Linear,
            },
        ),
    ];
    for bytes in SIZES {
        for (label, scheme) in schemes {
            let t = h.allgather_time(bytes, scheme);
            out.push(format!(
                "price allgather {bytes} {label} = {:016x}",
                t.to_bits()
            ));
        }
        for (label, scheme) in &schemes[..2] {
            for (hlabel, hcfg) in hcfgs {
                if let Some(t) = h.hierarchical_allgather_time(bytes, hcfg, *scheme) {
                    out.push(format!(
                        "price hier-allgather {bytes} {hlabel} {label} = {:016x}",
                        t.to_bits()
                    ));
                }
            }
            let t = h.gather_time(bytes, *scheme);
            out.push(format!(
                "price gather {bytes} {label} = {:016x}",
                t.to_bits()
            ));
        }
    }
    out
}

fn run(nodes: u64, write_json: bool) {
    let p = nodes * 8;
    eprintln!("replay_bench: cold boot of {p} ranks ({nodes} GPC nodes)...");

    // 1. Cold boot: ingest + map + compile + price, the full from-scratch cost.
    let t0 = Instant::now();
    let core = Arc::new(tarr_replay::build_core(&spec(nodes)).expect("build core"));
    let cold_probes = probes(&core);
    let cold_s = t0.elapsed().as_secs_f64();
    eprintln!(
        "replay_bench: cold boot {cold_s:.3}s, {} probes",
        cold_probes.len()
    );

    // 2. Snapshot the warmed session, exactly as the `snapshot` op would.
    let snap = EngineSnapshot::capture(1, &[("gpc".to_string(), core)]).expect("capture");
    let bytes = snap.encode().expect("encode");
    let snapshot_bytes = bytes.len() as u64;
    eprintln!("replay_bench: snapshot {snapshot_bytes} bytes");

    // 3. Warm restore: decode + rebuild caches + answer the same probes.
    let mut warm_s = f64::INFINITY;
    let mut warm_probes = Vec::new();
    for _ in 0..WARM_REPS {
        let t0 = Instant::now();
        let decoded = EngineSnapshot::decode(&bytes).expect("decode");
        let (_, ref cs): (String, ClusterState) = decoded.clusters.into_iter().next().unwrap();
        let restored = Arc::new(cs.restore().expect("restore"));
        warm_probes = probes(&restored);
        warm_s = warm_s.min(t0.elapsed().as_secs_f64());
    }
    assert_eq!(
        cold_probes, warm_probes,
        "warm restore must answer the probe set bit-identically"
    );

    let speedup = cold_s / warm_s;
    eprintln!("replay_bench: warm restore {warm_s:.3}s -> {speedup:.1}x");

    if !write_json {
        return;
    }
    assert!(
        speedup >= 10.0,
        "warm restore must be >= 10x faster than cold boot (got {speedup:.1}x)"
    );
    let json = format!(
        "{{\n  \
         \"benchmark\": \"tarr-replay warm snapshot restore vs cold boot, GPC cluster, hrstc work set warmed\",\n  \
         \"p\": {p},\n  \
         \"gpc_nodes\": {nodes},\n  \
         \"probes\": {},\n  \
         \"cold_boot_s\": {cold_s:.6},\n  \
         \"warm_restore_s\": {warm_s:.6},\n  \
         \"speedup\": {speedup:.1},\n  \
         \"speedup_asserted\": true,\n  \
         \"snapshot_bytes\": {snapshot_bytes}\n}}\n",
        cold_probes.len()
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_replay.json");
    std::fs::write(path, &json).expect("write BENCH_replay.json");
    eprintln!("replay_bench: wrote {path}");
}

fn main() {
    // `cargo test --benches` / a name filter runs the smoke pass and leaves
    // the committed numbers alone.
    let mut full_run = true;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--test" => full_run = false,
            s if s.starts_with('-') => {}
            _ => full_run = false,
        }
    }
    if full_run {
        run(FULL_NODES, true);
    } else {
        run(SMOKE_NODES, false);
    }
}
