//! A cluster: a fat-tree fabric of identical multi-socket nodes.

use crate::error::TopoError;
use crate::fattree::{FatTree, FatTreeConfig};
use crate::ids::{CoreId, LeafId, NodeId};
use crate::irregular::IrregularFabric;
use crate::node::{IntraLevel, NodeTopology};
use crate::path::Hop;
use crate::torus::Torus3D;
use serde::{Deserialize, Serialize};

/// The inter-node network: a fat-tree (the paper's platform), a 3D torus
/// (the BlueGene-class platform of its related work), or an ingested
/// switch graph that does not match the ideal fat-tree wiring.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fabric {
    /// Leaf/line/spine fat-tree with deterministic up/down routing.
    FatTree(FatTree),
    /// Wrapping 3D torus with dimension-ordered routing.
    Torus(Torus3D),
    /// General switch graph with deterministic BFS routing (real-world
    /// wiring ingested from `ibnetdiscover` that is not an ideal fat-tree).
    Irregular(IrregularFabric),
}

impl Fabric {
    /// Deterministic route between two distinct nodes.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Vec<Hop> {
        match self {
            Fabric::FatTree(f) => f.route(src, dst),
            Fabric::Torus(t) => t.route(src, dst),
            Fabric::Irregular(g) => g.route(src, dst),
        }
    }

    /// The fat-tree, when that is the fabric kind.
    pub fn as_fattree(&self) -> Option<&FatTree> {
        match self {
            Fabric::FatTree(f) => Some(f),
            _ => None,
        }
    }

    /// The torus, when that is the fabric kind.
    pub fn as_torus(&self) -> Option<&Torus3D> {
        match self {
            Fabric::Torus(t) => Some(t),
            _ => None,
        }
    }

    /// The irregular switch graph, when that is the fabric kind.
    pub fn as_irregular(&self) -> Option<&IrregularFabric> {
        match self {
            Fabric::Irregular(g) => Some(g),
            _ => None,
        }
    }

    /// Nodes the fabric can host (`usize::MAX` when unbounded).
    fn capacity(&self) -> usize {
        match self {
            Fabric::FatTree(f) => f.num_nodes(),
            Fabric::Torus(t) => t.num_nodes(),
            Fabric::Irregular(g) => g.num_nodes(),
        }
    }

    /// Export the fabric as a generic switch graph (see the per-kind
    /// `to_switch_graph`/`to_config` methods for the switch numbering) —
    /// the structural form fault injection edits.
    pub fn to_switch_graph(&self) -> crate::irregular::IrregularConfig {
        match self {
            Fabric::FatTree(f) => f.to_switch_graph(),
            Fabric::Torus(t) => t.to_switch_graph(),
            Fabric::Irregular(g) => g.to_config(),
        }
    }
}

/// Everything needed to instantiate a [`Cluster`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Per-node processor hierarchy.
    pub node: NodeTopology,
    /// Fabric wiring.
    pub fabric: FatTreeConfig,
    /// Number of compute nodes.
    pub num_nodes: usize,
}

impl ClusterConfig {
    /// Validate all components.
    pub fn validate(&self) -> Result<(), TopoError> {
        self.node.validate()?;
        self.fabric.validate()?;
        if self.num_nodes == 0 {
            return Err(TopoError::NoNodes);
        }
        Ok(())
    }
}

/// An instantiated cluster with global core numbering.
///
/// Cores are numbered `node * cores_per_node + local`, i.e. consecutive core
/// ids walk socket 0 of node 0 first — the numbering SLURM-style launchers
/// expose and the paper's *block-bunch* layout binds ranks to in order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cluster {
    node_topo: NodeTopology,
    fabric: Fabric,
    num_nodes: usize,
}

impl Cluster {
    /// Build a cluster from a configuration.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn new(cfg: ClusterConfig) -> Self {
        Cluster::try_new(cfg).expect("invalid cluster configuration")
    }

    /// Fallible constructor for externally-sourced configurations.
    pub fn try_new(cfg: ClusterConfig) -> Result<Self, TopoError> {
        cfg.validate()?;
        let fabric = Fabric::FatTree(FatTree::new(cfg.fabric, cfg.num_nodes));
        Ok(Cluster {
            node_topo: cfg.node,
            fabric,
            num_nodes: cfg.num_nodes,
        })
    }

    /// Build a cluster from an already-constructed fabric of any kind —
    /// the entry point used by snapshot/ingest loading, where the fabric may
    /// be an [`IrregularFabric`] no `ClusterConfig` can describe.
    pub fn from_parts(
        node: NodeTopology,
        fabric: Fabric,
        num_nodes: usize,
    ) -> Result<Self, TopoError> {
        node.validate()?;
        if num_nodes == 0 {
            return Err(TopoError::NoNodes);
        }
        let capacity = fabric.capacity();
        if capacity < num_nodes {
            return Err(TopoError::FabricTooSmall {
                fabric_nodes: capacity,
                cluster_nodes: num_nodes,
            });
        }
        Ok(Cluster {
            node_topo: node,
            fabric,
            num_nodes,
        })
    }

    /// Build a cluster on a 3D torus fabric (the related-work platform).
    ///
    /// # Panics
    /// Panics if the node topology or torus extents are invalid.
    pub fn with_torus(node: NodeTopology, dims: [usize; 3]) -> Self {
        node.validate().expect("invalid node topology");
        let torus = Torus3D::new(dims);
        let num_nodes = torus.num_nodes();
        Cluster {
            node_topo: node,
            fabric: Fabric::Torus(torus),
            num_nodes,
        }
    }

    /// The paper's evaluation platform: GPC nodes (2×4 cores) on the GPC QDR
    /// fat-tree, with `num_nodes` nodes allocated.
    pub fn gpc(num_nodes: usize) -> Self {
        Cluster::new(ClusterConfig {
            node: NodeTopology::gpc(),
            fabric: FatTreeConfig::gpc(),
            num_nodes,
        })
    }

    /// A small cluster for tests: 2×2-core nodes on the tiny fabric.
    pub fn tiny(num_nodes: usize) -> Self {
        Cluster::new(ClusterConfig {
            node: NodeTopology {
                sockets: 2,
                cores_per_socket: 2,
                cores_per_l2: 1,
                smt: 1,
            },
            fabric: FatTreeConfig::tiny(),
            num_nodes,
        })
    }

    /// Per-node processor hierarchy.
    pub fn node_topology(&self) -> &NodeTopology {
        &self.node_topo
    }

    /// The network fabric.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Number of compute nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Cores per node.
    #[inline]
    pub fn cores_per_node(&self) -> usize {
        self.node_topo.cores_per_node()
    }

    /// Total cores in the cluster.
    #[inline]
    pub fn total_cores(&self) -> usize {
        self.num_nodes * self.cores_per_node()
    }

    /// Node hosting `core`.
    #[inline]
    pub fn node_of(&self, core: CoreId) -> NodeId {
        debug_assert!(core.idx() < self.total_cores());
        NodeId::from_idx(core.idx() / self.cores_per_node())
    }

    /// Node-local index of `core`.
    #[inline]
    pub fn local_of(&self, core: CoreId) -> usize {
        core.idx() % self.cores_per_node()
    }

    /// Node-local socket index of `core`.
    #[inline]
    pub fn socket_of(&self, core: CoreId) -> usize {
        self.node_topo.socket_of_local(self.local_of(core))
    }

    /// Global core id of `(node, local)`.
    #[inline]
    pub fn core_id(&self, node: NodeId, local: usize) -> CoreId {
        debug_assert!(local < self.cores_per_node());
        CoreId::from_idx(node.idx() * self.cores_per_node() + local)
    }

    /// Leaf switch of the node hosting `core` (fat-tree fabrics only).
    ///
    /// # Panics
    /// Panics on a torus fabric.
    #[inline]
    pub fn leaf_of_core(&self, core: CoreId) -> LeafId {
        self.fabric
            .as_fattree()
            .expect("leaf switches exist only on fat-tree fabrics")
            .leaf_of(self.node_of(core))
    }

    /// The closest shared hierarchy level between two cores of the *same*
    /// node.
    ///
    /// # Panics
    /// Panics (in debug) if the cores are on different nodes.
    pub fn intra_level(&self, a: CoreId, b: CoreId) -> IntraLevel {
        debug_assert_eq!(self.node_of(a), self.node_of(b));
        self.node_topo
            .shared_level(self.local_of(a), self.local_of(b))
    }

    /// Full channel path a message from `a` to `b` traverses.
    ///
    /// * same core: empty (no shared channel is stressed);
    /// * same socket: the socket's shared-memory channel;
    /// * same node, different sockets: source memory → QPI → destination memory;
    /// * different nodes: the routed fabric path (HCA + switch links).
    pub fn path(&self, a: CoreId, b: CoreId) -> Vec<Hop> {
        if a == b {
            return Vec::new();
        }
        let na = self.node_of(a);
        let nb = self.node_of(b);
        if na == nb {
            let sa = self.socket_of(a) as u32;
            let sb = self.socket_of(b) as u32;
            if sa == sb {
                vec![Hop::Shm {
                    node: na,
                    socket: sa,
                }]
            } else {
                vec![
                    Hop::Shm {
                        node: na,
                        socket: sa,
                    },
                    Hop::Qpi {
                        node: na,
                        from: sa,
                        to: sb,
                    },
                    Hop::Shm {
                        node: na,
                        socket: sb,
                    },
                ]
            }
        } else {
            self.fabric.route(na, nb)
        }
    }

    /// Iterator over all core ids.
    pub fn cores(&self) -> impl Iterator<Item = CoreId> + '_ {
        (0..self.total_cores()).map(CoreId::from_idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::HopKind;

    #[test]
    fn gpc_core_counts() {
        let c = Cluster::gpc(512);
        assert_eq!(c.cores_per_node(), 8);
        assert_eq!(c.total_cores(), 4096);
    }

    #[test]
    fn core_id_roundtrip() {
        let c = Cluster::gpc(16);
        for node in 0..16u32 {
            for local in 0..8 {
                let core = c.core_id(NodeId(node), local);
                assert_eq!(c.node_of(core), NodeId(node));
                assert_eq!(c.local_of(core), local);
            }
        }
    }

    #[test]
    fn same_socket_path_is_single_shm_hop() {
        let c = Cluster::gpc(2);
        let p = c.path(CoreId(0), CoreId(3));
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].kind(), HopKind::Shm);
    }

    #[test]
    fn cross_socket_path_crosses_qpi() {
        let c = Cluster::gpc(2);
        let p = c.path(CoreId(0), CoreId(7));
        assert_eq!(p.len(), 3);
        assert_eq!(p[1].kind(), HopKind::Qpi);
    }

    #[test]
    fn self_path_is_empty() {
        let c = Cluster::gpc(2);
        assert!(c.path(CoreId(5), CoreId(5)).is_empty());
    }

    #[test]
    fn inter_node_path_uses_fabric() {
        let c = Cluster::gpc(64);
        let a = c.core_id(NodeId(0), 0);
        let b = c.core_id(NodeId(40), 5); // different leaf (40 >= 30)
        let p = c.path(a, b);
        assert!(p.iter().any(|h| h.is_fabric()), "{p:?}");
        assert_eq!(p[0].kind(), HopKind::HcaUp);
        assert_eq!(p.last().unwrap().kind(), HopKind::HcaDown);
    }

    #[test]
    fn path_hops_never_mix_intra_and_fabric() {
        let c = Cluster::gpc(64);
        for (a, b) in [(0u32, 1), (0, 7), (0, 9), (0, 300)] {
            let p = c.path(CoreId(a), CoreId(b));
            let intra = p.iter().filter(|h| h.is_intra_node()).count();
            let net = p.len() - intra;
            assert!(intra == 0 || net == 0, "mixed path {p:?}");
        }
    }

    #[test]
    fn socket_of_matches_local_layout() {
        let c = Cluster::gpc(1);
        assert_eq!(c.socket_of(CoreId(0)), 0);
        assert_eq!(c.socket_of(CoreId(3)), 0);
        assert_eq!(c.socket_of(CoreId(4)), 1);
        assert_eq!(c.socket_of(CoreId(7)), 1);
    }

    #[test]
    fn from_parts_accepts_irregular_and_checks_capacity() {
        use crate::error::TopoError;
        use crate::irregular::{IrregularConfig, IrregularFabric};
        let g = IrregularFabric::new(IrregularConfig {
            switches: 2,
            node_switch: vec![0, 0, 1, 1],
            links: vec![(0, 1, 2)],
        })
        .unwrap();
        let c = Cluster::from_parts(NodeTopology::gpc(), Fabric::Irregular(g.clone()), 4).unwrap();
        assert_eq!(c.total_cores(), 32);
        let p = c.path(CoreId(0), CoreId(31));
        assert_eq!(p[0].kind(), HopKind::HcaUp);
        assert!(p.iter().any(|h| h.kind() == HopKind::SwitchLink));

        let err = Cluster::from_parts(NodeTopology::gpc(), Fabric::Irregular(g), 5).unwrap_err();
        assert_eq!(
            err,
            TopoError::FabricTooSmall {
                fabric_nodes: 4,
                cluster_nodes: 5
            }
        );
        let err = Cluster::from_parts(
            NodeTopology::gpc(),
            Fabric::FatTree(FatTree::new(FatTreeConfig::tiny(), 4)),
            0,
        )
        .unwrap_err();
        assert_eq!(err, TopoError::NoNodes);
    }

    #[test]
    fn cores_iterator_covers_all() {
        let c = Cluster::tiny(3);
        let v: Vec<_> = c.cores().collect();
        assert_eq!(v.len(), 12);
        assert_eq!(v[0], CoreId(0));
        assert_eq!(v[11], CoreId(11));
    }
}
